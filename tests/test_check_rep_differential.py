"""Differential oracle for the REP6xx fixtures.

The static claim behind every REP id is that the flagged pattern makes
canonical bytes diverge in practice.  This suite proves it: each
tainted fixture under ``tests/fixtures/rep/`` is executed as a
subprocess under the perturbation its rule id predicts sensitivity to
-- rerun, ``PYTHONHASHSEED`` flip, worker count -- and the outputs
must differ at the byte level.  The clean control runs under *all*
perturbations at once and must stay byte-identical.

Together with the static half (``test_static_verdict_matches_oracle``)
this closes the loop: a fixture is flagged if and only if it actually
diverges.
"""

import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.check import Analyzer
from repro.check.rules import expand_rule_prefixes

FIXTURES = Path(__file__).parent / "fixtures" / "rep"
REP_RULES = expand_rule_prefixes(["REP"])


def run_fixture(name, *argv, hashseed=None):
    """Run a fixture as ``__main__`` and return its stdout bytes."""
    env = {"PYTHONHASHSEED": str(hashseed)} if hashseed is not None \
        else {"PYTHONHASHSEED": "0"}
    proc = subprocess.run(
        [sys.executable, str(FIXTURES / name), *map(str, argv)],
        capture_output=True, env=env, timeout=60)
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


# -- every tainted fixture genuinely diverges --------------------------------

def test_rep601_diverges_across_hash_seeds():
    a = run_fixture("rep601_env.py", hashseed=1)
    b = run_fixture("rep601_env.py", hashseed=2)
    assert a != b


def test_rep602_set_order_diverges_across_hash_seeds():
    outputs = {run_fixture("rep602_set_order.py", hashseed=seed)
               for seed in range(8)}
    # 16 strings in the set: essentially every seed permutes them
    assert len(outputs) >= 2


def test_rep603_wall_clock_diverges_across_reruns():
    a = run_fixture("rep603_wall_clock.py")
    time.sleep(0.01)
    b = run_fixture("rep603_wall_clock.py")
    assert a != b


def test_rep604_global_rng_diverges_across_reruns():
    a = run_fixture("rep604_global_rng.py")
    b = run_fixture("rep604_global_rng.py")
    assert a != b


def test_rep605_diverges_with_worker_count():
    serial = run_fixture("rep605_thread_order.py", 1)
    threaded = run_fixture("rep605_thread_order.py", 8)
    # per-unit sleeps are staggered so 8 workers complete in reverse
    # submission order; with 1 worker as_completed yields FIFO
    assert serial != threaded


def test_rep606_volatile_field_diverges_across_reruns():
    a = run_fixture("rep606_volatile_field.py")
    time.sleep(0.01)
    b = run_fixture("rep606_volatile_field.py")
    assert a != b


# -- the clean control survives every perturbation at once -------------------

def test_clean_control_is_byte_identical():
    outputs = {
        run_fixture("clean_control.py", workers, hashseed=seed)
        for seed in (0, 1, 2)
        for workers in (1, 8)
    }
    outputs.add(run_fixture("clean_control.py", 4, hashseed=1))  # rerun
    assert len(outputs) == 1


# -- static verdicts match the dynamic oracle --------------------------------

EXPECTED = {
    "rep601_env.py": "REP601",
    "rep602_set_order.py": "REP602",
    "rep603_wall_clock.py": "REP603",
    "rep604_global_rng.py": "REP604",
    "rep605_thread_order.py": "REP605",
    "rep606_volatile_field.py": "REP606",
    "clean_control.py": None,
}


@pytest.fixture(scope="module")
def report():
    return Analyzer(only=REP_RULES).run(FIXTURES, rel_base=FIXTURES)


@pytest.mark.parametrize("fixture,rule", sorted(EXPECTED.items()))
def test_static_verdict_matches_oracle(report, fixture, rule):
    """Flagged iff divergent: the taint pass flags exactly the rule id
    whose perturbation the fixture dynamically fails under, and stays
    silent on the control that dynamically holds byte identity."""
    rules = sorted(f.rule for f in report.active if f.path == fixture)
    assert rules == ([] if rule is None else [rule])


def test_fixture_corpus_is_exhaustive(report):
    """Every REP id is witnessed by exactly one divergent fixture."""
    assert sorted(f.rule for f in report.active) == sorted(
        r for r in EXPECTED.values() if r)
