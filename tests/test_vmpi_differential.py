"""Differential equivalence of the two virtual-MPI engine cores.

The discrete-event core (``mode="event"``) exists purely for speed; its
contract is *byte identity* with the reference step scheduler
(``mode="step"``): same return values, same final clocks (float for
float), same per-rank traces, same Chrome trace exports.  This suite
runs a corpus of programs -- covering every op family the engines
support -- under both cores and compares the canonical serializations
byte for byte (``json.dumps`` equality, no tolerances).
"""

import json

import numpy as np
import pytest

from repro.cluster import juwels_booster
from repro.vmpi import (
    CollectiveMismatchError,
    DeadlockError,
    Machine,
    MODES,
    Phantom,
    RankFailedError,
    StepEngine,
    VmpiEngine,
    VmpiError,
    default_mode,
    run_spmd,
)
from repro.vmpi.decomposition import (
    CartGrid,
    halo_exchange,
    halo_exchange_op,
    phantom_faces,
)
from repro.vmpi.events import EventEngine


def machine(nranks, **kw):
    return Machine.on(juwels_booster(), nranks, **kw)


# -- the program corpus ------------------------------------------------------
# Each entry: (name, program, nranks, args).  Programs are plain SPMD
# generators; anything deterministic is fair game.

def prog_p2p_chain(comm):
    if comm.rank == 0:
        yield comm.send(1, np.arange(5.0))
        return None
    got = yield comm.recv(comm.rank - 1)
    if comm.rank < comm.size - 1:
        yield comm.send(comm.rank + 1, got * 2.0)
    return float(np.sum(got))


def prog_tags_and_fifo(comm):
    if comm.rank == 0:
        yield comm.send(1, 111)
        yield comm.send(1, 222)
        yield comm.send(1, "low", tag=1)
        yield comm.send(1, "high", tag=2)
        return None
    a = yield comm.recv(0)
    b = yield comm.recv(0)
    high = yield comm.recv(0, tag=2)
    low = yield comm.recv(0, tag=1)
    return (a, b, low, high)


def prog_overlap(comm):
    peer = comm.rank ^ 1
    sreq = yield comm.isend(peer, Phantom(100e6))
    rreq = yield comm.irecv(peer)
    yield comm.compute(flops=1e12, efficiency=1.0)
    yield comm.waitall([sreq, rreq])
    return None


def prog_eager_vs_rendezvous(comm):
    # one message under the eager limit, one over it
    peer = comm.rank ^ 1
    if comm.rank % 2 == 0:
        yield comm.send(peer, Phantom(1024.0))
        yield comm.send(peer, Phantom(10e6))
        return None
    small = yield comm.recv(peer)
    big = yield comm.recv(peer)
    return (small.nbytes, big.nbytes)


def prog_sendrecv_ring(comm):
    token = float(comm.rank)
    for _ in range(3):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        token = yield comm.sendrecv(right, token + 1.0, left)
    return token


def prog_collectives(comm):
    total = yield comm.allreduce(np.full(3, float(comm.rank + 1)))
    top = yield comm.allreduce(comm.rank, op="max")
    data = np.arange(4.0) if comm.rank == 2 else None
    bc = yield comm.bcast(data, root=2)
    ag = yield comm.allgather(comm.rank * 2)
    gathered = yield comm.gather(comm.rank ** 2, root=0)
    items = [x + 1 for x in gathered] if comm.rank == 0 else None
    sc = yield comm.scatter(items, root=0)
    yield comm.barrier()
    return (float(total.sum()), top, float(bc.sum()), ag, sc)


def prog_alltoall_tuple(comm):
    outgoing = tuple(comm.rank * 10 + j for j in range(comm.size))
    return (yield comm.alltoall(outgoing))


def prog_alltoall_uniform_phantom(comm):
    got = yield comm.alltoall(Phantom(4096.0), label="transpose")
    return [p.nbytes for p in got]


def prog_split_subcomms(comm):
    sub = yield comm.split(comm.rank % 2)
    total = yield sub.allreduce(comm.rank)
    yield sub.barrier()
    return (sub.size, total)


def prog_halo_2d(comm):
    cart = CartGrid.for_ranks(comm.size, 2, periodic=True)
    faces = phantom_faces((32, 32), itemsize=8)
    for _ in range(3):
        yield comm.compute(flops=1e9, efficiency=0.5, label="stencil")
        got = yield from halo_exchange(comm, cart, faces)
    return sorted((k, v.nbytes) for k, v in got.items())


def prog_halo_doubled_edges(comm):
    # periodic dims of extent 2: both directions hit the same neighbour,
    # the hardest pairing case for round-based matching
    cart = CartGrid.for_ranks(comm.size, 2, periodic=True)
    faces = {(0, -1): ("a", comm.rank), (0, +1): ("b", comm.rank),
             (1, -1): ("c", comm.rank), (1, +1): ("d", comm.rank)}
    got = yield from halo_exchange(comm, cart, faces)
    return sorted(got.items())


def prog_hoisted_batch(comm):
    cart = CartGrid.for_ranks(comm.size, 2, periodic=True)
    faces = phantom_faces((16, 16), itemsize=8)
    halo, _keys = halo_exchange_op(comm, cart, faces)
    step = (comm.compute(flops=2e9, efficiency=0.4, label="dyn"),
            comm.compute(flops=1e9, efficiency=0.4, label="phys"),
            halo)
    for _ in range(4):
        yield step
    return None


def prog_exchange_subset(comm):
    # only the even ranks exchange (pairwise); odd ranks just compute --
    # exercises the event core's quiescence flush for unfillable rounds
    if comm.rank % 2 == 0:
        peer = (comm.rank + 2) % comm.size
        src = (comm.rank - 2) % comm.size
        got = yield comm.exchange(((peer, comm.rank),), (src,))
        return got
    yield comm.compute(flops=1e9, efficiency=1.0)
    return None


def prog_mixed_waitall(comm):
    reqs = []
    for peer in range(comm.size):
        if peer != comm.rank:
            reqs.append((yield comm.isend(peer, Phantom(2e6))))
    for peer in range(comm.size):
        if peer != comm.rank:
            reqs.append((yield comm.irecv(peer)))
    yield comm.compute(flops=5e10, efficiency=1.0)
    yield comm.waitall(reqs)
    yield comm.allreduce(Phantom(1e5))
    return None


def prog_elapse_and_labels(comm):
    yield comm.elapse(0.25, label="io")
    yield comm.compute(flops=1e11, efficiency=0.8, label="kernel")
    yield comm.barrier(label="sync")
    return None


CORPUS = [
    ("p2p_chain", prog_p2p_chain, 4),
    ("tags_and_fifo", prog_tags_and_fifo, 2),
    ("overlap", prog_overlap, 4),
    ("eager_vs_rendezvous", prog_eager_vs_rendezvous, 4),
    ("sendrecv_ring", prog_sendrecv_ring, 5),
    ("collectives", prog_collectives, 4),
    ("alltoall_tuple", prog_alltoall_tuple, 3),
    ("alltoall_uniform_phantom", prog_alltoall_uniform_phantom, 4),
    ("split_subcomms", prog_split_subcomms, 6),
    ("halo_2d", prog_halo_2d, 8),
    ("halo_doubled_edges", prog_halo_doubled_edges, 4),
    ("hoisted_batch", prog_hoisted_batch, 8),
    ("exchange_subset", prog_exchange_subset, 6),
    ("mixed_waitall", prog_mixed_waitall, 4),
    ("elapse_and_labels", prog_elapse_and_labels, 3),
]


def run_both(program, nranks, args=()):
    m = machine(nranks)
    return (run_spmd(program, machine=m, args=args, mode="step"),
            run_spmd(program, machine=m, args=args, mode="event"))


def chrome_export_bytes(tmp_path, tag, spmd):
    """Chrome trace bytes of one run's vmpi counters (mode-independent
    inputs only -- the traces)."""
    from repro.telemetry import ManualClock, Tracer, emit_vmpi, \
        write_chrome_trace

    tracer = Tracer(clock=ManualClock(start=0.0, tick=0.5))
    with tracer.span("differential", kind="test"):
        emit_vmpi(tracer, "differential", 1, spmd)
    path = tmp_path / f"{tag}.json"
    write_chrome_trace(path, tracer)
    return path.read_bytes()


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("name,program,nranks",
                             CORPUS, ids=[c[0] for c in CORPUS])
    def test_byte_identical_results(self, name, program, nranks):
        step, event = run_both(program, nranks)
        assert step.mode == "step" and event.mode == "event"
        # exact float equality on the raw clocks, then the full
        # canonical serialization byte for byte
        assert step.clocks == event.clocks
        a = json.dumps(step.canonical(), sort_keys=True)
        b = json.dumps(event.canonical(), sort_keys=True)
        assert a == b, f"{name}: canonical results diverge"

    @pytest.mark.parametrize("name,program,nranks",
                             CORPUS, ids=[c[0] for c in CORPUS])
    def test_byte_identical_traces(self, name, program, nranks):
        step, event = run_both(program, nranks)
        for r, (ts, te) in enumerate(zip(step.traces, event.traces)):
            assert dict(ts.compute) == dict(te.compute), f"rank {r}"
            assert dict(ts.comm) == dict(te.comm), f"rank {r}"
            assert ts.bytes_sent == te.bytes_sent, f"rank {r}"
            assert ts.ops == te.ops, f"rank {r}"

    def test_byte_identical_chrome_export(self, tmp_path):
        step, event = run_both(prog_halo_2d, 8)
        assert chrome_export_bytes(tmp_path, "step", step) == \
            chrome_export_bytes(tmp_path, "event", event)

    def test_repeated_event_runs_identical(self):
        """The event core is deterministic against itself (cached plans
        and cost tables produce the same floats every run)."""
        m = machine(8)
        r1 = run_spmd(prog_hoisted_batch, machine=m, mode="event")
        r2 = run_spmd(prog_hoisted_batch, machine=m, mode="event")
        assert r1.clocks == r2.clocks
        assert json.dumps(r1.canonical(), sort_keys=True) == \
            json.dumps(r2.canonical(), sort_keys=True)


class TestModeSelection:
    def test_default_mode_is_event(self, monkeypatch):
        monkeypatch.delenv("REPRO_VMPI_MODE", raising=False)
        assert default_mode() == "event"
        assert isinstance(VmpiEngine(machine(2)), EventEngine)

    def test_env_var_selects_step(self, monkeypatch):
        monkeypatch.setenv("REPRO_VMPI_MODE", "step")
        assert default_mode() == "step"
        eng = VmpiEngine(machine(2))
        assert isinstance(eng, StepEngine)
        assert not isinstance(eng, EventEngine)

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_VMPI_MODE", "warp")
        with pytest.raises(ValueError):
            default_mode()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            VmpiEngine(machine(2), mode="turbo")

    def test_modes_tuple(self):
        assert set(MODES) == {"event", "step"}

    def test_result_records_mode(self):
        def prog(comm):
            yield comm.barrier()

        for mode in MODES:
            res = run_spmd(prog, machine=machine(2), mode=mode)
            assert res.mode == mode
        # canonical() hides the mode unless asked
        assert "mode" not in res.canonical()
        assert res.canonical(include_mode=True)["mode"] == res.mode

    def test_direct_subclass_construction(self):
        assert StepEngine(machine(2)).mode == "step"
        assert EventEngine(machine(2)).mode == "event"


class TestErrorPathsBothModes:
    """Failure modes must be equivalent too: same exception type, and
    diagnostics naming each blocked rank's pending operation."""

    @pytest.mark.parametrize("mode", MODES)
    def test_deadlock_reports_pending_ops(self, mode):
        def prog(comm):
            yield comm.recv((comm.rank + 1) % comm.size)

        with pytest.raises(DeadlockError) as err:
            run_spmd(prog, machine=machine(2), mode=mode)
        msg = str(err.value)
        assert "rank 0" in msg and "rank 1" in msg
        assert "recv from rank" in msg

    @pytest.mark.parametrize("mode", MODES)
    def test_deadlock_reports_blocked_exchange(self, mode):
        def prog(comm):
            if comm.rank == 0:
                yield comm.exchange(((1, "x"),), (1,))
            # rank 1 exits without posting -- the recv can never match

        with pytest.raises(DeadlockError) as err:
            run_spmd(prog, machine=machine(2), mode=mode)
        assert "exchange" in str(err.value)

    @pytest.mark.parametrize("mode", MODES)
    def test_deadlock_reports_partial_collective(self, mode):
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
            # ranks 1..n never arrive

        with pytest.raises(DeadlockError) as err:
            run_spmd(prog, machine=machine(3), mode=mode)
        assert "collective 'barrier'" in str(err.value)
        assert "1/3 ranks arrived" in str(err.value)

    @pytest.mark.parametrize("mode", MODES)
    def test_full_collective_mismatch(self, mode):
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
            else:
                yield comm.allreduce(1)

        with pytest.raises(CollectiveMismatchError) as err:
            run_spmd(prog, machine=machine(2), mode=mode)
        assert "'barrier'" in str(err.value)
        assert "'allreduce'" in str(err.value)

    @pytest.mark.parametrize("mode", MODES)
    def test_partial_collective_mismatch(self, mode):
        """Half the comm posts barrier, half allreduce, one rank never
        arrives: reported as the collective bug it is, not a deadlock."""

        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
            elif comm.rank == 1:
                yield comm.allreduce(1)
            # rank 2 exits immediately, so the collective never fills

        with pytest.raises(CollectiveMismatchError) as err:
            run_spmd(prog, machine=machine(3), mode=mode)
        assert "partial post" in str(err.value)

    @pytest.mark.parametrize("mode", MODES)
    def test_rank_failure_mid_collective(self, mode):
        def prog(comm):
            yield comm.barrier()
            if comm.rank == 1:
                raise ValueError("bad physics")
            yield comm.allreduce(1)  # others block here forever

        with pytest.raises(RankFailedError) as err:
            run_spmd(prog, machine=machine(3), mode=mode)
        assert err.value.rank == 1
        assert isinstance(err.value.original, ValueError)
        assert "bad physics" in str(err.value)

    @pytest.mark.parametrize("mode", MODES)
    def test_nested_batch_rejected(self, mode):
        def prog(comm):
            yield (comm.barrier(), (comm.barrier(),))

        with pytest.raises(VmpiError):
            run_spmd(prog, machine=machine(2), mode=mode)

    @pytest.mark.parametrize("mode", MODES)
    def test_wrong_size_alltoall_rejected(self, mode):
        def prog(comm):
            yield comm.alltoall(tuple(range(comm.size + 1)))

        with pytest.raises(VmpiError):
            run_spmd(prog, machine=machine(3), mode=mode)
