"""Integration tests for ``repro.faults`` across the stack.

The chaos harness promises three things (ISSUE acceptance criteria):

* **byte-determinism** -- the same fault seed yields a byte-identical
  canonical journal and chaos trace across cold runs *and* across
  worker counts;
* **resilience** -- injected faults within the retry budget converge,
  beyond it they degrade gracefully (explicit journal errors, skipped
  figure points) instead of aborting the sweep;
* **cross-layer reach** -- the same declarative plan drives the engine
  guard, the batch scheduler's node pool and the network model's
  bandwidths.
"""

import random
import time
from types import SimpleNamespace

import pytest

from repro.cluster import (
    Job,
    JobState,
    LinkClass,
    Scheduler,
    booster_network,
    juwels_booster,
)
from repro.core.scaling import strong_scaling, weak_scaling
from repro.exec import (
    BackoffPolicy,
    CircuitBreaker,
    ExecutionEngine,
    WorkItem,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    NodeFault,
    StragglerFault,
    TaskFaultRule,
    LinkFault,
    write_chaos_trace,
)
from repro.telemetry import ManualClock, Tracer
from repro.telemetry.schema import validate_event

SEED = 0x1A7E7


def _payload(v):
    """Module-level payload: pickles into process-pool workers."""
    return float(v)


def _chaos_run(workers: int):
    """A small fixed chaos recipe shared by the determinism tests."""
    plan = FaultPlan(seed=7, tasks=(
        TaskFaultRule(match="run:b", attempts=(1,)),
        TaskFaultRule(match="run:d", attempts=(1, 2, 3)),
    ))
    engine = ExecutionEngine(
        workers=workers, backend="thread", cache=None, retries=2,
        tracer=Tracer(clock=ManualClock(start=0.0, tick=0.25)),
        faults=FaultInjector(plan), backoff=BackoffPolicy(seed=plan.seed),
        breaker=CircuitBreaker())
    engine.map([WorkItem(fn=_payload, args=(float(i),), label=f"run:{c}")
                for i, c in enumerate("abcd")])
    return engine, plan


class TestByteDeterminism:
    def test_cold_runs_same_seed_identical_journal(self, tmp_path):
        paths = []
        for run in ("first", "second"):
            engine, _ = _chaos_run(workers=4)
            path = tmp_path / f"{run}.jsonl"
            engine.journal.canonical().to_jsonl(path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_workers_1_vs_8_identical_artifacts(self, tmp_path):
        blobs = {}
        for workers in (1, 8):
            engine, plan = _chaos_run(workers=workers)
            jpath = tmp_path / f"j{workers}.jsonl"
            engine.journal.canonical().to_jsonl(jpath)
            tpath = tmp_path / f"t{workers}.json"
            write_chaos_trace(tpath, engine.journal, plan)
            blobs[workers] = (jpath.read_bytes(), tpath.read_bytes())
        assert blobs[1] == blobs[8]

    def test_outcomes_match_plan_schedule(self):
        engine, plan = _chaos_run(workers=4)
        by_label = {r.label: r for r in engine.journal.records}
        assert by_label["run:a"].status == "ok"
        assert by_label["run:a"].attempts == 1
        assert by_label["run:b"].status == "ok"
        assert by_label["run:b"].attempts == 2  # recovered once
        # run:d fails attempts 1..3 but the budget is 2 retries
        assert by_label["run:d"].status == "error"
        assert by_label["run:d"].attempts == 3
        assert "InjectedFault" in by_label["run:d"].error
        assert plan.max_task_failures() == 3

    def test_process_backend_guard_pickles(self):
        plan = FaultPlan(tasks=(
            TaskFaultRule(match="run:proc", attempts=(1,)),))
        engine = ExecutionEngine(workers=2, backend="process", cache=None,
                                 retries=1, faults=FaultInjector(plan))
        out = engine.map([WorkItem(fn=_payload, args=(3.0,),
                                   label="run:proc")])
        assert out[0].ok and out[0].value == 3.0
        assert out[0].attempts == 2


class TestBackoff:
    def test_delay_is_pure_and_bounded(self):
        for i in range(40):
            rng = random.Random(SEED + i)
            policy = BackoffPolicy(base=rng.uniform(0.01, 1.0),
                                   factor=rng.uniform(1.0, 3.0),
                                   max_delay=rng.uniform(1.0, 10.0),
                                   jitter=rng.uniform(0.0, 1.0),
                                   seed=rng.randrange(2 ** 31))
            for attempt in (1, 2, 5):
                d1 = policy.delay("run:x", attempt)
                d2 = BackoffPolicy(**policy.__dict__).delay("run:x", attempt)
                assert d1 == d2, f"iteration {i}"
                raw = min(policy.base * policy.factor ** (attempt - 1),
                          policy.max_delay)
                lo = raw * (1 - policy.jitter / 2)
                hi = raw * (1 + policy.jitter / 2)
                assert lo <= d1 <= hi, f"iteration {i}"

    def test_no_jitter_is_plain_exponential(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, max_delay=5.0,
                               jitter=0.0)
        assert [policy.delay("l", a) for a in (1, 2, 3, 4)] == \
            [1.0, 2.0, 4.0, 5.0]

    def test_virtual_clock_advances_instead_of_sleeping(self):
        plan = FaultPlan(tasks=(TaskFaultRule(match="slow",
                                              attempts=(1,)),))
        engine = ExecutionEngine(
            workers=1, backend="thread", cache=None, retries=1,
            tracer=Tracer(clock=ManualClock(start=0.0, tick=0.25)),
            faults=FaultInjector(plan),
            backoff=BackoffPolicy(base=30.0, max_delay=30.0, jitter=0.0))
        wall = time.monotonic()
        out = engine.map([WorkItem(fn=_payload, args=(1.0,),
                                   label="slow")])
        wall = time.monotonic() - wall
        assert out[0].ok
        # a 30 s backoff consumed virtual, not wall, time
        assert wall < 5.0
        assert engine.tracer.now() >= 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)


class TestCircuitBreaker:
    def test_state_machine_direct(self):
        b = CircuitBreaker(threshold=2, cooldown=1)
        assert b.state("x") == "closed" and b.allow("x")
        b.record("x", False)
        assert b.state("x") == "closed"
        b.record("x", False)
        assert b.state("x") == "open" and not b.allow("x")
        b.block("x")  # one skip consumed -> half-open probe next
        assert b.state("x") == "half-open" and b.allow("x")
        b.record("x", False)  # probe fails -> re-open
        assert b.state("x") == "open"
        b.block("x")
        b.record("x", True)  # successful probe closes it
        assert b.state("x") == "closed"

    def test_engine_skips_open_circuit_and_recovers(self):
        # a stateful payload (fails twice, then heals) -- plan rules are
        # per-run attempt schedules, so cross-run breaker recovery needs
        # organic failures
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise RuntimeError(f"organic failure #{calls['n']}")
            return 1.0

        breaker = CircuitBreaker(threshold=2, cooldown=1)
        engine = ExecutionEngine(workers=1, backend="thread", cache=None,
                                 retries=0, breaker=breaker)
        item = WorkItem(fn=flaky, label="doom")
        first = engine.map([item])[0]   # failure 1
        second = engine.map([item])[0]  # failure 2 -> circuit opens
        assert not first.ok and not second.ok
        skipped = engine.map([item])[0]
        assert not skipped.ok
        assert skipped.attempts == 0
        assert "CircuitOpen" in skipped.error
        assert calls["n"] == 2  # the skip really skipped
        # half-open probe: the payload has healed, circuit closes
        probe = engine.map([item])[0]
        assert probe.ok and probe.value == 1.0
        assert breaker.state("doom") == "closed"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestSchedulerFaults:
    def test_straggler_window_stretches_payload(self):
        plan = FaultPlan(stragglers=(
            StragglerFault(node=0, factor=2.0, at=5.0, duration=1000.0),))
        s = Scheduler(juwels_booster().with_nodes(96),
                      faults=FaultInjector(plan))
        s.submit(Job("blocker", nodes=96, walltime=10))
        job = s.submit(Job(
            "stretched", nodes=96, walltime=50,
            run=lambda alloc: SimpleNamespace(seconds=20.0)))
        s.drain()
        # started at t=10 (after the slow window opened), 2x slower
        assert job.slowdown == 2.0
        assert job.state is JobState.COMPLETED
        assert job.end_time == pytest.approx(50.0)

    def test_straggler_can_push_job_over_walltime(self):
        plan = FaultPlan(stragglers=(
            StragglerFault(node=0, factor=2.0, at=5.0, duration=1000.0),))
        s = Scheduler(juwels_booster().with_nodes(96),
                      faults=FaultInjector(plan))
        s.submit(Job("blocker", nodes=96, walltime=10))
        job = s.submit(Job(
            "overrun", nodes=96, walltime=50,
            run=lambda alloc: SimpleNamespace(seconds=30.0)))
        s.drain()
        assert job.state is JobState.FAILED
        assert job.error == "walltime exceeded"

    def test_crash_requeue_completes_and_is_observed(self):
        plan = FaultPlan(nodes=(
            NodeFault(node=0, at=30.0, duration=20.0),))
        injector = FaultInjector(plan)
        tracer = Tracer(clock=ManualClock(start=0.0, tick=0.25))
        from repro.telemetry import use_tracer

        with use_tracer(tracer):
            s = Scheduler(juwels_booster().with_nodes(96), faults=injector)
            job = s.submit(Job("big", nodes=96, walltime=100))
            s.drain()
        assert job.state is JobState.COMPLETED
        assert job.requeues == 1
        events = [e for e in tracer.events() if e.get("type") == "fault"]
        assert [e["action"] for e in events] == ["crash", "restore"]
        assert all(e["category"] == "node" for e in events)
        for event in events:
            validate_event(event)


class TestNetworkDegradation:
    def test_link_factor_halves_inter_cell_bandwidth(self):
        plan = FaultPlan(links=(LinkFault(link="inter_cell", factor=0.5),))
        model = FaultInjector(plan).degradation()
        base = booster_network()
        degraded = base.degraded(model)
        assert degraded.link_bandwidth(LinkClass.INTER_CELL) == \
            pytest.approx(0.5 * base.link_bandwidth(LinkClass.INTER_CELL))
        # untouched link classes keep their bandwidth
        assert degraded.link_bandwidth(LinkClass.INTRA_NODE) == \
            pytest.approx(base.link_bandwidth(LinkClass.INTRA_NODE))
        assert degraded.link_bandwidth(LinkClass.SELF) == float("inf")

    def test_no_link_faults_no_model(self):
        assert FaultInjector(FaultPlan()).degradation() is None

    def test_degradation_slows_collectives(self):
        plan = FaultPlan(links=(LinkFault(link="*", factor=0.25),))
        base = booster_network()
        degraded = base.degraded(FaultInjector(plan).degradation())
        nodes = tuple(range(4))
        t0 = base.allreduce_time(nodes, 16, 1 << 20)
        t1 = degraded.allreduce_time(nodes, 16, 1 << 20)
        assert t1 > t0


class TestGracefulDegradation:
    def test_run_all_drops_failed_benchmark_but_journals_it(self):
        from repro.core import load_suite

        plan = FaultPlan(tasks=(
            TaskFaultRule(match="run:STREAM", attempts=(1, 2, 3, 4)),))
        engine = ExecutionEngine(workers=2, backend="thread", cache=None,
                                 retries=1, faults=FaultInjector(plan))
        suite = load_suite()
        prev = suite.engine
        suite.engine = engine
        try:
            results = suite.run_all(["STREAM", "HPL"])
        finally:
            suite.engine = prev
        assert [r.benchmark for r in results] == ["HPL"]
        failed = [r for r in engine.journal.records
                  if r.label == "run:STREAM"]
        assert len(failed) == 1
        assert failed[0].status == "error"
        assert "InjectedFault" in failed[0].error

    def test_strong_scaling_collects_failed_points(self):
        result = strong_scaling(
            "x", lambda n: float("nan") if n != 8 else 1.0,
            reference_nodes=8)
        assert result.failed  # every non-reference point failed
        assert [p.nodes for p in result.points] == [8]
        assert 8 not in result.failed

    def test_strong_scaling_failed_reference_raises(self):
        with pytest.raises(ValueError, match="reference point"):
            strong_scaling("x", lambda n: float("nan"), reference_nodes=8)

    def test_weak_scaling_baseline_skips_failed_smallest(self):
        runtimes = {4: float("nan"), 8: 2.0, 16: 3.0}
        result = weak_scaling("x", lambda n: runtimes[n], [4, 8, 16])
        assert result.failed == [4]
        assert [p.nodes for p in result.points] == [8, 16]

    def test_degrade_flag_defaults(self):
        assert ExecutionEngine(workers=1).degrade is False
        plan = FaultPlan()
        assert ExecutionEngine(workers=1,
                               faults=FaultInjector(plan)).degrade is True
        assert ExecutionEngine(workers=1, faults=FaultInjector(plan),
                               degrade=False).degrade is False


class TestFaultTelemetry:
    def test_fault_events_validate_against_schema(self):
        engine, _ = _chaos_run(workers=4)
        events = [e for e in engine.tracer.events()
                  if e.get("type") == "fault"]
        assert events, "injected faults must surface as telemetry"
        for event in events:
            out = validate_event(event)
            assert out["category"] == "task"
            assert out["action"] == "inject"
        # one event per injected failure: run:b attempt 1 + run:d 1..3
        assert len(events) == 4

    def test_breaker_skip_emits_fault_event(self):
        plan = FaultPlan(tasks=(
            TaskFaultRule(match="doom", attempts=(1, 2)),))
        engine = ExecutionEngine(
            workers=1, backend="thread", cache=None, retries=0,
            faults=FaultInjector(plan),
            breaker=CircuitBreaker(threshold=2, cooldown=1))
        item = WorkItem(fn=_payload, args=(1.0,), label="doom")
        for _ in range(3):  # fail, fail -> open, skip
            engine.map([item])
        skips = [e for e in engine.tracer.events()
                 if e.get("type") == "fault"
                 and e.get("category") == "breaker"]
        assert len(skips) == 1
        assert skips[0]["action"] == "skip"
        validate_event(skips[0])
