"""Tests for NAStJA (Potts), QE (distributed FFT / CP), ParFlow
(multigrid, Richards) and SOMA (SCMF)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.nastja import NastjaBenchmark, PottsModel, checkerboard_tissue
from repro.apps.parflow import (
    ParflowBenchmark,
    RichardsColumn,
    VanGenuchten,
    apply_poisson,
    mg_solve,
    mgcg_solve,
    prolong,
    restrict,
)
from repro.apps.qe import (
    QuantumEspressoBenchmark,
    apply_hamiltonian_serial,
    dist_fft3,
    dist_ifft3,
    slab_range,
)
from repro.apps.soma import ScmfSystem, SomaBenchmark
from repro.cluster import juwels_booster
from repro.vmpi import Machine, run_spmd


class TestPottsModel:
    def test_volume_tracking_consistent(self):
        model = checkerboard_tissue(n=16, cells_per_side=4, seed=1)
        for _ in range(2):
            model.monte_carlo_step()
        recount = np.bincount(model.lattice.ravel(),
                              minlength=model.cell_type.shape[0])
        assert np.array_equal(recount, model.volumes)

    def test_cell_sorting_reduces_heterotypic_contacts(self):
        model = checkerboard_tissue(n=24, cells_per_side=4, seed=2)
        h0 = model.heterotypic_fraction()
        for _ in range(6):
            model.monte_carlo_step()
        assert model.heterotypic_fraction() < h0

    def test_volume_constraint_keeps_cells_near_target(self):
        model = checkerboard_tissue(n=16, cells_per_side=4, seed=3)
        for _ in range(5):
            model.monte_carlo_step()
        cells = np.arange(1, model.cell_type.shape[0])
        rel = np.abs(model.volumes[cells] - model.target_volume) / \
            model.target_volume
        assert float(np.max(rel)) < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            checkerboard_tissue(n=10, cells_per_side=4)
        with pytest.raises(ValueError):
            PottsModel(lattice=np.zeros((2, 2), dtype=int),
                       cell_type=np.zeros(1, dtype=int),
                       adhesion=np.zeros((2, 3)), target_volume=1.0)

    def test_benchmark_real_verified(self):
        res = NastjaBenchmark().run(nodes=2, real=True, scale=0.4)
        assert res.verified is True

    def test_benchmark_runs_on_cluster(self):
        bench = NastjaBenchmark()
        assert bench.system().node.device.kind == "cpu"
        res = bench.run(nodes=8)
        assert res.details["mc_steps"] == 5050
        assert res.details["domain"] == (720, 720, 1152)


class TestDistributedFft:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_matches_numpy_fftn(self, ranks):
        nz, ny, nx = 8, 8, 4
        rng = np.random.default_rng(0)
        full = rng.normal(size=(nz, ny, nx)) + \
            1j * rng.normal(size=(nz, ny, nx))
        ref = np.fft.fftn(full)

        def prog(comm):
            zlo, zhi = slab_range(nz, comm.rank, comm.size)
            out = yield from dist_fft3(comm, full[zlo:zhi].copy(), nz)
            ylo, yhi = slab_range(ny, comm.rank, comm.size)
            expected = ref.transpose(1, 0, 2)[ylo:yhi]
            return float(np.max(np.abs(out - expected)))

        res = run_spmd(prog, machine=Machine.on(juwels_booster(), ranks))
        assert max(res.values) < 1e-12

    def test_roundtrip_identity(self):
        nz, ny, nx = 8, 4, 4
        rng = np.random.default_rng(1)
        full = rng.normal(size=(nz, ny, nx)) + 0j

        def prog(comm):
            zlo, zhi = slab_range(nz, comm.rank, comm.size)
            fwd = yield from dist_fft3(comm, full[zlo:zhi].copy(), nz)
            back = yield from dist_ifft3(comm, fwd, nz, ny)
            return float(np.max(np.abs(back - full[zlo:zhi])))

        res = run_spmd(prog, machine=Machine.on(juwels_booster(), 4))
        assert max(res.values) < 1e-12

    def test_hamiltonian_kinetic_eigenfunction(self):
        """H applied to a plane wave with V=0 gives |k|^2/2 times it."""
        n = 8
        kz, ky, kx = 1, 2, 1
        z, y, x = np.meshgrid(*(np.arange(n),) * 3, indexing="ij")
        psi = np.exp(2j * np.pi * (kz * z + ky * y + kx * x) / n)
        out = apply_hamiltonian_serial(psi, np.zeros((n, n, n)))
        expected = 0.5 * (kz ** 2 + ky ** 2 + kx ** 2) * psi
        assert np.allclose(out, expected, atol=1e-10)

    def test_qe_benchmark_real(self):
        res = QuantumEspressoBenchmark().run(nodes=1, real=True, scale=0.5)
        assert res.verified is True
        assert res.details["hamiltonian_error"] < 1e-10

    def test_qe_fft_comm_heavy(self):
        res = QuantumEspressoBenchmark().run(nodes=8)
        assert res.details["fft_comm_seconds"] > 0

    def test_qe_subspace_gemm_charges_complex128_bytes(self):
        """Regression: the subspace GEMM operand block is bands x
        points_local *complex128 elements*, so its bytes_moved must
        carry the 16 B/element factor like every other charge in the
        program (the dimensional-analysis pass caught the bare
        element count)."""
        from repro.apps.qe.benchmark import qe_timing_program
        from repro.vmpi.comm import Comm
        from repro.vmpi.ops import Compute

        comm = Comm(comm_id=0, rank=0, members=(0, 1, 2, 3))
        mesh, bands = (12, 12, 12), 32
        gen = qe_timing_program(comm, mesh, bands, 1)
        ops = []
        try:
            op = gen.send(None)
            while True:
                # hoisted batches arrive as tuples of ops
                ops.extend(op) if isinstance(op, tuple) else ops.append(op)
                op = gen.send(None if not isinstance(op, tuple)
                              else [None] * len(op))
        except StopIteration:
            pass
        points_local = (12 * 12 * 12) / comm.size
        subspace = [o for o in ops if isinstance(o, Compute) and
                    o.label == "subspace"]
        assert len(subspace) == 1
        assert subspace[0].bytes_moved == bands * points_local * 16.0


class TestMultigrid:
    def test_restriction_prolongation_shapes(self):
        r = np.ones((8, 8, 8))
        c = restrict(r)
        assert c.shape == (4, 4, 4)
        assert prolong(c).shape == (8, 8, 8)
        assert np.allclose(c, 1.0)

    def test_v_cycle_converges(self):
        rng = np.random.default_rng(0)
        n = 16
        f = rng.normal(size=(n, n, n))
        _, cycles, hist = mg_solve(f, 1.0 / n, tol=1e-7)
        assert hist[-1] < 1e-7
        assert cycles < 40

    def test_mgcg_few_iterations(self):
        rng = np.random.default_rng(0)
        for n in (16, 32):
            f = rng.normal(size=(n, n, n))
            u, iters, _ = mgcg_solve(f, 1.0 / n, tol=1e-8)
            res = np.linalg.norm(f - apply_poisson(u, 1.0 / n)) / \
                np.linalg.norm(f)
            assert res < 1e-7
            assert iters <= 25

    def test_restriction_needs_even(self):
        with pytest.raises(ValueError):
            restrict(np.ones((5, 5, 5)))


class TestRichards:
    def test_van_genuchten_limits(self):
        vg = VanGenuchten()
        assert vg.theta(np.array([0.0]))[0] == pytest.approx(vg.theta_s)
        # clay (n = 1.09) drains towards theta_r extremely slowly --
        # strictly decreasing and bounded below is the correct property
        very_dry = vg.theta(np.array([-1e5]))[0]
        assert vg.theta_r < very_dry < vg.theta(np.array([-10.0]))[0]
        assert vg.conductivity(np.array([0.0]))[0] == pytest.approx(vg.k_s)

    def test_saturation_monotone_in_psi(self):
        vg = VanGenuchten()
        psi = np.linspace(-50, 0, 100)
        sat = vg.saturation(psi)
        assert np.all(np.diff(sat) >= 0)

    def test_infiltration_mass_balance(self):
        col = RichardsColumn.clay_column(nz=30)
        diag = col.infiltrate(t_end=1.0, dt=0.1)
        assert diag["balance_error"] < 1e-8
        assert diag["inflow"] > 0

    def test_wetting_front_monotone(self):
        col = RichardsColumn.clay_column(nz=30)
        col.infiltrate(t_end=1.5, dt=0.1)
        sat = col.soil.saturation(col.psi)
        assert sat[0] > sat[-1]
        assert np.all(np.diff(sat[:15]) <= 1e-9)

    def test_parflow_benchmark_real(self):
        res = ParflowBenchmark().run(nodes=1, real=True, scale=0.5)
        assert res.verified is True

    def test_parflow_domain(self):
        res = ParflowBenchmark().run(nodes=4)
        assert res.details["domain"] == (1008, 1008, 240)


class TestScmf:
    def test_ideal_chain_statistics(self):
        sys_ = ScmfSystem.ideal_melt(400, 16, box=40.0, seed=5)
        r2 = sys_.end_to_end_sq()
        assert r2 == pytest.approx(15.0, rel=0.25)

    def test_density_counts_all_beads(self):
        sys_ = ScmfSystem.ideal_melt(50, 8, box=8.0, grid_n=4, seed=6)
        assert sys_.density().sum() == pytest.approx(50 * 8)

    def test_field_drives_homogenisation(self):
        melt = ScmfSystem.ideal_melt(80, 8, box=8.0, grid_n=4, seed=7,
                                     kappa=0.6, clustered=True)
        var0 = melt.density_variance()
        for _ in range(8):
            melt.mc_sweep()
        assert melt.density_variance() < var0

    def test_acceptance_reasonable(self):
        melt = ScmfSystem.ideal_melt(40, 8, box=8.0, seed=8)
        acc = melt.mc_sweep()
        assert 0.3 < acc <= 1.0

    def test_soma_benchmark_real(self):
        res = SomaBenchmark().run(nodes=1, real=True, scale=0.5)
        assert res.verified is True
