"""Property-based tests for ``repro.jube.parameters``.

Hand-rolled generator loops over a seeded ``random.Random`` (no
hypothesis dependency): random parameter-set DAGs must round-trip
through :func:`resolve` / :func:`expand`, substitution must be
independent of declaration order, cycles must always raise
:class:`ParameterError`, and the expansion cardinality must equal the
product of the multi-value lengths.

Conventions: every loop draws from ``random.Random(SEED + i)`` so a
failure reproduces from the printed iteration index alone.
"""

import itertools
import random

import pytest

from repro.jube.parameters import (
    ParameterError,
    ParameterSet,
    expand,
    resolve,
)

SEED = 0x5CA1E
ITERATIONS = 60


def random_dag_values(rng: random.Random, n: int) -> dict[str, int]:
    """Ground-truth integer values for a random dependency DAG.

    Parameter ``p{i}`` may reference any ``p{j}`` with ``j < i`` --
    acyclic by construction.
    """
    return {f"p{i}": rng.randrange(1, 100) for i in range(n)}


def build_sets(rng: random.Random, truth: dict[str, int],
               shuffle: bool) -> list[ParameterSet]:
    """Parameter sets realising ``truth`` via $-references.

    Each parameter is either a literal, a text reference chain, or a
    python-mode sum over already-defined parameters; the declaration is
    split across 1-3 sets and optionally shuffled.
    """
    names = list(truth)
    params = []
    for i, name in enumerate(names):
        deps = [names[j] for j in range(i) if rng.random() < 0.3]
        style = rng.choice(["literal", "text", "python"]) if deps \
            else "literal"
        if style == "literal":
            params.append((name, truth[name], "text"))
        elif style == "text":
            # "$dep" resolves to the dep's value as a string; keep the
            # ground truth intact by additive python re-derivation
            dep = rng.choice(deps)
            expr = f"{truth[name] - truth[dep]} + ${dep}"
            params.append((name, expr, "python"))
        else:
            used = deps[: rng.randrange(1, len(deps) + 1)]
            offset = truth[name] - sum(truth[d] for d in used)
            expr = " + ".join([str(offset)] + [f"${d}" for d in used])
            params.append((name, expr, "python"))
    if shuffle:
        rng.shuffle(params)
    n_sets = rng.randrange(1, 4)
    sets = [ParameterSet(name=f"set{k}") for k in range(n_sets)]
    for j, (name, value, mode) in enumerate(params):
        sets[j % n_sets].add(name, value, mode=mode)
    return sets


class TestResolveProperties:
    def test_random_dags_resolve_to_ground_truth(self):
        for i in range(ITERATIONS):
            rng = random.Random(SEED + i)
            truth = random_dag_values(rng, rng.randrange(1, 12))
            sets = build_sets(rng, truth, shuffle=False)
            assert resolve(sets) == truth, f"iteration {i}"

    def test_substitution_is_declaration_order_independent(self):
        for i in range(ITERATIONS):
            rng = random.Random(SEED + i)
            truth = random_dag_values(rng, rng.randrange(2, 12))
            baseline = resolve(build_sets(rng, truth, shuffle=False))
            shuffled = resolve(build_sets(random.Random(SEED + i + 1),
                                          truth, shuffle=True))
            assert baseline == shuffled == truth, f"iteration {i}"

    def test_cycles_always_raise(self):
        for i in range(ITERATIONS):
            rng = random.Random(SEED + i)
            k = rng.randrange(2, 8)
            pset = ParameterSet(name="cyclic")
            for j in range(k):
                pset.add(f"c{j}", f"1 + $c{(j + 1) % k}", mode="python")
            # bury the cycle among innocent parameters
            for j in range(rng.randrange(0, 5)):
                pset.add(f"ok{j}", j)
            with pytest.raises(ParameterError, match="cycle"):
                resolve([pset])

    def test_unresolved_reference_raises(self):
        for i in range(ITERATIONS // 4):
            rng = random.Random(SEED + i)
            pset = ParameterSet(name="dangling")
            pset.add("a", f"$missing_{rng.randrange(100)}")
            with pytest.raises(ParameterError, match="unresolved"):
                resolve([pset])


class TestExpandProperties:
    def test_cardinality_is_product_of_multi_lengths(self):
        for i in range(ITERATIONS):
            rng = random.Random(SEED + i)
            pset = ParameterSet(name="sweep")
            lengths = []
            for j in range(rng.randrange(0, 4)):
                values = [rng.randrange(100) for _ in
                          range(rng.randrange(1, 5))]
                pset.add(f"m{j}", values)
                lengths.append(len(values))
            for j in range(rng.randrange(0, 4)):
                pset.add(f"s{j}", rng.randrange(100))
            combos = expand([pset])
            expected = 1
            for length in lengths:
                expected *= length
            assert len(combos) == expected, f"iteration {i}"

    def test_expand_round_trips_through_resolve(self):
        """Pinning each combo's multi values must re-resolve to it."""
        for i in range(ITERATIONS):
            rng = random.Random(SEED + i)
            pset = ParameterSet(name="sweep")
            pset.add("nodes", sorted({rng.randrange(1, 64)
                                      for _ in range(rng.randrange(1, 4))}))
            pset.add("tasks", "$nodes * 4", mode="python")
            pset.add("label", "run-$nodes")
            combos = expand([pset])
            for combo in combos:
                pinned = ParameterSet(name="pin").add("nodes",
                                                      combo["nodes"])
                assert resolve([pset, pinned]) == combo, f"iteration {i}"
                assert combo["tasks"] == combo["nodes"] * 4
                assert combo["label"] == f"run-{combo['nodes']}"

    def test_expansion_covers_the_cartesian_product(self):
        for i in range(ITERATIONS // 3):
            rng = random.Random(SEED + i)
            a = sorted({rng.randrange(50) for _ in range(3)})
            b = sorted({rng.randrange(50, 100) for _ in range(2)})
            pset = ParameterSet(name="grid").add("a", a).add("b", b)
            combos = expand([pset])
            got = {(c["a"], c["b"]) for c in combos}
            assert got == set(itertools.product(a, b)), f"iteration {i}"

    def test_tagged_parameters_filter_consistently(self):
        for i in range(ITERATIONS // 3):
            rng = random.Random(SEED + i)
            pset = ParameterSet(name="tagged")
            pset.add("base", 1)
            pset.add("opt", [1, 2, 3], tags=("large",))
            with_tag = expand([pset], tags=("large",))
            without = expand([pset])
            assert len(with_tag) == 3 and len(without) == 1, f"iter {i}"
