"""Unit tests for the dimension algebra behind the UNIT3xx rules."""

import ast

import pytest

from repro.check.dims import (
    BANDWIDTH,
    BYTES,
    FLOP,
    FLOPS,
    ONE,
    PER_SECOND,
    TIME,
    Dim,
    DimRegistry,
    build_registry,
    dim_of_name,
    dim_of_return,
    module_annotations,
    module_signatures,
    parse_dim,
    units_constant,
)


class TestDimAlgebra:
    def test_multiply_divide_compose_exponents(self):
        assert BYTES / TIME == BANDWIDTH
        assert BANDWIDTH * TIME == BYTES
        assert FLOP / TIME == FLOPS
        assert ONE / TIME == PER_SECOND
        assert BYTES / BYTES == ONE

    def test_pow(self):
        assert TIME.pow(2) == Dim((2, 0, 0))
        assert BANDWIDTH.pow(0) == ONE

    def test_predicates(self):
        assert ONE.is_dimensionless
        assert not BYTES.is_dimensionless
        for rate in (BANDWIDTH, FLOPS, PER_SECOND):
            assert rate.is_rate
        assert not TIME.is_rate and not BYTES.is_rate

    def test_str_forms(self):
        assert str(ONE) == "1"
        assert str(TIME) == "s"
        assert str(BANDWIDTH) == "B/s"
        assert str(PER_SECOND) == "1/s"
        assert str(BYTES * BYTES) == "B^2"


class TestParseDim:
    @pytest.mark.parametrize("text,expected", [
        ("1", ONE), ("s", TIME), ("B", BYTES), ("FLOP", FLOP),
        ("B/s", BANDWIDTH), ("FLOP/s", FLOPS), ("1/s", PER_SECOND),
        ("FLOP*s", FLOP * TIME), ("B/s/s", BYTES / TIME / TIME),
        (" B/s ", BANDWIDTH),
    ])
    def test_vocabulary(self, text, expected):
        assert parse_dim(text) == expected

    @pytest.mark.parametrize("text", ["W", "GB", "bytes", "s/"])
    def test_typos_fail_loudly(self, text):
        with pytest.raises(ValueError, match="dimension token"):
            parse_dim(text)


class TestNameHeuristics:
    def test_exact_names(self):
        assert dim_of_name("nbytes") == BYTES
        assert dim_of_name("bandwidth") == BANDWIDTH
        assert dim_of_name("flops") == FLOP
        assert dim_of_name("nranks") == ONE

    def test_suffixes(self):
        assert dim_of_name("fft_comm_seconds") == TIME
        assert dim_of_name("message_bytes") == BYTES
        assert dim_of_name("link_bw") == BANDWIDTH
        assert dim_of_name("peak_flops") == FLOPS

    def test_case_insensitive_for_module_constants(self):
        assert dim_of_name("MESSAGE_BYTES") == BYTES
        assert dim_of_name("TIMEOUT") == TIME

    def test_bare_suffix_is_not_a_match(self):
        # "_bytes" alone has no stem: not a dimensional name
        assert dim_of_name("_bytes") is None
        assert dim_of_name("payload") is None

    def test_return_heuristics(self):
        assert dim_of_return("transfer_time") == TIME
        assert dim_of_return("hpl_bytes") == BYTES
        assert dim_of_return("aggregate_bandwidth") == BANDWIDTH
        assert dim_of_return("run") is None


class TestUnitsConstants:
    def test_prefix_families(self):
        assert units_constant("repro.units.GIGA") == (ONE,
                                                      frozenset({"si"}))
        assert units_constant("units.MIB") == (ONE, frozenset({"bin"}))

    def test_byte_constants_are_real_bytes(self):
        dim, families = units_constant("repro.units.BYTES_PER_COMPLEX128")
        assert dim == BYTES and families == frozenset()

    def test_non_units_names_ignored(self):
        assert units_constant("numpy.GIGA") is None
        assert units_constant("GIGA") is None
        assert units_constant(None) is None


class TestDimRegistry:
    def test_exact_beats_tail(self):
        reg = DimRegistry()
        reg.add_annotations("m", {"p2p_time.nbytes": "B",
                                  "other.nbytes": "B"})
        assert reg.lookup("p2p_time.nbytes") == BYTES

    def test_unambiguous_tail_resolves(self):
        reg = DimRegistry()
        reg.add_annotations("m", {"DeviceSpec.peak_flops": "FLOP/s"})
        assert reg.lookup("peak_flops") == FLOPS

    def test_ambiguous_tail_disabled(self):
        reg = DimRegistry()
        reg.add_annotations("m", {"a.rate": "B/s", "b.rate": "FLOP/s"})
        assert reg.lookup("rate") is None
        assert reg.lookup("a.rate") == BANDWIDTH

    def test_conflicting_signatures_disabled(self):
        reg = DimRegistry()
        reg.add_signature("f", ("x", "y"))
        reg.add_signature("f", ("x",))
        assert reg.params_of("f") is None
        reg.add_signature("g", ("a",))
        assert reg.params_of("g") == ("a",)

    def test_content_is_canonical(self):
        reg1, reg2 = DimRegistry(), DimRegistry()
        reg1.add_annotations("m", {"a.x": "s", "a.y": "B"})
        reg2.add_annotations("m", {"a.y": "B", "a.x": "s"})
        assert reg1.content() == reg2.content()


class TestAstExtraction:
    def test_register_dims_call_form(self):
        tree = ast.parse(
            'DIMS = register_dims(__name__, {"f.x": "s", "f.return": '
            '"B/s"})\n')
        assert module_annotations(tree) == {"f.x": "s",
                                            "f.return": "B/s"}

    def test_plain_dict_form_and_dynamic_entries_skipped(self):
        tree = ast.parse('DIMS = {"f.x": "s", key(): "B", "g.y": dyn}\n')
        assert module_annotations(tree) == {"f.x": "s"}

    def test_no_dims_is_empty(self):
        assert module_annotations(ast.parse("X = 1\n")) == {}

    def test_signatures_drop_self_and_key_methods(self):
        tree = ast.parse(
            "def free(a, b):\n    pass\n\n"
            "class C:\n    def meth(self, nbytes):\n        pass\n")
        sigs = module_signatures(tree)
        assert sigs["free"] == ("a", "b")
        assert sigs["C.meth"] == ("nbytes",)

    def test_build_registry_merges_modules(self):
        t1 = ast.parse('DIMS = {"f.x": "s"}\n\ndef f(x):\n    pass\n')
        t2 = ast.parse('DIMS = {"g.y": "B"}\n')
        reg = build_registry([("m1", t1), ("m2", t2)])
        assert reg.lookup("f.x") == TIME
        assert reg.lookup("g.y") == BYTES
        assert reg.params_of("f") == ("x",)
