"""Tests for the hardware models (Sec. III-A numbers)."""

import pytest

from repro.cluster import (
    A100,
    SystemSpec,
    jupiter_booster_model,
    juwels_booster,
    juwels_cluster,
    preparation_subpartition,
)
from repro.units import GIGA, PETA, TERA


class TestDeviceSpec:
    def test_a100_basics(self):
        assert A100.peak_flops == pytest.approx(19.5 * TERA)
        assert A100.mem_capacity == pytest.approx(40 * GIGA)

    def test_compute_seconds_flop_bound(self):
        t = A100.compute_seconds(flops=19.5e12, efficiency=1.0)
        assert t == pytest.approx(1.0)

    def test_compute_seconds_bandwidth_bound(self):
        t = A100.compute_seconds(flops=1.0, bytes_moved=1555e9, efficiency=1.0)
        assert t == pytest.approx(1.0)

    def test_efficiency_scales_time(self):
        t1 = A100.compute_seconds(flops=1e12, efficiency=1.0)
        t2 = A100.compute_seconds(flops=1e12, efficiency=0.5)
        assert t2 == pytest.approx(2 * t1)

    def test_zero_work_is_free(self):
        assert A100.compute_seconds(0.0, 0.0) == 0.0

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            A100.compute_seconds(1.0, efficiency=0.0)


class TestJuwelsBooster:
    def test_paper_node_count(self):
        assert juwels_booster().nodes == 936

    def test_cells_of_48_nodes(self):
        sysm = juwels_booster()
        assert sysm.nodes_per_cell == 48
        assert sysm.cells == 20  # ceil(936/48) = 19.5 -> 20

    def test_theoretical_peak_about_73_pflops(self):
        """Sec. III-A: JUWELS Booster provides ~73 PFLOP/s(th)."""
        peak = juwels_booster().peak_flops
        assert 70 * PETA < peak < 76 * PETA

    def test_node_peak_is_4_gpus(self):
        node = juwels_booster().node
        assert node.peak_flops == pytest.approx(4 * A100.peak_flops)
        assert node.device_mem_total == pytest.approx(160 * GIGA)


class TestPartitions:
    def test_50pf_subpartition_about_640_nodes(self):
        """Sec. II-C: 50 PFLOP/s(th) fills about 640 nodes."""
        part = preparation_subpartition()
        assert 600 <= part.nodes <= 680

    def test_nodes_for_peak_rounds_up(self):
        sysm = juwels_booster()
        one_node = sysm.node.peak_flops
        assert sysm.nodes_for_peak(one_node) == 1
        assert sysm.nodes_for_peak(one_node + 1) == 2

    def test_with_nodes_validates(self):
        with pytest.raises(ValueError):
            juwels_booster().with_nodes(0)

    def test_with_nodes_renames(self):
        part = juwels_booster().with_nodes(8)
        assert part.nodes == 8
        assert "8" in part.name


class TestJupiterModel:
    def test_exceeds_one_exaflop(self):
        """The proposal must offer a 1 EFLOP/s(th) sub-partition."""
        model = jupiter_booster_model()
        assert model.peak_flops >= 1.0e18

    def test_growing_compute_memory_imbalance(self):
        """Compute grows faster than memory (the trend motivating the
        T/S/M/L memory variants)."""
        model = jupiter_booster_model()
        a100_ratio = A100.peak_flops / A100.mem_capacity
        new_ratio = model.node.device.peak_flops / model.node.device.mem_capacity
        assert new_ratio > a100_ratio


class TestJuwelsCluster:
    def test_cpu_module(self):
        sysm = juwels_cluster()
        assert sysm.node.device.kind == "cpu"

    def test_system_spec_is_frozen(self):
        sysm = juwels_cluster()
        with pytest.raises(Exception):
            sysm.nodes = 5  # type: ignore[misc]
