"""Tests for scaling studies, the verification framework, and the
Fig.-1 creation pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CHECKLIST,
    ExactVerifier,
    FrameworkVerifier,
    ModelVerifier,
    ScalingPoint,
    ToleranceVerifier,
    VerificationMethod,
    analyse_workloads,
    creation_pipeline,
    prepare_benchmark,
    scaled_node_counts,
    select_applications,
    strong_scaling,
    weak_scaling,
)


class TestScaledNodeCounts:
    def test_default_factors(self):
        assert scaled_node_counts(8) == [4, 6, 8, 12, 16]

    def test_power_of_two_rounds_down(self):
        """The footnote rule: closest smaller compatible count."""
        counts = scaled_node_counts(8, power_of_two=True)
        assert all((n & (n - 1)) == 0 for n in counts)
        assert 16 in counts and 4 in counts

    def test_minimum_respected(self):
        assert min(scaled_node_counts(1)) == 1

    def test_duplicates_removed(self):
        counts = scaled_node_counts(2)
        assert len(counts) == len(set(counts))


class TestStrongScaling:
    @staticmethod
    def amdahl(serial=0.05, t1=800.0):
        return lambda nodes: t1 * (serial + (1 - serial) / nodes)

    def test_reference_at_unity(self):
        res = strong_scaling("toy", self.amdahl(), reference_nodes=8)
        rel = dict()
        for x, y in res.relative():
            rel[x] = y
        assert rel[1.0] == pytest.approx(1.0)

    def test_arbor_like_curve_shape(self):
        """Arbor's published points: 498 s @ 8 -> 663 @ 4, 332 @ 12,
        250 @ 16 (nearly perfect strong scaling).  An Amdahl curve with a
        tiny serial share shows the same shape."""
        res = strong_scaling("Arbor", self.amdahl(serial=0.01, t1=3900),
                             reference_nodes=8)
        ref = res.reference.runtime
        by_nodes = {p.nodes: p.runtime for p in res.points}
        assert by_nodes[4] > ref > by_nodes[12] > by_nodes[16]
        assert res.monotone_decreasing()

    def test_efficiency_below_one(self):
        res = strong_scaling("toy", self.amdahl(serial=0.2),
                             reference_nodes=8)
        p16 = next(p for p in res.points if p.nodes == 16)
        assert 0 < res.efficiency(p16) < 1.0

    def test_invalid_point(self):
        with pytest.raises(ValueError):
            ScalingPoint(nodes=0, runtime=1.0)
        with pytest.raises(ValueError):
            ScalingPoint(nodes=1, runtime=0.0)


class TestWeakScaling:
    def test_perfect_weak_scaling(self):
        res = weak_scaling("toy", lambda n: 100.0, [1, 4, 16, 64])
        assert all(eff == pytest.approx(1.0) for _, eff in res.efficiency())

    def test_degrading_efficiency(self):
        res = weak_scaling("toy", lambda n: 100.0 * (1 + 0.05 * np.log2(n)),
                           [1, 16, 256])
        effs = [eff for _, eff in res.efficiency()]
        assert effs[0] == pytest.approx(1.0)
        assert effs[-1] < effs[1] < effs[0]

    def test_efficiency_at(self):
        res = weak_scaling("toy", lambda n: 100.0 + n, [1, 2])
        assert res.efficiency_at(2) == pytest.approx(101.0 / 102.0)
        with pytest.raises(KeyError):
            res.efficiency_at(99)

    @given(st.lists(st.integers(min_value=1, max_value=1024),
                    min_size=2, max_size=8, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_first_point_always_unity(self, nodes):
        res = weak_scaling("toy", lambda n: 50.0 + 0.01 * n, nodes)
        assert res.efficiency()[0][1] == pytest.approx(1.0)


class TestVerifiers:
    def test_exact_pass_and_fail(self):
        v = ExactVerifier(expected=np.array([1.0, 2.0]))
        assert v(np.array([1.0, 2.0])).ok
        assert not v(np.array([1.0, 2.1])).ok
        assert v(np.array([1.0, 2.0])).method is VerificationMethod.EXACT

    def test_exact_shape_mismatch(self):
        v = ExactVerifier(expected=np.zeros(3))
        assert not v(np.zeros(4)).ok

    def test_tolerance_chroma_style(self):
        """Base tolerance 1e-10, High-Scaling 1e-8 (Sec. IV-A2b)."""
        ref = np.array([0.58765432101234])
        base = ToleranceVerifier(reference=ref, rtol=1e-10)
        hs = ToleranceVerifier(reference=ref, rtol=1e-8)
        wiggle = ref * (1 + 5e-9)
        assert not base(wiggle).ok
        assert hs(wiggle).ok

    def test_tolerance_must_be_positive(self):
        with pytest.raises(ValueError):
            ToleranceVerifier(reference=[1.0], rtol=0.0)

    def test_model_verifier_band(self):
        v = ModelVerifier(checks={
            "nusselt": (lambda r: r["nu"], 10.0, 20.0),
        })
        assert v({"nu": 15.0}).ok
        res = v({"nu": 30.0})
        assert not res.ok
        assert "nusselt" in res.detail

    def test_framework_required_keys(self):
        v = FrameworkVerifier(required_keys=("charge", "energy"))
        assert v({"charge": 0.0, "energy": 1.0}).ok
        assert not v({"charge": 0.0}).ok

    def test_framework_loss_decrease(self):
        v = FrameworkVerifier(decreasing_series="loss")
        good = {"loss": np.linspace(2.0, 0.5, 50)}
        bad = {"loss": np.linspace(0.5, 2.0, 50)}
        assert v(good).ok
        assert not v(bad).ok

    def test_method_strength_ordering(self):
        """Sec. V-A calls framework-inherent 'arguably the weakest'."""
        assert VerificationMethod.EXACT.strength < \
            VerificationMethod.TOLERANCE.strength < \
            VerificationMethod.MODEL_BASED.strength < \
            VerificationMethod.FRAMEWORK.strength


class TestCreationPipeline:
    ALLOC = {"Climate": 30.0, "QCD": 25.0, "MD": 20.0, "AI": 15.0,
             "Niche": 0.5}
    CANDIDATES = {"ICON": "Climate", "Chroma": "QCD", "GROMACS": "MD",
                  "Megatron": "AI", "Obscure": "Niche"}

    def test_analysis_normalises(self):
        shares = analyse_workloads(self.ALLOC)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_analysis_rejects_empty(self):
        with pytest.raises(ValueError):
            analyse_workloads({})

    def test_selection_drops_niche_domains(self):
        shares = analyse_workloads(self.ALLOC)
        selected = select_applications(shares, self.CANDIDATES)
        assert "ICON" in selected
        assert "Obscure" not in selected

    def test_checklist_has_11_points(self):
        """Sec. III-E: 'a pre-defined checklist with 11 points'."""
        assert len(CHECKLIST) == 11

    def test_prepare_partial_checklist(self):
        rec = prepare_benchmark("ICON", completed=["JUBE integration"])
        assert rec["JUBE integration"] is True
        assert rec["description created"] is False

    def test_prepare_unknown_item(self):
        with pytest.raises(ValueError):
            prepare_benchmark("ICON", completed=["vibe check"])

    def test_full_pipeline_packages_ready_apps(self):
        state = creation_pipeline(self.ALLOC, self.CANDIDATES)
        assert state.packaged == sorted(
            ["ICON", "Chroma", "GROMACS", "Megatron"])
        assert state.optimisation_rounds == 2
        assert state.log
