"""Unit tests of the parallel execution engine (repro.exec.engine):
backend equivalence, deterministic ordering, fault boundary, caching
hooks and the run journal."""

import time

import pytest

from repro.exec import (
    EngineError,
    ExecutionEngine,
    MemoryCache,
    RunJournal,
    TaskTimeout,
    WorkItem,
)


def square(x):
    return x * x


def boom():
    raise ValueError("kaput")


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionEngine(workers=0)
        with pytest.raises(ValueError):
            ExecutionEngine(backend="gpu")
        with pytest.raises(ValueError):
            ExecutionEngine(retries=-1)
        with pytest.raises(ValueError):
            ExecutionEngine(timeout=0)

    def test_single_worker_degrades_to_serial(self):
        assert ExecutionEngine(workers=1, backend="thread").backend == \
            "serial"
        assert ExecutionEngine(workers=2, backend="thread").backend == \
            "thread"


class TestOrdering:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 4), ("process", 2),
    ])
    def test_submission_order_preserved(self, backend, workers):
        items = [WorkItem(fn=square, args=(i,)) for i in range(12)]
        engine = ExecutionEngine(workers=workers, backend=backend)
        assert engine.run(items) == [i * i for i in range(12)]

    def test_order_independent_of_completion_time(self):
        # earlier tasks finish *last*: ordering must not follow completion
        def staggered(i):
            time.sleep(0.002 * (8 - i))
            return i

        items = [WorkItem(fn=staggered, args=(i,), label=f"t{i}")
                 for i in range(8)]
        out = ExecutionEngine(workers=8).map(items)
        assert [o.value for o in out] == list(range(8))
        assert [o.index for o in out] == list(range(8))

    def test_parallel_matches_serial(self):
        items = [WorkItem(fn=square, args=(i,)) for i in range(20)]
        serial = ExecutionEngine(workers=1).run(items)
        parallel = ExecutionEngine(workers=8).run(items)
        assert serial == parallel


class TestFaultBoundary:
    def test_map_captures_errors_and_siblings_complete(self):
        items = [WorkItem(fn=square, args=(1,)),
                 WorkItem(fn=boom, label="bad"),
                 WorkItem(fn=square, args=(3,))]
        out = ExecutionEngine(workers=4).map(items)
        assert [o.ok for o in out] == [True, False, True]
        assert out[0].value == 1 and out[2].value == 9
        assert "ValueError: kaput" in out[1].error
        assert isinstance(out[1].exception, ValueError)

    def test_run_reraises_original_exception(self):
        items = [WorkItem(fn=boom)]
        with pytest.raises(ValueError, match="kaput"):
            ExecutionEngine(workers=4).run(items)

    def test_per_item_override_beats_engine_default(self):
        calls = []

        def flaky_once():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("first attempt fails")
            return "ok"

        # engine default: no retries; the item allows one
        engine = ExecutionEngine(workers=1, retries=0)
        out = engine.map([WorkItem(fn=flaky_once, retries=1)])
        assert out[0].ok and out[0].attempts == 2

    def test_timeout_marks_task_failed(self):
        def slow():
            time.sleep(0.05)
            return 1

        out = ExecutionEngine(workers=2, timeout=0.005).map(
            [WorkItem(fn=slow)])
        assert not out[0].ok
        assert "TaskTimeout" in out[0].error
        assert isinstance(out[0].exception, TaskTimeout)


class TestCachingAndJournal:
    def test_cached_item_not_reexecuted(self):
        cache, calls = MemoryCache(), []

        def work(i):
            calls.append(i)
            return i + 10

        engine = ExecutionEngine(workers=4, cache=cache)
        items = [WorkItem(fn=work, args=(i,), key=f"k{i}") for i in range(5)]
        assert engine.run(items) == [10, 11, 12, 13, 14]
        assert engine.run(items) == [10, 11, 12, 13, 14]
        assert len(calls) == 5                      # second pass: all hits
        assert cache.stats.hits == 5
        assert cache.stats.misses == 5

    def test_keyless_items_bypass_cache(self):
        cache, calls = MemoryCache(), []

        def work():
            calls.append(1)
            return 1

        engine = ExecutionEngine(workers=1, cache=cache)
        engine.run([WorkItem(fn=work)])
        engine.run([WorkItem(fn=work)])
        assert len(calls) == 2 and len(cache) == 0

    def test_failed_items_never_cached(self):
        cache = MemoryCache()
        engine = ExecutionEngine(workers=1, cache=cache)
        out = engine.map([WorkItem(fn=boom, key="bad")])
        assert not out[0].ok and len(cache) == 0
        assert out[0].cache == "miss"

    def test_encode_decode_roundtrip(self):
        cache = MemoryCache()
        engine = ExecutionEngine(workers=1, cache=cache)
        item = WorkItem(fn=lambda: {"fom": 3.5}, key="k",
                        encode=lambda v: [v["fom"]],
                        decode=lambda raw: {"fom": raw[0]})
        assert engine.run([item]) == [{"fom": 3.5}]
        assert cache.get("k") == (True, [3.5])      # encoded at rest
        assert engine.run([item]) == [{"fom": 3.5}]  # decoded on hit

    def test_journal_records_everything(self):
        journal = RunJournal()
        engine = ExecutionEngine(workers=4, cache=MemoryCache(),
                                 journal=journal)
        items = [WorkItem(fn=square, args=(i,), key=f"k{i}",
                          label=f"sq{i}") for i in range(3)]
        engine.run(items)
        engine.run(items)
        engine.map([WorkItem(fn=boom, label="bad")])
        stats = journal.stats()
        assert stats.tasks == 7
        assert stats.cache_hits == 3
        assert stats.executed == 4                  # 3 cold + 1 failure
        assert stats.errors == 1
        summary = journal.summary()
        assert "sq0" in summary and "cache=hit" in summary
        assert "error" in summary

    def test_journal_indices_stable_under_parallelism(self):
        journal = RunJournal()
        engine = ExecutionEngine(workers=8, journal=journal)
        engine.map([WorkItem(fn=square, args=(i,)) for i in range(16)])
        assert [r.index for r in journal.records] == list(range(16))
