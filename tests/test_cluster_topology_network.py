"""Tests for the DragonFly+ topology and the communication cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import (
    DragonflyPlus,
    FatTree,
    LinkClass,
    NetworkModel,
    juwels_booster,
)
from repro.units import MIB


@pytest.fixture(scope="module")
def booster():
    return juwels_booster()


@pytest.fixture(scope="module")
def topo(booster):
    return DragonflyPlus(booster)


@pytest.fixture(scope="module")
def net(booster):
    return NetworkModel(system=booster)


class TestTopology:
    def test_cell_boundaries(self, topo):
        assert topo.cell_of(0) == 0
        assert topo.cell_of(47) == 0
        assert topo.cell_of(48) == 1

    def test_classification(self, topo):
        assert topo.classify(3, 3) is LinkClass.INTRA_NODE
        assert topo.classify(0, 47) is LinkClass.INTRA_CELL
        assert topo.classify(0, 48) is LinkClass.INTER_CELL

    def test_hops_ordering(self, topo):
        assert topo.hops(5, 5) == 0
        assert topo.hops(0, 1) < topo.hops(0, 100)

    def test_node_bounds_checked(self, topo):
        with pytest.raises(ValueError):
            topo.cell_of(936)

    def test_bisection_grows_with_job(self, topo):
        assert topo.bisection_bandwidth(96) <= topo.bisection_bandwidth(192)

    def test_bisection_tapered_across_cells(self, topo, booster):
        """A 2-cell job has less bisection than twice a 1-cell job's
        injection-limited bisection (the DragonFly+ taper)."""
        one_cell = topo.bisection_bandwidth(48)
        two_cells = topo.bisection_bandwidth(96)
        assert two_cells < 2 * one_cell

    def test_graph_structure(self, topo):
        g = topo.graph(96)
        switches = [n for n, d in g.nodes(data=True) if d["kind"] == "switch"]
        nodes = [n for n, d in g.nodes(data=True) if d["kind"] == "node"]
        assert len(switches) == 2
        assert len(nodes) == 96

    @given(st.integers(min_value=0, max_value=935),
           st.integers(min_value=0, max_value=935))
    def test_classify_symmetric(self, a, b):
        topo = DragonflyPlus(juwels_booster())
        assert topo.classify(a, b) == topo.classify(b, a)


class TestFatTree:
    def test_no_inter_cell_class(self, booster):
        ft = FatTree(booster)
        assert ft.classify(0, 900) is LinkClass.INTRA_CELL

    def test_full_bisection(self, booster):
        ft = FatTree(booster)
        df = DragonflyPlus(booster)
        assert ft.bisection_bandwidth(480) > df.bisection_bandwidth(480)


class TestP2P:
    def test_latency_ordering(self, net):
        assert net.latency(LinkClass.INTRA_NODE) < net.latency(LinkClass.INTRA_CELL)
        assert net.latency(LinkClass.INTRA_CELL) < net.latency(LinkClass.INTER_CELL)

    def test_bandwidth_ordering(self, net):
        bw_nv = net.link_bandwidth(LinkClass.INTRA_NODE)
        bw_ib = net.link_bandwidth(LinkClass.INTRA_CELL)
        bw_gl = net.link_bandwidth(LinkClass.INTER_CELL)
        assert bw_nv > bw_ib > bw_gl

    def test_juqcs_drop_one_to_two_nodes(self, net):
        """Fig. 3's first JUQCS drop: intra-node NVLink vs inter-node IB."""
        n = 256 * MIB
        t_intra = net.p2p_time(0, 0, n)
        t_inter = net.p2p_time(0, 1, n)
        assert t_inter > 3 * t_intra

    def test_juqcs_drop_large_scale(self, net):
        """Fig. 3's second JUQCS drop: the large-scale regime >= 256 nodes."""
        n = 256 * MIB
        t_small_job = net.p2p_time(0, 100, n, job_nodes=128)
        t_large_job = net.p2p_time(0, 100, n, job_nodes=512)
        assert t_large_job > t_small_job

    def test_zero_bytes_costs_latency_only(self, net):
        assert net.p2p_time(0, 1, 0) == pytest.approx(
            net.latency(LinkClass.INTRA_CELL))

    def test_negative_size_rejected(self, net):
        with pytest.raises(ValueError):
            net.p2p_time(0, 1, -5)

    @given(st.integers(min_value=1, max_value=int(1e9)))
    def test_monotone_in_size(self, nbytes):
        net = NetworkModel(system=juwels_booster())
        assert net.p2p_time(0, 1, nbytes) <= net.p2p_time(0, 1, nbytes + 1024)


class TestCollectives:
    NODES_1CELL = tuple(range(8))
    NODES_XCELL = tuple(range(0, 480, 4))

    def test_allreduce_scales_mildly_with_ranks(self, net):
        t8 = net.allreduce_time(self.NODES_1CELL, 32, 1e6)
        t16 = net.allreduce_time(self.NODES_1CELL, 64, 1e6)
        assert t8 < t16 < 2 * t8

    def test_allreduce_single_rank_free(self, net):
        assert net.allreduce_time((0,), 1, 1e9) == 0.0

    def test_alltoall_bisection_bound_bites_at_scale(self, net):
        """QE's FFT transpose: per-rank pipeline underestimates the cost
        once cross-cell bisection saturates."""
        nranks = len(self.NODES_XCELL) * 4
        per_pair = 1 * MIB
        t = net.alltoall_time(self.NODES_XCELL, nranks, per_pair)
        link = net.link_bandwidth(LinkClass.INTER_CELL, len(self.NODES_XCELL))
        pipeline_only = (nranks - 1) * (net.latency(LinkClass.INTER_CELL)
                                        + per_pair / link)
        assert t >= pipeline_only

    def test_bcast_cheaper_than_allgather(self, net):
        n = 8 * MIB
        assert net.bcast_time(self.NODES_1CELL, 32, n) < \
            net.allgather_time(self.NODES_1CELL, 32, n)

    def test_barrier_latency_only(self, net):
        t = net.barrier_time(self.NODES_1CELL, 32)
        assert 0 < t < 1e-3

    def test_collectives_free_for_one_rank(self, net):
        assert net.barrier_time((0,), 1) == 0.0
        assert net.bcast_time((0,), 1, 1e9) == 0.0
        assert net.allgather_time((0,), 1, 1e9) == 0.0
        assert net.alltoall_time((0,), 1, 1e9) == 0.0
