"""Tests for the virtual-MPI engine: correctness of data movement,
virtual-time semantics, determinism, and failure modes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import juwels_booster
from repro.vmpi import (
    CollectiveMismatchError,
    DeadlockError,
    Engine,
    Machine,
    Phantom,
    RankFailedError,
    nbytes_of,
    run_spmd,
)


def machine(nranks, **kw):
    return Machine.on(juwels_booster(), nranks, **kw)


class TestNbytesOf:
    def test_array(self):
        assert nbytes_of(np.zeros(10)) == 80

    def test_scalar_and_none(self):
        assert nbytes_of(3.14) == 8
        assert nbytes_of(None) == 0

    def test_phantom(self):
        assert nbytes_of(Phantom(1e9)) == 1e9

    def test_containers(self):
        assert nbytes_of([np.zeros(2), 1.0]) == 24
        assert nbytes_of({"a": np.zeros(4)}) == 32

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            nbytes_of(object())

    def test_negative_phantom_rejected(self):
        with pytest.raises(ValueError):
            Phantom(-1)


class TestPointToPoint:
    def test_blocking_send_recv_moves_data(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, np.arange(5.0))
                return None
            got = yield comm.recv(0)
            return got.sum()

        res = run_spmd(prog, machine=machine(2))
        assert res.values[1] == pytest.approx(10.0)

    def test_message_ordering_fifo_per_tag(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, 111)
                yield comm.send(1, 222)
                return None
            a = yield comm.recv(0)
            b = yield comm.recv(0)
            return (a, b)

        res = run_spmd(prog, machine=machine(2))
        assert res.values[1] == (111, 222)

    def test_tags_disambiguate(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "low", tag=1)
                yield comm.send(1, "high", tag=2)
                return None
            high = yield comm.recv(0, tag=2)
            low = yield comm.recv(0, tag=1)
            return (low, high)

        res = run_spmd(prog, machine=machine(2))
        assert res.values[1] == ("low", "high")

    def test_nonblocking_overlap_hides_communication(self):
        """A transfer posted before compute and waited after costs at most
        max(compute, transfer) -- not the sum."""
        payload = Phantom(100e6)
        flops = 1e12

        def overlapped(comm):
            if comm.rank == 0:
                req = yield comm.isend(1, payload)
                yield comm.compute(flops=flops, efficiency=1.0)
                yield comm.wait(req)
            else:
                req = yield comm.irecv(0)
                yield comm.compute(flops=flops, efficiency=1.0)
                yield comm.wait(req)

        def sequential(comm):
            if comm.rank == 0:
                yield comm.send(1, payload)
                yield comm.compute(flops=flops, efficiency=1.0)
            else:
                got = yield comm.recv(0)
                yield comm.compute(flops=flops, efficiency=1.0)

        m = machine(2, ranks_per_node=1)
        t_overlap = run_spmd(overlapped, machine=m).elapsed
        t_seq = run_spmd(sequential, machine=m).elapsed
        assert t_overlap < t_seq

    def test_sendrecv_ring(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = yield comm.sendrecv(right, comm.rank, left)
            return got

        res = run_spmd(prog, machine=machine(5))
        assert res.values == [4, 0, 1, 2, 3]

    def test_self_message(self):
        def prog(comm):
            yield comm.send(comm.rank, "loop")
            return (yield comm.recv(comm.rank))

        res = run_spmd(prog, machine=machine(1))
        assert res.values == ["loop"]

    def test_peer_out_of_range_rejected(self):
        def prog(comm):
            yield comm.send(99, 1)

        with pytest.raises(RankFailedError) as err:
            run_spmd(prog, machine=machine(2))
        assert isinstance(err.value.original, ValueError)


class TestCollectives:
    def test_allreduce_sum_arrays(self):
        def prog(comm):
            return (yield comm.allreduce(np.full(3, float(comm.rank + 1))))

        res = run_spmd(prog, machine=machine(4))
        for v in res.values:
            assert np.allclose(v, 10.0)

    @pytest.mark.parametrize("op,expected", [
        ("sum", 6), ("max", 3), ("min", 0), ("prod", 0),
    ])
    def test_allreduce_ops(self, op, expected):
        def prog(comm):
            return (yield comm.allreduce(comm.rank, op=op))

        res = run_spmd(prog, machine=machine(4))
        assert all(v == expected for v in res.values)

    def test_allreduce_does_not_alias_inputs(self):
        def prog(comm):
            mine = np.ones(2)
            total = yield comm.allreduce(mine)
            total += 100.0
            return float(mine[0])

        res = run_spmd(prog, machine=machine(3))
        assert res.values == [1.0, 1.0, 1.0]

    def test_bcast(self):
        def prog(comm):
            data = np.arange(4.0) if comm.rank == 2 else None
            return (yield comm.bcast(data, root=2)).sum()

        res = run_spmd(prog, machine=machine(4))
        assert res.values == [6.0] * 4

    def test_allgather(self):
        def prog(comm):
            return (yield comm.allgather(comm.rank * 2))

        res = run_spmd(prog, machine=machine(3))
        assert res.values == [[0, 2, 4]] * 3

    def test_alltoall_transpose(self):
        def prog(comm):
            outgoing = [comm.rank * 10 + j for j in range(comm.size)]
            return (yield comm.alltoall(outgoing))

        res = run_spmd(prog, machine=machine(3))
        # rank j receives [i*10 + j for i]
        assert res.values[1] == [1, 11, 21]

    def test_reduce_root_only(self):
        def prog(comm):
            return (yield comm.reduce(comm.rank + 1, root=0))

        res = run_spmd(prog, machine=machine(4))
        assert res.values[0] == 10
        assert res.values[1:] == [None, None, None]

    def test_gather_scatter_roundtrip(self):
        def prog(comm):
            gathered = yield comm.gather(comm.rank ** 2, root=0)
            items = [x + 1 for x in gathered] if comm.rank == 0 else None
            return (yield comm.scatter(items, root=0))

        res = run_spmd(prog, machine=machine(4))
        assert res.values == [1, 2, 5, 10]

    def test_barrier_synchronises_clocks(self):
        def prog(comm):
            yield comm.compute(flops=1e9 * (comm.rank + 1), efficiency=1.0)
            yield comm.barrier()
            return None

        res = run_spmd(prog, machine=machine(4))
        assert len(set(res.clocks)) == 1

    def test_split_subcommunicators(self):
        def prog(comm):
            sub = yield comm.split(comm.rank % 2)
            total = yield sub.allreduce(comm.rank)
            return (sub.size, total)

        res = run_spmd(prog, machine=machine(6))
        assert res.values[0] == (3, 0 + 2 + 4)
        assert res.values[1] == (3, 1 + 3 + 5)

    def test_mismatched_collectives_raise(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
            else:
                yield comm.allreduce(1)

        with pytest.raises(CollectiveMismatchError):
            run_spmd(prog, machine=machine(2))

    def test_phantom_collective_result(self):
        def prog(comm):
            out = yield comm.allreduce(Phantom(1e6))
            return isinstance(out, Phantom)

        res = run_spmd(prog, machine=machine(4))
        assert all(res.values)


class TestTimingSemantics:
    def test_compute_advances_clock(self):
        def prog(comm):
            yield comm.compute(flops=19.5e12, efficiency=1.0)

        res = run_spmd(prog, machine=machine(1))
        assert res.elapsed == pytest.approx(1.0)

    def test_elapse(self):
        def prog(comm):
            yield comm.elapse(2.5)

        assert run_spmd(prog, machine=machine(1)).elapsed == pytest.approx(2.5)

    def test_intra_node_faster_than_inter_node(self):
        payload = Phantom(64e6)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, payload)
            elif comm.rank == 1:
                yield comm.recv(0)

        m_same = Machine.on(juwels_booster(), 2, ranks_per_node=2)
        m_diff = Machine.on(juwels_booster(), 2, ranks_per_node=1)
        assert run_spmd(prog, machine=m_same).elapsed < \
            run_spmd(prog, machine=m_diff).elapsed

    def test_traces_bucket_compute_labels(self):
        def prog(comm):
            yield comm.compute(flops=1e12, efficiency=1.0, label="channels")
            yield comm.compute(flops=5e11, efficiency=1.0, label="cable")

        res = run_spmd(prog, machine=machine(1))
        prof = res.compute_profile()
        assert prof["channels"] == pytest.approx(2 * prof["cable"])

    def test_comm_time_recorded(self):
        def prog(comm):
            yield comm.allreduce(Phantom(8e6))

        res = run_spmd(prog, machine=machine(8))
        assert res.comm_seconds > 0
        assert res.comm_fraction == pytest.approx(1.0)

    def test_determinism(self):
        def prog(comm, seed):
            rng = np.random.default_rng(seed + comm.rank)
            x = rng.random(16)
            total = yield comm.allreduce(x)
            yield comm.compute(flops=1e9)
            return float(total.sum())

        r1 = run_spmd(prog, machine=machine(8), args=(7,))
        r2 = run_spmd(prog, machine=machine(8), args=(7,))
        assert r1.values == r2.values
        assert r1.clocks == r2.clocks


class TestFailureModes:
    def test_deadlock_detected(self):
        def prog(comm):
            yield comm.recv((comm.rank + 1) % comm.size)

        with pytest.raises(DeadlockError):
            run_spmd(prog, machine=machine(2))

    def test_rank_exception_wrapped(self):
        def prog(comm):
            yield comm.barrier()
            if comm.rank == 1:
                raise ValueError("bad physics")

        with pytest.raises(RankFailedError) as err:
            run_spmd(prog, machine=machine(2))
        assert err.value.rank == 1

    def test_non_generator_rejected(self):
        def not_a_gen(comm):
            return 42

        with pytest.raises(TypeError):
            run_spmd(not_a_gen, machine=machine(2))

    def test_yielding_garbage_rejected(self):
        def prog(comm):
            yield "not an op"

        with pytest.raises(Exception):
            run_spmd(prog, machine=machine(1))


class TestMachinePlacement:
    def test_block_placement(self):
        m = Machine.booster(nodes=2, ranks_per_node=4)
        assert m.nranks == 8
        assert m.node_of(0) == 0
        assert m.node_of(7) == 1
        assert m.job_nodes == 2

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError):
            Machine.on(juwels_booster().with_nodes(1), 8, ranks_per_node=4)

    def test_msa_placement_spans_modules(self):
        m = Machine.msa(cluster_nodes=2, booster_nodes=2)
        assert m.nranks == 16
        booster_cells = {m.node_of(r) // 48 for r in range(8)}
        cluster_cells = {m.node_of(r) // 48 for r in range(8, 16)}
        assert booster_cells.isdisjoint(cluster_cells)
        assert m.device_of(0).kind == "gpu"
        assert m.device_of(8).kind == "cpu"

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_job_nodes_matches_ceiling(self, nranks):
        m = Machine.on(juwels_booster(), nranks)
        assert m.job_nodes == -(-nranks // 4)


class TestHypothesisInvariants:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=8),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_allreduce_matches_numpy_sum(self, base, nranks):
        arrays = [np.array(base) * (r + 1) for r in range(nranks)]

        def prog(comm):
            return (yield comm.allreduce(arrays[comm.rank]))

        res = run_spmd(prog, machine=machine(nranks))
        expected = np.sum(arrays, axis=0)
        for v in res.values:
            assert np.allclose(v, expected)

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_ring_pass_total_conserved(self, nranks):
        """Token passed around a ring arrives intact at every hop."""

        def prog(comm):
            token = comm.rank
            for _ in range(comm.size):
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                token = yield comm.sendrecv(right, token, left)
            return token

        res = run_spmd(prog, machine=machine(nranks))
        assert res.values == list(range(nranks))
