"""Shared test configuration.

Setting ``REPRO_SANITIZE=1`` wraps every lock created during the test
run in :class:`repro.check.sanitizer.LockOrderWatcher`, so the whole
suite doubles as a lock-ordering hammer: any A->B / B->A acquisition
pattern raises :class:`~repro.check.sanitizer.LockOrderError` at the
moment the inverted edge appears, without needing to hit the actual
deadlock schedule.  CI runs the telemetry/engine tests a second time
with the sanitizer enabled.
"""

from repro.check.sanitizer import install_from_env

install_from_env()
