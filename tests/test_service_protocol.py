"""Protocol-level property tests of the service wire envelopes.

Satellite tier of the ``repro.service`` control plane: Hypothesis
drives the envelope codecs through arbitrary payloads, asserting

* encode/decode **round-trip identity** (`to_wire` -> JSON ->
  `from_wire` reproduces the envelope),
* **content-address stability**: the task id is invariant under wire
  field reordering and JSON re-serialisation,
* **versioning**: unknown schema ids are rejected with an actionable
  error, tampered task ids are detected,

plus the regression tests of the latent
:class:`repro.exec.resilience.BackoffPolicy` bug the harness design
surfaced: retry jitter must be seedable **per envelope** (content
hash), not only per process-wide policy seed, so service-path replays
are deterministic across processes and policy instances.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.resilience import BackoffPolicy
from repro.service import (
    SERVICE_SCHEMA,
    EnvelopeError,
    ResultEnvelope,
    TaskEnvelope,
)

_IDENT = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           whitelist_characters="-._"),
    min_size=1, max_size=24)

_PARAM_VALUE = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-10**6,
                                          max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    _IDENT)

_PARAMS = st.dictionaries(_IDENT, _PARAM_VALUE, max_size=5)


def _envelopes() -> st.SearchStrategy[TaskEnvelope]:
    return st.builds(
        TaskEnvelope,
        client=_IDENT, benchmark=_IDENT, key=_IDENT, params=_PARAMS,
        seq=st.integers(min_value=0, max_value=10**6), label=_IDENT,
        retries=st.one_of(st.none(),
                          st.integers(min_value=0, max_value=9)),
        timeout=st.one_of(st.none(),
                          st.floats(min_value=0.1, max_value=1e6,
                                    allow_nan=False)))


class TestTaskEnvelopeRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(env=_envelopes())
    def test_wire_round_trip_identity(self, env):
        wire = json.loads(json.dumps(env.to_wire()))
        back = TaskEnvelope.from_wire(wire)
        assert back == env
        assert back.task_id == env.task_id

    @settings(max_examples=120, deadline=None)
    @given(env=_envelopes(), data=st.data())
    def test_content_address_stable_across_field_order(self, env, data):
        wire = env.to_wire()
        keys = data.draw(st.permutations(sorted(wire)))
        shuffled = json.loads(json.dumps({k: wire[k] for k in keys}))
        assert list(shuffled) == list(keys)  # ordering really differs
        back = TaskEnvelope.from_wire(shuffled)
        assert back.task_id == env.task_id

    @settings(max_examples=60, deadline=None)
    @given(env=_envelopes())
    def test_task_id_is_process_independent(self, env):
        # re-deriving the id from the decoded wire form never drifts
        twin = TaskEnvelope.from_wire(env.to_wire())
        assert twin.task_id == env.task_id
        assert env.task_id.startswith(
            "".join(c if c.isalnum() or c in "-._" else "_"
                    for c in env.benchmark))

    def test_seq_distinguishes_resubmissions(self):
        env = TaskEnvelope(client="c", benchmark="b", key="k", seq=0)
        assert env.with_seq(1).task_id != env.task_id


class TestSchemaVersioning:
    @settings(max_examples=40, deadline=None)
    @given(env=_envelopes(), bogus=_IDENT)
    def test_unknown_schema_rejected_actionably(self, env, bogus):
        wire = env.to_wire()
        wire["schema"] = f"repro.service/v{bogus}"
        with pytest.raises(EnvelopeError) as err:
            TaskEnvelope.from_wire(wire)
        message = str(err.value)
        assert SERVICE_SCHEMA in message      # says what it speaks
        assert wire["schema"] in message      # says what it got

    def test_missing_schema_rejected(self):
        wire = TaskEnvelope(client="c", benchmark="b", key="k").to_wire()
        del wire["schema"]
        with pytest.raises(EnvelopeError):
            TaskEnvelope.from_wire(wire)

    def test_missing_required_field_names_it(self):
        wire = TaskEnvelope(client="c", benchmark="b", key="k").to_wire()
        del wire["key"]
        with pytest.raises(EnvelopeError, match="key"):
            TaskEnvelope.from_wire(wire)

    def test_tampered_task_id_detected(self):
        wire = TaskEnvelope(client="c", benchmark="b", key="k").to_wire()
        wire["benchmark"] = "tampered"
        with pytest.raises(EnvelopeError, match="content address"):
            TaskEnvelope.from_wire(wire)

    def test_non_object_rejected(self):
        with pytest.raises(EnvelopeError, match="object"):
            TaskEnvelope.from_wire(["not", "a", "dict"])


class TestResultEnvelope:
    @settings(max_examples=80, deadline=None)
    @given(task_id=_IDENT, client=_IDENT, benchmark=_IDENT, key=_IDENT,
           status=st.sampled_from(["ok", "error", "rejected",
                                   "cancelled"]),
           attempts=st.integers(min_value=0, max_value=9),
           cache=st.sampled_from(["hit", "miss", "off"]))
    def test_wire_round_trip(self, task_id, client, benchmark, key,
                             status, attempts, cache):
        env = ResultEnvelope(
            task_id=task_id, client=client, benchmark=benchmark, key=key,
            status=status, value={"fom": 1.5} if status == "ok" else None,
            error=None if status == "ok" else "boom",
            endpoint="ep0", attempts=attempts, cache=cache)
        back = ResultEnvelope.from_wire(json.loads(json.dumps(
            env.to_wire())))
        assert back == env
        assert back.result_id == env.result_id

    def test_canonical_excludes_scheduling_provenance(self):
        a = ResultEnvelope(task_id="t", client="c", benchmark="b",
                           key="k", status="ok", value=1.0,
                           endpoint="ep0", attempts=1, cache="miss")
        b = ResultEnvelope(task_id="t", client="c", benchmark="b",
                           key="k", status="ok", value=1.0,
                           endpoint="ep7", attempts=3, cache="hit")
        assert a.canonical() == b.canonical()
        assert a.result_id == b.result_id

    def test_invalid_status_rejected(self):
        with pytest.raises(EnvelopeError, match="status"):
            ResultEnvelope(task_id="t", client="c", benchmark="b",
                           key="k", status="exploded")

    def test_error_status_requires_message(self):
        with pytest.raises(EnvelopeError, match="error message"):
            ResultEnvelope(task_id="t", client="c", benchmark="b",
                           key="k", status="error")


class TestBackoffPerEnvelopeSeeding:
    """Regression: retry draws seed from the envelope content hash."""

    @settings(max_examples=60, deadline=None)
    @given(key=_IDENT, attempt=st.integers(min_value=1, max_value=8),
           seed_a=st.integers(min_value=0, max_value=2**31),
           seed_b=st.integers(min_value=0, max_value=2**31))
    def test_keyed_delay_ignores_process_seed(self, key, attempt,
                                              seed_a, seed_b):
        # the bug: two processes (different policy seeds) replaying the
        # same envelope drew different jitter.  With a content-hash key
        # the schedule is a pure function of the envelope.
        a = BackoffPolicy(seed=seed_a)
        b = BackoffPolicy(seed=seed_b)
        assert a.delay("labelA", attempt, key=key) == \
            b.delay("labelB", attempt, key=key)

    @settings(max_examples=60, deadline=None)
    @given(key=_IDENT, attempt=st.integers(min_value=1, max_value=8))
    def test_keyed_delay_stays_bounded(self, key, attempt):
        policy = BackoffPolicy()
        d = policy.delay("l", attempt, key=key)
        raw = min(policy.base * policy.factor ** (attempt - 1),
                  policy.max_delay)
        assert raw * (1 - policy.jitter / 2) <= d \
            <= raw * (1 + policy.jitter / 2)

    def test_distinct_keys_decorrelate(self):
        policy = BackoffPolicy()
        draws = {policy.delay("l", 2, key=f"task-{i}") for i in range(16)}
        assert len(draws) > 1  # keys actually enter the draw

    def test_legacy_unkeyed_path_unchanged(self):
        # keyless calls keep the historical (seed, label, attempt) draw
        # bit-for-bit -- chaos goldens depend on it
        policy = BackoffPolicy(seed=123)
        assert policy.delay("run:x", 2) == policy.delay("run:x", 2, key=None)
        nojit = BackoffPolicy(base=1.0, factor=2.0, max_delay=5.0,
                              jitter=0.0)
        assert [nojit.delay("l", a) for a in (1, 2, 3, 4)] == \
            [1.0, 2.0, 4.0, 5.0]

    def test_engine_threads_item_key_into_backoff(self):
        """Keyed work items replay the same backoff schedule in any
        engine, regardless of the per-engine policy seed."""
        from repro.exec.engine import ExecutionEngine, WorkItem
        from repro.faults import FaultInjector, FaultPlan, TaskFaultRule
        from repro.telemetry import ManualClock, Tracer

        plan = FaultPlan(tasks=(TaskFaultRule(match="flaky",
                                              attempts=(1,)),))

        def backoffs(policy_seed: int, key: str | None) -> list[float]:
            engine = ExecutionEngine(
                workers=1, backend="serial", cache=None, retries=1,
                tracer=Tracer(clock=ManualClock(start=0.0, tick=0.25)),
                faults=FaultInjector(plan),
                backoff=BackoffPolicy(seed=policy_seed))
            engine.map([WorkItem(fn=float, args=(1.0,), label="flaky",
                                 key=key)])
            return [s.attrs["backoff"] for s in engine.tracer.finished()
                    if "backoff" in s.attrs]

        keyed_a = backoffs(policy_seed=1, key="envelope-hash")
        keyed_b = backoffs(policy_seed=2, key="envelope-hash")
        assert keyed_a and keyed_a == keyed_b  # seed no longer leaks in
        unkeyed_a = backoffs(policy_seed=1, key=None)
        unkeyed_b = backoffs(policy_seed=2, key=None)
        assert unkeyed_a != unkeyed_b  # the legacy behaviour (the bug)
