"""CLI tests for the performance-history plane: ``--history``
appending, ``jubench history`` / ``jubench regress`` / ``jubench
report`` rendering, and the issue's acceptance scenario (a synthetic
history with one injected 15% FOM drop)."""

import json
import random

import pytest

from repro.cli import main
from repro.core import Baseline, ContinuousBenchmarking
from repro.core.benchmark import BenchmarkResult
from repro.history import HistoryStore, RunRecord


def synthetic_db(path, *, drop_at: int | None = None, n: int = 12,
                 drop: float = 1.15, noise: float = 0.01) -> HistoryStore:
    """A seeded ~1%-noise ICON series, optionally with one slow point."""
    rng = random.Random(1234)
    store = HistoryStore.open(path)
    for i in range(n):
        fom = 100.0 * (1.0 + noise * (2.0 * rng.random() - 1.0))
        if drop_at is not None and i == drop_at:
            fom *= drop
        store.append(RunRecord(benchmark="ICON", params={"nodes": 256},
                               fom_seconds=fom, vmpi_mode="event",
                               code=f"commit{i:02d}"))
    return store


class TestHistoryAppendFlag:
    def test_run_appends_record(self, tmp_path, capsys):
        db = tmp_path / "h.jsonl"
        assert main(["run", "Arbor", "--history", str(db)]) == 0
        out = capsys.readouterr().out
        assert f"history: 1 record(s) in {db}" in out
        store = HistoryStore.open(db)
        [rec] = store.records
        assert rec.benchmark == "Arbor"
        assert rec.fom_seconds == pytest.approx(489, rel=0.1)
        assert rec.params["study"] == "run"
        assert rec.machine == "JUWELS Booster"
        assert rec.code

    def test_suite_appends_one_record_per_benchmark(self, tmp_path):
        db = tmp_path / "h.jsonl"
        argv = ["suite", "--benchmarks", "Arbor,HPL,STREAM",
                "--history", str(db)]
        assert main(argv) == 0
        assert main(argv) == 0  # replay extends the same series
        store = HistoryStore.open(db)
        assert store.benchmarks() == ["Arbor", "HPL", "STREAM"]
        assert [r.seq for r in store.select("Arbor").popitem()[1]] == [0, 1]

    def test_vmpi_mode_splits_series(self, tmp_path):
        db = tmp_path / "h.jsonl"
        for mode in ("event", "step"):
            assert main(["run", "STREAM", "--vmpi-mode", mode,
                         "--history", str(db)]) == 0
        store = HistoryStore.open(db)
        assert len(store.select("STREAM")) == 2
        modes = {r.vmpi_mode for r in store.records}
        assert modes == {"event", "step"}

    def test_fig2_appends_per_app_curves(self, tmp_path):
        db = tmp_path / "h.jsonl"
        assert main(["fig2", "--apps", "Arbor,GROMACS",
                     "--history", str(db)]) == 0
        store = HistoryStore.open(db)
        assert store.benchmarks() == ["Arbor", "GROMACS"]
        [arbor] = store.select("Arbor").popitem()[1]
        assert arbor.params["study"] == "fig2"
        assert any(k.startswith("runtime_n") for k in arbor.foms)

    def test_fig3_appends_efficiency_foms(self, tmp_path):
        db = tmp_path / "h.jsonl"
        assert main(["fig3", "--nodes", "1,2,8",
                     "--history", str(db)]) == 0
        store = HistoryStore.open(db)
        assert len(store.benchmarks()) == 5  # the High-Scaling set
        for recs in store.select().values():
            assert recs[-1].params["study"] == "fig3"
            assert any(k.startswith("eff_n") for k in recs[-1].foms)


class TestRegressCommand:
    def test_flags_exactly_the_injected_drop(self, tmp_path, capsys):
        """The issue's acceptance scenario: a synthetic history with
        one injected 15% FOM drop flags exactly that point and nothing
        on the stationary prefix -- and exits 1."""
        db = tmp_path / "h.jsonl"
        synthetic_db(db, drop_at=9)
        assert main(["regress", str(db)]) == 1
        out = capsys.readouterr().out
        assert "! point 9:" in out
        assert out.count("! point") == 1
        assert "verdict: REGRESSION (1 flagged point across 1 series)" in out

    def test_quiet_on_stationary_history(self, tmp_path, capsys):
        db = tmp_path / "h.jsonl"
        synthetic_db(db)
        assert main(["regress", str(db)]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_json_verdicts_are_bit_reproducible(self, tmp_path, capsys):
        db = tmp_path / "h.jsonl"
        synthetic_db(db, drop_at=9)
        assert main(["regress", str(db), "--json"]) == 1
        first = capsys.readouterr().out
        assert main(["regress", str(db), "--json"]) == 1
        assert capsys.readouterr().out == first
        summaries = json.loads(first)
        [(key, summary)] = summaries.items()
        assert key.startswith("ICON-")
        assert summary["benchmark"] == "ICON"
        assert summary["counts"]["regression"] == 1
        statuses = [v["status"] for v in summary["verdicts"]]
        assert statuses[9] == "regression"

    def test_explain_prints_inference_trace(self, tmp_path, capsys):
        db = tmp_path / "h.jsonl"
        synthetic_db(db, drop_at=9)
        main(["regress", str(db), "--explain"])
        out = capsys.readouterr().out
        assert "margin=max(" in out and "-> regression" in out

    def test_thresholds_are_configurable(self, tmp_path):
        db = tmp_path / "h.jsonl"
        synthetic_db(db, drop_at=9, drop=1.015, noise=0.002)
        # a 1.5% drop sits under the default 2% slack band; tightening
        # the thresholds makes the same history alert
        assert main(["regress", str(db)]) == 0
        assert main(["regress", str(db), "--slack", "0.005",
                     "--sigma", "2.0"]) == 1

    def test_benchmark_filter(self, tmp_path, capsys):
        db = tmp_path / "h.jsonl"
        synthetic_db(db, drop_at=9)
        assert main(["regress", str(db), "--benchmark", "JUQCS"]) == 0
        assert "no recorded runs" in capsys.readouterr().out


class TestHistoryCommand:
    def test_trajectory_rendering(self, tmp_path, capsys):
        db = tmp_path / "h.jsonl"
        synthetic_db(db, drop_at=9)
        assert main(["history", str(db), "--last", "6"]) == 0
        out = capsys.readouterr().out
        assert "FOM trajectories (lower is better)" in out
        assert "flagged regressions: 1" in out
        assert "seq  11" in out and "seq   5" not in out  # last-6 window

    def test_canonical_export_matches_store(self, tmp_path, capsys):
        db = tmp_path / "h.jsonl"
        store = synthetic_db(db)
        out_file = tmp_path / "export.json"
        assert main(["history", str(db), "--export", str(out_file)]) == 0
        assert out_file.read_text() == store.canonical_export()
        capsys.readouterr()
        assert main(["history", str(db), "--export", "-"]) == 0
        assert capsys.readouterr().out == store.canonical_export()

    def test_export_byte_identical_across_replays(self, tmp_path):
        synthetic_db(tmp_path / "a.jsonl")
        synthetic_db(tmp_path / "b.jsonl")
        for name in ("a", "b"):
            main(["history", str(tmp_path / f"{name}.jsonl"),
                  "--export", str(tmp_path / f"{name}.export")])
        assert (tmp_path / "a.export").read_bytes() == \
            (tmp_path / "b.export").read_bytes()

    def test_compact_applies_retention(self, tmp_path, capsys):
        db = tmp_path / "h.jsonl"
        synthetic_db(db)
        assert main(["history", str(db), "--compact", "5"]) == 0
        assert "compacted 12 -> 5 record(s)" in capsys.readouterr().out
        assert len(HistoryStore.open(db)) == 5


class TestReportTrajectorySection:
    def test_report_renders_history_db_directly(self, tmp_path, capsys):
        db = tmp_path / "h.jsonl"
        synthetic_db(db, drop_at=9)
        assert main(["report", str(db)]) == 0
        out = capsys.readouterr().out
        assert "FOM trajectories (lower is better)" in out
        assert "flagged regressions: 1" in out

    def test_report_appends_trajectory_to_trace_report(self, tmp_path,
                                                       capsys):
        db = tmp_path / "h.jsonl"
        synthetic_db(db)
        trace = tmp_path / "trace.jsonl"
        assert main(["suite", "--benchmarks", "STREAM",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", str(trace), "--history", str(db)]) == 0
        out = capsys.readouterr().out
        assert "cost centres" in out or "telemetry report" in out
        assert "FOM trajectories (lower is better)" in out


class TestContinuousIntegration:
    def test_campaign_feeds_history_store(self, tmp_path):
        base = Baseline.from_runs({"Arbor": [500.0, 501.0, 499.0]})
        foms = iter([500.0, 500.5, 499.8, 560.0])

        def runner(name):
            return BenchmarkResult(benchmark=name, nodes=8,
                                   fom_seconds=next(foms))

        store = HistoryStore.open(tmp_path / "h.jsonl")
        campaign = ContinuousBenchmarking(base, runner, store=store)
        for _ in range(4):
            campaign.run_interval()
        [records] = store.select("Arbor").values()
        assert [r.seq for r in records] == [0, 1, 2, 3]
        assert records[-1].fom_seconds == pytest.approx(560.0)
        assert records[0].volatile["interval"] == 0

    def test_campaign_verdicts_from_detector(self, tmp_path):
        base = Baseline.from_runs({"Arbor": [500.0, 501.0, 499.0]})
        rng = random.Random(7)
        foms = [500.0 * (1.0 + 0.005 * (2.0 * rng.random() - 1.0))
                for _ in range(8)] + [575.0]

        def runner(name):
            return BenchmarkResult(benchmark=name, nodes=8,
                                   fom_seconds=foms[len(campaign.history)])

        store = HistoryStore()
        campaign = ContinuousBenchmarking(base, runner, store=store)
        assert campaign.verdicts() == {}  # nothing recorded yet
        for _ in range(len(foms)):
            campaign.run_interval()
        [(key, verdict)] = campaign.verdicts().items()
        assert key.startswith("Arbor-")
        assert verdict.status == "regression"

    def test_campaign_without_store_unchanged(self):
        base = Baseline.from_runs({"Arbor": [500.0]})
        campaign = ContinuousBenchmarking(
            base, lambda name: BenchmarkResult(benchmark=name, nodes=8,
                                               fom_seconds=500.0))
        campaign.run_interval()
        assert campaign.verdicts() == {}
