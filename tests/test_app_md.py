"""Tests for the MD substrate (neighbour lists, forces, integrator) and
the GROMACS / Amber benchmarks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.md import (
    AmberBenchmark,
    EwaldParams,
    GromacsBenchmark,
    LjParams,
    MdEngine,
    MdSystem,
    build_neighbor_list,
    coulomb_energy,
    ewald_real_space,
    ewald_reciprocal,
    lj_forces,
    lj_pair_energy,
    madelung_nacl,
    minimum_image,
    wrap_positions,
)


class TestNeighborList:
    def test_finds_known_pairs(self):
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0], [5.0, 5, 5]])
        nl = build_neighbor_list(pos, box=10.0, cutoff=2.0, skin=0.0)
        assert nl.n_pairs == 1
        assert set(nl.pairs[0]) == {0, 1}

    def test_periodic_wraparound_pair(self):
        pos = np.array([[0.2, 0, 0], [9.8, 0, 0]])
        nl = build_neighbor_list(pos, box=10.0, cutoff=1.0, skin=0.0)
        assert nl.n_pairs == 1

    def test_no_duplicate_pairs_small_cell_grid(self):
        """Regression: with 2 cells per dimension the +-1 stencil aliases
        and used to double-count cross-cell pairs."""
        rng = np.random.default_rng(0)
        pos = rng.random((64, 3)) * 5.6
        nl = build_neighbor_list(pos, box=5.6, cutoff=2.5, skin=0.3)
        seen = {tuple(p) for p in nl.pairs}
        assert len(seen) == nl.n_pairs

    @given(st.integers(min_value=2, max_value=40),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_matches_brute_force(self, n, seed):
        rng = np.random.default_rng(seed)
        box = 12.0
        pos = rng.random((n, 3)) * box
        cutoff = 2.0
        nl = build_neighbor_list(pos, box, cutoff, skin=0.0)
        got = {tuple(sorted(p)) for p in nl.pairs}
        expected = set()
        for i in range(n):
            for j in range(i + 1, n):
                d = minimum_image(pos[i] - pos[j], box)
                if (d ** 2).sum() <= cutoff ** 2:
                    expected.add((i, j))
        assert got == expected

    def test_rebuild_trigger(self):
        pos = np.zeros((2, 3))
        pos[1, 0] = 1.0
        nl = build_neighbor_list(pos, box=10.0, cutoff=2.0, skin=0.4)
        assert not nl.needs_rebuild(pos, 10.0)
        moved = pos.copy()
        moved[0, 0] += 0.3  # > skin/2
        assert nl.needs_rebuild(moved, 10.0)

    def test_wrap_positions(self):
        out = wrap_positions(np.array([[11.0, -1.0, 5.0]]), box=10.0)
        assert np.allclose(out, [[1.0, 9.0, 5.0]])

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            wrap_positions(np.zeros((1, 3)), box=0.0)


class TestForces:
    def test_lj_two_particle_energy(self):
        """At r = 2^(1/6) sigma the (unshifted) pair energy is -epsilon."""
        r = 2.0 ** (1.0 / 6.0)
        pos = np.array([[0.0, 0, 0], [r, 0, 0]])
        nl = build_neighbor_list(pos, box=20.0, cutoff=3.0, skin=0.0)
        p = LjParams(cutoff=3.0, shifted=False)
        _, energy = lj_forces(pos, 20.0, nl, p)
        assert energy == pytest.approx(-1.0, rel=1e-12)
        assert lj_pair_energy(r, p) == pytest.approx(-1.0)

    def test_lj_force_is_gradient(self):
        rng = np.random.default_rng(1)
        box = 10.0
        pos = rng.random((6, 3)) * box
        p = LjParams(cutoff=2.5)

        def energy(q):
            nl = build_neighbor_list(q, box, p.cutoff, skin=0.0)
            return lj_forces(q, box, nl, p)[1]

        nl = build_neighbor_list(pos, box, p.cutoff, skin=0.0)
        forces, _ = lj_forces(pos, box, nl, p)
        eps = 1e-6
        for i, k in [(0, 0), (3, 2)]:
            plus = pos.copy()
            plus[i, k] += eps
            minus = pos.copy()
            minus[i, k] -= eps
            numeric = -(energy(plus) - energy(minus)) / (2 * eps)
            assert forces[i, k] == pytest.approx(numeric, abs=1e-5)

    def test_newton_third_law(self):
        rng = np.random.default_rng(2)
        pos = rng.random((20, 3)) * 8.0
        nl = build_neighbor_list(pos, 8.0, 2.5, skin=0.0)
        forces, _ = lj_forces(pos, 8.0, nl, LjParams())
        scale = max(np.abs(forces).max(), 1.0)
        assert np.abs(forces.sum(axis=0)).max() / scale < 1e-12

    def test_ewald_forces_are_gradients(self):
        rng = np.random.default_rng(3)
        box = 10.0
        pos = rng.random((8, 3)) * box
        q = np.where(np.arange(8) % 2 == 0, 1.0, -1.0)
        params = EwaldParams(alpha=1.0, kmax=5, real_cutoff=2.5)

        def energy(r):
            nl = build_neighbor_list(r, box, params.real_cutoff, skin=0.0)
            return coulomb_energy(r, q, box, nl, params)

        nl = build_neighbor_list(pos, box, params.real_cutoff, skin=0.0)
        fr, _ = ewald_real_space(pos, q, box, nl, params)
        fk, _ = ewald_reciprocal(pos, q, box, params)
        forces = fr + fk
        eps = 1e-6
        plus = pos.copy()
        plus[2, 1] += eps
        minus = pos.copy()
        minus[2, 1] -= eps
        numeric = -(energy(plus) - energy(minus)) / (2 * eps)
        assert forces[2, 1] == pytest.approx(numeric, abs=1e-5)

    def test_madelung_constant(self):
        """The NaCl Madelung constant -1.7475646 (full Ewald anchor)."""
        assert madelung_nacl() == pytest.approx(-1.7475646, abs=2e-4)

    def test_lj_param_validation(self):
        with pytest.raises(ValueError):
            LjParams(epsilon=-1.0)
        with pytest.raises(ValueError):
            EwaldParams(alpha=0.0)


class TestMdEngine:
    def test_energy_conservation_lj(self):
        rng = np.random.default_rng(5)
        a = 2.0 ** (1.0 / 6.0)
        system = MdSystem.lattice_gas(4, box=4 * a, temperature=0.1, rng=rng)
        engine = MdEngine(system, LjParams(cutoff=2.0))
        obs = engine.run(150, dt=0.002)
        e = obs.total_energy
        drift = abs(e[-1] - e[0]) / np.mean(obs.kinetic)
        assert drift < 1e-3

    def test_energy_conservation_with_ewald(self):
        rng = np.random.default_rng(6)
        system = MdSystem.lattice_gas(4, box=4.0, temperature=0.05, rng=rng,
                                      charged=True)
        engine = MdEngine(system, LjParams(sigma=0.8, cutoff=1.9),
                          ewald=EwaldParams(alpha=1.5, kmax=8,
                                            real_cutoff=1.9))
        obs = engine.run(50, dt=0.001)
        e = obs.total_energy
        drift = abs(e[-1] - e[0]) / np.mean(obs.kinetic)
        assert drift < 1e-3

    def test_momentum_conserved(self):
        rng = np.random.default_rng(7)
        system = MdSystem.lattice_gas(3, box=4.0, temperature=0.2, rng=rng)
        engine = MdEngine(system, LjParams(cutoff=1.8))
        engine.run(50, dt=0.002)
        assert np.abs(system.total_momentum()).max() < 1e-10

    def test_temperature_definition(self):
        rng = np.random.default_rng(8)
        system = MdSystem.lattice_gas(5, box=10.0, temperature=1.0, rng=rng)
        assert system.temperature() == pytest.approx(1.0, rel=0.15)

    def test_charges_required_for_ewald(self):
        rng = np.random.default_rng(9)
        system = MdSystem.lattice_gas(3, box=4.0, temperature=0.1, rng=rng)
        with pytest.raises(ValueError):
            MdEngine(system, LjParams(), ewald=EwaldParams())

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MdSystem(positions=np.zeros((4, 3)), velocities=np.zeros((3, 3)),
                     box=5.0, masses=np.ones(4))

    def test_run_validation(self):
        rng = np.random.default_rng(10)
        system = MdSystem.lattice_gas(3, box=4.0, temperature=0.1, rng=rng)
        engine = MdEngine(system, LjParams(cutoff=1.8))
        with pytest.raises(ValueError):
            engine.run(0)


class TestGromacsBenchmark:
    def test_case_selection(self):
        assert GromacsBenchmark("A").case == "A"
        with pytest.raises(ValueError):
            GromacsBenchmark("B")

    def test_real_run_verified(self):
        res = GromacsBenchmark("A").run(nodes=1, real=True, scale=0.5)
        assert res.verified is True
        assert res.details["drift"] < 0.05

    def test_case_a_strong_scaling_improves(self):
        bench = GromacsBenchmark("A")
        t2 = bench.run(nodes=2).fom_seconds
        t6 = bench.run(nodes=6).fom_seconds
        assert t6 < t2

    def test_case_c_is_much_bigger(self):
        a = GromacsBenchmark("A").run(nodes=3)
        c = GromacsBenchmark("C").run(nodes=128)
        assert c.details["atoms"] > 100 * a.details["atoms"]

    def test_case_c_pme_comm_grows_with_scale(self):
        bench = GromacsBenchmark("C")
        small = bench.run(nodes=64).details["pme_comm_seconds"]
        large = bench.run(nodes=256).details["pme_comm_seconds"]
        assert large > small


class TestAmberBenchmark:
    def test_single_node_reference(self):
        bench = AmberBenchmark()
        assert bench.info.reference_nodes == 1
        res = bench.run()
        assert res.nodes == 1
        assert res.details["atoms"] == 1_067_095

    def test_no_scaling_beyond_one_node(self):
        """Fig. 2's Amber curve is flat: the code does not scale past a
        single node."""
        bench = AmberBenchmark()
        t1 = bench.run(nodes=1).fom_seconds
        t2 = bench.run(nodes=2).fom_seconds
        assert t2 >= t1 * 0.98

    def test_real_run_verified(self):
        res = AmberBenchmark().run(nodes=1, real=True, scale=0.4)
        assert res.verified is True
