"""Behavioural tests of the XLY4xx cross-layer consistency rules.

Each test materialises a miniature project tree (schema + emitter,
cli + README, rules + registry) so the whole-project judgement in
``finalize`` is exercised, including the silence-without-counterpart
contract.
"""

from repro.check import Analyzer


def run_tree(tmp_path, files, only):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return Analyzer(only=[only]).run(tmp_path, rel_base=tmp_path)


# -- XLY401: telemetry event types -------------------------------------------

SCHEMA = ('_REQUIRED = {"span": ("name",), "metric": ("value",)}\n')


def test_undeclared_event_type_flagged(tmp_path):
    report = run_tree(tmp_path, {
        "telemetry/schema.py": SCHEMA,
        "apps/emitter.py": (
            "def go(sink):\n"
            '    sink.emit({"type": "bogus", "name": "x"})\n'
            '    sink.emit({"type": "span", "name": "ok"})\n'),
    }, only="XLY401")
    (finding,) = report.active
    assert finding.rule == "XLY401"
    assert finding.path == "apps/emitter.py" and finding.line == 2
    assert "'bogus'" in finding.message and "span" in finding.message


def test_event_builder_return_dicts_checked(tmp_path):
    report = run_tree(tmp_path, {
        "telemetry/schema.py": SCHEMA,
        "apps/builder.py": (
            "def make_event():\n"
            '    return {"type": "unheard_of", "value": 1}\n'),
    }, only="XLY401")
    assert [f.line for f in report.active] == [2]


def test_no_schema_module_means_silence(tmp_path):
    # fixture trees without a schema make no claim about event types
    report = run_tree(tmp_path, {
        "apps/emitter.py": (
            "def go(sink):\n"
            '    sink.emit({"type": "anything"})\n'),
    }, only="XLY401")
    assert not report.active


# -- XLY402: CLI flags documented --------------------------------------------

CLI = (
    "def build(parser):\n"
    '    parser.add_argument("--workers", type=int)\n'
    '    parser.add_argument("--cache-dir")\n'
    '    parser.add_argument("--cache")\n'
    '    parser.add_argument("positional")\n')


def test_undocumented_flag_flagged(tmp_path):
    (tmp_path / "README.md").write_text(
        "Run with `--workers 4 --cache-dir /tmp/c`.\n")
    report = run_tree(tmp_path, {"cli.py": CLI}, only="XLY402")
    (finding,) = report.active
    assert finding.rule == "XLY402"
    # --cache-dir in the README must NOT count as documenting --cache
    assert "--cache " in finding.message or "--cache is" in \
        finding.message
    assert finding.line == 4


def test_all_flags_documented_is_clean(tmp_path):
    (tmp_path / "README.md").write_text(
        "`--workers`, `--cache-dir` and `--cache` are documented.\n")
    report = run_tree(tmp_path, {"cli.py": CLI}, only="XLY402")
    assert not report.active


def test_no_readme_means_silence(tmp_path):
    report = run_tree(tmp_path, {"cli.py": CLI}, only="XLY402")
    assert not report.active


# -- XLY403: rule registration -----------------------------------------------

RULES_MODULE = (
    "class DupA:\n"
    '    id = "ZZZ901"\n'
    "\n"
    "class DupB:\n"
    '    id = "ZZZ901"\n'
    "\n"
    "class Orphan:\n"
    '    id = "ZZZ902"\n'
    "\n"
    "class Fine:\n"
    '    id = "ZZZ903"\n'
    '    ids = ("ZZZ904",)\n')

REGISTRY = (
    "from .extra import DupA, DupB, Fine\n"
    "RULE_CLASSES = (DupA, DupB, DupB, Fine)\n")


def test_duplicate_ids_orphans_and_double_registration(tmp_path):
    report = run_tree(tmp_path, {
        "check/rules/extra.py": RULES_MODULE,
        "check/rules/__init__.py": REGISTRY,
    }, only="XLY403")
    messages = sorted(f.message for f in report.active)
    assert len(messages) == 4
    dup = [m for m in messages if "ZZZ901" in m]
    assert len(dup) == 2 and all("2 classes" in m for m in dup)
    assert any("Orphan is not registered" in m for m in messages)
    assert any("DupB is registered 2 times" in m for m in messages)
    # Fine: unique ids, registered exactly once
    assert not any("Fine" in m for m in messages)


def test_no_registry_module_means_silence(tmp_path):
    report = run_tree(tmp_path, {
        "check/rules/extra.py": RULES_MODULE,
    }, only="XLY403")
    assert not report.active


# -- the shipped rule set itself ---------------------------------------------

def test_default_rules_have_unique_ids_and_descriptors():
    from repro.check.rules import default_rules
    rules = default_rules()
    ids = [i for r in rules for i in r.all_ids()]
    assert len(ids) == len(set(ids))
    desc_ids = [d["id"] for r in rules for d in r.descriptors()]
    assert sorted(desc_ids) == sorted(ids)
