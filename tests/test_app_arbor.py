"""Tests for Arbor: morphologies, Hines solver, HH channels, ring
networks, and the benchmark."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.arbor import (
    ArborBenchmark,
    CableDiscretisation,
    Cell,
    HHChannels,
    Morphology,
    RingNetwork,
    allen_like_cell,
    hines_solve,
    random_tree,
    rates_m,
    simulate_rings,
    tree_matrix_dense,
)


class TestMorphology:
    def test_random_tree_valid(self):
        rng = np.random.default_rng(0)
        m = random_tree(rng, depth=4)
        assert m.parent[0] == -1
        assert np.all(m.parent[1:] < np.arange(1, m.n_compartments))

    def test_depth_increases_size(self):
        rng = np.random.default_rng(1)
        small = random_tree(rng, depth=2)
        big = random_tree(np.random.default_rng(1), depth=5)
        assert big.n_compartments > small.n_compartments

    def test_allen_like_cell_is_complex(self):
        m = allen_like_cell(np.random.default_rng(2))
        assert m.n_compartments > 100

    def test_validation(self):
        with pytest.raises(ValueError):
            Morphology(parent=np.array([0]), length=np.array([1.0]),
                       radius=np.array([1.0]))
        with pytest.raises(ValueError):
            Morphology(parent=np.array([-1, 5]), length=np.ones(2),
                       radius=np.ones(2))

    def test_area_positive(self):
        m = random_tree(np.random.default_rng(3), depth=3)
        assert np.all(m.area() > 0)


class TestHinesSolver:
    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_matches_dense_solve(self, n, seed):
        rng = np.random.default_rng(seed)
        parent = np.full(n, -1, dtype=np.int64)
        for i in range(1, n):
            parent[i] = int(rng.integers(0, i))
        diag = rng.uniform(3.0, 6.0, n)
        upper = -rng.uniform(0.1, 0.9, n)
        upper[0] = 0.0
        rhs = rng.normal(size=n)
        x = hines_solve(diag, upper, parent, rhs)
        a = tree_matrix_dense(diag, upper, parent)
        assert np.allclose(a @ x, rhs, atol=1e-10)

    def test_single_compartment(self):
        x = hines_solve(np.array([2.0]), np.array([0.0]),
                        np.array([-1]), np.array([4.0]))
        assert x[0] == pytest.approx(2.0)


class TestChannels:
    def test_resting_state_is_steady(self):
        m = Morphology(parent=np.array([-1]), length=np.array([20.0]),
                       radius=np.array([10.0]))
        cell = Cell.build(m)
        t = 0.0
        for _ in range(400):
            cell.step(t, 0.025)
            t += 0.025
        assert cell.v[0] == pytest.approx(-65.0, abs=1.0)

    def test_suprathreshold_stimulus_spikes(self):
        m = Morphology(parent=np.array([-1]), length=np.array([20.0]),
                       radius=np.array([10.0]))
        cell = Cell.build(m)
        cell.inject(1.0, 2.0, 0.8)
        t, spikes, vmax = 0.0, 0, -100.0
        for _ in range(800):
            if cell.step(t, 0.025):
                spikes += 1
            vmax = max(vmax, float(cell.v[0]))
            t += 0.025
        assert spikes == 1
        assert vmax > 20.0  # proper HH overshoot

    def test_subthreshold_stimulus_does_not_spike(self):
        m = Morphology(parent=np.array([-1]), length=np.array([20.0]),
                       radius=np.array([10.0]))
        cell = Cell.build(m)
        cell.inject(1.0, 1.0, 0.02)
        t, spikes = 0.0, 0
        for _ in range(800):
            if cell.step(t, 0.025):
                spikes += 1
            t += 0.025
        assert spikes == 0

    def test_vtrap_singularity_removed(self):
        alpha, _ = rates_m(np.array([-40.0]))  # x = 0 in vtrap
        assert np.isfinite(alpha[0])
        assert alpha[0] == pytest.approx(1.0, rel=1e-3)

    def test_gates_stay_in_unit_interval(self):
        ch = HHChannels.for_areas(np.array([1000.0]))
        v = np.array([-65.0])
        for vstep in np.linspace(-80, 60, 50):
            ch.advance_gates(np.array([vstep]), 0.025)
            for gate in (ch.m, ch.h, ch.n):
                assert 0.0 <= gate[0] <= 1.0


class TestRingNetwork:
    def test_spike_marches_around_ring(self):
        net = RingNetwork(n_rings=1, cells_per_ring=4)
        res = simulate_rings(net, t_end=15.0)
        gids = [g for _, g in res["spikes"]]
        assert gids[:4] == [0, 1, 2, 3]

    def test_deterministic(self):
        net = RingNetwork(n_rings=2, cells_per_ring=3)
        a = simulate_rings(net, t_end=12.0)
        b = simulate_rings(net, t_end=12.0)
        assert a["spikes"] == b["spikes"]

    def test_cross_ring_links_have_zero_weight(self):
        net = RingNetwork(n_rings=2, cells_per_ring=3)
        targets = net.targets(0)
        assert (1, net.weight) in targets
        assert (3, 0.0) in targets  # next ring, no dynamics

    def test_validation(self):
        with pytest.raises(ValueError):
            RingNetwork(n_rings=0, cells_per_ring=4)
        with pytest.raises(ValueError):
            RingNetwork(n_rings=1, cells_per_ring=1)


class TestArborBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return ArborBenchmark()

    def test_real_distributed_spike_count_exact(self, bench):
        res = bench.run(nodes=1, real=True, scale=0.4)
        assert res.verified is True
        assert res.details["spikes"] > 0

    def test_reference_runtime_near_paper(self, bench):
        """Fig. 2 reference: 498 s on 8 nodes."""
        res = bench.run(nodes=8)
        assert res.fom_seconds == pytest.approx(498.0, rel=0.10)

    def test_published_strong_scaling_points(self, bench):
        """Fig. 2: 663 s @ 4 (memory-clamped), 332 @ 12, 250 @ 16."""
        assert bench.run(nodes=12).fom_seconds == pytest.approx(332, rel=0.10)
        assert bench.run(nodes=16).fom_seconds == pytest.approx(250, rel=0.10)
        four = bench.run(nodes=4)
        assert four.details["workload_clamped"]
        assert four.fom_seconds == pytest.approx(663, rel=0.15)

    def test_cost_centres_match_profile(self, bench):
        """Sec. IV-A2a: 52 % ion channels, 33 % cable equation."""
        res = bench.run(nodes=8)
        assert res.details["channel_share"] == pytest.approx(0.52, abs=0.02)
        assert res.details["cable_share"] == pytest.approx(0.33, abs=0.02)

    def test_communication_hidden(self, bench):
        res = bench.run(nodes=16)
        assert res.details["comm_seconds"] < 0.05 * res.details["compute_seconds"]

    def test_weak_scaling_efficiency_high(self, bench):
        t64 = bench.run(nodes=64).fom_seconds
        t256 = bench.run(nodes=256).fom_seconds
        assert t64 / t256 > 0.95
