"""Tests of the content-addressed result cache (repro.exec.cache):
key stability, memory/disk backends, statistics and eviction."""

import json

import pytest

from repro.core import MemoryVariant
from repro.exec import (
    CODE_VERSION,
    DiskCache,
    MemoryCache,
    result_key,
    stable_hash,
)


class TestStableHash:
    def test_dict_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_tuple_and_list_equivalent(self):
        assert stable_hash((1, 2, 3)) == stable_hash([1, 2, 3])

    def test_sets_are_canonicalised(self):
        assert stable_hash({"x", "y", "z"}) == stable_hash({"z", "y", "x"})

    def test_enum_hashes_as_value(self):
        assert stable_hash(MemoryVariant.SMALL) == stable_hash("S")

    def test_distinct_values_distinct_hashes(self):
        seen = {stable_hash(v) for v in
                (1, 1.0, "1", True, None, [1], {"1": 1})}
        # int 1 / True and float 1.0 may only collide via canonical JSON;
        # repr(1.0) = '1.0' != 1, and True is bool -> kept as true
        assert len(seen) >= 5

    def test_nested_stability(self):
        a = {"p": {"nodes": 8, "variant": None}, "t": (1, 2)}
        b = {"t": [1, 2], "p": {"variant": None, "nodes": 8}}
        assert stable_hash(a) == stable_hash(b)


class TestResultKey:
    def test_deterministic(self):
        k1 = result_key("Arbor", {"nodes": 8}, platform="JUWELS Booster")
        k2 = result_key("Arbor", {"nodes": 8}, platform="JUWELS Booster")
        assert k1 == k2
        assert k1.startswith("Arbor-")

    def test_every_component_enters_the_key(self):
        base = result_key("Arbor", {"nodes": 8}, platform="A", version="v1")
        assert result_key("nekRS", {"nodes": 8}, platform="A",
                          version="v1") != base
        assert result_key("Arbor", {"nodes": 16}, platform="A",
                          version="v1") != base
        assert result_key("Arbor", {"nodes": 8}, platform="B",
                          version="v1") != base
        assert result_key("Arbor", {"nodes": 8}, platform="A",
                          version="v2") != base

    def test_default_version_is_code_version(self):
        assert result_key("X", {}) == result_key("X", {},
                                                 version=CODE_VERSION)

    def test_key_is_filename_safe(self):
        key = result_key("Quantum Espresso", {"nodes": 8})
        assert "/" not in key and " " not in key


class TestMemoryCache:
    def test_miss_then_hit(self):
        cache = MemoryCache()
        assert cache.get("k") == (False, None)
        cache.put("k", 42)
        assert cache.get("k") == (True, 42)
        assert cache.stats.snapshot() == {"hits": 1, "misses": 1,
                                          "stores": 1, "evictions": 0}
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = MemoryCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")            # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)
        assert cache.stats.evictions == 1

    def test_stores_rich_objects_unencoded(self):
        cache = MemoryCache()
        obj = object()
        cache.put("k", obj)
        assert cache.get("k")[1] is obj

    def test_clear(self):
        cache = MemoryCache()
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            MemoryCache(max_entries=0)


class TestDiskCache:
    def test_roundtrip_and_persistence(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k1", {"fom": 1.25, "nodes": 8})
        assert cache.get("k1") == (True, {"fom": 1.25, "nodes": 8})
        # a fresh instance over the same directory sees the entry
        reopened = DiskCache(tmp_path)
        assert reopened.get("k1") == (True, {"fom": 1.25, "nodes": 8})
        assert reopened.stats.hits == 1

    def test_float_roundtrip_exact(self, tmp_path):
        cache = DiskCache(tmp_path)
        value = 0.1 + 0.2          # a float that doesn't print prettily
        cache.put("f", value)
        assert cache.get("f")[1] == value

    def test_eviction_deletes_files(self, tmp_path):
        cache = DiskCache(tmp_path, max_entries=2)
        for i in range(4):
            cache.put(f"k{i}", i)
        assert cache.stats.evictions == 2
        assert len(list(tmp_path.glob("*.json"))) == 2
        assert cache.get("k0") == (False, None)
        assert cache.get("k3") == (True, 3)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", 1)
        (tmp_path / "k.json").write_text("{not json")
        assert cache.get("k") == (False, None)

    def test_values_stored_as_json(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", [1, 2.5, "x"])
        payload = json.loads((tmp_path / "k.json").read_text())
        assert payload == {"key": "k", "value": [1, 2.5, "x"]}

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert not list(tmp_path.glob("*.json"))
