"""Tests of the telemetry exporters and schema: golden JSONL + Chrome
trace files (byte-stable via ManualClock), vmpi run ordinals, the
crash-safe sink and the offline report renderer."""

import io
import json
from pathlib import Path

import pytest

from repro.telemetry import (
    JsonlSink,
    ManualClock,
    SchemaError,
    Tracer,
    chrome_trace_events,
    emit_vmpi,
    validate_event,
    validate_file,
    write_chrome_trace,
)
from repro.telemetry.report import (
    cost_centre_table,
    journal_from_events,
    render_report,
)
from tests.regen_goldens import build_telemetry_tracer

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_TRACE = GOLDEN_DIR / "telemetry_trace.jsonl"
GOLDEN_CHROME = GOLDEN_DIR / "telemetry_chrome.json"


class _Spmd:
    """Duck-typed SpmdResult stand-in: two ranks, fixed buckets."""

    class _Trace:
        def __init__(self, compute, comm):
            self.compute = compute
            self.comm = comm

    def __init__(self):
        self.traces = [
            self._Trace({"gemm": 2.0}, {"bcast": 0.5}),
            self._Trace({"gemm": 1.5}, {"bcast": 1.0}),
        ]


class TestGoldens:
    def test_jsonl_golden_is_byte_stable(self):
        buffer = io.StringIO()
        build_telemetry_tracer(subscriber=JsonlSink(buffer))
        assert buffer.getvalue() == GOLDEN_TRACE.read_text(), (
            "telemetry JSONL export drifted from the golden; if the "
            "schema change is intentional, regenerate via "
            "'PYTHONPATH=src python tests/regen_goldens.py'")

    def test_jsonl_golden_validates(self):
        counts = validate_file(GOLDEN_TRACE)
        assert counts == {"meta": 1, "span": 3, "vmpi": 6}

    def test_chrome_golden_is_stable(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, build_telemetry_tracer())
        assert json.loads(path.read_text()) == \
            json.loads(GOLDEN_CHROME.read_text()), (
                "Chrome trace export drifted from the golden; "
                "regenerate via tests/regen_goldens.py if intentional")


class TestJsonlSink:
    def test_flushes_every_event(self, tmp_path):
        """Crash-safety: the file is complete after every emit, before
        any close."""
        path = tmp_path / "stream.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(clock=ManualClock())
        tracer.subscribe(sink)
        with tracer.span("one"):
            pass
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # meta header + the span, pre-close
        assert json.loads(lines[0])["type"] == "meta"
        assert json.loads(lines[1])["name"] == "one"
        sink.close()
        assert validate_file(path) == {"meta": 1, "span": 1}


class TestVmpiOrdinals:
    def test_emit_vmpi_counts_runs_per_benchmark(self):
        tracer = Tracer(clock=ManualClock())
        emit_vmpi(tracer, "HPL", 1, _Spmd())
        emit_vmpi(tracer, "HPL", 2, _Spmd())
        emit_vmpi(tracer, "STREAM", 1, _Spmd())
        runs = {(e["benchmark"], e["run"]) for e in tracer.events()}
        assert runs == {("HPL", 1), ("HPL", 2), ("STREAM", 1)}

    def test_reemit_remaps_worker_local_ordinals(self):
        """Two workers each counted their own run as #1; adoption must
        keep the sweep points on distinct timelines."""
        from repro.telemetry.export import reemit_events

        worker_a, worker_b = Tracer(clock=ManualClock()), \
            Tracer(clock=ManualClock())
        emit_vmpi(worker_a, "HPL", 1, _Spmd())
        emit_vmpi(worker_b, "HPL", 2, _Spmd())
        parent = Tracer(clock=ManualClock())
        reemit_events(parent, worker_a.events())
        reemit_events(parent, worker_b.events())
        runs = {(e["benchmark"], e["run"]) for e in parent.events()}
        assert runs == {("HPL", 1), ("HPL", 2)}


class TestChromeTrace:
    def test_ranks_become_tids_with_back_to_back_slices(self):
        tracer = Tracer(clock=ManualClock())
        emit_vmpi(tracer, "HPL", 4, _Spmd())
        events = chrome_trace_events([], tracer.events())
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["tid"] for e in slices} == {0, 1}  # one tid per rank
        assert {e["cat"] for e in slices} == {"comm", "compute"}
        # per-rank virtual time is contiguous: next ts == prev ts + dur
        for rank in (0, 1):
            cursor = 0.0
            for entry in [e for e in slices if e["tid"] == rank]:
                assert entry["ts"] == pytest.approx(cursor)
                cursor += entry["dur"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert "vmpi:HPL (4 nodes)" in names
        rank_names = {e["args"]["name"] for e in events
                      if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"rank 0", "rank 1"} <= rank_names

    def test_each_run_gets_its_own_pid(self):
        tracer = Tracer(clock=ManualClock())
        emit_vmpi(tracer, "HPL", 1, _Spmd())
        emit_vmpi(tracer, "HPL", 2, _Spmd())
        events = chrome_trace_events([], tracer.events())
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids) == 2
        names = sorted(e["args"]["name"] for e in events
                       if e["ph"] == "M" and e["name"] == "process_name"
                       and e["pid"] >= 100)
        assert names == ["vmpi:HPL #2 (2 nodes)", "vmpi:HPL (1 nodes)"]

    def test_span_lanes_map_to_tids(self):
        tracer = build_telemetry_tracer()
        events = chrome_trace_events(tracer.finished(), [])
        spans = [e for e in events if e["ph"] == "X"]
        assert all(e["pid"] == 1 for e in spans)
        assert {e["name"] for e in spans} == \
            {"suite.run_all", "run:Arbor", "task:run:Arbor"}
        # microsecond timestamps
        run = [e for e in spans if e["name"] == "run:Arbor"][0]
        assert (run["ts"], run["dur"]) == (250000.0, 250000.0)


class TestSchemaValidation:
    def test_rejects_malformed_events(self):
        cases = [
            "not a dict",
            {"type": "nope"},
            {"type": "span", "span_id": 1},  # missing fields
            {"type": "span", "span_id": 1, "parent_id": None, "name": "x",
             "start": 2.0, "end": 1.0, "thread": 0, "attrs": {}},
            {"type": "vmpi", "benchmark": "b", "nodes": 1, "rank": 0,
             "bucket": "io", "label": "l", "seconds": 1.0},
            {"type": "task", "index": 0, "label": "l", "status": "error",
             "cache": "off", "attempts": 1, "started": 0.0,
             "finished": 1.0},  # error status without error text
            {"type": "meta", "version": 1, "schema": "someone/else"},
        ]
        for event in cases:
            with pytest.raises(SchemaError):
                validate_event(event)

    def test_accepts_the_event_family(self):
        validate_event({"type": "meta", "version": 1,
                        "schema": "repro.telemetry/v1"})
        validate_event({"type": "vmpi", "benchmark": "b", "nodes": 1,
                        "rank": 3, "bucket": "comm", "label": "p2p",
                        "seconds": 0.5})
        validate_event({"type": "metrics", "snapshot": {}})

    def test_validate_file_requires_meta_header(self, tmp_path):
        path = tmp_path / "headless.jsonl"
        path.write_text('{"type":"metrics","snapshot":{}}\n')
        with pytest.raises(SchemaError, match="meta"):
            validate_file(path)


class TestOfflineReport:
    def test_journal_rebuilds_from_task_spans(self):
        tracer = build_telemetry_tracer()
        events = [s.to_event() for s in tracer.finished()]
        journal = journal_from_events(events)
        assert len(journal) == 1
        record = journal.records[0]
        assert (record.label, record.status, record.cache) == \
            ("run:Arbor", "ok", "miss")
        assert (record.started, record.finished) == (0.5, 1.0)

    def test_cost_centres_aggregate_over_ranks(self):
        tracer = Tracer(clock=ManualClock())
        emit_vmpi(tracer, "HPL", 4, _Spmd())
        table = cost_centre_table(tracer.events())
        assert "HPL -- 4 nodes, 2 ranks" in table
        # gemm: 2.0 + 1.5 = 3.5 of 5.0 total -> 70 %
        assert "gemm" in table and "70.0 %" in table

    def test_render_report_on_the_golden_trace(self):
        report = render_report(GOLDEN_TRACE)
        assert "run journal -- 1 tasks" in report
        assert "cost centres" in report
        assert "channels" in report
