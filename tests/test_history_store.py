"""Tests for the performance-history plane: run records + the
append-only store (identity keys, JSONL round-trip, canonical
byte-identity across workers and replays, retention)."""

import json
import threading

import pytest

from repro.cluster import juwels_booster
from repro.core import load_suite
from repro.exec import ExecutionEngine, MemoryCache
from repro.history import (
    HISTORY_SCHEMA,
    HistoryStore,
    RunRecord,
    code_fingerprint,
    machine_config_hash,
    record,
    stamp,
)
from repro.history.store import HistoryError, is_history_file
from repro.telemetry import ManualClock, Tracer


def _rec(benchmark="ICON", fom=100.0, **kwargs):
    kwargs.setdefault("params", {"nodes": 256})
    kwargs.setdefault("vmpi_mode", "event")
    kwargs.setdefault("code", "deadbeef")
    return RunRecord(benchmark=benchmark, fom_seconds=fom, **kwargs)


class TestRunRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunRecord(benchmark="")
        with pytest.raises(ValueError):
            RunRecord(benchmark="ICON", fom_seconds=-1.0)

    def test_series_key_ignores_code(self):
        a = _rec(code="aaaa")
        b = _rec(code="bbbb")
        assert a.series_key == b.series_key
        assert a.record_key != b.record_key
        assert a.record_key.startswith(a.series_key)

    def test_series_key_separates_configs(self):
        base = _rec()
        assert _rec(params={"nodes": 512}).series_key != base.series_key
        assert _rec(vmpi_mode="step").series_key != base.series_key
        assert _rec(benchmark="JUQCS").series_key != base.series_key
        other_machine = _rec(machine_hash="ffff0000ffff0000")
        assert other_machine.series_key != base.series_key

    def test_keys_are_stable_content_addresses(self):
        # regenerating the same record yields the same keys (no clocks,
        # no object identity in the hash)
        assert _rec().series_key == _rec().series_key
        assert _rec().record_key == _rec().record_key

    def test_canonical_excludes_volatile(self):
        rec = _rec(volatile={"wall_seconds": 1.23, "host": "node-1"})
        assert "volatile" not in rec.canonical()
        assert rec.to_line()["volatile"] == {"wall_seconds": 1.23,
                                             "host": "node-1"}

    def test_value_prefers_fom_over_wall_clock(self):
        assert _rec(fom=2.0).value == 2.0
        timed = RunRecord(benchmark="bench:fig2",
                          volatile={"wall_seconds": 0.5})
        assert timed.value == 0.5
        assert RunRecord(benchmark="bench:fig2").value is None

    def test_line_round_trip(self):
        rec = _rec(foms={"eff_n8": 0.93}, seed=42,
                   spans={"task:run": {"count": 3}},
                   journal="ab" * 8, volatile={"wall_seconds": 0.1})
        rec.seq = 4
        back = RunRecord.from_line(json.loads(json.dumps(rec.to_line())))
        assert back == rec
        assert back.record_key == rec.record_key


class TestStamps:
    def test_machine_config_hash_tracks_config(self):
        booster = juwels_booster()
        assert machine_config_hash(booster) == machine_config_hash(
            juwels_booster())
        smaller = booster.with_nodes(64)
        assert machine_config_hash(smaller) != machine_config_hash(booster)

    def test_code_fingerprint_reads_git_head(self, tmp_path):
        git = tmp_path / "pkg" / ".git"
        (git / "refs" / "heads").mkdir(parents=True)
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "refs" / "heads" / "main").write_text("c0ffee" * 6 + "\n")
        assert code_fingerprint(tmp_path / "pkg" / "sub") == "c0ffee" * 6

    def test_code_fingerprint_packed_refs(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "packed-refs").write_text(
            "# pack-refs with: peeled\n"
            f"{'ab' * 20} refs/heads/main\n")
        assert code_fingerprint(tmp_path) == "ab" * 20

    def test_code_fingerprint_fallback_without_git(self, tmp_path):
        from repro.exec.cache import CODE_VERSION

        assert code_fingerprint(tmp_path) == CODE_VERSION

    def test_stamp_adds_provenance_block(self):
        out = stamp({"speedup": 12.0}, code="feed" * 10)
        assert out["speedup"] == 12.0
        prov = out["provenance"]
        assert prov["code"] == "feed" * 10
        assert prov["schema"] == HISTORY_SCHEMA
        assert prov["machine"] == "JUWELS Booster"
        assert prov["machine_hash"] == machine_config_hash(juwels_booster())

    def test_record_builder_stamps_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_VMPI_MODE", "step")
        rec = record("ICON", 10.0, system=juwels_booster(), seed=7)
        assert rec.vmpi_mode == "step"
        assert rec.machine == "JUWELS Booster"
        assert rec.machine_hash == machine_config_hash(juwels_booster())
        assert rec.seed == 7
        assert rec.code  # git commit of this repo (or CODE_VERSION)

    def test_record_builder_splits_span_rollup(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("phase:a"):
            pass
        with tracer.span("phase:a"):
            pass
        rec = record("ICON", 10.0, tracer=tracer, code="c")
        assert rec.spans == {"phase:a": {"count": 2}}
        # wall-clock totals are provenance, outside the canonical form
        assert rec.volatile["span_seconds"]["phase:a"] == pytest.approx(2.0)
        assert "span_seconds" not in json.dumps(rec.canonical())

    def test_record_builder_links_journal_digest(self):
        engine = ExecutionEngine(workers=2, cache=MemoryCache())
        suite = load_suite()
        suite.engine = engine
        try:
            suite.run_all(["Arbor", "STREAM"])
        finally:
            suite.engine = None
        rec = record("suite", 1.0, engine=engine, code="c")
        assert rec.journal == engine.journal.digest()
        # the digest is canonical: independent of worker scheduling
        assert rec.journal == engine.journal.canonical().digest()


class TestHistoryStore:
    def test_append_assigns_per_series_seq(self):
        store = HistoryStore()
        a0 = store.append(_rec())
        b0 = store.append(_rec(benchmark="JUQCS"))
        a1 = store.append(_rec())
        assert (a0.seq, a1.seq, b0.seq) == (0, 1, 0)
        assert [r.seq for r in store.series(a0.series_key)] == [0, 1]

    def test_file_backed_round_trip(self, tmp_path):
        db = tmp_path / "h.jsonl"
        store = HistoryStore.open(db)
        store.append(_rec())
        store.append(_rec(fom=101.0))
        again = HistoryStore.open(db)
        assert len(again) == 2
        assert again.canonical_export() == store.canonical_export()
        # appends continue the sequence across processes
        again.append(_rec(fom=102.0))
        assert [r.seq for r in again.series(_rec().series_key)] == [0, 1, 2]

    def test_meta_header_guards_foreign_files(self, tmp_path):
        bad = tmp_path / "not-history.jsonl"
        bad.write_text('{"type": "meta", "schema": "repro.telemetry/v1"}\n')
        with pytest.raises(HistoryError):
            HistoryStore.open(bad)
        assert not is_history_file(bad)
        good = tmp_path / "h.jsonl"
        HistoryStore.open(good)
        assert is_history_file(good)

    def test_malformed_record_reported_with_location(self, tmp_path):
        db = tmp_path / "h.jsonl"
        HistoryStore.open(db).append(_rec())
        with open(db, "a", encoding="utf-8") as fh:
            fh.write('{"params": {}}\n')
        with pytest.raises(HistoryError, match=r"h\.jsonl:3"):
            HistoryStore.open(db)

    def test_canonical_export_is_replay_stable(self, tmp_path):
        def build(path):
            store = HistoryStore.open(path)
            for fom in (100.0, 101.0, 99.5):
                store.append(_rec(fom=fom))
                store.append(_rec(benchmark="JUQCS", fom=fom / 10))
            return store.canonical_export()

        first = build(tmp_path / "a.jsonl")
        second = build(tmp_path / "b.jsonl")
        assert first == second
        # and volatile data never leaks into the canonical document
        store = HistoryStore.open(tmp_path / "c.jsonl")
        store.append(_rec(volatile={"wall_seconds": 123.0}))
        assert "wall_seconds" not in store.canonical_export()

    def test_canonical_export_independent_of_append_interleaving(self):
        # same records per series, different cross-series interleaving
        a = HistoryStore()
        b = HistoryStore()
        for fom in (1.0, 2.0):
            a.append(_rec(fom=fom))
        for fom in (5.0, 6.0):
            a.append(_rec(benchmark="JUQCS", fom=fom))
        for icon, juqcs in ((1.0, 5.0), (2.0, 6.0)):
            b.append(_rec(benchmark="JUQCS", fom=juqcs))
            b.append(_rec(fom=icon))
        assert a.canonical_export() == b.canonical_export()

    def test_concurrent_appends_consistent(self):
        store = HistoryStore()

        def add(n):
            for _ in range(n):
                store.append(_rec())

        threads = [threading.Thread(target=add, args=(25,))
                   for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [r.seq for r in store.series(_rec().series_key)]
        assert seqs == list(range(100))

    def test_compact_keeps_last_per_series(self, tmp_path):
        db = tmp_path / "h.jsonl"
        store = HistoryStore.open(db)
        for fom in (1.0, 2.0, 3.0, 4.0, 5.0):
            store.append(_rec(fom=fom))
        store.append(_rec(benchmark="JUQCS", fom=9.0))
        compacted = store.compact(2)
        assert compacted.path == db
        key = _rec().series_key
        kept = compacted.series(key)
        assert [(r.seq, r.fom_seconds) for r in kept] == [(3, 4.0), (4, 5.0)]
        # the other (short) series survives untouched
        assert len(compacted.series(_rec(benchmark="JUQCS").series_key)) == 1
        # the rewrite is durable and still a valid history DB
        reread = HistoryStore.open(db)
        assert reread.canonical_export() == compacted.canonical_export()
        with pytest.raises(ValueError):
            store.compact(0)

    def test_select_filters_by_benchmark(self):
        store = HistoryStore()
        store.append(_rec())
        store.append(_rec(benchmark="JUQCS"))
        assert set(store.benchmarks()) == {"ICON", "JUQCS"}
        only = store.select("ICON")
        assert len(only) == 1
        assert all(r.benchmark == "ICON"
                   for recs in only.values() for r in recs)


class TestEngineIntegration:
    def _suite_foms(self, workers):
        engine = ExecutionEngine(workers=workers, cache=MemoryCache())
        suite = load_suite()
        suite.engine = engine
        try:
            results = suite.run_all(["Arbor", "JUQCS", "HPL", "STREAM"])
        finally:
            suite.engine = None
        store = HistoryStore()
        for res in results:
            store.append(record(res.benchmark, res.fom_seconds,
                                params={"nodes": res.nodes},
                                system=juwels_booster(), engine=engine,
                                code="pinned"))
        return store.canonical_export()

    def test_canonical_export_byte_identical_across_workers(self):
        assert self._suite_foms(1) == self._suite_foms(8)
