"""Tests for the AI substrate: layers (gradient-checked), optimisers,
parallel training schemes, and the three AI benchmarks."""

import numpy as np
import pytest

from repro.apps.ai import (
    Adam,
    ClipTower,
    ColumnParallelLinear,
    Conv2d,
    Gelu,
    LayerNorm,
    Linear,
    MegatronBenchmark,
    MmoclipBenchmark,
    ResnetBenchmark,
    SelfAttention,
    Sequential,
    Sgd,
    TinyGpt,
    TinyResNet,
    allreduce_gradients,
    clip_contrastive_loss,
    cross_entropy,
    pipeline_train_step,
    softmax,
    synthetic_images,
    synthetic_pairs,
    synthetic_tokens,
)
from repro.cluster import juwels_booster
from repro.vmpi import Machine, run_spmd


def numeric_grad_check(layer, x, rng, atol=1e-6):
    """Input- and parameter-gradient check against finite differences."""
    y = layer.forward(x)
    dy = rng.normal(size=y.shape)
    for p in layer.parameters():
        p.zero_grad()
    dx = layer.backward(dy)
    eps = 1e-6
    i = tuple(rng.integers(s) for s in x.shape)
    xp, xm = x.copy(), x.copy()
    xp[i] += eps
    xm[i] -= eps
    numeric = (np.sum(layer.forward(xp) * dy) -
               np.sum(layer.forward(xm) * dy)) / (2 * eps)
    assert abs(dx[i] - numeric) < atol
    for p in layer.parameters():
        layer.forward(x)
        for q in layer.parameters():
            q.zero_grad()
        layer.backward(dy)
        j = tuple(rng.integers(s) for s in p.shape)
        old = p.value[j]
        p.value[j] = old + eps
        fp = np.sum(layer.forward(x) * dy)
        p.value[j] = old - eps
        fm = np.sum(layer.forward(x) * dy)
        p.value[j] = old
        assert abs(p.grad[j] - (fp - fm) / (2 * eps)) < atol


class TestLayers:
    @pytest.mark.parametrize("factory,shape", [
        (lambda rng: Linear(5, 7, rng), (4, 5)),
        (lambda rng: Gelu(), (4, 5)),
        (lambda rng: LayerNorm(6), (3, 6)),
        (lambda rng: SelfAttention(8, 2, rng), (2, 5, 8)),
        (lambda rng: SelfAttention(8, 2, rng, causal=True), (2, 5, 8)),
        (lambda rng: Conv2d(2, 3, 3, rng), (2, 2, 6, 6)),
        (lambda rng: Sequential([Linear(5, 9, rng), Gelu(),
                                 Linear(9, 5, rng)]), (3, 5)),
    ])
    def test_gradients_match_numeric(self, factory, shape):
        rng = np.random.default_rng(0)
        numeric_grad_check(factory(rng), rng.normal(size=shape), rng)

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        s = softmax(rng.normal(size=(4, 7)))
        assert np.allclose(s.sum(axis=-1), 1.0)
        assert np.all(s >= 0)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss, grad = cross_entropy(logits, np.array([1, 2]))
        assert loss < 1e-8
        assert np.abs(grad).max() < 1e-8

    def test_attention_head_divisibility(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            SelfAttention(7, 2, rng)

    def test_causal_attention_ignores_future(self):
        rng = np.random.default_rng(3)
        attn = SelfAttention(8, 2, rng, causal=True)
        x = rng.normal(size=(1, 6, 8))
        y1 = attn.forward(x)[0, 2].copy()
        x2 = x.copy()
        x2[0, 4:] += 100.0  # perturb the future
        y2 = attn.forward(x2)[0, 2]
        assert np.allclose(y1, y2)


class TestOptimisers:
    def quadratic_params(self):
        from repro.apps.ai import Parameter
        return [Parameter(np.array([5.0, -3.0]))]

    def test_sgd_converges_on_quadratic(self):
        params = self.quadratic_params()
        opt = Sgd(params, lr=0.2)
        for _ in range(60):
            params[0].zero_grad()
            params[0].grad += 2 * params[0].value
            opt.step()
        assert np.abs(params[0].value).max() < 1e-4

    def test_adam_converges_on_quadratic(self):
        params = self.quadratic_params()
        opt = Adam(params, lr=0.3)
        for _ in range(200):
            params[0].zero_grad()
            params[0].grad += 2 * params[0].value
            opt.step()
        assert np.abs(params[0].value).max() < 1e-2

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            Sgd(self.quadratic_params(), lr=0.0)
        with pytest.raises(ValueError):
            Adam(self.quadratic_params(), lr=-1.0)


class TestModelsLearn:
    def test_gpt_loss_decreases(self):
        rng = np.random.default_rng(4)
        gpt = TinyGpt(vocab=12, dim=16, heads=2, layers=2, seq=8, rng=rng)
        opt = Adam(gpt.parameters(), lr=3e-3)
        losses = []
        for _ in range(100):
            ids, tgt = synthetic_tokens(8, 8, 12, rng)
            losses.append(gpt.train_step(ids, tgt, opt))
        assert losses[-1] < np.log(12)  # beats the uniform baseline
        assert losses[-1] < losses[0] / 2

    def test_clip_loss_beats_random_baseline(self):
        rng = np.random.default_rng(5)
        img_t = ClipTower(6, 12, 2, 1, 8, rng)
        txt_t = ClipTower(6, 12, 2, 1, 8, rng)
        opt = Adam(img_t.parameters() + txt_t.parameters(), lr=3e-3)
        loss = None
        for _ in range(60):
            img, txt = synthetic_pairs(16, 3, 6, rng)
            for p in opt.params:
                p.zero_grad()
            zi, zt = img_t(img), txt_t(txt)
            loss, dzi, dzt = clip_contrastive_loss(zi, zt)
            img_t.backward(dzi)
            txt_t.backward(dzt)
            opt.step()
        assert loss < np.log(16)

    def test_resnet_loss_decreases(self):
        rng = np.random.default_rng(6)
        net = TinyResNet(in_ch=2, channels=6, blocks=1, classes=3, rng=rng)
        opt = Adam(net.parameters(), lr=2e-3)
        losses = []
        for _ in range(35):
            x, y = synthetic_images(12, 2, 8, 3, rng)
            losses.append(net.train_step(x, y, opt))
        assert losses[-1] < losses[0]

    def test_clip_embeddings_normalised(self):
        rng = np.random.default_rng(7)
        tower = ClipTower(6, 12, 2, 1, 8, rng)
        img, _ = synthetic_pairs(5, 3, 6, rng)
        z = tower(img)
        assert np.allclose(np.linalg.norm(z, axis=-1), 1.0)


class TestParallelTraining:
    def test_data_parallel_equals_serial(self):
        """Gradient allreduce over batch shards == serial full batch."""
        rng_data = np.random.default_rng(8)
        x_full = rng_data.normal(size=(8, 5))
        y_full = rng_data.integers(3, size=8)

        def build():
            return Sequential([Linear(5, 9, np.random.default_rng(42)),
                               Gelu(),
                               Linear(9, 3, np.random.default_rng(43))])

        serial = build()
        logits = serial.forward(x_full)
        _, dlog = cross_entropy(logits, y_full)
        serial.backward(dlog)
        serial_grads = [p.grad.copy() for p in serial.parameters()]

        def prog(comm):
            model = build()
            lo = comm.rank * 4
            logits = model.forward(x_full[lo:lo + 4])
            _, dlog = cross_entropy(logits, y_full[lo:lo + 4])
            model.backward(dlog)
            yield from allreduce_gradients(comm, model.parameters())
            return [p.grad.copy() for p in model.parameters()]

        res = run_spmd(prog, machine=Machine.on(juwels_booster(), 2))
        for got, want in zip(res.values[0], serial_grads):
            assert np.allclose(got, want, atol=1e-12)

    def test_column_parallel_linear_equals_serial(self):
        rng_data = np.random.default_rng(9)
        x = rng_data.normal(size=(3, 6))
        dy = rng_data.normal(size=(3, 8))
        ref_layer = Linear(6, 8, np.random.default_rng(77), bias=False)

        def prog(comm):
            layer = ColumnParallelLinear(comm, 6, 8,
                                         np.random.default_rng(77))
            y = yield from layer.forward(x)
            dx = yield from layer.backward(dy)
            return y, dx

        ref_y = ref_layer.forward(x)
        # reference weight must equal the concatenation: rebuild serial
        # from the same seed the shards used
        full_w = np.random.default_rng(77).normal(
            scale=1.0 / np.sqrt(6), size=(6, 8))
        ref_y = x @ full_w
        ref_dx = dy @ full_w.T
        res = run_spmd(prog, machine=Machine.on(juwels_booster(), 2))
        y, dx = res.values[0]
        assert np.allclose(y, ref_y, atol=1e-12)
        assert np.allclose(dx, ref_dx, atol=1e-12)

    def test_pipeline_equals_serial(self):
        rng_data = np.random.default_rng(10)
        x = rng_data.normal(size=(4, 5))
        y = rng_data.integers(3, size=4)

        def stage0():
            return Sequential([Linear(5, 7, np.random.default_rng(1)),
                               Gelu()])

        def stage1():
            return Sequential([Linear(7, 3, np.random.default_rng(2))])

        serial = Sequential([stage0(), stage1()])
        loss_serial, dlog = cross_entropy(serial.forward(x), y)
        serial.backward(dlog)

        def prog(comm):
            stage = stage0() if comm.rank == 0 else stage1()

            def loss_fn(logits):
                return cross_entropy(logits, y)

            loss = yield from pipeline_train_step(
                comm, stage, x if comm.rank == 0 else None, loss_fn)
            return loss, [p.grad.copy() for p in stage.parameters()]

        res = run_spmd(prog, machine=Machine.on(juwels_booster(), 2))
        assert res.values[1][0] == pytest.approx(loss_serial)
        serial_grads = [p.grad for p in serial.parameters()]
        dist_grads = res.values[0][1] + res.values[1][1]
        for got, want in zip(dist_grads, serial_grads):
            assert np.allclose(got, want, atol=1e-12)


class TestAiBenchmarks:
    def test_megatron_real_loss_decreases(self):
        res = MegatronBenchmark().run(nodes=1, real=True, scale=0.4)
        assert res.verified is True

    def test_megatron_reference_plausible(self):
        """20M tokens on the 96-node reference in minutes, not hours."""
        res = MegatronBenchmark().run(nodes=96)
        assert 60 < res.fom_seconds < 3600

    def test_megatron_scales(self):
        b = MegatronBenchmark()
        t48 = b.run(nodes=48).fom_seconds
        t192 = b.run(nodes=192).fom_seconds
        assert t192 < t48 / 2

    def test_mmoclip_real_and_scaling(self):
        b = MmoclipBenchmark()
        assert b.run(nodes=1, real=True, scale=0.4).verified is True
        t4 = b.run(nodes=4).fom_seconds
        t16 = b.run(nodes=16).fom_seconds
        assert t16 < t4 / 2

    def test_resnet_real_and_allreduce_limits_scaling(self):
        b = ResnetBenchmark()
        assert b.run(nodes=1, real=True, scale=0.4).verified is True
        t5 = b.run(nodes=5).fom_seconds
        t20 = b.run(nodes=20).fom_seconds
        assert t20 < t5            # still faster ...
        assert t20 > t5 / 4        # ... but below perfect scaling
