"""Tests for PIConGPU (fields, particles, KHI) and ICON (shallow water)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.icon import (
    IconBenchmark,
    SUBCASES,
    gaussian_hill,
    geostrophic_state,
    step_rk3,
)
from repro.apps.picongpu import (
    GRIDS,
    MAX_NODES,
    ParticleSpecies,
    PicongpuBenchmark,
    YeeGrid2D,
    boris_push,
    deposit_charge,
    gather_fields,
    plane_wave,
    run_khi_2d,
)
from repro.core import MemoryVariant
from repro.units import TERA


class TestYeeGrid:
    def test_vacuum_energy_conserved(self):
        g = YeeGrid2D(64, 8)
        plane_wave(g)
        e0 = g.energy()
        dt = g.courant_dt() * 0.9
        g.step_b(dt / 2)
        for _ in range(100):
            g.step_e(dt)
            g.step_b(dt)
        assert abs(g.energy() - e0) / e0 < 0.01

    def test_courant_dt_positive_and_stable(self):
        g = YeeGrid2D(16, 16)
        assert 0 < g.courant_dt() < 1.0

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            YeeGrid2D(1, 5)


class TestParticles:
    def test_boris_gyro_radius(self):
        """Uniform Bz: the orbit radius must be u/(qB/m) = 0.1."""
        sp = ParticleSpecies(x=np.zeros((1, 2)), u=np.array([[0.1, 0.0]]),
                             charge=-1.0, mass=1.0)
        pos = np.zeros(2)
        xs = []
        for _ in range(5000):
            boris_push(sp, np.zeros(1), np.zeros(1), np.ones(1), 0.01)
            pos = pos + sp.velocity()[0] * 0.01
            xs.append(pos.copy())
        xs = np.array(xs)
        radius = (xs[:, 0].max() - xs[:, 0].min()) / 2
        assert radius == pytest.approx(0.1, rel=0.01)

    def test_boris_conserves_energy_in_pure_b(self):
        rng = np.random.default_rng(0)
        sp = ParticleSpecies(x=rng.random((50, 2)),
                             u=rng.normal(size=(50, 2)),
                             charge=-1.0, mass=1.0)
        e0 = sp.kinetic_energy()
        for _ in range(200):
            boris_push(sp, np.zeros(50), np.zeros(50), np.ones(50), 0.05)
        assert sp.kinetic_energy() == pytest.approx(e0, rel=1e-12)

    @given(st.integers(min_value=1, max_value=200),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_deposition_conserves_charge(self, n, seed):
        rng = np.random.default_rng(seed)
        sp = ParticleSpecies(x=rng.random((n, 2)) * 8.0,
                             u=np.zeros((n, 2)), charge=-1.0, mass=1.0)
        rho = deposit_charge(sp, 8, 8, 1.0, 1.0)
        assert float(rho.sum()) == pytest.approx(-n, rel=1e-12)

    def test_gather_uniform_field(self):
        rng = np.random.default_rng(1)
        sp = ParticleSpecies(x=rng.random((20, 2)) * 4.0,
                             u=np.zeros((20, 2)), charge=1.0, mass=1.0)
        ex = np.full((4, 4), 2.5)
        gx, _, _ = gather_fields(sp, ex, ex, ex, 1.0, 1.0)
        assert np.allclose(gx, 2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParticleSpecies(x=np.zeros((2, 2)), u=np.zeros((3, 2)),
                            charge=1.0, mass=1.0)


class TestKhi:
    def test_charge_exactly_conserved(self):
        diag = run_khi_2d(nx=16, ny=16, ppc=2, steps=30)
        assert diag["charge_error"] < 1e-9

    def test_energy_bounded(self):
        diag = run_khi_2d(nx=16, ny=16, ppc=2, steps=30)
        assert diag["energy_growth"] < 2.0


class TestPicongpuBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return PicongpuBenchmark()

    def test_real_verified(self, bench):
        res = bench.run(nodes=1, real=True, scale=0.5)
        assert res.verified is True

    def test_node_cap_640(self, bench):
        """The 3D decomposition caps at 640, not 642 (Sec. IV-A2e)."""
        res = bench.run(nodes=642)
        assert res.nodes == MAX_NODES

    def test_variant_grids_match_paper(self):
        assert GRIDS[MemoryVariant.SMALL] == (4096, 2048, 1024)
        assert GRIDS[MemoryVariant.MEDIUM] == (4096, 2048, 2048)
        assert GRIDS[MemoryVariant.LARGE] == (4096, 4096, 2560)

    def test_strong_scaling_near_ideal(self, bench):
        t2 = bench.run(nodes=2).fom_seconds
        t8 = bench.run(nodes=8).fom_seconds
        assert t2 / t8 > 3.2  # > 80 % efficiency at 4x nodes

    def test_weak_scaling_efficiency(self, bench):
        t64 = bench.run(nodes=64).fom_seconds
        t640 = bench.run(nodes=640).fom_seconds
        assert t64 / t640 > 0.9


class TestShallowWater:
    def test_mass_exactly_conserved(self):
        s = gaussian_hill(32, 32)
        m0 = s.mass()
        dt = s.courant_dt()
        for _ in range(50):
            step_rk3(s, dt)
        assert s.mass() == pytest.approx(m0, rel=1e-13)

    def test_energy_nearly_conserved(self):
        s = gaussian_hill(32, 32)
        e0 = s.energy()
        dt = s.courant_dt()
        for _ in range(50):
            step_rk3(s, dt)
        assert abs(s.energy() - e0) / e0 < 1e-3

    def test_geostrophic_balance_persists(self):
        s = geostrophic_state(8, 48)
        u0 = s.u.copy()
        dt = s.courant_dt()
        for _ in range(60):
            step_rk3(s, dt)
        drift = np.max(np.abs(s.u - u0)) / np.max(np.abs(u0))
        assert drift < 0.05

    def test_validation(self):
        s = gaussian_hill(8, 8)
        with pytest.raises(ValueError):
            step_rk3(s, -1.0)


class TestIconBenchmark:
    def test_real_verified(self):
        res = IconBenchmark().run(nodes=1, real=True, scale=0.4)
        assert res.verified is True
        assert res.details["mass_error"] < 1e-12

    def test_subcase_data_sizes(self):
        """R02B09: 1.8 TB input; R02B10: 4.5 TB (Sec. IV-A1b)."""
        assert SUBCASES["R02B09"]["input_bytes"] == pytest.approx(1.8 * TERA)
        assert SUBCASES["R02B10"]["input_bytes"] == pytest.approx(4.5 * TERA)
        assert SUBCASES["R02B09"]["nodes"] == 120
        assert SUBCASES["R02B10"]["nodes"] == 300

    def test_unknown_subcase(self):
        with pytest.raises(ValueError):
            IconBenchmark("R02B11")

    def test_io_included_in_fom(self):
        res = IconBenchmark().run(nodes=120)
        assert res.details["io_seconds"] > 0
        assert res.fom_seconds > res.details["io_seconds"]

    def test_finer_resolution_costs_more(self):
        coarse = IconBenchmark("R02B09").run(nodes=300)
        fine = IconBenchmark("R02B10").run(nodes=300)
        assert fine.fom_seconds > 2 * coarse.fom_seconds
