"""Unit tests of the metrics registry (repro.telemetry.metrics):
instrument semantics (histogram bucket boundaries above all),
label-series identity, snapshot/delta views and thread safety."""

import threading

import pytest

from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    default_registry,
    render_snapshot,
    set_default_registry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("tasks_total", status="ok")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("fom_seconds")
        gauge.set(10.0)
        gauge.add(-2.5)
        assert gauge.value == 7.5

    def test_label_series_identity(self):
        reg = MetricsRegistry()
        # same labels in any kwarg order -> the same instrument
        a = reg.counter("t", status="ok", cache="hit")
        b = reg.counter("t", cache="hit", status="ok")
        c = reg.counter("t", cache="miss", status="ok")
        assert a is b
        assert a is not c
        a.inc()
        snap = reg.snapshot()
        assert snap["counters"]["t{cache=hit,status=ok}"] == 1.0
        assert snap["counters"]["t{cache=miss,status=ok}"] == 0.0


class TestHistogram:
    def test_bucket_boundaries_are_le(self):
        hist = Histogram(buckets=(0.1, 1.0, 10.0))
        for value, bucket in [
            (0.05, 0),        # below the first bound
            (0.1, 0),         # exactly on a bound -> that bucket (le)
            (0.1000001, 1),   # just above -> next bucket
            (1.0, 1),
            (10.0, 2),
            (10.5, 3),        # above the last bound -> +inf overflow
        ]:
            before = list(hist.counts)
            hist.observe(value)
            changed = [i for i, (a, b) in
                       enumerate(zip(before, hist.counts)) if a != b]
            assert changed == [bucket], \
                f"observe({value}) landed in {changed}, expected [{bucket}]"
        assert hist.count == 6
        assert hist.mean == pytest.approx(
            (0.05 + 0.1 + 0.1000001 + 1.0 + 10.0 + 10.5) / 6)

    def test_invalid_buckets_rejected(self):
        for bad in ((), (1.0, 0.5), (1.0, 1.0)):
            with pytest.raises(ValueError):
                Histogram(buckets=bad)

    def test_reregister_with_different_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(0.1, 1.0))
        assert reg.histogram("lat", buckets=(0.1, 1.0)) is not None
        with pytest.raises(ValueError, match="different buckets"):
            reg.histogram("lat", buckets=(0.5, 1.0))


class TestSnapshotDelta:
    def test_delta_subtracts_counters_and_histograms(self):
        reg = MetricsRegistry()
        counter = reg.counter("runs_total")
        hist = reg.histogram("seconds", buckets=(1.0, 10.0))
        gauge = reg.gauge("level")
        counter.inc(2)
        hist.observe(0.5)
        gauge.set(1.0)
        before = reg.snapshot()
        counter.inc(3)
        hist.observe(5.0)
        gauge.set(7.0)
        delta = MetricsRegistry.delta(before, reg.snapshot())
        assert delta["counters"]["runs_total"] == 3.0
        assert delta["gauges"]["level"] == 7.0  # gauges: later value
        assert delta["histograms"]["seconds"]["counts"] == [0, 1, 0]
        assert delta["histograms"]["seconds"]["count"] == 1
        assert delta["histograms"]["seconds"]["sum"] == pytest.approx(5.0)

    def test_snapshot_is_json_safe_and_renderable(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        text = render_snapshot(reg.snapshot())
        assert "counter   a" in text
        assert "histogram h" in text
        assert "le=1" in text

    def test_empty_registry_renders_placeholder(self):
        assert "(no metrics recorded)" in MetricsRegistry().render()

    def test_default_registry_swap_returns_previous(self):
        original = default_registry()
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert previous is original
            assert default_registry() is fresh
        finally:
            set_default_registry(original)
        assert default_registry() is original


class TestThreadSafety:
    def test_concurrent_updates_do_not_lose_counts(self):
        reg = MetricsRegistry()
        counter = reg.counter("hammer_total")
        hist = reg.histogram("hammer_seconds", buckets=(0.5,))
        threads = 8
        per_thread = 500
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.1)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.value == threads * per_thread
        assert hist.count == threads * per_thread
        assert hist.counts[0] == threads * per_thread
