"""Tests for the storage model / sim filesystem and the batch scheduler."""

import pytest

from repro.cluster import (
    IOR_EASY_TRANSFER,
    IOR_HARD_TRANSFER,
    Job,
    JobState,
    Scheduler,
    SimFilesystem,
    StorageModel,
    juwels_booster,
)
from repro.units import GIB, KIB, MIB


class TestStorageModel:
    def setup_method(self):
        self.model = StorageModel()

    def test_easy_beats_hard(self):
        """IOR easy (16 MiB, file-per-process) must outperform hard
        (4 KiB shared file) -- the whole point of the two variants."""
        total = 64 * GIB
        bw_easy = self.model.bandwidth(total, 64, IOR_EASY_TRANSFER,
                                       write=True, shared_file=False)
        bw_hard = self.model.bandwidth(total, 64, IOR_HARD_TRANSFER,
                                       write=True, shared_file=True)
        assert bw_easy > 5 * bw_hard

    def test_reads_faster_than_writes(self):
        total = 64 * GIB
        r = self.model.bandwidth(total, 64, IOR_EASY_TRANSFER, write=False)
        w = self.model.bandwidth(total, 64, IOR_EASY_TRANSFER, write=True)
        assert r > w

    def test_bandwidth_saturates_with_clients(self):
        total = 64 * GIB
        bw_8 = self.model.bandwidth(total, 8, IOR_EASY_TRANSFER)
        bw_64 = self.model.bandwidth(total, 64, IOR_EASY_TRANSFER)
        bw_128 = self.model.bandwidth(total, 128, IOR_EASY_TRANSFER)
        assert bw_8 < bw_64
        assert bw_128 <= bw_64 * 1.05  # saturated

    def test_shared_file_penalty_only_for_small_transfers(self):
        total = 4 * GIB
        t_small = self.model.transfer_time(total, 16, 4 * KIB, shared_file=True)
        t_small_own = self.model.transfer_time(total, 16, 4 * KIB, shared_file=False)
        t_big = self.model.transfer_time(total, 16, 16 * MIB, shared_file=True)
        t_big_own = self.model.transfer_time(total, 16, 16 * MIB, shared_file=False)
        assert t_small > 1.5 * t_small_own
        assert t_big < 1.1 * t_big_own

    def test_zero_bytes_free(self):
        assert self.model.transfer_time(0, 4, 4 * KIB) == 0.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            self.model.transfer_time(-1, 4, 4 * KIB)
        with pytest.raises(ValueError):
            self.model.transfer_time(10, 0, 4 * KIB)
        with pytest.raises(ValueError):
            self.model.transfer_time(10, 4, 0)


class TestSimFilesystem:
    def test_write_read_roundtrip(self):
        fs = SimFilesystem()
        f = fs.open("out.dat")
        f.write_at(0, b"hello", writer=0)
        f.write_at(5, b"world", writer=1)
        assert f.read_at(0, 10) == b"helloworld"

    def test_read_past_eof_zero_filled(self):
        fs = SimFilesystem()
        f = fs.open("x")
        f.write_at(0, b"ab", writer=0)
        assert f.read_at(0, 4) == b"ab\0\0"

    def test_shared_block_conflicts_counted(self):
        fs = SimFilesystem()
        f = fs.open("shared")
        # Two writers interleave 1 KiB records inside the same 4 KiB block.
        f.write_at(0, b"a" * 1024, writer=0)
        f.write_at(1024, b"b" * 1024, writer=1)
        f.write_at(2048, b"c" * 1024, writer=0)
        assert f.lock_conflicts >= 2

    def test_file_per_process_no_conflicts(self):
        fs = SimFilesystem()
        for w in range(4):
            f = fs.open(f"rank{w}.dat")
            f.write_at(0, b"x" * 8192, writer=w)
        assert all(f.lock_conflicts == 0 for f in fs.files.values())

    def test_unlink(self):
        fs = SimFilesystem()
        fs.open("a").write_at(0, b"zz", writer=0)
        fs.unlink("a")
        fs.unlink("missing")  # no error
        assert fs.total_bytes == 0


class TestScheduler:
    def make(self, nodes=96):
        return Scheduler(juwels_booster().with_nodes(nodes))

    def test_fifo_completion(self):
        s = self.make()
        j1 = s.submit(Job("a", nodes=96, walltime=100))
        j2 = s.submit(Job("b", nodes=96, walltime=50))
        s.drain()
        assert j1.state is JobState.COMPLETED
        assert j2.state is JobState.COMPLETED
        assert j2.start_time == pytest.approx(100)

    def test_backfill_small_job_runs_alongside(self):
        s = self.make()
        s.submit(Job("big", nodes=64, walltime=100))
        blocked = s.submit(Job("blocked", nodes=96, walltime=10))
        filler = s.submit(Job("filler", nodes=16, walltime=5))
        assert filler.state is JobState.RUNNING
        assert blocked.state is JobState.PENDING
        s.drain()
        assert filler.start_time == pytest.approx(0.0)

    def test_payload_runs_and_result_stored(self):
        s = self.make()
        job = s.submit(Job("p", nodes=4, walltime=10,
                           run=lambda alloc: sum(alloc)))
        s.drain()
        assert job.state is JobState.COMPLETED
        assert job.result == sum(job.allocated)

    def test_payload_exception_fails_job(self):
        def boom(alloc):
            raise RuntimeError("kernel panic")
        s = self.make()
        job = s.submit(Job("bad", nodes=1, walltime=10, run=boom))
        s.drain()
        assert job.state is JobState.FAILED
        assert "kernel panic" in job.error

    def test_oversized_request_rejected(self):
        s = self.make()
        with pytest.raises(ValueError):
            s.submit(Job("huge", nodes=1000, walltime=1))

    def test_cell_aligned_allocation(self):
        s = Scheduler(juwels_booster().with_nodes(192))
        s.submit(Job("pad", nodes=8, walltime=100))
        big = s.submit(Job("cells", nodes=96, walltime=10))
        assert big.allocated[0] % 48 == 0

    def test_cancel_pending(self):
        s = self.make()
        s.submit(Job("run", nodes=96, walltime=10))
        j = s.submit(Job("victim", nodes=96, walltime=10))
        s.cancel(j)
        s.drain()
        assert j.state is JobState.CANCELLED

    def test_utilization_bounded(self):
        s = self.make()
        s.submit(Job("a", nodes=48, walltime=100))
        s.submit(Job("b", nodes=48, walltime=100))
        s.drain()
        assert 0.0 < s.utilization <= 1.0

    def test_wait_time(self):
        s = self.make()
        first = s.submit(Job("first", nodes=96, walltime=42))
        second = s.submit(Job("second", nodes=96, walltime=1))
        s.drain()
        assert first.wait_time == pytest.approx(0.0)
        assert second.wait_time == pytest.approx(42.0)

    def test_cancel_running_job_frees_nodes_immediately(self):
        s = self.make()
        victim = s.submit(Job("victim", nodes=96, walltime=100))
        waiting = s.submit(Job("waiting", nodes=96, walltime=10))
        assert victim.state is JobState.RUNNING
        assert waiting.state is JobState.PENDING
        s.cancel(victim)
        # cancelled at now=0: nodes freed, the waiter starts at once
        assert victim.state is JobState.CANCELLED
        assert victim.end_time == pytest.approx(0.0)
        assert waiting.state is JobState.RUNNING
        s.drain()
        assert waiting.state is JobState.COMPLETED
        assert waiting.start_time == pytest.approx(0.0)

    def test_cancel_running_midway_counts_partial_utilization(self):
        s = self.make()
        short = s.submit(Job("short", nodes=48, walltime=10))
        long = s.submit(Job("long", nodes=48, walltime=100))
        assert s.step()  # advance to t=10 (short completes)
        s.cancel(long)   # long ran [0, 10) on 48 nodes
        assert long.state is JobState.CANCELLED
        assert long.end_time == pytest.approx(10.0)
        # used: 10*48 (short) + 10*48 (partial long) over 10 s * 96 nodes
        assert s.utilization == pytest.approx(1.0)
        assert short.state is JobState.COMPLETED

    def test_drain_with_unsatisfiable_job_raises(self):
        # a job equal to the machine is fine; one the free pool can
        # never satisfy (here: a node died permanently) must surface
        # through drain() instead of hanging the simulation
        from repro.faults import FaultInjector, FaultPlan, NodeFault

        plan = FaultPlan(nodes=(NodeFault(node=0, at=0.0),))
        s = Scheduler(juwels_booster().with_nodes(96),
                      faults=FaultInjector(plan))
        s.submit(Job("warm", nodes=1, walltime=1))
        full = s.submit(Job("full-machine", nodes=96, walltime=1))
        with pytest.raises(RuntimeError, match="full-machine"):
            s.drain()
        assert full.state is JobState.PENDING
        assert s.dead_nodes == 1

    def test_drain_job_larger_than_machine_rejected_at_submit(self):
        s = self.make()
        with pytest.raises(ValueError, match="requests 97 nodes"):
            s.submit(Job("too-big", nodes=97, walltime=1))

    def test_utilization_accounts_partial_run_after_requeue(self):
        from repro.faults import FaultInjector, FaultPlan, NodeFault

        # node 0 dies at t=30 and returns at t=50; the full-machine job
        # started at t=0 requeues and reruns [50, 150)
        plan = FaultPlan(nodes=(NodeFault(node=0, at=30.0, duration=20.0),))
        s = Scheduler(juwels_booster().with_nodes(96),
                      faults=FaultInjector(plan))
        job = s.submit(Job("big", nodes=96, walltime=100))
        s.drain()
        assert job.state is JobState.COMPLETED
        assert job.requeues == 1
        assert job.start_time == pytest.approx(50.0)
        assert job.end_time == pytest.approx(150.0)
        # partial [0, 30) * 96 + full [50, 150) * 96 over 150 s * 96
        assert s.utilization == pytest.approx((30.0 + 100.0) / 150.0)
