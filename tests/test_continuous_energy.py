"""Tests for Continuous Benchmarking (Sec. VI future work) and the
energy/TCO plumbing (power model, job energy, lifetime cost)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import EnergyModel, juwels_booster
from repro.core import (
    Baseline,
    BenchmarkResult,
    ContinuousBenchmarking,
    RegressionAlert,
)


def _result(name: str, fom: float) -> BenchmarkResult:
    return BenchmarkResult(benchmark=name, nodes=8, fom_seconds=fom)


class TestBaseline:
    def test_from_runs_median_and_noise(self):
        base = Baseline.from_runs({"Arbor": [500.0, 498.0, 502.0]})
        assert base.foms["Arbor"] == pytest.approx(500.0)
        assert base.noise["Arbor"] >= 0.01

    def test_single_run_gets_floor_noise(self):
        base = Baseline.from_runs({"Arbor": [500.0]})
        assert base.noise["Arbor"] == pytest.approx(0.01)

    def test_invalid_runs_rejected(self):
        with pytest.raises(ValueError):
            Baseline.from_runs({"Arbor": []})
        with pytest.raises(ValueError):
            Baseline.from_runs({"Arbor": [1.0, -2.0]})

    def test_record(self):
        base = Baseline()
        base.record("JUQCS", 5.9)
        assert base.foms["JUQCS"] == 5.9
        with pytest.raises(ValueError):
            base.record("JUQCS", 0.0)


class TestContinuousBenchmarking:
    def make(self, degradation_after=None, factor=1.5):
        base = Baseline.from_runs({"Arbor": [500.0, 501.0, 499.0],
                                   "JUQCS": [6.0, 6.0, 6.1]})
        counter = {"n": 0}

        def runner(name):
            counter["n"] += 1
            fom = base.foms[name]
            if degradation_after is not None and \
                    len(cb.history) >= degradation_after and name == "JUQCS":
                fom *= factor
            return _result(name, fom * (1.0 + 0.001))

        cb = ContinuousBenchmarking(base, runner)
        return cb

    def test_healthy_system_no_alerts(self):
        cb = self.make()
        for _ in range(4):
            report = cb.run_interval()
            assert report.healthy

    def test_degradation_detected_on_right_benchmark(self):
        """A 'bad maintenance' slowing one benchmark by 50 % fires an
        alert for exactly that benchmark."""
        cb = self.make(degradation_after=2)
        for _ in range(2):
            assert cb.run_interval().healthy
        report = cb.run_interval()
        assert not report.healthy
        assert [a.benchmark for a in report.alerts] == ["JUQCS"]
        assert report.alerts[0].slowdown == pytest.approx(1.5, rel=0.01)

    def test_small_noise_does_not_alert(self):
        base = Baseline.from_runs({"Arbor": [500.0, 505.0, 495.0]})
        rng = np.random.default_rng(0)

        def runner(name):
            return _result(name, 500.0 * (1 + rng.normal(scale=0.005)))

        cb = ContinuousBenchmarking(base, runner)
        for _ in range(10):
            assert cb.run_interval().healthy

    def test_drift_estimation(self):
        base = Baseline.from_runs({"Arbor": [100.0, 100.0]})
        step = {"n": 0}

        def runner(name):
            step["n"] += 1
            return _result(name, 100.0 + 2.0 * step["n"])  # +2 %/interval

        cb = ContinuousBenchmarking(base, runner, sigma=1e9)  # mute alerts
        for _ in range(5):
            cb.run_interval()
        assert cb.drift("Arbor") == pytest.approx(0.02, rel=0.05)

    def test_unknown_benchmark_rejected(self):
        cb = self.make()
        with pytest.raises(KeyError):
            cb.run_interval(["HAL9000"])

    def test_summary_renders(self):
        cb = self.make()
        cb.run_interval()
        text = cb.summary()
        assert "Arbor" in text and "drift" in text

    def test_threshold_validation(self):
        base = Baseline.from_runs({"A": [1.0]})
        with pytest.raises(ValueError):
            ContinuousBenchmarking(base, lambda n: _result(n, 1.0),
                                   sigma=0.0)

    def test_regression_alert_slowdown(self):
        alert = RegressionAlert(benchmark="x", baseline=100.0,
                                measured=130.0)
        assert alert.slowdown == pytest.approx(1.3)


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def model(self):
        return EnergyModel(system=juwels_booster())

    def test_idle_vs_peak_power(self, model):
        assert model.node_power(0.0) == pytest.approx(500.0)
        assert model.node_power(1.0) == pytest.approx(2500.0)
        with pytest.raises(ValueError):
            model.node_power(1.5)

    def test_job_energy_scales_linearly(self, model):
        one = model.job_energy(nodes=1, seconds=100.0)
        many = model.job_energy(nodes=10, seconds=100.0)
        assert many == pytest.approx(10 * one)

    def test_pue_applied(self):
        lean = EnergyModel(system=juwels_booster(), pue=1.0)
        fat = EnergyModel(system=juwels_booster(), pue=1.3)
        assert fat.job_energy(1, 100.0) == pytest.approx(
            1.3 * lean.job_energy(1, 100.0))

    def test_kwh_conversion(self, model):
        joules = model.job_energy(1, 3600.0, utilization=1.0)
        kwh = model.job_energy_kwh(1, 3600.0, utilization=1.0)
        assert kwh == pytest.approx(joules / 3.6e6)
        # one node-hour at peak + PUE: 2.5 kW * 1.15 = 2.875 kWh
        assert kwh == pytest.approx(2.875)

    def test_lifetime_cost_magnitude(self, model):
        """936 nodes for 6 years lands in the tens of MEUR -- the
        'substantial part of the overall project budget' (Sec. II-B)."""
        cost = model.lifetime_energy_cost(lifetime_years=6.0)
        assert 2e7 < cost < 3e8

    def test_flops_per_joule(self, model):
        eff = model.flops_per_joule(achieved_flops=44e15)  # HPL number
        assert 1e9 < eff < 1e11  # GF/J scale of an A100 system

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_power_monotone_in_utilization(self, u):
        model = EnergyModel(system=juwels_booster())
        assert model.node_power(u) <= model.node_power(1.0)
        assert model.node_power(u) >= model.node_power(0.0)

    def test_negative_inputs_rejected(self, model):
        with pytest.raises(ValueError):
            model.job_energy(-1, 10.0)
