"""Tests for the 7 synthetic benchmarks."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthetic import (
    Graph500Benchmark,
    HpcgBenchmark,
    HplBenchmark,
    IorBenchmark,
    LinktestBenchmark,
    MESSAGE_SIZES,
    OsuBenchmark,
    StreamBenchmark,
    bfs,
    blocked_lu,
    build_27pt,
    build_csr,
    gpu_stream_model,
    hpcg_cg,
    hpl_flops,
    hpl_residual,
    ior_functional_run,
    kronecker_edges,
    lu_solve,
    run_stream,
    symgs,
    validate_bfs,
)
from repro.units import GIGA
from repro.vmpi import Machine


class TestHpl:
    @given(st.integers(min_value=4, max_value=60),
           st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_lu_solves_random_systems(self, n, nb, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, n)) + n * np.eye(n)
        b = rng.normal(size=n)
        lu, piv = blocked_lu(a, nb=nb)
        x = lu_solve(lu, piv, b)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_blocked_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(40, 40))
        b = rng.normal(size=40)
        lu, piv = blocked_lu(a, nb=8)
        assert np.allclose(lu_solve(lu, piv, b), np.linalg.solve(a, b),
                           atol=1e-9)

    def test_hpl_residual_criterion(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(100, 100))
        b = rng.normal(size=100)
        lu, piv = blocked_lu(a)
        x = lu_solve(lu, piv, b)
        assert hpl_residual(a, x, b) < 16.0

    def test_singular_matrix_detected(self):
        with pytest.raises(np.linalg.LinAlgError):
            blocked_lu(np.zeros((4, 4)))

    def test_flop_count(self):
        assert hpl_flops(1000) == pytest.approx(2 / 3 * 1e9, rel=0.01)

    def test_benchmark_real_and_efficiency(self):
        b = HplBenchmark()
        assert b.run(nodes=1, real=True, scale=0.4).verified is True
        res = b.run(nodes=8)
        assert 0.3 < res.details["hpl_efficiency"] < 1.0


class TestHpcg:
    def test_operator_row_sums(self):
        """Interior rows sum to 26 - 26 = 0; boundary rows are positive."""
        a = build_27pt(4)
        sums = np.asarray(a.sum(axis=1)).ravel()
        interior = sums.reshape(4, 4, 4)[1:-1, 1:-1, 1:-1]
        assert np.allclose(interior, 0.0)
        assert sums[0] > 0

    def test_operator_symmetric(self):
        a = build_27pt(4)
        assert (a - a.T).nnz == 0

    def test_symgs_reduces_residual(self):
        a = build_27pt(5)
        rng = np.random.default_rng(2)
        b = rng.normal(size=a.shape[0])
        x = symgs(a, b)
        assert np.linalg.norm(b - a @ x) < np.linalg.norm(b)

    def test_cg_converges_monotonically(self):
        a = build_27pt(8)
        rng = np.random.default_rng(3)
        b = rng.normal(size=a.shape[0])
        _, history = hpcg_cg(a, b, iterations=20)
        assert history[-1] < 1e-6
        assert all(h2 <= h1 * 1.0001 for h1, h2 in zip(history, history[1:]))

    def test_benchmark_real(self):
        assert HpcgBenchmark().run(nodes=1, real=True,
                                   scale=0.5).verified is True


class TestStream:
    def test_kernels_verified(self):
        res = run_stream(n=200_000, repeats=2)
        assert res.verified
        assert all(bw > 1e8 for bw in res.bandwidth.values())

    def test_gpu_model_near_hbm_peak(self):
        m = Machine.booster(1)
        model = gpu_stream_model(m)
        assert model["triad"] == pytest.approx(1555e9 * 0.87)

    def test_too_small_array_rejected(self):
        with pytest.raises(ValueError):
            run_stream(n=10)

    def test_benchmark(self):
        res = StreamBenchmark().run(nodes=1, real=True, scale=0.2)
        assert res.verified is True


class TestGraph500:
    def test_generator_edge_count(self):
        edges = kronecker_edges(scale=8)
        assert edges.shape == (2, 16 << 8)

    def test_bfs_validates_on_kronecker(self):
        s = 10
        adj = build_csr(kronecker_edges(s), 1 << s)
        res = bfs(adj, root=0)
        assert validate_bfs(adj, 0, res)
        assert res.edges_traversed > 0

    def test_bfs_levels_on_path_graph(self):
        edges = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])
        adj = build_csr(edges, 5)
        res = bfs(adj, root=0)
        assert list(res.level) == [0, 1, 2, 3, 4]
        assert res.levels == 4

    def test_validation_catches_bad_parent(self):
        edges = np.array([[0, 1], [1, 2]])
        adj = build_csr(edges, 3)
        res = bfs(adj, 0)
        res.parent[2] = 0  # edge 0-2 does not exist
        assert not validate_bfs(adj, 0, res)

    def test_bfs_root_bounds(self):
        adj = build_csr(np.array([[0], [1]]), 2)
        with pytest.raises(ValueError):
            bfs(adj, 5)

    def test_benchmark_real(self):
        res = Graph500Benchmark().run(nodes=1, real=True, scale=0.6)
        assert res.verified is True


class TestIor:
    def test_easy_no_conflicts(self):
        stats = ior_functional_run(nranks=4, variant="easy")
        assert stats["errors"] == 0
        assert stats["lock_conflicts"] == 0

    def test_hard_has_conflicts(self):
        stats = ior_functional_run(nranks=4, variant="hard")
        assert stats["errors"] == 0
        assert stats["lock_conflicts"] > 0

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            ior_functional_run(2, "medium")
        with pytest.raises(ValueError):
            IorBenchmark("medium")

    def test_easy_model_bandwidth_beats_hard(self):
        easy = IorBenchmark("easy").run(nodes=128)
        hard = IorBenchmark("hard").run(nodes=128)
        assert easy.details["write_bandwidth"] > \
            2 * hard.details["write_bandwidth"]

    def test_hard_node_minimum(self):
        """Table II: the hard variant needs > 64 nodes."""
        with pytest.raises(ValueError):
            IorBenchmark("hard").run(nodes=32)


class TestLinktest:
    def test_bisection_capped_by_topology(self):
        res = LinktestBenchmark().run(nodes=96)
        assert res.details["aggregate_bandwidth"] <= \
            res.details["analytic_bisection"] * 1.0001

    def test_intra_cell_full_bandwidth(self):
        res = LinktestBenchmark().run(nodes=16)
        # inside one cell the cut is injection-limited, no taper
        per_node = res.details["aggregate_bandwidth"] / 8  # half = 8 nodes
        assert per_node > 50e9

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            LinktestBenchmark().run(nodes=1)

    def test_larger_jobs_more_aggregate(self):
        small = LinktestBenchmark().run(nodes=96)
        large = LinktestBenchmark().run(nodes=384)
        assert large.details["aggregate_bandwidth"] > \
            small.details["aggregate_bandwidth"]


class TestOsu:
    def test_real_payload_integrity(self):
        res = OsuBenchmark().run(nodes=2, real=True, scale=1.0)
        assert res.verified is True

    def test_latency_vs_bandwidth_regimes(self):
        b = OsuBenchmark()
        sweep = b.sweep(inter_node=True)
        t_small = sweep[0][1]
        t_big = sweep[-1][1]
        assert t_small == pytest.approx(5e-6, rel=0.1)  # HDR latency
        assert t_big > 100 * t_small                    # bandwidth regime

    def test_nvlink_beats_ib(self):
        b = OsuBenchmark()
        intra = dict(b.sweep(inter_node=False))
        inter = dict(b.sweep(inter_node=True))
        big = MESSAGE_SIZES[-1]
        assert intra[big] < inter[big] / 3
