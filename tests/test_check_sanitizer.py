"""Lock-order watcher tests: cycle detection, stdlib compatibility."""

import threading

import pytest

from repro.check.sanitizer import (
    LockGraph,
    LockOrderError,
    LockOrderWatcher,
    install,
    installed_graph,
    uninstall,
)


def test_ab_ba_cycle_across_two_threads_names_both_sites():
    """The headline behaviour: an A->B / B->A schedule raises at the
    moment the inverting edge appears, naming both acquisition sites."""
    graph = LockGraph()
    lock_a = LockOrderWatcher("A", graph=graph)
    lock_b = LockOrderWatcher("B", graph=graph)
    errors: list[LockOrderError] = []

    def forward():                      # thread 1: A then B
        with lock_a:
            with lock_b:
                pass

    def backward():                     # thread 2: B then A
        try:
            with lock_b:
                with lock_a:
                    pass
        except LockOrderError as exc:
            errors.append(exc)

    t1 = threading.Thread(target=forward)
    t1.start()
    t1.join()
    t2 = threading.Thread(target=backward)
    t2.start()
    t2.join()

    assert len(errors) == 1
    message = str(errors[0])
    # the diagnostic names both locks and both acquisition sites
    assert "acquiring A" in message and "while holding B" in message
    assert message.count("test_check_sanitizer.py") >= 2
    assert "A -> B" in message


def test_transitive_cycle_detected():
    """A->B, B->C, then C->A closes the cycle through two edges."""
    graph = LockGraph()
    a = LockOrderWatcher("A", graph=graph)
    b = LockOrderWatcher("B", graph=graph)
    c = LockOrderWatcher("C", graph=graph)
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with pytest.raises(LockOrderError, match="A -> B -> C"):
        with c:
            with a:
                pass


def test_consistent_order_never_raises():
    graph = LockGraph()
    a = LockOrderWatcher("A", graph=graph)
    b = LockOrderWatcher("B", graph=graph)
    for _ in range(3):
        with a:
            with b:
                pass
    snap = graph.snapshot()
    assert snap["edges"] == 1
    assert snap["acquisitions"] >= 6


def test_self_deadlock_on_nonreentrant_lock():
    graph = LockGraph()
    lock = LockOrderWatcher("L", graph=graph)
    with lock:
        with pytest.raises(LockOrderError, match="self-deadlock"):
            lock.acquire()
        # non-blocking re-acquire reports failure instead of raising
        assert lock.acquire(blocking=False) is False


def test_reentrant_watcher_allows_nesting():
    graph = LockGraph()
    rlock = LockOrderWatcher("R", graph=graph, reentrant=True)
    with rlock:
        with rlock:
            assert rlock.locked()
    assert not rlock.locked()


def test_watcher_backs_threading_condition():
    """Conditions built on a watcher must work: queues/events use them."""
    graph = LockGraph()
    cond = threading.Condition(LockOrderWatcher("cv", graph=graph))
    results = []

    def consumer():
        with cond:
            while not results:
                cond.wait(timeout=5)
            results.append("consumed")

    t = threading.Thread(target=consumer)
    t.start()
    with cond:
        results.append("produced")
        cond.notify()
    t.join(timeout=5)
    assert results == ["produced", "consumed"]


def test_install_swaps_factories_and_uninstall_restores():
    before = threading.Lock
    graph = install()
    try:
        assert installed_graph() is graph
        assert install() is graph          # idempotent
        lock = threading.Lock()
        assert isinstance(lock, LockOrderWatcher)
        with lock:
            assert lock.locked()
        rlock = threading.RLock()
        assert isinstance(rlock, LockOrderWatcher)
        with rlock:
            with rlock:
                pass
    finally:
        uninstall()
    assert installed_graph() is None
    assert threading.Lock is before or threading.Lock() is not None


def test_installed_locks_feed_shared_graph():
    graph = install()
    try:
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass
        assert graph.snapshot()["edges"] >= 1
        assert graph.snapshot()["locks"] >= 2
    finally:
        uninstall()
