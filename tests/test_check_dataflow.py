"""Behavioural tests of the UNIT3xx dataflow pass on small programs.

Each test writes a miniature module into a tmp tree and runs the
analyzer restricted to the dimensional rules, so the assertions are
about the *flow semantics* (binding, weak literals, yields) rather
than fixture line numbers.
"""

import pytest

from repro.check import Analyzer

UNIT_RULES = ["UNIT301", "UNIT302", "UNIT303", "UNIT304", "UNIT305"]


def run_source(tmp_path, source):
    tree = tmp_path / "apps"
    tree.mkdir(exist_ok=True)
    (tree / "m.py").write_text(source)
    return Analyzer(only=UNIT_RULES).run(tmp_path, rel_base=tmp_path)


def rules_of(report):
    return sorted(f.rule for f in report.active)


# -- UNIT301: mixed addition -------------------------------------------------

def test_adding_time_to_bytes_flagged(tmp_path):
    report = run_source(tmp_path, (
        "def f(elapsed, nbytes):\n"
        "    return elapsed + nbytes\n"))
    assert rules_of(report) == ["UNIT301"]


def test_literal_operand_is_polymorphic(tmp_path):
    # 0.0 may initialise any accumulator: no finding
    report = run_source(tmp_path, (
        "def f(elapsed):\n"
        "    total = 0.0\n"
        "    total = total + elapsed\n"
        "    return total\n"))
    assert not report.active


def test_augmented_assignment_checked(tmp_path):
    report = run_source(tmp_path, (
        "def f(elapsed, nbytes):\n"
        "    elapsed += nbytes\n"
        "    return elapsed\n"))
    assert rules_of(report) == ["UNIT301"]


# -- UNIT302: rate * rate ----------------------------------------------------

def test_rate_times_rate_flagged(tmp_path):
    report = run_source(tmp_path, (
        "def f(bandwidth, peak_flops):\n"
        "    return bandwidth * peak_flops\n"))
    assert rules_of(report) == ["UNIT302"]


def test_rate_times_time_is_fine(tmp_path):
    report = run_source(tmp_path, (
        "def f(bandwidth, elapsed):\n"
        "    return bandwidth * elapsed\n"))
    assert not report.active


# -- UNIT303: prefix-family mixing -------------------------------------------

def test_si_times_binary_flagged(tmp_path):
    report = run_source(tmp_path, (
        "from repro.units import GIB, GIGA\n"
        "x = GIB * GIGA\n"))
    assert rules_of(report) == ["UNIT303"]


def test_division_is_the_conversion_idiom(tmp_path):
    report = run_source(tmp_path, (
        "from repro.units import GIB, GIGA\n"
        "def f(nbytes):\n"
        "    return nbytes * GIB / GIGA\n"))
    assert not report.active


# -- UNIT304: annotated arguments and fmt_si ---------------------------------

def test_wrong_dimension_to_annotated_keyword(tmp_path):
    report = run_source(tmp_path, (
        'DIMS = {"transfer.nbytes": "B"}\n'
        "def transfer(nbytes):\n"
        "    return nbytes\n"
        "def f(elapsed):\n"
        "    return transfer(nbytes=elapsed)\n"))
    assert rules_of(report) == ["UNIT304"]


def test_fmt_si_unit_string_is_an_assertion(tmp_path):
    report = run_source(tmp_path, (
        "from repro.units import fmt_si\n"
        "def f(elapsed):\n"
        "    return fmt_si(elapsed, 'B/s')\n"))
    assert rules_of(report) == ["UNIT304"]


def test_fmt_si_freeform_label_makes_no_claim(tmp_path):
    # 'ranks' is not in the dimension vocabulary: no assertion made
    report = run_source(tmp_path, (
        "from repro.units import fmt_si\n"
        "def f(elapsed):\n"
        "    return fmt_si(elapsed, 'ranks')\n"))
    assert not report.active


# -- UNIT305: the time-metric contract ---------------------------------------

def test_annotated_return_must_be_seconds(tmp_path):
    report = run_source(tmp_path, (
        'DIMS = {"fom.return": "s"}\n'
        "def fom(nbytes, bandwidth):\n"
        "    return nbytes * bandwidth\n"))
    assert rules_of(report) == ["UNIT305"]


def test_correct_reduction_to_seconds_is_clean(tmp_path):
    report = run_source(tmp_path, (
        'DIMS = {"fom.return": "s"}\n'
        "def fom(nbytes, bandwidth, latency):\n"
        "    return latency + nbytes / bandwidth\n"))
    assert not report.active


def test_non_time_annotated_return_reports_unit304(tmp_path):
    report = run_source(tmp_path, (
        'DIMS = {"volume.return": "B"}\n'
        "def volume(elapsed):\n"
        "    return elapsed\n"))
    assert rules_of(report) == ["UNIT304"]


# -- binding semantics -------------------------------------------------------

def test_weak_value_adopts_name_dimension(tmp_path):
    # MESSAGE_BYTES = 16 * MIB is bytes by declaration; feeding it to
    # a bandwidth-annotated parameter must therefore be a finding
    report = run_source(tmp_path, (
        "from repro.units import MIB\n"
        'DIMS = {"rate.bw": "B/s"}\n'
        "MESSAGE_BYTES = 16 * MIB\n"
        "def rate(bw):\n"
        "    return bw\n"
        "def f():\n"
        "    return rate(bw=MESSAGE_BYTES)\n"))
    assert rules_of(report) == ["UNIT304"]


def test_proven_value_keeps_dimension_over_name(tmp_path):
    # a *known* non-weak value does not silently become what the name
    # claims: the contradiction surfaces downstream
    report = run_source(tmp_path, (
        "from repro.units import fmt_si\n"
        "def f(elapsed):\n"
        "    nbytes = elapsed\n"
        "    return fmt_si(nbytes, 'B')\n"))
    assert rules_of(report) == ["UNIT304"]
    assert "dimension is s" in report.active[0].message


def test_conditional_literal_arm_is_polymorphic(tmp_path):
    report = run_source(tmp_path, (
        "def f(nbytes, bandwidth):\n"
        "    seconds = nbytes / bandwidth if bandwidth else 0.0\n"
        "    return seconds\n"))
    assert not report.active


def test_yielded_charges_are_checked(tmp_path):
    # SPMD rank programs charge costs via `yield comm.compute(...)`;
    # the yielded call's arguments must still be dimension-checked
    report = run_source(tmp_path, (
        'DIMS = {"compute.bytes_moved": "B"}\n'
        "def compute(bytes_moved):\n"
        "    return bytes_moved\n"
        "def program(elapsed):\n"
        "    yield compute(bytes_moved=elapsed)\n"))
    assert rules_of(report) == ["UNIT304"]


# -- finding metadata --------------------------------------------------------

def test_findings_carry_inference_traces(tmp_path):
    report = run_source(tmp_path, (
        "def f(elapsed, nbytes):\n"
        "    return elapsed + nbytes\n"))
    (finding,) = report.active
    assert finding.trace
    assert any("elapsed" in step for step in finding.trace)
    assert any("nbytes" in step for step in finding.trace)


def test_severities(tmp_path):
    from repro.check import Severity
    report = run_source(tmp_path, (
        "from repro.units import GIB, GIGA\n"
        "x = GIB * GIGA\n"
        "def f(elapsed, nbytes):\n"
        "    return elapsed + nbytes\n"))
    by_rule = {f.rule: f.severity for f in report.active}
    assert by_rule == {"UNIT303": Severity.WARNING,
                       "UNIT301": Severity.ERROR}


def test_analyzer_own_package_exempt(tmp_path):
    # the check package talks *about* dimensions; a path under check/
    # is never dimension-analyzed
    tree = tmp_path / "check"
    tree.mkdir()
    (tree / "m.py").write_text(
        "def f(elapsed, nbytes):\n    return elapsed + nbytes\n")
    report = Analyzer(only=UNIT_RULES).run(tmp_path, rel_base=tmp_path)
    assert not report.active
