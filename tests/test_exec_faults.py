"""Fault-boundary tests: a benchmark stub that fails N times then
succeeds exercises the retry/timeout paths, and a permanently failing
workunit degrades a run instead of aborting it (``WorkunitRun.error``
semantics preserved under the parallel engine)."""

import threading
import time

import pytest

from repro.exec import ExecutionEngine, TaskTimeout, WorkItem
from repro.jube.parameters import ParameterSet
from repro.jube.runtime import BenchmarkSpec, JubeRuntime
from repro.jube.steps import Step, StepError


class FailNTimesStub:
    """A benchmark-like callable failing its first ``n_failures`` calls.

    Thread-safe so engine workers can hammer it concurrently.
    """

    def __init__(self, n_failures: int, value: float = 42.0,
                 slow_first: float = 0.0):
        self.n_failures = n_failures
        self.value = value
        self.slow_first = slow_first
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            self.calls += 1
            attempt = self.calls
        if self.slow_first and attempt == 1:
            time.sleep(self.slow_first)
            return self.value
        if attempt <= self.n_failures:
            raise RuntimeError(f"injected failure #{attempt}")
        return self.value


class TestRetries:
    def test_fails_n_then_succeeds_within_budget(self):
        stub = FailNTimesStub(n_failures=3)
        engine = ExecutionEngine(workers=1, retries=3)
        out = engine.map([WorkItem(fn=stub, label="flaky")])
        assert out[0].ok and out[0].value == 42.0
        assert out[0].attempts == 4
        assert stub.calls == 4

    def test_budget_too_small_yields_error_record(self):
        stub = FailNTimesStub(n_failures=5)
        engine = ExecutionEngine(workers=1, retries=2)
        out = engine.map([WorkItem(fn=stub)])
        assert not out[0].ok
        assert out[0].attempts == 3
        assert "injected failure #3" in out[0].error

    def test_permanent_failure_does_not_abort_siblings(self):
        bad = FailNTimesStub(n_failures=10 ** 6)
        good = [FailNTimesStub(n_failures=0, value=float(i))
                for i in range(6)]
        items = [WorkItem(fn=g, label=f"good{i}")
                 for i, g in enumerate(good)]
        items.insert(3, WorkItem(fn=bad, label="doomed", retries=2))
        out = ExecutionEngine(workers=4).map(items)
        assert [o.ok for o in out] == [True, True, True, False,
                                       True, True, True]
        assert [o.value for o in out if o.ok] == [0.0, 1.0, 2.0,
                                                  3.0, 4.0, 5.0]
        journal = ExecutionEngine(workers=4).journal  # fresh = empty
        assert len(journal) == 0

    def test_timeout_then_retry_succeeds(self):
        # first attempt is slow (times out post-hoc), second is instant
        stub = FailNTimesStub(n_failures=0, slow_first=0.05)
        engine = ExecutionEngine(workers=1, retries=1, timeout=0.01)
        out = engine.map([WorkItem(fn=stub)])
        assert out[0].ok and out[0].attempts == 2

    def test_timeout_without_retry_is_an_error(self):
        stub = FailNTimesStub(n_failures=0, slow_first=0.05)
        out = ExecutionEngine(workers=1, timeout=0.01).map(
            [WorkItem(fn=stub)])
        assert not out[0].ok
        assert isinstance(out[0].exception, TaskTimeout)


class TestCooperativeTimeoutSemantics:
    """Regression pins for the documented post-hoc timeout contract.

    The timeout is cooperative: an over-budget attempt runs to
    completion and only *then* fails with :class:`TaskTimeout`.  A
    timed-out final attempt must therefore report ``ok=False`` with
    the measured elapsed time in the error string.
    """

    def test_overlong_attempt_runs_to_completion_before_failing(self):
        stub = FailNTimesStub(n_failures=0, slow_first=0.05)
        out = ExecutionEngine(workers=1, timeout=0.01).map(
            [WorkItem(fn=stub, label="slow")])
        # the payload DID complete (one call happened) -- the timeout
        # fired after the fact, not preemptively
        assert stub.calls == 1
        assert not out[0].ok

    def test_timed_out_final_attempt_reports_elapsed_in_error(self):
        stub = FailNTimesStub(n_failures=0, slow_first=0.05)
        out = ExecutionEngine(workers=1, retries=0, timeout=0.01).map(
            [WorkItem(fn=stub, label="slow")])
        assert out[0].ok is False
        exc = out[0].exception
        assert isinstance(exc, TaskTimeout)
        assert exc.elapsed >= 0.05 and exc.budget == 0.01
        # the elapsed time is part of the journalled error string
        assert "attempt took" in out[0].error
        assert f"{exc.elapsed:.3f}" in out[0].error
        assert "timeout 0.010" in out[0].error

    def test_virtual_clock_timeout_is_deterministic(self):
        from repro.telemetry import ManualClock, Tracer

        def two_ticks():
            clock()  # consume virtual time inside the attempt
            return 1

        clock = ManualClock(start=0.0, tick=1.0)
        engine = ExecutionEngine(workers=1, timeout=0.5,
                                 tracer=Tracer(clock=clock))
        out = engine.map([WorkItem(fn=two_ticks, label="ticks")])
        assert not out[0].ok
        assert isinstance(out[0].exception, TaskTimeout)


def _spec(fail_on: int) -> BenchmarkSpec:
    """A spec with 5 workunits where workunit ``fail_on`` always fails."""

    def execute(ctx):
        if ctx.params["i"] == fail_on:
            raise RuntimeError("injected workunit failure")
        return {"fom_seconds": 10.0 * ctx.params["i"] + 1.0}

    pset = ParameterSet(name="sweep").add("i", [0, 1, 2, 3, 4])
    return BenchmarkSpec(name="faulty", parametersets=[pset],
                         steps=[Step(name="execute", tasks=[execute])])


class TestJubeWorkunitFaults:
    def test_keep_going_records_error_and_siblings_complete(self):
        runtime = JubeRuntime(engine=ExecutionEngine(workers=4))
        result = runtime.run(_spec(fail_on=2), keep_going=True)
        assert not result.ok
        errors = [w for w in result.workunits if not w.ok]
        assert len(errors) == 1
        assert errors[0].params["i"] == 2
        assert "injected workunit failure" in errors[0].error
        # siblings all completed with their outputs
        oks = [w for w in result.workunits if w.ok]
        assert [w.outputs["execute"]["fom_seconds"] for w in oks] == \
            [1.0, 11.0, 31.0, 41.0]
        # error-carrying workunits are excluded from records/tables
        assert len(result.records()) == 4

    def test_strict_mode_reraises_step_error(self):
        runtime = JubeRuntime(engine=ExecutionEngine(workers=4))
        with pytest.raises(StepError, match="injected workunit failure"):
            runtime.run(_spec(fail_on=1), keep_going=False)

    def test_engine_path_matches_sequential_semantics(self):
        seq = JubeRuntime().run(_spec(fail_on=3), keep_going=True)
        par = JubeRuntime(engine=ExecutionEngine(workers=8)).run(
            _spec(fail_on=3), keep_going=True)
        assert [w.params for w in seq.workunits] == \
            [w.params for w in par.workunits]
        assert [w.error for w in seq.workunits] == \
            [w.error for w in par.workunits]
        assert [w.outputs for w in seq.workunits] == \
            [w.outputs for w in par.workunits]
