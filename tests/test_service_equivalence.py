"""Differential suite: the service path is a no-op for results.

Mirror of ``test_exec_equivalence.py`` one layer up: a fig2-shaped
batch of benchmark executions submitted through the
:class:`repro.service.BenchmarkService` control plane must produce a
canonical result export **byte-identical** to the direct
``repro.exec`` path (:func:`repro.service.execute_direct`) -- across
endpoint worker counts (1 vs 8), cache temperature (cold vs warm),
endpoint layouts, and fault-plan-driven endpoint death.  The CLI
loopback (``jubench submit`` -> ``jubench serve``) is held to the same
byte-identity bar via ``main(argv)``.
"""

import pytest

from repro.cli import main
from repro.core import load_suite
from repro.exec import ExecutionEngine, MemoryCache
from repro.faults.plan import FaultPlan, NodeFault
from repro.service import (
    BenchmarkService,
    Capabilities,
    LocalEndpoint,
    ResultStore,
    ServiceClient,
    execute_direct,
)

#: fig2-shaped batch: Base apps at reference nodes plus node sweeps
FIG2_BATCH = (
    ("Arbor", None), ("Arbor", 8), ("Arbor", 16),
    ("JUQCS", None), ("JUQCS", 32),
    ("HPL", None), ("HPL", 8),
    ("STREAM", None),
)


@pytest.fixture()
def suite():
    s = load_suite()
    s.engine = None
    yield s
    s.engine = None     # never leak an engine into the shared default


def _envelopes(suite, client_id="fig2"):
    client = ServiceClient(None, client_id, suite=suite)
    return [client.make_envelope(name, nodes=nodes)
            for name, nodes in FIG2_BATCH]


def _serve(suite, envelopes, *, endpoints=2, workers=1, cache=None,
           faults=None) -> BenchmarkService:
    service = BenchmarkService(faults=faults)
    for i in range(endpoints):
        engine = ExecutionEngine(workers=workers, backend="thread",
                                 cache=cache)
        service.register_endpoint(LocalEndpoint(
            f"ep{i}", suite=suite, engine=engine,
            capabilities=Capabilities(workers=workers)))
    for env in envelopes:
        service.submit(env)
    service.drain()
    return service


class TestServiceVsDirect:
    def test_export_byte_identical_to_direct_path(self, suite):
        envelopes = _envelopes(suite)
        service = _serve(suite, envelopes)
        direct = execute_direct(envelopes, suite=suite)
        assert service.store.canonical_export().encode() == \
            direct.canonical_export().encode()
        assert service.store.counts() == {"ok": len(envelopes)}

    def test_workers_1_vs_8_identical(self, suite):
        envelopes = _envelopes(suite)
        narrow = _serve(suite, envelopes, workers=1)
        wide = _serve(suite, envelopes, workers=8)
        assert narrow.store.canonical_export().encode() == \
            wide.store.canonical_export().encode()

    def test_cold_vs_warm_cache_identical_and_execution_free(self, suite):
        envelopes = _envelopes(suite)
        cache = MemoryCache()
        cold = _serve(suite, envelopes, endpoints=1, workers=4,
                      cache=cache)
        assert cache.stats.misses == len(envelopes)
        warm_engine = ExecutionEngine(workers=4, backend="thread",
                                      cache=cache)
        warm = BenchmarkService()
        warm.register_endpoint(LocalEndpoint(
            "warm", suite=suite, engine=warm_engine,
            capabilities=Capabilities(workers=4)))
        for env in envelopes:
            warm.submit(env)
        warm.drain()
        assert warm.store.canonical_export() == \
            cold.store.canonical_export()
        assert cache.stats.hits == len(envelopes)
        assert warm_engine.journal.stats().executed == 0
        # provenance records the temperature even though the canonical
        # export ignores it
        assert all(r.cache == "hit" for r in warm.store.records)

    def test_decoded_future_matches_plain_suite_run(self, suite):
        service = BenchmarkService()
        service.register_endpoint(LocalEndpoint("ep0", suite=suite))
        client = ServiceClient(service, "c0", suite=suite)
        future = client.submit("Arbor", nodes=8)
        result = future.result()
        reference = suite.run("Arbor", 8)
        assert result.benchmark == reference.benchmark
        assert result.nodes == reference.nodes
        assert result.fom_seconds == reference.fom_seconds

    def test_endpoint_death_does_not_change_the_export(self, suite):
        envelopes = _envelopes(suite)
        plan = FaultPlan(nodes=(NodeFault(node=0, at=0.0,
                                          duration=1000.0),))
        faulty = _serve(suite, envelopes, endpoints=2, workers=4,
                        faults=plan)
        direct = execute_direct(envelopes, suite=suite)
        assert faulty.store.canonical_export().encode() == \
            direct.canonical_export().encode()
        # the crash really happened: work was requeued off endpoint 0
        events = [e["event"] for e in faulty.dispatch_log]
        assert "lost" in events and "requeue" in events
        ok_records = [r for r in faulty.store.records if r.status == "ok"]
        assert len(ok_records) == len(envelopes)          # zero lost
        assert len({r.task_id for r in ok_records}) == \
            len(envelopes)                                # zero dups

    def test_durable_store_reloads_byte_identical(self, suite, tmp_path):
        envelopes = _envelopes(suite)
        path = tmp_path / "results.jsonl"
        service = BenchmarkService(store=ResultStore(path))
        service.register_endpoint(LocalEndpoint("ep0", suite=suite))
        for env in envelopes:
            service.submit(env)
        service.drain()
        reloaded = ResultStore.open(path)
        assert reloaded.canonical_export() == \
            service.store.canonical_export()
        assert reloaded.counts() == {"ok": len(envelopes)}


class TestCliLoopback:
    """``jubench submit`` -> ``jubench serve`` equals the direct path."""

    BENCHMARKS = "Arbor,HPL,STREAM"

    def test_loopback_export_byte_identical(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        svc_export = tmp_path / "svc.json"
        direct_export = tmp_path / "direct.json"
        assert main(["submit", "--spool", str(spool),
                     "--benchmarks", self.BENCHMARKS]) == 0
        assert main(["serve", "--spool", str(spool), "--endpoints", "2",
                     "--export", str(svc_export)]) == 0
        assert main(["submit", "--direct", "--benchmarks",
                     self.BENCHMARKS, "--export",
                     str(direct_export)]) == 0
        capsys.readouterr()
        assert svc_export.read_bytes() == direct_export.read_bytes()

    def test_loopback_survives_endpoint_crash(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        plan_path = tmp_path / "plan.json"
        FaultPlan(nodes=(NodeFault(node=0, at=0.0,
                                   duration=1000.0),)).save(plan_path)
        svc_export = tmp_path / "svc.json"
        direct_export = tmp_path / "direct.json"
        assert main(["submit", "--spool", str(spool),
                     "--benchmarks", self.BENCHMARKS]) == 0
        assert main(["serve", "--spool", str(spool), "--endpoints", "2",
                     "--faults", str(plan_path),
                     "--export", str(svc_export)]) == 0
        assert main(["submit", "--direct", "--benchmarks",
                     self.BENCHMARKS, "--export",
                     str(direct_export)]) == 0
        capsys.readouterr()
        assert svc_export.read_bytes() == direct_export.read_bytes()

    def test_serve_dispatch_log_reproducible(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        assert main(["submit", "--spool", str(spool),
                     "--benchmarks", self.BENCHMARKS]) == 0
        logs = []
        for run in ("first", "second"):
            log_path = tmp_path / f"{run}.json"
            assert main(["serve", "--spool", str(spool),
                         "--dispatch-log", str(log_path)]) == 0
            logs.append(log_path.read_bytes())
        capsys.readouterr()
        assert logs[0] == logs[1]
