"""Tests for the normalised descriptions (Sec. III-C) and the
declarative JUBE spec loader."""

import pytest

from repro.core import SECTIONS, describe, describe_all, load_suite
from repro.jube import JubeRuntime, SpecError, load_spec


@pytest.fixture(scope="module")
def suite():
    return load_suite()


class TestDescriptions:
    def test_every_benchmark_has_all_sections(self, suite):
        """The paper's normalisation: identical structure everywhere."""
        docs = describe_all(suite)
        assert len(docs) == 23
        for name, text in docs.items():
            for section in SECTIONS:
                assert f"## {section}" in text, (name, section)

    def test_sections_in_fixed_order(self, suite):
        text = describe(suite, "nekRS")
        positions = [text.index(f"## {s}") for s in SECTIONS]
        assert positions == sorted(positions)

    def test_juqcs_description_content(self, suite):
        text = describe(suite, "JUQCS")
        assert "powers of two" in text
        assert "exact (bit-for-bit" in text
        assert "S,L" in text

    def test_chroma_rules_present(self, suite):
        text = describe(suite, "Chroma-QCD")
        assert "excludes the first HMC update" in text
        assert "1e-10" in text

    def test_sample_result_attached(self, suite):
        result = suite.run("nekRS")
        text = describe(suite, "nekRS", sample=result)
        assert f"{result.fom_seconds:.3f}" in text

    def test_rate_fom_commitment_language(self, suite):
        text = describe(suite, "Megatron-LM")
        assert "dividing the fixed work" in text
        assert "2e+07" in text

    def test_unused_marker(self, suite):
        assert "not used" in describe(suite, "Amber")
        assert "not used" not in describe(suite, "Arbor")


class TestSpecLoader:
    def make_spec(self, **overrides):
        data = {
            "name": "toy",
            "platform": "juwels-booster",
            "parametersets": [
                {"name": "p", "parameters": [
                    {"name": "nodes", "value": [1, 2]},
                    {"name": "tasks", "value": "$nodes * 4",
                     "mode": "python"},
                    {"name": "extra", "value": 1, "tags": ["opt"]},
                ]},
            ],
            "steps": [
                {"name": "execute", "do": "run"},
                {"name": "verify", "do": ["check"],
                 "depends": ["execute"]},
            ],
            "tables": [
                {"name": "result",
                 "columns": ["nodes", ["fom", "FOM [s]", ".1f"]],
                 "sort_by": "nodes"},
            ],
        }
        data.update(overrides)
        actions = {
            "run": lambda ctx: {"fom": 100.0 / ctx.params["nodes"]},
            "check": lambda ctx: {"ok": ctx.output("execute", "fom") > 0},
        }
        return data, actions

    def test_loads_and_runs(self):
        data, actions = self.make_spec()
        spec = load_spec(data, actions)
        run = JubeRuntime().run(spec)
        assert len(run.workunits) == 2
        assert run.ok
        text = run.render(spec.tables[0])
        assert "FOM [s]" in text and "100.0" in text and "50.0" in text

    def test_tags_apply(self):
        data, actions = self.make_spec()
        spec = load_spec(data, actions)
        run = JubeRuntime().run(spec, tags=["opt"])
        assert all(w.params["extra"] == 1 for w in run.workunits)
        run_plain = JubeRuntime().run(spec)
        assert all("extra" not in w.params for w in run_plain.workunits)

    def test_python_mode_resolves(self):
        data, actions = self.make_spec()
        run = JubeRuntime().run(load_spec(data, actions))
        tasks = sorted(w.params["tasks"] for w in run.workunits)
        assert tasks == [4, 8]

    def test_unknown_action_rejected(self):
        data, actions = self.make_spec()
        data["steps"][0]["do"] = "launch-missiles"
        with pytest.raises(SpecError):
            load_spec(data, actions)

    def test_unknown_platform_rejected(self):
        data, actions = self.make_spec(platform="summit")
        with pytest.raises(SpecError):
            load_spec(data, actions)

    def test_missing_pieces_rejected(self):
        with pytest.raises(SpecError):
            load_spec({"steps": [{"name": "x"}]})
        with pytest.raises(SpecError):
            load_spec({"name": "toy"})  # no steps
        with pytest.raises(SpecError):
            load_spec({"name": "toy", "steps": [{"do": "x"}]},
                      actions={"x": lambda c: None})

    def test_bad_parameter_rejected(self):
        data, actions = self.make_spec()
        data["parametersets"][0]["parameters"].append(
            {"name": "bad name!", "value": 1})
        with pytest.raises(SpecError):
            load_spec(data, actions)
