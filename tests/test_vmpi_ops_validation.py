"""Op-construction contracts: tags and roots are validated when the
descriptor is built, not deep inside the engine's matching tables --
the contract the static protocol pass folds against."""

import pytest

from repro.vmpi.ops import (
    Collective,
    Exchange,
    Irecv,
    Isend,
    Recv,
    Send,
    Sendrecv,
)

TAGGED_OPS = [
    lambda tag: Send(dest=0, payload=1.0, tag=tag),
    lambda tag: Recv(source=0, tag=tag),
    lambda tag: Isend(dest=0, payload=1.0, tag=tag),
    lambda tag: Irecv(source=0, tag=tag),
    lambda tag: Sendrecv(dest=0, payload=1.0, source=0, tag=tag),
    lambda tag: Exchange(sends=((0, 1.0),), recvs=(0,), tag=tag),
]


@pytest.mark.parametrize("build", TAGGED_OPS)
def test_negative_tag_rejected(build):
    with pytest.raises(ValueError):
        build(-1)


@pytest.mark.parametrize("build", TAGGED_OPS)
@pytest.mark.parametrize("tag", [1.5, "7", None, True])
def test_non_int_tag_rejected(build, tag):
    with pytest.raises(TypeError):
        build(tag)


@pytest.mark.parametrize("build", TAGGED_OPS)
def test_valid_tags_accepted(build):
    assert build(0).tag == 0
    assert build(2 ** 20).tag == 2 ** 20


ROOTED = ["bcast", "reduce", "gather", "scatter"]


@pytest.mark.parametrize("kind", ROOTED)
def test_negative_root_rejected(kind):
    with pytest.raises(ValueError):
        Collective(kind=kind, root=-1)


@pytest.mark.parametrize("kind", ROOTED)
@pytest.mark.parametrize("root", [0.0, "0", None, False])
def test_non_int_root_rejected(kind, root):
    with pytest.raises(TypeError):
        Collective(kind=kind, root=root)


@pytest.mark.parametrize("kind", ROOTED)
def test_valid_root_accepted(kind):
    assert Collective(kind=kind, root=3).root == 3


def test_unknown_collective_kind_still_rejected():
    with pytest.raises(ValueError):
        Collective(kind="alltoallw")
