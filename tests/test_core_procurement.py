"""Tests for TCO value-for-money, High-Scaling assessment, and the
end-to-end procurement evaluation."""

import pytest

from repro.cluster import juwels_booster, jupiter_booster_model
from repro.core import (
    SCALE_UP,
    HighScalingCase,
    HighScalingCommitment,
    MemoryVariant,
    ProcurementEvaluation,
    ReferenceResult,
    SystemProposal,
    TcoModel,
    WorkloadMix,
    prep_partition_nodes,
    proposal_partition_nodes,
)


def make_mix():
    return WorkloadMix().add("GROMACS", 3.0).add("ICON", 2.0).add("JUQCS", 1.0)


def make_refs():
    return {
        "GROMACS": ReferenceResult("GROMACS", nodes=8, time_metric=600.0),
        "ICON": ReferenceResult("ICON", nodes=120, time_metric=900.0),
        "JUQCS": ReferenceResult("JUQCS", nodes=8, time_metric=300.0),
    }


def make_proposal(name="vendor-a", speedup=2.0, **kw):
    refs = make_refs()
    prop = SystemProposal(name=name, system=jupiter_booster_model(), **kw)
    for bench, ref in refs.items():
        prop.commit(bench, nodes=max(1, ref.nodes // 2),
                    time_metric=ref.time_metric / speedup)
    return prop


class TestPartitionSizing:
    def test_prep_partition_is_about_640(self):
        assert 600 <= prep_partition_nodes() <= 680

    def test_power_of_two_rule_gives_512(self):
        assert prep_partition_nodes(power_of_two=True) == 512

    def test_scale_up_is_20x(self):
        assert SCALE_UP == pytest.approx(20.0)

    def test_proposal_partition(self):
        model = jupiter_booster_model()
        nodes = proposal_partition_nodes(model)
        assert nodes * model.node.peak_flops >= 1.0e18
        assert nodes <= model.nodes


class TestTcoModel:
    def test_faster_commitments_win(self):
        model = TcoModel(mix=make_mix(), references=make_refs())
        slow = make_proposal("slow", speedup=1.5)
        fast = make_proposal("fast", speedup=3.0)
        ranked = model.rank([slow, fast])
        assert ranked[0].proposal == "fast"
        assert ranked[0].value_for_money > ranked[1].value_for_money

    def test_missing_commitment_rejected(self):
        model = TcoModel(mix=make_mix(), references=make_refs())
        prop = SystemProposal(name="empty", system=jupiter_booster_model())
        with pytest.raises(ValueError):
            model.workload_rate(prop)

    def test_missing_reference_rejected(self):
        with pytest.raises(ValueError):
            TcoModel(mix=make_mix(), references={})

    def test_tco_includes_energy(self):
        model = TcoModel(mix=make_mix(), references=make_refs())
        prop = make_proposal()
        assert model.tco(prop) > prop.capex_eur

    def test_cheaper_energy_improves_vfm(self):
        model = TcoModel(mix=make_mix(), references=make_refs())
        normal = make_proposal("normal", eur_per_kwh=0.20)
        cheap = make_proposal("cheap", eur_per_kwh=0.05)
        assert model.assess(cheap).value_for_money > \
            model.assess(normal).value_for_money

    def test_workload_rate_scales_with_system_size(self):
        model = TcoModel(mix=make_mix(), references=make_refs())
        prop = make_proposal()
        small_system = juwels_booster()
        small = SystemProposal(name="small", system=small_system,
                               commitments=dict(prop.commitments))
        assert model.workload_rate(prop) > model.workload_rate(small)

    def test_workload_weights_matter(self):
        """Doubling the weight of the benchmark a proposal is bad at must
        lower its blended rate."""
        refs = make_refs()
        prop = make_proposal()
        # make ICON the weak spot
        prop.commit("ICON", nodes=60, time_metric=5000.0)
        light = TcoModel(WorkloadMix().add("GROMACS", 5.0).add("ICON", 1.0)
                         .add("JUQCS", 1.0), refs)
        heavy = TcoModel(WorkloadMix().add("GROMACS", 1.0).add("ICON", 5.0)
                         .add("JUQCS", 1.0), refs)
        assert heavy.workload_rate(prop) < light.workload_rate(prop)


class TestHighScalingCase:
    def case(self):
        return HighScalingCase(
            benchmark="JUQCS",
            variants=(MemoryVariant.SMALL, MemoryVariant.LARGE),
            power_of_two=True)

    def test_prep_nodes_power_of_two(self):
        assert self.case().prep_nodes() == 512

    def test_assessment_ratio(self):
        a = self.case().assess(MemoryVariant.LARGE, 100.0, 120.0)
        assert a.ratio == pytest.approx(1.2)
        assert a.speedup == pytest.approx(1 / 1.2)

    def test_wrong_variant_rejected(self):
        with pytest.raises(ValueError):
            self.case().assess(MemoryVariant.TINY, 100.0, 100.0)

    def test_choose_variant_for_big_gpu(self):
        model = jupiter_booster_model(mem_per_device=96e9)
        assert self.case().choose_variant(model) is MemoryVariant.LARGE


class TestProcurementEvaluation:
    def make_eval(self):
        cases = {"JUQCS": HighScalingCase(
            benchmark="JUQCS",
            variants=(MemoryVariant.SMALL, MemoryVariant.LARGE),
            power_of_two=True)}
        return ProcurementEvaluation(
            mix=make_mix(), references=make_refs(),
            highscaling_cases=cases,
            highscaling_references={"JUQCS": 400.0})

    def hs_commit(self, runtime=380.0, variant=MemoryVariant.LARGE):
        return {"JUQCS": HighScalingCommitment(
            benchmark="JUQCS", variant=variant, runtime=runtime)}

    def test_valid_proposal_scores(self):
        ev = self.make_eval()
        score = ev.score(make_proposal(), self.hs_commit())
        assert score.valid
        assert score.value_for_money > 0
        assert score.mean_highscaling_ratio == pytest.approx(380 / 400)

    def test_missing_highscaling_commitment_flagged(self):
        ev = self.make_eval()
        score = ev.score(make_proposal(), {})
        assert not score.valid
        assert any("High-Scaling" in v.rule for v in score.violations)

    def test_missing_base_commitment_flagged(self):
        ev = self.make_eval()
        prop = SystemProposal(name="partial", system=jupiter_booster_model())
        prop.commit("GROMACS", 4, 100.0)
        score = ev.score(prop, self.hs_commit())
        assert not score.valid

    def test_selection_prefers_better_highscaling(self):
        ev = self.make_eval()
        a = (make_proposal("a"), self.hs_commit(runtime=500.0))
        b = (make_proposal("b"), self.hs_commit(runtime=300.0))
        ranked = ev.select([a, b])
        assert ranked[0].proposal == "b"

    def test_invalid_proposals_rank_last(self):
        ev = self.make_eval()
        good = (make_proposal("good", speedup=1.1), self.hs_commit())
        broken = (make_proposal("broken", speedup=10.0), {})
        ranked = ev.select([good, broken])
        assert ranked[0].proposal == "good"
        assert not ranked[1].valid

    def test_combined_score_weight_validated(self):
        ev = self.make_eval()
        score = ev.score(make_proposal(), self.hs_commit())
        with pytest.raises(ValueError):
            score.combined_score(highscaling_weight=1.5)

    def test_missing_hs_reference_rejected(self):
        with pytest.raises(ValueError):
            ProcurementEvaluation(
                mix=make_mix(), references=make_refs(),
                highscaling_cases={"JUQCS": HighScalingCase(
                    benchmark="JUQCS", variants=(MemoryVariant.LARGE,))},
                highscaling_references={})
