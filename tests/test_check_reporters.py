"""Reporter tests: SARIF 2.1.0 structure and golden snapshots."""

import json
from pathlib import Path

import pytest

from repro.check import (
    Analyzer,
    render_human,
    render_json,
    render_sarif,
)

FIXTURES = Path(__file__).parent / "fixtures" / "check"
GOLDEN_DIR = Path(__file__).parent / "goldens"


@pytest.fixture(scope="module")
def report():
    return Analyzer().run(FIXTURES, rel_base=FIXTURES)


# -- SARIF structure ---------------------------------------------------------

def test_sarif_is_valid_2_1_0(report):
    doc = json.loads(render_sarif(report))
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.check"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert len(rule_ids) == len(set(rule_ids))
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert result["level"] in {"error", "warning", "note"}
        assert result["message"]["text"]
        (loc,) = result["locations"]
        region = loc["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        # ruleIndex must agree with the rules array
        if "ruleIndex" in result:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]


def test_sarif_suppressions_partition(report):
    doc = json.loads(render_sarif(report))
    (run,) = doc["runs"]
    kinds = [r["suppressions"][0]["kind"] for r in run["results"]
             if "suppressions" in r]
    # the fixture tree has inline allows but no baseline
    assert kinds.count("inSource") == len(report.suppressed)
    assert kinds.count("external") == len(report.baselined) == 0
    active = [r for r in run["results"] if "suppressions" not in r]
    assert len(active) == len(report.active)


def test_json_report_shape(report):
    doc = json.loads(render_json(report, strict=True))
    assert doc["tool"]["name"] == "repro.check"
    assert doc["summary"]["active"] == len(report.active)
    assert doc["summary"]["failed"] is True
    assert len(doc["strict_violations"]) == 1
    assert doc["strict_violations"][0]["rule"] == "SUP001"


def test_human_report_verdict_line(report):
    text = render_human(report)
    assert text.splitlines()[-1].startswith("check FAILED:")
    clean = Analyzer(only=["CON104"]).run(
        FIXTURES / "core", rel_base=FIXTURES)
    assert render_human(clean).splitlines()[-1].startswith("check ok:")


def test_sarif_with_zero_findings_is_still_valid(tmp_path):
    """A clean tree renders an empty-but-well-formed document: the
    rules metadata stays, results is [], and upload-sarif accepts it."""
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "clean.py").write_text("X = 1\n")
    clean = Analyzer().run(tmp_path, rel_base=tmp_path)
    doc = json.loads(render_sarif(clean))
    (run,) = doc["runs"]
    assert run["results"] == []
    assert run["tool"]["driver"]["rules"]
    assert render_human(clean).startswith("check ok:")
    json_doc = json.loads(render_json(clean))
    assert json_doc["summary"]["failed"] is False
    assert json_doc["findings"] == []


def test_json_findings_carry_dimension_traces(report):
    """UNIT3xx findings export their inference trace so a reviewer can
    replay the derivation from the JSON artifact alone."""
    doc = json.loads(render_json(report))
    unit = [f for f in doc["findings"] if f["rule"].startswith("UNIT3")]
    assert unit
    for finding in unit:
        assert finding["trace"]
        assert all(isinstance(step, str) and step
                   for step in finding["trace"])
    # non-dimensional rules carry no trace key at all
    det = [f for f in doc["findings"] if f["rule"].startswith("DET")]
    assert det and all("trace" not in f for f in det)


def test_sarif_results_carry_traces(report):
    """Findings with an inference trace ship it as SARIF properties,
    so the derivation survives into uploaded artifacts."""
    doc = json.loads(render_sarif(report))
    (run,) = doc["runs"]
    with_trace = [r for r in run["results"] if "properties" in r]
    assert with_trace
    for result in with_trace:
        trace = result["properties"]["trace"]
        assert trace and all(isinstance(s, str) for s in trace)
    # traced rules include the dataflow families; DET stays trace-free
    traced_rules = {r["ruleId"] for r in with_trace}
    assert traced_rules & {"UNIT301", "UNIT302", "REP603"}
    assert "DET001" not in traced_rules


# -- --explain ---------------------------------------------------------------

def test_explain_prints_inference_trace(report):
    text = render_human(report, explain="REP603")
    lines = text.splitlines()
    trace_lines = [ln for ln in lines if ln.startswith("    trace: ")]
    assert trace_lines  # the REP603 finding carries its derivation
    # the trace sits directly under its finding line
    idx = lines.index(trace_lines[0])
    assert "REP603" in lines[idx - 1]


def test_explain_is_scoped_to_the_named_rule(report):
    plain = render_human(report)
    explained = render_human(report, explain="UNIT304")
    assert len(explained.splitlines()) > len(plain.splitlines())
    for line in explained.splitlines():
        if line.startswith("    trace: "):
            continue
        assert line in plain.splitlines()


def test_explain_on_traceless_rule_says_so(report):
    text = render_human(report, explain="DET001")
    assert "(no recorded inference trace)" in text


def test_explain_none_changes_nothing(report):
    assert render_human(report) == render_human(report, explain=None)


# -- golden snapshots --------------------------------------------------------

def test_sarif_matches_golden(report):
    golden = (GOLDEN_DIR / "check_fixture.sarif").read_text()
    assert render_sarif(report) == golden


def test_json_matches_golden(report):
    golden = (GOLDEN_DIR / "check_fixture.json").read_text()
    assert render_json(report, strict=True) == golden
