"""Property-based tests for ``repro.faults.plan``.

Hand-rolled generator loops over a seeded ``random.Random`` (no
hypothesis dependency): generated plans must regenerate bit-identically
from their seed, round-trip through JSON, and -- the load-bearing
chaos-harness property -- an engine whose retry budget covers
``max_task_failures()`` must converge every task to ``ok`` no matter
what the plan throws at it.

Conventions: every loop draws from ``random.Random(SEED + i)`` so a
failure reproduces from the printed iteration index alone.
"""

import json
import random

import pytest

from repro.exec import ExecutionEngine, WorkItem
from repro.faults import (
    LINK_CLASSES,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    LinkFault,
    NodeFault,
    StragglerFault,
    TaskFaultRule,
    hash_fraction,
)

SEED = 0xFA017
ITERATIONS = 40


def random_plan(rng: random.Random) -> FaultPlan:
    """A generated plan with randomized knobs (cluster faults on)."""
    return FaultPlan.generate(
        seed=rng.randrange(2 ** 31),
        labels=tuple(f"run:bench{i}" for i in range(rng.randint(1, 6))),
        max_task_failures=rng.randint(1, 4),
        fault_rate=rng.uniform(0.2, 1.0),
        nodes=rng.randint(1, 64),
        crashes=rng.randint(0, 3),
        stragglers=rng.randint(0, 2),
        link_faults=rng.randint(0, 2),
    )


class TestGenerateDeterminism:
    def test_same_seed_same_plan(self):
        for i in range(ITERATIONS):
            rng = random.Random(SEED + i)
            seed = rng.randrange(2 ** 31)
            labels = tuple(f"run:b{j}" for j in range(rng.randint(1, 5)))
            a = FaultPlan.generate(seed, labels=labels, nodes=32)
            b = FaultPlan.generate(seed, labels=labels, nodes=32)
            assert a == b, f"iteration {i}"
            assert a.to_json() == b.to_json(), f"iteration {i}"

    def test_with_seed_rebinds_only_seed(self):
        plan = FaultPlan.generate(7, labels=("run:x",), nodes=8)
        other = plan.with_seed(99)
        assert other.seed == 99
        assert other.tasks == plan.tasks
        assert other.nodes == plan.nodes

    def test_nodes_zero_skips_cluster_faults(self):
        plan = FaultPlan.generate(3, labels=("a", "b"), nodes=0)
        assert plan.nodes == ()
        assert plan.stragglers == ()


class TestJsonRoundTrip:
    def test_round_trip_equality(self):
        for i in range(ITERATIONS):
            plan = random_plan(random.Random(SEED + i))
            back = FaultPlan.from_dict(json.loads(plan.to_json()))
            assert back == plan, f"iteration {i}"
            assert back.to_json() == plan.to_json(), f"iteration {i}"

    def test_save_load_file(self, tmp_path):
        plan = random_plan(random.Random(SEED))
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_json_is_byte_stable(self):
        plan = random_plan(random.Random(SEED + 1))
        assert plan.to_json() == plan.to_json()
        assert plan.to_json().endswith("\n")


class TestConvergenceProperty:
    """retries >= max_task_failures() => every task ends ``ok``.

    This is the guarantee the chaos harness leans on: generated plans
    only fail a *prefix* of attempts, so the attempt just past the
    budget is always clean.
    """

    def test_engine_converges_within_budget(self):
        for i in range(ITERATIONS // 2):
            rng = random.Random(SEED + i)
            labels = tuple(f"run:bench{j}"
                           for j in range(rng.randint(1, 6)))
            plan = FaultPlan.generate(
                seed=rng.randrange(2 ** 31), labels=labels,
                max_task_failures=rng.randint(1, 3), fault_rate=1.0)
            budget = plan.max_task_failures()
            engine = ExecutionEngine(
                workers=1, backend="thread", cache=None, retries=budget,
                faults=FaultInjector(plan))
            out = engine.map([WorkItem(fn=lambda v=j: float(v), label=lab)
                              for j, lab in enumerate(labels)])
            assert all(o.ok for o in out), f"iteration {i}"
            for j, (lab, o) in enumerate(zip(labels, out)):
                expected = len(plan.failing_attempts(lab, budget)) + 1
                assert o.attempts == expected, f"iteration {i}"
                assert o.value == float(j), f"iteration {i}"

    def test_budget_one_short_leaves_explicit_error(self):
        plan = FaultPlan(tasks=(TaskFaultRule("doom", attempts=(1, 2)),))
        engine = ExecutionEngine(workers=1, backend="thread", cache=None,
                                 retries=0, faults=FaultInjector(plan))
        out = engine.map([WorkItem(fn=lambda: 1.0, label="doom")])
        assert not out[0].ok
        assert "InjectedFault" in out[0].error
        assert isinstance(out[0].exception, InjectedFault)


class TestTaskFaultRule:
    def test_exact_attempt_and_pattern_match(self):
        rule = TaskFaultRule(match="run:HP*", attempts=(1, 3))
        assert rule.applies("run:HPL", 1)
        assert not rule.applies("run:HPL", 2)
        assert rule.applies("run:HPCG", 3)
        assert not rule.applies("run:Arbor", 1)

    def test_rate_draw_is_deterministic_and_order_free(self):
        for i in range(ITERATIONS):
            rng = random.Random(SEED + i)
            rule = TaskFaultRule(match="*", attempts=(1,),
                                 rate=rng.uniform(0.05, 0.95),
                                 seed=rng.randrange(2 ** 31))
            sites = [f"run:s{j}" for j in range(50)]
            forward = [rule.applies(s, 1) for s in sites]
            backward = [rule.applies(s, 1) for s in reversed(sites)]
            assert forward == list(reversed(backward)), f"iteration {i}"
            # the draw is the documented content hash, nothing hidden
            expect = [hash_fraction(rule.seed, s, 1) < rule.rate
                      for s in sites]
            assert forward == expect, f"iteration {i}"

    def test_rate_zero_never_fires(self):
        rule = TaskFaultRule(rate=0.0)
        assert not any(rule.applies(f"l{j}", 1) for j in range(100))

    def test_describe_uses_custom_message(self):
        rule = TaskFaultRule(message="ECC double-bit error")
        assert rule.describe("run:x", 1) == "ECC double-bit error"
        assert "attempt 2" in TaskFaultRule().describe("run:x", 2)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"attempts": ()},
        {"attempts": (0,)},
        {"attempts": (1, -2)},
        {"rate": -0.1},
        {"rate": 1.5},
    ])
    def test_bad_task_rule(self, kwargs):
        with pytest.raises(ValueError):
            TaskFaultRule(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"node": -1, "at": 0.0},
        {"node": 0, "at": -1.0},
        {"node": 0, "at": 0.0, "duration": 0.0},
    ])
    def test_bad_node_fault(self, kwargs):
        with pytest.raises(ValueError):
            NodeFault(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"node": 0, "factor": 0.5},
        {"node": -1, "factor": 2.0},
        {"node": 0, "factor": 2.0, "duration": -3.0},
    ])
    def test_bad_straggler(self, kwargs):
        with pytest.raises(ValueError):
            StragglerFault(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"link": "wan", "factor": 0.5},
        {"link": "inter_cell", "factor": 0.0},
        {"link": "inter_cell", "factor": 1.5},
    ])
    def test_bad_link_fault(self, kwargs):
        with pytest.raises(ValueError):
            LinkFault(**kwargs)


class TestClusterTimeline:
    def test_sorted_and_paired(self):
        for i in range(ITERATIONS):
            plan = random_plan(random.Random(SEED + i))
            timeline = plan.cluster_timeline()
            times = [t for t, *_ in timeline]
            assert times == sorted(times), f"iteration {i}"
            crashes = sum(1 for _, a, *_ in timeline if a == "crash")
            restores = sum(1 for _, a, *_ in timeline if a == "restore")
            # generated node faults always carry a duration
            assert crashes == restores == len(plan.nodes), f"iteration {i}"

    def test_permanent_crash_has_no_restore(self):
        plan = FaultPlan(nodes=(NodeFault(node=2, at=5.0),))
        assert plan.cluster_timeline() == [(5.0, "crash", 2, 0.0)]

    def test_straggler_window_emits_slow_unslow(self):
        plan = FaultPlan(stragglers=(
            StragglerFault(node=1, factor=3.0, at=2.0, duration=8.0),))
        assert plan.cluster_timeline() == [
            (2.0, "slow", 1, 3.0), (10.0, "unslow", 1, 0.0)]


class TestLinkFactors:
    def test_min_combined(self):
        plan = FaultPlan(links=(
            LinkFault("inter_cell", 0.5),
            LinkFault("inter_cell", 0.8),
            LinkFault("intra_cell", 0.9),
        ))
        assert plan.link_factors() == {"inter_cell": 0.5,
                                       "intra_cell": 0.9}

    def test_wildcard_hits_every_class(self):
        plan = FaultPlan(links=(LinkFault("*", 0.25),
                                LinkFault("intra_node", 0.5)))
        assert plan.link_factors() == {c: 0.25 for c in LINK_CLASSES}


class TestBudgetHelpers:
    def test_max_task_failures(self):
        plan = FaultPlan(tasks=(
            TaskFaultRule("a", attempts=(1,)),
            TaskFaultRule("b", attempts=(1, 2, 5)),
        ))
        assert plan.max_task_failures() == 5
        assert FaultPlan().max_task_failures() == 0

    def test_failing_attempts_enumerates_schedule(self):
        plan = FaultPlan(tasks=(TaskFaultRule("run:x", attempts=(1, 3)),))
        assert plan.failing_attempts("run:x") == [1, 3]
        assert plan.failing_attempts("run:y") == []
