"""Tests for FOM normalisation and memory variants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import A100, DeviceSpec
from repro.core import (
    FigureOfMerit,
    FomKind,
    MemoryVariant,
    ReferenceResult,
    VariantSizing,
    variant_labels,
)
from repro.units import GIGA


class TestFigureOfMerit:
    def test_runtime_identity(self):
        fom = FigureOfMerit(name="runtime")
        assert fom.time_metric(498.0) == 498.0

    def test_rate_normalisation(self):
        """Megatron-LM: tokens/s FOM normalised by 20M tokens."""
        fom = FigureOfMerit(name="tokens", kind=FomKind.RATE, work=20e6)
        assert fom.time_metric(1e5) == pytest.approx(200.0)

    def test_bandwidth_normalisation(self):
        fom = FigureOfMerit(name="ior", kind=FomKind.BANDWIDTH, work=1e12)
        assert fom.time_metric(100e9) == pytest.approx(10.0)

    def test_rate_needs_work(self):
        with pytest.raises(ValueError):
            FigureOfMerit(name="bad", kind=FomKind.RATE)

    def test_nonpositive_measurement(self):
        fom = FigureOfMerit(name="t")
        with pytest.raises(ValueError):
            fom.time_metric(0.0)

    @given(st.floats(min_value=1e-3, max_value=1e9, allow_nan=False))
    def test_from_time_inverts(self, rate):
        fom = FigureOfMerit(name="r", kind=FomKind.RATE, work=1e6)
        assert fom.from_time(fom.time_metric(rate)) == pytest.approx(rate)


class TestReferenceResult:
    def test_improvement_factor(self):
        ref = ReferenceResult(benchmark="Arbor", nodes=8, time_metric=498.0)
        assert ref.improvement(249.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReferenceResult(benchmark="x", nodes=0, time_metric=1.0)
        with pytest.raises(ValueError):
            ReferenceResult(benchmark="x", nodes=1, time_metric=0.0)


class TestMemoryVariants:
    def test_fractions(self):
        assert MemoryVariant.TINY.fraction == 0.25
        assert MemoryVariant.SMALL.fraction == 0.50
        assert MemoryVariant.MEDIUM.fraction == 0.75
        assert MemoryVariant.LARGE.fraction == 1.00

    def test_from_label(self):
        assert MemoryVariant.from_label("s") is MemoryVariant.SMALL
        with pytest.raises(ValueError):
            MemoryVariant.from_label("X")

    def test_sizing_against_reference_gpu(self):
        """Variants size against the 40 GB A100 of the prep system."""
        sizing = VariantSizing()
        large = sizing.bytes_per_device(MemoryVariant.LARGE)
        tiny = sizing.bytes_per_device(MemoryVariant.TINY)
        assert large <= A100.mem_capacity
        assert tiny == pytest.approx(large / 4)

    def test_best_variant_prefers_largest_fitting(self):
        sizing = VariantSizing()
        big_gpu = DeviceSpec(name="big", peak_flops=1e15,
                             mem_capacity=96 * GIGA, mem_bandwidth=3e12)
        assert sizing.best_variant(big_gpu) is MemoryVariant.LARGE

    def test_small_gpu_falls_back(self):
        sizing = VariantSizing()
        small_gpu = DeviceSpec(name="small", peak_flops=1e15,
                               mem_capacity=24 * GIGA, mem_bandwidth=3e12)
        best = sizing.best_variant(small_gpu)
        assert best is MemoryVariant.SMALL

    def test_nothing_fits_raises(self):
        sizing = VariantSizing()
        minuscule = DeviceSpec(name="tiny", peak_flops=1e12,
                               mem_capacity=4 * GIGA, mem_bandwidth=1e12)
        with pytest.raises(ValueError):
            sizing.best_variant(minuscule)

    def test_scaleup_shrinks_choice(self):
        """If the future workload needs 2x memory per device, a 40 GB
        device can no longer host the LARGE variant."""
        sizing = VariantSizing()
        assert sizing.best_variant(A100) is MemoryVariant.LARGE
        assert sizing.best_variant(A100, scaleup=2.0) is MemoryVariant.SMALL

    def test_variant_labels(self):
        assert variant_labels(tuple(MemoryVariant)) == "T,S,M,L"
