"""Tests for JUQCS: gate algebra, distributed simulation, memory law,
benchmark behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.juqcs import (
    BASE_QUBITS,
    Circuit,
    H,
    HS_QUBITS,
    JuqcsBenchmark,
    X,
    Y,
    Z,
    apply_controlled,
    apply_gate,
    dist_apply,
    dist_gather,
    dist_zero_state,
    is_unitary,
    norm,
    probabilities,
    qubits_for_memory,
    reference_state,
    rx,
    ry,
    rz,
    state_vector_bytes,
    zero_state,
)
from repro.cluster import juwels_booster
from repro.core import MemoryVariant
from repro.units import PIB, TIB
from repro.vmpi import Machine, run_spmd


class TestGates:
    def test_standard_gates_unitary(self):
        for u in (H, X, Y, Z, rx(0.3), ry(1.2), rz(2.5)):
            assert is_unitary(u)

    def test_h_creates_superposition(self):
        psi = apply_gate(zero_state(1), H, 0)
        p0, p1 = probabilities(psi, 0)
        assert p0 == pytest.approx(0.5)
        assert p1 == pytest.approx(0.5)

    def test_x_flips(self):
        psi = apply_gate(zero_state(2), X, 1)
        assert abs(psi[2]) == pytest.approx(1.0)

    def test_bell_state(self):
        psi = zero_state(2)
        apply_gate(psi, H, 0)
        apply_controlled(psi, X, control=0, target=1)
        assert abs(psi[0]) == pytest.approx(1 / np.sqrt(2))
        assert abs(psi[3]) == pytest.approx(1 / np.sqrt(2))
        assert abs(psi[1]) == pytest.approx(0.0)

    def test_gate_out_of_range(self):
        with pytest.raises(ValueError):
            apply_gate(zero_state(2), H, 5)

    def test_controlled_same_qubit_rejected(self):
        with pytest.raises(ValueError):
            apply_controlled(zero_state(2), X, 0, 0)

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=25, deadline=None)
    def test_norm_preserved(self, n, seed):
        rng = np.random.default_rng(seed)
        psi = zero_state(n)
        for _ in range(5):
            q = int(rng.integers(n))
            theta = float(rng.uniform(0, 2 * np.pi))
            apply_gate(psi, rx(theta), q)
        assert norm(psi) == pytest.approx(1.0)

    def test_circuit_records_and_replays(self):
        c = Circuit(3).h(0).x(1).h(2)
        psi = c.run_reference()
        assert norm(psi) == pytest.approx(1.0)
        assert len(c.ops) == 3

    def test_circuit_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            Circuit(2).gate(np.ones((2, 2)), 0)


class TestDistributed:
    def run_mixed(self, nranks, n, gate_qubits):
        def prog(comm):
            st_ = dist_zero_state(comm, n, real=True)
            for i, q in enumerate(gate_qubits):
                u = H if i % 2 == 0 else rx(0.3 + 0.1 * i)
                yield from dist_apply(comm, st_, u, q)
            full = yield from dist_gather(comm, st_)
            ref = reference_state(n, st_.history)
            return float(np.max(np.abs(full - ref)))

        machine = Machine.on(juwels_booster(), nranks, ranks_per_node=4)
        return run_spmd(prog, machine=machine)

    def test_local_gates_exact(self):
        res = self.run_mixed(4, 6, [0, 1, 2, 3])
        assert max(res.values) == 0.0

    def test_nonlocal_gates_exact(self):
        res = self.run_mixed(4, 6, [4, 5, 4, 5])
        assert max(res.values) == 0.0

    def test_interleaved_and_repeated_exact(self):
        res = self.run_mixed(8, 9, [8, 0, 7, 8, 1, 6, 8, 2])
        assert max(res.values) == 0.0

    def test_single_rank(self):
        res = self.run_mixed(1, 4, [0, 3, 2])
        assert max(res.values) == 0.0

    def test_nonpow2_ranks_rejected(self):
        def prog(comm):
            dist_zero_state(comm, 6)
            yield comm.barrier()

        from repro.vmpi import RankFailedError
        with pytest.raises(RankFailedError):
            run_spmd(prog, machine=Machine.on(juwels_booster(), 3))

    def test_too_few_qubits_rejected(self):
        def prog(comm):
            dist_zero_state(comm, 2)  # 2 qubits over 4 ranks
            yield comm.barrier()

        from repro.vmpi import RankFailedError
        with pytest.raises(RankFailedError):
            run_spmd(prog, machine=Machine.on(juwels_booster(), 4))

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=10, deadline=None)
    def test_random_circuits_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = 7
        qubits = [int(rng.integers(n)) for _ in range(6)]
        res = self.run_mixed(4, n, qubits)
        assert max(res.values) == 0.0


class TestMemoryLaw:
    """The paper's quoted sizes (Sec. IV-A2c)."""

    def test_base_case_1tib(self):
        assert state_vector_bytes(36) == pytest.approx(TIB)

    def test_hs_small_32tib_large_64tib(self):
        assert state_vector_bytes(41) == pytest.approx(32 * TIB)
        assert state_vector_bytes(42) == pytest.approx(64 * TIB)

    def test_n45_half_pib(self):
        assert state_vector_bytes(45) == pytest.approx(0.5 * PIB)

    def test_qubits_for_memory_inverse(self):
        assert qubits_for_memory(TIB) == 36
        assert qubits_for_memory(1.9 * TIB) == 36  # floor
        assert qubits_for_memory(2 * TIB) == 37

    def test_hs_qubit_table(self):
        assert HS_QUBITS[MemoryVariant.SMALL] == 41
        assert HS_QUBITS[MemoryVariant.LARGE] == 42


class TestJuqcsBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return JuqcsBenchmark()

    def test_real_run_exactly_verified(self, bench):
        res = bench.run(nodes=1, real=True)
        assert res.verified is True
        assert "exact" in res.verification

    def test_base_workload_is_36_qubits(self, bench):
        res = bench.run(nodes=8)
        assert res.details["qubits"] == BASE_QUBITS
        assert res.details["state_bytes"] == pytest.approx(TIB)

    def test_weak_scaling_adds_qubits(self, bench):
        assert bench.qubits_for(16, None) == bench.qubits_for(8, None) + 1

    def test_variant_changes_size(self, bench):
        small = bench.run(nodes=8, variant=MemoryVariant.SMALL)
        large = bench.run(nodes=8, variant=MemoryVariant.LARGE)
        assert small.details["qubits"] == large.details["qubits"] - 1

    def test_communication_dominates_at_scale(self, bench):
        """Non-local gates move half of all memory; on >= 2 nodes the
        communication share must dominate the runtime."""
        res = bench.run(nodes=8)
        assert res.details["comm_seconds"] > res.details["compute_seconds"]

    def test_intra_node_faster_per_gate(self, bench):
        one = bench.run(nodes=1)
        two = bench.run(nodes=2)
        # same gate count, one more qubit; the inter-node run must be
        # clearly slower than the NVLink-only run
        assert two.fom_seconds > 1.5 * one.fom_seconds

    def test_nonlocal_gate_count(self, bench):
        res = bench.run(nodes=2)
        assert res.details["nonlocal_gates"] == res.details["gates"]

    def test_msa_run_verified(self, bench):
        res = bench.run_msa(cluster_nodes=2, booster_nodes=2, real=True)
        assert res.verified is True
        assert res.details["msa"] is True

    def test_node_count_rounded_to_pow2(self, bench):
        res = bench.run(nodes=6)  # 24 ranks -> 16 ranks -> 4 nodes
        assert res.nodes == 4
