"""Golden regression tests for paper-facing numbers.

Small JSON snapshots of the Table II FOMs and one Fig. 2
strong-scaling curve, produced at seed, live in ``tests/goldens/``.
Future PRs cannot silently shift these numbers: the tolerance-aware
comparator flags any relative deviation beyond ``RTOL``.

To *intentionally* move them (e.g. a legitimate model fix), regenerate
with::

    PYTHONPATH=src python tests/regen_goldens.py

and justify the shift in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.core import load_suite

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The simulation is deterministic, so in-place reruns reproduce the
#: goldens exactly; the tolerance only absorbs cross-platform libm /
#: BLAS rounding differences, not model changes.
RTOL = 1e-9


def assert_close(actual: float, golden: float, *, what: str,
                 rtol: float = RTOL) -> None:
    """Tolerance-aware comparator with an actionable failure message."""
    denom = max(abs(golden), 1e-300)
    rel = abs(actual - golden) / denom
    assert rel <= rtol, (
        f"{what}: {actual!r} deviates from golden {golden!r} "
        f"(relative error {rel:.3e} > rtol {rtol:.0e}). If this shift "
        f"is intentional, regenerate via "
        f"'PYTHONPATH=src python tests/regen_goldens.py' and explain "
        f"the change.")


@pytest.fixture(scope="module")
def suite():
    return load_suite()


@pytest.fixture(scope="module")
def golden_foms():
    return json.loads((GOLDEN_DIR / "table2_foms.json").read_text())


@pytest.fixture(scope="module")
def golden_curve():
    return json.loads((GOLDEN_DIR / "strong_scaling_curve.json").read_text())


class TestGoldenFoms:
    def test_every_registered_benchmark_snapshotted(self, suite,
                                                    golden_foms):
        assert sorted(golden_foms["foms"]) == sorted(suite.names())

    def test_table2_foms_match_goldens(self, suite, golden_foms):
        for name, golden in sorted(golden_foms["foms"].items()):
            actual = suite.run(name).fom_seconds
            assert_close(actual, golden, what=f"FOM of {name}")

    def test_goldens_document_regeneration(self, golden_foms):
        assert "regen_goldens.py" in golden_foms["_meta"]["regenerate"]


class TestGoldenScalingCurve:
    def test_curve_matches_golden(self, suite, golden_curve):
        study = suite.strong_scaling_study(golden_curve["benchmark"])
        assert study.reference.nodes == golden_curve["reference_nodes"]
        golden_points = golden_curve["points"]
        assert [p.nodes for p in study.points] == \
            [n for n, _ in golden_points]
        for point, (nodes, golden_runtime) in zip(study.points,
                                                  golden_points):
            assert_close(point.runtime, golden_runtime,
                         what=f"{golden_curve['benchmark']} strong-"
                              f"scaling runtime at {nodes} nodes")


class TestComparator:
    def test_exact_match_passes(self):
        assert_close(1.0, 1.0, what="identity")

    def test_within_tolerance_passes(self):
        assert_close(1.0 + 1e-12, 1.0, what="tiny noise")

    def test_shift_beyond_tolerance_fails_with_guidance(self):
        with pytest.raises(AssertionError, match="regen_goldens"):
            assert_close(1.01, 1.0, what="real shift")
