"""Golden regression tests for paper-facing numbers.

Small JSON snapshots of the Table II FOMs and one Fig. 2
strong-scaling curve, produced at seed, live in ``tests/goldens/``.
Future PRs cannot silently shift these numbers: the tolerance-aware
comparator flags any relative deviation beyond ``RTOL``.

To *intentionally* move them (e.g. a legitimate model fix), regenerate
with::

    PYTHONPATH=src python tests/regen_goldens.py

and justify the shift in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.core import load_suite

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The simulation is deterministic, so in-place reruns reproduce the
#: goldens exactly; the tolerance only absorbs cross-platform libm /
#: BLAS rounding differences, not model changes.
RTOL = 1e-9


def assert_close(actual: float, golden: float, *, what: str,
                 rtol: float = RTOL) -> None:
    """Tolerance-aware comparator with an actionable failure message."""
    denom = max(abs(golden), 1e-300)
    rel = abs(actual - golden) / denom
    assert rel <= rtol, (
        f"{what}: {actual!r} deviates from golden {golden!r} "
        f"(relative error {rel:.3e} > rtol {rtol:.0e}). If this shift "
        f"is intentional, regenerate via "
        f"'PYTHONPATH=src python tests/regen_goldens.py' and explain "
        f"the change.")


@pytest.fixture(scope="module")
def suite():
    return load_suite()


@pytest.fixture(scope="module")
def golden_foms():
    return json.loads((GOLDEN_DIR / "table2_foms.json").read_text())


@pytest.fixture(scope="module")
def golden_curve():
    return json.loads((GOLDEN_DIR / "strong_scaling_curve.json").read_text())


class TestGoldenFoms:
    def test_every_registered_benchmark_snapshotted(self, suite,
                                                    golden_foms):
        assert sorted(golden_foms["foms"]) == sorted(suite.names())

    def test_table2_foms_match_goldens(self, suite, golden_foms):
        for name, golden in sorted(golden_foms["foms"].items()):
            actual = suite.run(name).fom_seconds
            assert_close(actual, golden, what=f"FOM of {name}")

    def test_goldens_document_regeneration(self, golden_foms):
        assert "regen_goldens.py" in golden_foms["_meta"]["regenerate"]


class TestGoldenScalingCurve:
    def test_curve_matches_golden(self, suite, golden_curve):
        study = suite.strong_scaling_study(golden_curve["benchmark"])
        assert study.reference.nodes == golden_curve["reference_nodes"]
        golden_points = golden_curve["points"]
        assert [p.nodes for p in study.points] == \
            [n for n, _ in golden_points]
        for point, (nodes, golden_runtime) in zip(study.points,
                                                  golden_points):
            assert_close(point.runtime, golden_runtime,
                         what=f"{golden_curve['benchmark']} strong-"
                              f"scaling runtime at {nodes} nodes")


class TestChaosGoldens:
    """Chaos equivalence golden: byte-for-byte, not tolerance-aware.

    The canonical journal and the chaos trace are rendered from
    plan-determined data (virtual clock, canonical re-timing), so any
    byte that moves is a real behavioural change in fault injection,
    retry accounting or trace rendering -- never float noise.
    """

    def _artifacts(self, tmp_path, workers):
        from repro.faults import write_chaos_trace
        from tests.regen_goldens import build_chaos_artifacts

        journal, plan = build_chaos_artifacts(workers=workers)
        jpath = tmp_path / f"journal-{workers}.jsonl"
        journal.canonical().to_jsonl(jpath)
        tpath = tmp_path / f"trace-{workers}.json"
        write_chaos_trace(tpath, journal, plan)
        return jpath.read_bytes(), tpath.read_bytes()

    def test_journal_and_trace_match_goldens(self, tmp_path):
        journal, trace = self._artifacts(tmp_path, workers=2)
        golden_journal = (GOLDEN_DIR / "chaos_journal.jsonl").read_bytes()
        golden_trace = (GOLDEN_DIR / "chaos_trace.json").read_bytes()
        assert journal == golden_journal, (
            "chaos journal drifted from tests/goldens/chaos_journal"
            ".jsonl; regenerate via tests/regen_goldens.py if the "
            "fault schedule change is intentional")
        assert trace == golden_trace, (
            "chaos trace drifted from tests/goldens/chaos_trace.json; "
            "regenerate via tests/regen_goldens.py if intentional")

    def test_worker_count_does_not_move_a_byte(self, tmp_path):
        assert self._artifacts(tmp_path, workers=1) == \
            self._artifacts(tmp_path, workers=8)

    def test_golden_journal_exercises_recovery_and_failure(self):
        lines = (GOLDEN_DIR / "chaos_journal.jsonl").read_text()
        records = [json.loads(line) for line in lines.splitlines()]
        by_label = {r["label"]: r for r in records
                    if r.get("type") == "task"}
        assert by_label["run:Arbor"]["status"] == "ok"
        assert by_label["run:JUQCS"]["attempts"] == 2
        assert by_label["run:HPL"]["attempts"] == 3
        assert by_label["run:STREAM"]["status"] == "error"
        assert "InjectedFault" in by_label["run:STREAM"]["error"]


class TestComparator:
    def test_exact_match_passes(self):
        assert_close(1.0, 1.0, what="identity")

    def test_within_tolerance_passes(self):
        assert_close(1.0 + 1e-12, 1.0, what="tiny noise")

    def test_shift_beyond_tolerance_fails_with_guidance(self):
        with pytest.raises(AssertionError, match="regen_goldens"):
            assert_close(1.01, 1.0, what="real shift")
