"""Tests for the JUBE workflow layer: parameters, steps, platforms,
runtime and result tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jube import (
    JUWELS_BOOSTER,
    BenchmarkSpec,
    JubeRuntime,
    Parameter,
    ParameterError,
    ParameterSet,
    Step,
    StepContext,
    StepError,
    expand,
    get_platform,
    resolve,
    step_order,
    table,
)


class TestParameters:
    def test_plain_values(self):
        pset = ParameterSet("p").add("nodes", 8).add("name", "arbor")
        assert resolve([pset]) == {"nodes": 8, "name": "arbor"}

    def test_substitution_chain(self):
        pset = (ParameterSet("p")
                .add("nodes", 8)
                .add("tasks_per_node", 4)
                .add("tasks", "$nodes * $tasks_per_node", mode="python"))
        assert resolve([pset])["tasks"] == 32

    def test_substitution_braces(self):
        pset = ParameterSet("p").add("base", "run").add("dir", "${base}_out")
        assert resolve([pset])["dir"] == "run_out"

    def test_later_set_overrides(self):
        a = ParameterSet("a").add("nodes", 8)
        b = ParameterSet("b").add("nodes", 16)
        assert resolve([a, b])["nodes"] == 16

    def test_unresolved_reference_raises(self):
        pset = ParameterSet("p").add("x", "$missing")
        with pytest.raises(ParameterError):
            resolve([pset])

    def test_cycle_detected(self):
        pset = ParameterSet("p").add("a", "$b").add("b", "$a")
        with pytest.raises(ParameterError):
            resolve([pset])

    def test_python_mode_error_wrapped(self):
        pset = ParameterSet("p").add("x", "1 /", mode="python")
        with pytest.raises(ParameterError):
            resolve([pset])

    def test_python_mode_restricted(self):
        pset = ParameterSet("p").add("x", "__import__('os')", mode="python")
        with pytest.raises(ParameterError):
            resolve([pset])

    def test_invalid_name_rejected(self):
        with pytest.raises(ParameterError):
            Parameter(name="bad name", value=1)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ParameterError):
            Parameter(name="x", value=1, mode="shell")


class TestTags:
    def test_tagged_parameter_selected(self):
        pset = (ParameterSet("p")
                .add("qubits", 36)
                .add("qubits", 41, tags=["small"])
                .add("qubits", 42, tags=["large"]))
        assert resolve([pset])["qubits"] == 36
        assert resolve([pset], tags=["small"])["qubits"] == 41
        assert resolve([pset], tags=["large"])["qubits"] == 42

    def test_inactive_tag_dropped(self):
        pset = ParameterSet("p").add("only_hs", 1, tags=["highscale"])
        assert "only_hs" not in resolve([pset])


class TestExpansion:
    def test_multivalue_product(self):
        pset = (ParameterSet("p")
                .add("nodes", [4, 8, 16])
                .add("variant", ["S", "L"]))
        combos = expand([pset])
        assert len(combos) == 6
        assert {c["nodes"] for c in combos} == {4, 8, 16}

    def test_expansion_resolves_refs(self):
        pset = (ParameterSet("p")
                .add("nodes", [2, 4])
                .add("tasks", "$nodes * 4", mode="python"))
        combos = expand([pset])
        assert sorted(c["tasks"] for c in combos) == [8, 16]

    def test_single_combo_without_multivalues(self):
        pset = ParameterSet("p").add("nodes", 8)
        assert expand([pset]) == [{"nodes": 8}]

    def test_resolve_rejects_multivalue(self):
        pset = ParameterSet("p").add("nodes", [1, 2])
        with pytest.raises(ParameterError):
            resolve([pset])

    @given(st.lists(st.integers(min_value=1, max_value=5),
                    min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_expansion_size_is_product(self, sizes):
        pset = ParameterSet("p")
        for i, size in enumerate(sizes):
            pset.add(f"p{i}", list(range(size)))
        combos = expand([pset])
        expected = 1
        for s in sizes:
            expected *= s
        assert len(combos) == expected


class TestSteps:
    def test_step_order_topological(self):
        steps = [
            Step("verify", depends=("execute",)),
            Step("compile"),
            Step("execute", depends=("compile",)),
        ]
        assert [s.name for s in step_order(steps)] == \
            ["compile", "execute", "verify"]

    def test_unknown_dependency(self):
        with pytest.raises(StepError):
            step_order([Step("a", depends=("ghost",))])

    def test_cycle(self):
        with pytest.raises(StepError):
            step_order([Step("a", depends=("b",)), Step("b", depends=("a",))])

    def test_duplicate_names(self):
        with pytest.raises(StepError):
            step_order([Step("a"), Step("a")])

    def test_task_outputs_merge(self):
        step = Step("s", tasks=[lambda ctx: {"x": 1}, lambda ctx: {"y": 2}])
        ctx = StepContext(params={}, results={})
        assert step.run(ctx) == {"x": 1, "y": 2}

    def test_task_sees_prior_task_output(self):
        step = Step("s", tasks=[
            lambda ctx: {"x": 10},
            lambda ctx: {"y": ctx.output("s", "x") + 1},
        ])
        ctx = StepContext(params={}, results={})
        assert step.run(ctx)["y"] == 11

    def test_task_exception_wrapped(self):
        def boom(ctx):
            raise ZeroDivisionError("1/0")
        step = Step("s", tasks=[boom])
        with pytest.raises(StepError):
            step.run(StepContext(params={}, results={}))

    def test_iterations_recorded(self):
        counter = {"n": 0}

        def tick(ctx):
            counter["n"] += 1
            return {"n": counter["n"]}

        step = Step("s", tasks=[tick], iterations=3)
        out = step.run(StepContext(params={}, results={}))
        assert out["n"] == 3
        assert len(out["iterations"]) == 3

    def test_invalid_iterations(self):
        with pytest.raises(StepError):
            Step("s", iterations=0)


class TestPlatform:
    def test_booster_parameters(self):
        params = resolve([JUWELS_BOOSTER.parameterset()])
        assert params["system_nodes"] == 936
        assert params["gpus_per_node"] == 4
        assert params["queue"] == "booster"

    def test_inheritance_overrides(self):
        jupiter = get_platform("jupiter-booster")
        params = resolve([jupiter.parameterset()])
        assert params["platform"] == "jupiter-booster"
        assert params["system_nodes"] > 936  # bigger machine wins

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            get_platform("summit")


class TestRuntime:
    def make_spec(self):
        pset = (ParameterSet("bench")
                .add("nodes", [2, 4])
                .add("steps_count", 10)
                .add("work", "$nodes * $steps_count", mode="python"))

        def execute(ctx):
            return {"fom_seconds": 100.0 / ctx.params["nodes"]}

        def verify(ctx):
            return {"verified": ctx.output("execute", "fom_seconds") > 0}

        return BenchmarkSpec(
            name="toy",
            parametersets=[pset],
            steps=[Step("execute", tasks=[execute]),
                   Step("verify", tasks=[verify], depends=("execute",))],
            tables=[table("fom", "nodes", ("fom_seconds", "FOM [s]", ".1f"),
                          sort_by="nodes")],
        )

    def test_run_expands_workunits(self):
        res = JubeRuntime().run(self.make_spec())
        assert len(res.workunits) == 2
        assert res.ok

    def test_outputs_collected(self):
        res = JubeRuntime().run(self.make_spec())
        by_nodes = {w.params["nodes"]: w for w in res.workunits}
        assert by_nodes[4].outputs["execute"]["fom_seconds"] == pytest.approx(25.0)
        assert by_nodes[2].outputs["verify"]["verified"] is True

    def test_render_table(self):
        spec = self.make_spec()
        res = JubeRuntime().run(spec)
        text = res.render(spec.tables[0])
        assert "FOM [s]" in text
        assert "50.0" in text and "25.0" in text

    def test_keep_going_records_error(self):
        def boom(ctx):
            if ctx.params["nodes"] == 4:
                raise RuntimeError("gpu fell off")
            return {"fom_seconds": 1.0}

        spec = BenchmarkSpec(
            name="fragile",
            parametersets=[ParameterSet("p").add("nodes", [2, 4])],
            steps=[Step("execute", tasks=[boom])],
        )
        res = JubeRuntime().run(spec, keep_going=True)
        assert not res.ok
        assert sum(1 for w in res.workunits if w.ok) == 1

    def test_failure_raises_without_keep_going(self):
        def boom(ctx):
            raise RuntimeError("no")

        spec = BenchmarkSpec(name="f", parametersets=[],
                             steps=[Step("execute", tasks=[boom])])
        with pytest.raises(StepError):
            JubeRuntime().run(spec)

    def test_env_passed_to_context(self):
        seen = {}

        def peek(ctx):
            seen["env"] = ctx.env.get("machine")
            return {}

        spec = BenchmarkSpec(name="e", parametersets=[],
                             steps=[Step("s", tasks=[peek])])
        JubeRuntime(env={"machine": "booster"}).run(spec)
        assert seen["env"] == "booster"


class TestResultTable:
    def test_missing_value_rendered_as_dash(self):
        from repro.jube import WorkunitRecord
        t = table("t", "a", "b")
        text = t.render([WorkunitRecord(params={"a": 1}, outputs={})])
        assert "-" in text.splitlines()[2]

    def test_sort_by_unknown_column(self):
        from repro.jube import WorkunitRecord
        t = table("t", "a", sort_by="zz")
        with pytest.raises(KeyError):
            t.rows([WorkunitRecord(params={"a": 1}, outputs={})])

    def test_column_source_specific_step(self):
        from repro.jube import Column, ResultTable, WorkunitRecord
        t = ResultTable("t", columns=[Column(key="x", source="execute")])
        rec = WorkunitRecord(params={"x": "wrong"},
                             outputs={"execute": {"x": "right"}})
        assert t.rows([rec]) == [["right"]]
