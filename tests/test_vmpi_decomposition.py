"""Tests for decomposition helpers: block partition, dims_create,
Cartesian grids, halo exchange."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import juwels_booster
from repro.vmpi import (
    CartGrid,
    Machine,
    block_partition,
    dims_create,
    ghost_faces,
    halo_exchange,
    phantom_faces,
    run_spmd,
)


class TestBlockPartition:
    def test_even_split(self):
        assert block_partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        parts = block_partition(10, 3)
        sizes = [hi - lo for lo, hi in parts]
        assert sizes == [4, 3, 3]

    def test_more_parts_than_items(self):
        parts = block_partition(2, 4)
        sizes = [hi - lo for lo, hi in parts]
        assert sizes == [1, 1, 0, 0]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            block_partition(4, 0)

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=64))
    def test_covers_range_exactly(self, n, parts):
        out = block_partition(n, parts)
        assert out[0][0] == 0
        assert out[-1][1] == n
        for (lo1, hi1), (lo2, _) in zip(out, out[1:]):
            assert hi1 == lo2
        sizes = [hi - lo for lo, hi in out]
        assert max(sizes) - min(sizes) <= 1


class TestDimsCreate:
    def test_product_is_nranks(self):
        for n in (1, 6, 24, 64, 2560):
            dims = dims_create(n, 3)
            assert int(np.prod(dims)) == n

    def test_balanced(self):
        assert dims_create(8, 3) == (2, 2, 2)
        assert dims_create(64, 2) == (8, 8)

    def test_extent_aware_minimises_surface(self):
        """A 100x1 domain over 4 ranks should split 4x1, not 2x2."""
        dims = dims_create(4, 2, extents=(1000, 4))
        assert dims == (4, 1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            dims_create(0, 2)

    @given(st.integers(min_value=1, max_value=256),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_always_valid_factorisation(self, n, k):
        dims = dims_create(n, k)
        assert len(dims) == k
        assert int(np.prod(dims)) == n
        assert all(d >= 1 for d in dims)


class TestCartGrid:
    def test_coords_roundtrip(self):
        g = CartGrid(dims=(3, 4), periodic=(True, True))
        for r in range(12):
            assert g.rank_of(g.coords(r)) == r

    def test_neighbors_periodic(self):
        g = CartGrid(dims=(3,), periodic=(True,))
        assert g.neighbor(0, 0, -1) == 2
        assert g.neighbor(2, 0, +1) == 0

    def test_neighbors_walls(self):
        g = CartGrid(dims=(3,), periodic=(False,))
        assert g.neighbor(0, 0, -1) is None
        assert g.neighbor(2, 0, +1) is None
        assert g.neighbor(1, 0, +1) == 2

    def test_local_shape_balanced(self):
        g = CartGrid(dims=(3,), periodic=(True,))
        shapes = [g.local_shape((10,), r) for r in range(3)]
        assert shapes == [(4,), (3,), (3,)]

    def test_size_mismatch_checked(self):
        g = CartGrid(dims=(2, 2), periodic=(True, True))
        with pytest.raises(ValueError):
            g.coords(4)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            CartGrid(dims=(2, 0), periodic=(True, True))
        with pytest.raises(ValueError):
            CartGrid(dims=(2,), periodic=(True, True))

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_neighbor_is_involution_periodic(self, n, ndims):
        g = CartGrid.for_ranks(n, ndims, periodic=True)
        for r in range(g.size):
            for d in range(ndims):
                fwd = g.neighbor(r, d, +1)
                assert g.neighbor(fwd, d, -1) == r


class TestHaloExchange:
    def test_faces_arrive_from_correct_neighbors(self):
        def prog(comm):
            cart = CartGrid(dims=(2, 2), periodic=(True, True))
            field = np.full((4, 4), float(comm.rank))
            recv = yield from halo_exchange(comm, cart, ghost_faces(field))
            return {k: float(v[0, 0]) for k, v in recv.items()}

        res = run_spmd(prog, machine=Machine.on(juwels_booster(), 4))
        # rank 0 at (0,0): dim-0 neighbours are rank 2, dim-1 are rank 1
        assert res.values[0][(0, -1)] == 2.0
        assert res.values[0][(1, -1)] == 1.0

    def test_nonperiodic_boundary_receives_nothing(self):
        def prog(comm):
            cart = CartGrid(dims=(comm.size,), periodic=(False,))
            field = np.full((3,), float(comm.rank))
            recv = yield from halo_exchange(comm, cart, ghost_faces(field))
            return sorted(recv.keys())

        res = run_spmd(prog, machine=Machine.on(juwels_booster(), 3))
        assert res.values[0] == [(0, 1)]       # only a right neighbour
        assert res.values[1] == [(0, -1), (0, 1)]
        assert res.values[2] == [(0, -1)]

    def test_ghost_faces_shapes(self):
        f = np.arange(24.0).reshape(2, 3, 4)
        faces = ghost_faces(f)
        assert faces[(0, -1)].shape == (1, 3, 4)
        assert faces[(1, +1)].shape == (2, 1, 4)
        assert faces[(2, -1)].shape == (2, 3, 1)

    def test_ghost_faces_width(self):
        f = np.arange(64.0).reshape(8, 8)
        faces = ghost_faces(f, width=2)
        assert faces[(0, -1)].shape == (2, 8)
        np.testing.assert_array_equal(faces[(0, -1)], f[:2])

    def test_ghost_faces_invalid_width(self):
        with pytest.raises(ValueError):
            ghost_faces(np.zeros((2, 2)), width=0)

    def test_phantom_faces_sizes(self):
        faces = phantom_faces((10, 20, 30), itemsize=8)
        assert faces[(0, -1)].nbytes == 20 * 30 * 8
        assert faces[(1, +1)].nbytes == 10 * 30 * 8
        assert faces[(2, -1)].nbytes == 10 * 20 * 8

    def test_halo_conservation_sum(self):
        """Total of all shipped faces equals total of all received faces."""

        def prog(comm):
            cart = CartGrid.for_ranks(comm.size, 2, periodic=True)
            field = np.random.default_rng(comm.rank).random((4, 4))
            faces = ghost_faces(field)
            sent = sum(float(v.sum()) for v in faces.values())
            recv = yield from halo_exchange(comm, cart, faces)
            got = sum(float(v.sum()) for v in recv.values())
            return sent, got

        res = run_spmd(prog, machine=Machine.on(juwels_booster(), 4))
        total_sent = sum(v[0] for v in res.values)
        total_got = sum(v[1] for v in res.values)
        assert total_sent == pytest.approx(total_got)
