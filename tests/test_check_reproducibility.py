"""Behavioural tests of the REP6xx reproducibility-taint pass.

Each test writes a miniature module into a tmp tree and runs the
analyzer restricted to the REP family, so the assertions are about the
taint semantics -- sources, sanitizers, sinks, the interprocedural
summaries and the attribute channel -- rather than fixture line
numbers.  Golden snapshots and the whole-repo cleanliness criterion
ride at the end.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import Analyzer, Severity, load_baseline
from repro.check.rules import expand_rule_prefixes
from repro.exec import DiskCache

REP_RULES = expand_rule_prefixes(["REP"])
REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).parent / "fixtures" / "rep"
GOLDEN_DIR = Path(__file__).parent / "goldens"


def run_source(tmp_path, source, *, name="m.py", segment="apps"):
    tree = tmp_path / segment
    tree.mkdir(exist_ok=True)
    (tree / name).write_text(source)
    return Analyzer(only=REP_RULES).run(tmp_path, rel_base=tmp_path)


def rules_of(report):
    return sorted(f.rule for f in report.active)


# -- sources reach sinks -----------------------------------------------------

def test_env_read_in_canonical_is_rep601(tmp_path):
    report = run_source(tmp_path, (
        "import os\n\n"
        "def canonical():\n"
        "    return {'seed': os.environ.get('PYTHONHASHSEED', '')}\n"))
    assert rules_of(report) == ["REP601"]


def test_string_hash_in_canonical_is_rep601(tmp_path):
    report = run_source(tmp_path, (
        "def canonical():\n"
        "    return hash('token')\n"))
    assert rules_of(report) == ["REP601"]


def test_set_iteration_into_export_is_rep602(tmp_path):
    report = run_source(tmp_path, (
        "def canonical_export():\n"
        "    tags = {'a', 'b', 'c'}\n"
        "    return ','.join(tags)\n"))
    assert rules_of(report) == ["REP602"]


def test_wall_clock_in_canonical_is_rep603(tmp_path):
    report = run_source(tmp_path, (
        "import time\n\n"
        "def canonical():\n"
        "    return {'t': time.time_ns()}\n"))
    assert rules_of(report) == ["REP603"]
    (finding,) = report.active
    # wall-clock is WARNING across the family: timing reads are
    # sometimes legitimate provenance, unlike RNG/identity taints
    assert finding.severity is Severity.WARNING
    assert "canonical" in finding.message


def test_global_rng_into_stable_hash_is_rep604(tmp_path):
    report = run_source(tmp_path, (
        "import random\n\n"
        "def record_key(stable_hash):\n"
        "    return stable_hash({'jitter': random.random()})\n"))
    assert rules_of(report) == ["REP604"]


def test_as_completed_accumulation_is_rep605(tmp_path):
    report = run_source(tmp_path, (
        "import json\n"
        "from concurrent.futures import as_completed\n\n"
        "def canonical_export(futures):\n"
        "    results = []\n"
        "    for fut in as_completed(futures):\n"
        "        results.append(fut.result())\n"
        "    return json.dumps(results)\n"))
    assert rules_of(report) == ["REP605"]


def test_tainted_attribute_read_in_sink_is_rep606(tmp_path):
    report = run_source(tmp_path, (
        "import time\n\n"
        "class Record:\n"
        "    def __init__(self):\n"
        "        self.started = time.time()\n\n"
        "    def canonical(self):\n"
        "        return {'started': self.started}\n"))
    assert rules_of(report) == ["REP606"]


def test_order_sensitive_consumer_is_rep602(tmp_path):
    # the parameters.py/steps.py bug shape this pass caught at HEAD:
    # set-valued predecessors feed TopologicalSorter.static_order()
    report = run_source(tmp_path, (
        "from graphlib import TopologicalSorter\n\n"
        "def plan(names):\n"
        "    graph = {n: set(names) for n in names}\n"
        "    return list(TopologicalSorter(graph).static_order())\n"))
    assert rules_of(report) == ["REP602"]


def test_sorted_predecessors_silence_static_order(tmp_path):
    report = run_source(tmp_path, (
        "from graphlib import TopologicalSorter\n\n"
        "def plan(names):\n"
        "    graph = {n: sorted(set(names)) for n in names}\n"
        "    return list(TopologicalSorter(graph).static_order())\n"))
    assert not report.active


# -- model-code wall-clock escapes -------------------------------------------

def test_model_return_of_wall_clock_is_rep603_warning(tmp_path):
    report = run_source(tmp_path, (
        "import time\n\n"
        "def measure(fn):\n"
        "    t0 = time.perf_counter()\n"
        "    fn()\n"
        "    return time.perf_counter() - t0\n"))
    assert rules_of(report) == ["REP603"]
    (finding,) = report.active
    assert finding.severity is Severity.WARNING


def test_wall_clock_not_returned_stays_quiet(tmp_path):
    report = run_source(tmp_path, (
        "import time\n\n"
        "def run():\n"
        "    t = time.time()\n"))
    assert not report.active  # DET001's jurisdiction, not REP's


def test_non_model_segment_return_not_flagged(tmp_path):
    report = run_source(tmp_path, (
        "import time\n\n"
        "def elapsed(t0):\n"
        "    return time.perf_counter() - t0\n"), segment="telemetry")
    assert not report.active


# -- sanitizers --------------------------------------------------------------

def test_sorted_clears_set_order(tmp_path):
    report = run_source(tmp_path, (
        "def canonical_export():\n"
        "    tags = {'a', 'b', 'c'}\n"
        "    return ','.join(sorted(tags))\n"))
    assert not report.active


def test_min_max_sum_len_clear_order(tmp_path):
    report = run_source(tmp_path, (
        "def canonical():\n"
        "    s = {3, 1, 2}\n"
        "    return {'lo': min(s), 'hi': max(s), 'total': sum(s),\n"
        "            'n': len(s)}\n"))
    assert not report.active


def test_sort_does_not_wash_out_value_taint(tmp_path):
    report = run_source(tmp_path, (
        "import time\n\n"
        "def canonical():\n"
        "    ts = [time.time(), time.time()]\n"
        "    return sorted(ts)\n"))
    assert rules_of(report) == ["REP603"]


def test_nondeterministic_sort_key_is_not_a_sanitizer(tmp_path):
    report = run_source(tmp_path, (
        "def canonical_export(items):\n"
        "    tags = set(items)\n"
        "    return sorted(tags, key=lambda t: id(t))\n"))
    # the identity key both injects REP601 taint and voids the
    # order-clearing effect of sorted(), so REP602 survives too
    assert rules_of(report) == ["REP601", "REP602"]


def test_seeded_rng_is_clean(tmp_path):
    report = run_source(tmp_path, (
        "import random\n\n"
        "def canonical():\n"
        "    rng = random.Random(2024)\n"
        "    return rng.random()\n"))
    assert not report.active


def test_unseeded_rng_object_taints(tmp_path):
    report = run_source(tmp_path, (
        "import random\n\n"
        "def canonical():\n"
        "    rng = random.Random()\n"
        "    return rng.random()\n"))
    assert rules_of(report) == ["REP601"]


def test_volatile_block_pattern_is_clean(tmp_path):
    # taint handed to an unresolved constructor is the sanctioned
    # volatile boundary (the RunRecord(volatile=...) contract)
    report = run_source(tmp_path, (
        "import os\n"
        "import time\n\n"
        "def record(Record):\n"
        "    return Record(volatile={'t': time.time(),\n"
        "                            'env': os.environ.get('X')})\n"))
    assert not report.active


def test_membership_test_does_not_carry_order(tmp_path):
    report = run_source(tmp_path, (
        "def canonical(name):\n"
        "    known = {'a', 'b'}\n"
        "    return {'known': name in known}\n"))
    assert not report.active


# -- interprocedural summaries -----------------------------------------------

def test_taint_crosses_function_boundary(tmp_path):
    report = run_source(tmp_path, (
        "import time\n\n"
        "def _now():\n"
        "    return time.time()\n\n"
        "def canonical():\n"
        "    return {'t': _now()}\n"))
    rules = rules_of(report)
    assert "REP603" in rules
    sink = [f for f in report.active if "canonical" in f.message]
    assert sink and any("_now" in step for f in sink
                        for step in f.trace)


def test_taint_crosses_module_boundary(tmp_path):
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "helper.py").write_text(
        "import time\n\n"
        "def wall_stamp():\n"
        "    return time.time()\n")
    (tree / "sink.py").write_text(
        "from .helper import wall_stamp\n\n"
        "def canonical():\n"
        "    return {'t': wall_stamp()}\n")
    report = Analyzer(only=REP_RULES).run(tmp_path, rel_base=tmp_path)
    assert ("sink.py" in {f.path.split("/")[-1] for f in report.active})


def test_unresolved_call_is_quiet_boundary(tmp_path):
    report = run_source(tmp_path, (
        "import time\n\n"
        "def canonical(transform):\n"
        "    return transform(time.time())\n"))
    # the Name-call boundary swallows the taint: unknown code is quiet
    assert not report.active


def test_recursion_terminates_clean(tmp_path):
    report = run_source(tmp_path, (
        "def canonical(n):\n"
        "    if n:\n"
        "        return canonical(n - 1)\n"
        "    return {'n': 0}\n"))
    assert not report.active


# -- incremental cache: the summary fingerprint ------------------------------

def _two_module_tree(root):
    tree = root / "apps"
    tree.mkdir(parents=True, exist_ok=True)
    (tree / "helper.py").write_text(
        "def scale():\n    return 2.0\n")
    (tree / "sink.py").write_text(
        "from .helper import scale\n\n"
        "def canonical():\n"
        "    return {'x': scale()}\n")
    (tree / "constants.py").write_text("X = 1\n")
    return tree


def test_editing_a_helper_invalidates_dependents(tmp_path):
    """The load-bearing cache property: making a helper nondeterministic
    must re-verdict modules that call it, even though their own source
    is unchanged."""
    root = tmp_path / "proj"
    root.mkdir()
    tree = _two_module_tree(root)
    cache = DiskCache(tmp_path / "cache")
    first = Analyzer(only=REP_RULES).run(root, rel_base=root,
                                         cache=cache)
    assert not first.active

    (tree / "helper.py").write_text(
        "import time\n\n\ndef scale():\n    return time.time()\n")
    second = Analyzer(only=REP_RULES).run(root, rel_base=root,
                                          cache=cache)
    # every module re-analyzed: the summary-table fingerprint changed
    assert second.cache_hits == 0
    # helper.py returns the clock out of model code (REP603 warning)
    # and, decisively, sink.py -- whose source did NOT change -- now
    # carries the taint into its canonical export
    assert rules_of(second) == ["REP603", "REP603"]
    assert {f.path.split("/")[-1] for f in second.active} == \
        {"helper.py", "sink.py"}


def test_constant_edit_keeps_other_modules_cached(tmp_path):
    """Touching a functionless module must not invalidate the world:
    the fingerprint hashes the summary table, not the tree."""
    root = tmp_path / "proj"
    root.mkdir()
    tree = _two_module_tree(root)
    cache = DiskCache(tmp_path / "cache")
    Analyzer(only=REP_RULES).run(root, rel_base=root, cache=cache)

    (tree / "constants.py").write_text("X = 2\n")
    second = Analyzer(only=REP_RULES).run(root, rel_base=root,
                                          cache=cache)
    assert second.cache_misses == 1
    assert second.cache_hits == 2


# -- Hypothesis: sanitizer recognition is order-insensitive ------------------

_TAINTED = (
    "def canonical_export():\n"
    "    tags = {'x', 'y', 'z'}\n"
    "    return ','.join(tags)\n")
_SANITIZED = (
    "def canonical_export():\n"
    "    tags = {'x', 'y', 'z'}\n"
    "    return ','.join(sorted(tags))\n")


@settings(max_examples=25, deadline=None)
@given(st.permutations([True, True, False, False, False]))
def test_sanitizer_recognition_is_order_insensitive(tmp_path_factory,
                                                    tainted_flags):
    """However tainted and sanitized sink definitions interleave in a
    module, exactly the tainted ones are flagged -- recognition must
    not depend on statement order or on analysis state leaking between
    functions."""
    tmp_path = tmp_path_factory.mktemp("order")
    source = "\n".join(_TAINTED if tainted else _SANITIZED
                       for tainted in tainted_flags)
    report = run_source(tmp_path, source)
    assert rules_of(report) == ["REP602"] * sum(tainted_flags)
    # the tainted definitions sit at the right source offsets
    flagged = sorted(f.line for f in report.active)
    expected = [4 * i + 3 for i, t in enumerate(tainted_flags) if t]
    assert flagged == expected


@settings(max_examples=25, deadline=None)
@given(st.permutations(["'a'", "'b'", "'c'", "'d'", "'e'"]))
def test_sorted_sanitizes_any_literal_order(tmp_path_factory, elts):
    tmp_path = tmp_path_factory.mktemp("elts")
    source = ("def canonical_export():\n"
              f"    tags = {{{', '.join(elts)}}}\n"
              "    return ','.join(sorted(tags))\n")
    report = run_source(tmp_path, source)
    assert not report.active


# -- goldens and the whole-repo criterion ------------------------------------

@pytest.fixture(scope="module")
def fixture_report():
    return Analyzer(only=REP_RULES).run(FIXTURES, rel_base=FIXTURES)


def test_every_rep_id_fires_exactly_once_on_fixtures(fixture_report):
    assert sorted(f.rule for f in fixture_report.active) == [
        "REP601", "REP602", "REP603", "REP604", "REP605", "REP606"]
    assert all(f.trace for f in fixture_report.active)


def test_clean_control_stays_clean(fixture_report):
    assert not any(f.path.startswith("clean_")
                   for f in fixture_report.active)


def test_rep_json_matches_golden(fixture_report):
    from repro.check import render_json
    golden = (GOLDEN_DIR / "rep_fixture.json").read_text()
    assert render_json(fixture_report, strict=True) == golden


def test_rep_sarif_matches_golden(fixture_report):
    from repro.check import render_sarif
    golden = (GOLDEN_DIR / "rep_fixture.sarif").read_text()
    assert render_sarif(fixture_report) == golden


def test_rep_sarif_carries_traces(fixture_report):
    from repro.check import render_sarif
    doc = json.loads(render_sarif(fixture_report))
    (run,) = doc["runs"]
    for result in run["results"]:
        assert result["properties"]["trace"], result["ruleId"]


def test_repo_is_rep_clean_at_head():
    """The acceptance criterion: `jubench check --select REP --strict`
    exits 0 at HEAD, with only the justified stream.py timing read
    baselined."""
    baseline = load_baseline(REPO_ROOT / "check-baseline.json")
    report = Analyzer(only=REP_RULES, baseline=baseline).run(
        REPO_ROOT / "src" / "repro", rel_base=REPO_ROOT)
    assert not report.active, [f.render() for f in report.active]
    assert not report.unused_baseline
    assert not report.failed(strict=True)
    assert [(f.rule, f.path) for f in report.baselined] == \
        [("REP603", "src/repro/synthetic/stream.py")]
    (baselined,) = report.baselined
    assert baselined.justification
