"""Drop-in equivalence of the parallel + incremental engine.

The acceptance bar of the execution-engine PR: running the full
registered suite and the Fig. 2 / Fig. 3 study drivers with
``workers=8`` must produce *bit-identical* FOM/time-metric results (in
values and order) to ``workers=1``, and a warm-cache rerun must perform
zero benchmark executions (verified through cache + journal
statistics)."""

import pytest

from repro.core import MemoryVariant, load_suite
from repro.exec import DiskCache, ExecutionEngine, MemoryCache
from repro.jube.parameters import ParameterSet
from repro.jube.runtime import BenchmarkSpec, JubeRuntime
from repro.jube.steps import Step


@pytest.fixture()
def suite():
    s = load_suite()
    s.engine = None
    yield s
    s.engine = None     # never leak an engine into the shared default


def foms(results):
    return [(r.benchmark, r.fom_seconds) for r in results]


class TestRunAllEquivalence:
    def test_workers8_bit_identical_to_workers1(self, suite):
        sequential = suite.run_all()                  # engine-less path
        suite.engine = ExecutionEngine(workers=1)
        serial_engine = suite.run_all()
        suite.engine = ExecutionEngine(workers=8)
        parallel = suite.run_all()
        assert foms(parallel) == foms(sequential)
        assert foms(parallel) == foms(serial_engine)
        assert [r.benchmark for r in parallel] == suite.names()

    def test_warm_cache_rerun_executes_nothing(self, suite):
        cache = MemoryCache()
        n = len(suite.names())
        suite.engine = ExecutionEngine(workers=8, cache=cache)
        cold = suite.run_all()
        assert cache.stats.misses == n and cache.stats.hits == 0
        # fresh engine + journal over the same cache isolates the rerun
        suite.engine = ExecutionEngine(workers=8, cache=cache)
        warm = suite.run_all()
        assert foms(warm) == foms(cold)               # bit-identical
        assert cache.stats.hits == n
        assert cache.stats.misses == n                # no new misses
        stats = suite.engine.journal.stats()
        assert stats.executed == 0                    # zero executions
        assert stats.cache_hits == n

    def test_process_backend_matches_sequential(self, suite):
        # bound-method workunits must survive pickling to pool workers
        names = ["SOMA", "MMoCLIP", "HPCG", "OSU", "STREAM"]
        sequential = suite.run_all(names)
        suite.engine = ExecutionEngine(workers=2, backend="process")
        parallel = suite.run_all(names)
        assert foms(parallel) == foms(sequential)

    def test_disk_cache_cold_vs_warm(self, suite, tmp_path):
        names = ["Arbor", "JUQCS", "HPL", "STREAM"]
        suite.engine = ExecutionEngine(workers=4,
                                       cache=DiskCache(tmp_path))
        cold = suite.run_all(names)
        # a separate process would reopen the directory the same way
        suite.engine = ExecutionEngine(workers=4,
                                       cache=DiskCache(tmp_path))
        warm = suite.run_all(names)
        assert foms(warm) == foms(cold)
        assert suite.engine.cache.stats.hits == len(names)
        assert suite.engine.journal.stats().executed == 0


class TestJubeRuntimeFullSuite:
    """The acceptance criterion, verbatim: ``JubeRuntime.run`` with
    ``workers=8`` on a spec spanning the full registered suite."""

    def _spec(self, suite) -> BenchmarkSpec:
        def execute(ctx):
            result = suite.run(ctx.params["benchmark"])
            return {"fom_seconds": result.fom_seconds,
                    "nodes": result.nodes}

        pset = ParameterSet(name="suite").add("benchmark", suite.names())
        return BenchmarkSpec(name="full-suite", parametersets=[pset],
                             steps=[Step(name="execute", tasks=[execute])])

    def test_workers8_identical_values_and_order(self, suite):
        spec = self._spec(suite)
        seq = JubeRuntime().run(spec)
        par = JubeRuntime(engine=ExecutionEngine(workers=8)).run(spec)
        assert seq.ok and par.ok
        assert len(par.workunits) == len(suite.names())
        assert [w.params["benchmark"] for w in par.workunits] == \
            [w.params["benchmark"] for w in seq.workunits]
        assert [w.outputs["execute"]["fom_seconds"]
                for w in par.workunits] == \
            [w.outputs["execute"]["fom_seconds"] for w in seq.workunits]


class TestStudyEquivalence:
    """Fig. 2 / Fig. 3 drivers: parallel node sweeps match sequential."""

    FIG2 = (("Arbor", False), ("Chroma-QCD", True), ("JUQCS", True),
            ("NAStJA", False))

    def test_strong_scaling_workers8(self, suite):
        for name, pow2 in self.FIG2:
            reference = suite.strong_scaling_study(name,
                                                   power_of_two=pow2)
            suite.engine = ExecutionEngine(workers=8)
            parallel = suite.strong_scaling_study(name, power_of_two=pow2)
            suite.engine = None
            assert [(p.nodes, p.runtime) for p in parallel.points] == \
                [(p.nodes, p.runtime) for p in reference.points]
            assert parallel.reference.runtime == reference.reference.runtime

    def test_weak_scaling_workers8(self, suite):
        nodes = (1, 2, 4, 8)
        reference = suite.weak_scaling_study(
            "PIConGPU", nodes, variant=MemoryVariant.SMALL)
        suite.engine = ExecutionEngine(workers=8)
        parallel = suite.weak_scaling_study(
            "PIConGPU", nodes, variant=MemoryVariant.SMALL)
        assert [(p.nodes, p.runtime) for p in parallel.points] == \
            [(p.nodes, p.runtime) for p in reference.points]

    def test_study_cold_vs_warm_cache(self, suite):
        cache = MemoryCache()
        suite.engine = ExecutionEngine(workers=8, cache=cache)
        cold = suite.strong_scaling_study("Arbor")
        n_points = len(cold.points)
        assert cache.stats.misses == n_points
        suite.engine = ExecutionEngine(workers=8, cache=cache)
        warm = suite.strong_scaling_study("Arbor")
        assert [(p.nodes, p.runtime) for p in warm.points] == \
            [(p.nodes, p.runtime) for p in cold.points]
        assert cache.stats.hits == n_points
        assert suite.engine.journal.stats().executed == 0

    def test_scaling_and_run_keys_do_not_collide(self, suite):
        # a cached full result must never answer a FOM-point lookup
        assert suite.run_key("Arbor", 8) != \
            suite.run_key("Arbor", 8, kind="strong-fom")
