"""Tests for the lattice QCD substrate: SU(3) algebra, gauge actions and
forces, the Wilson-clover Dirac operator, CG, HMC, and the distributed
implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lattice import (
    GAMMA,
    GAMMA5,
    ChromaBenchmark,
    DynqcdBenchmark,
    GaugeAction,
    GaugeField,
    WilsonDirac,
    average_plaquette,
    average_rectangle,
    conjugate_gradient,
    dagger,
    dist_apply_dirac,
    dist_cg,
    distribute_gauge,
    expm_su3,
    is_su3,
    kinetic_energy,
    lattice_bytes_per_site,
    leapfrog,
    local_lattice_dims,
    plaquette_field,
    random_algebra,
    random_spinor,
    random_su3,
    run_hmc,
    slab_of,
    spinor_dot,
    spinor_norm,
    trace,
)
from repro.cluster import juwels_booster
from repro.core import MemoryVariant
from repro.vmpi import Machine, run_spmd

DIMS = (4, 4, 4, 4)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


@pytest.fixture(scope="module")
def hot(rng):
    return GaugeField.hot(DIMS, rng)


class TestSu3:
    def test_random_su3_is_unitary(self, rng):
        assert is_su3(random_su3(rng, (4, 4)))

    def test_expm_matches_scipy(self, rng):
        from scipy.linalg import expm
        a = 1j * random_algebra(rng, (5,))
        ours = expm_su3(a)
        for i in range(5):
            assert np.allclose(ours[i], expm(a[i]), atol=1e-12)

    def test_expm_of_zero_is_identity(self):
        out = expm_su3(np.zeros((2, 3, 3), dtype=complex))
        assert np.allclose(out, np.eye(3))

    def test_exp_of_algebra_is_su3(self, rng):
        a = random_algebra(rng, (8,))
        assert is_su3(expm_su3(1j * 0.3 * a))

    def test_algebra_traceless_hermitian(self, rng):
        a = random_algebra(rng, (6,))
        assert np.allclose(trace(a), 0.0, atol=1e-12)
        assert np.allclose(a, dagger(a), atol=1e-12)


class TestGauge:
    def test_cold_plaquette_is_one(self):
        cold = GaugeField.cold(DIMS)
        assert average_plaquette(cold) == pytest.approx(1.0)
        assert average_rectangle(cold) == pytest.approx(1.0)

    def test_hot_plaquette_near_zero(self, hot):
        assert abs(average_plaquette(hot)) < 0.1

    def test_plaquette_needs_distinct_dirs(self, hot):
        with pytest.raises(ValueError):
            plaquette_field(hot.u, 1, 1)

    def test_action_zero_on_cold(self):
        cold = GaugeField.cold(DIMS)
        assert GaugeAction(beta=5.7).value(cold) == pytest.approx(0.0)
        assert GaugeAction.luscher_weisz().value(cold) == pytest.approx(0.0, abs=1e-9)

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            GaugeField.cold((4, 4, 4))  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            GaugeField.cold((4, 4, 4, 1))

    @pytest.mark.parametrize("action", [
        GaugeAction(beta=5.7),
        GaugeAction.luscher_weisz(5.7),
    ])
    def test_force_matches_numerical_gradient(self, action, rng, hot):
        """The decisive staple/sign check: analytic force == dS/deps."""
        from repro.apps.lattice.su3 import random_algebra as ralg
        x = ralg(rng, ())
        mu, site = 1, (2, 1, 0, 3)
        force = action.force(hot)

        def s_of(eps):
            g2 = hot.copy()
            g2.u[(mu,) + site] = expm_su3(1j * eps * x) @ g2.u[(mu,) + site]
            return action.value(g2)

        eps = 1e-6
        numeric = (s_of(eps) - s_of(-eps)) / (2 * eps)
        analytic = float(np.trace(x @ force[(mu,) + site]).real)
        assert analytic == pytest.approx(numeric, rel=1e-4)

    def test_luscher_weisz_coefficients(self):
        lw = GaugeAction.luscher_weisz()
        assert lw.c1 == pytest.approx(-1 / 12)
        assert lw.c0 == pytest.approx(1 + 8 / 12)


class TestDirac:
    def test_gamma_anticommutators(self):
        for mu in range(4):
            for nu in range(4):
                anti = GAMMA[mu] @ GAMMA[nu] + GAMMA[nu] @ GAMMA[mu]
                expected = 2 * np.eye(4) * (mu == nu)
                assert np.allclose(anti, expected)

    def test_gamma5_squares_to_one(self):
        assert np.allclose(GAMMA5 @ GAMMA5, np.eye(4))

    def test_gamma5_hermiticity(self, rng, hot):
        d = WilsonDirac(hot, kappa=0.12)
        a = random_spinor(rng, DIMS)
        b = random_spinor(rng, DIMS)
        lhs = spinor_dot(a, d.apply_dagger(b))
        rhs = np.conjugate(spinor_dot(b, d.apply(a)))
        assert abs(lhs - rhs) < 1e-10

    def test_clover_preserves_gamma5_hermiticity(self, rng, hot):
        d = WilsonDirac(hot, kappa=0.12, c_sw=1.2)
        a = random_spinor(rng, DIMS)
        b = random_spinor(rng, DIMS)
        lhs = spinor_dot(a, d.apply_dagger(b))
        rhs = np.conjugate(spinor_dot(b, d.apply(a)))
        assert abs(lhs - rhs) < 1e-10

    def test_free_field_mass_term(self):
        """On a cold gauge field with zero momentum spinor, D acts as
        (1 - 8 kappa) (the Wilson tree-level mass)."""
        cold = GaugeField.cold(DIMS)
        d = WilsonDirac(cold, kappa=0.11)
        psi = np.ones(DIMS + (4, 3), dtype=complex)
        out = d.apply(psi)
        assert np.allclose(out, (1 - 8 * 0.11) * psi)

    def test_normal_operator_positive(self, rng, hot):
        d = WilsonDirac(hot, kappa=0.12)
        psi = random_spinor(rng, DIMS)
        val = spinor_dot(psi, d.normal_apply(psi)).real
        assert val > 0

    def test_shape_check(self, hot):
        d = WilsonDirac(hot)
        with pytest.raises(ValueError):
            d.apply(np.zeros((2, 2, 2, 2, 4, 3), dtype=complex))

    def test_kappa_bounds(self, hot):
        with pytest.raises(ValueError):
            WilsonDirac(hot, kappa=0.3)

    def test_bytes_per_site_order_of_magnitude(self):
        assert 1500 < lattice_bytes_per_site() < 5000


class TestCg:
    def test_solves_normal_equations(self, rng, hot):
        d = WilsonDirac(hot, kappa=0.12)
        b = random_spinor(rng, DIMS)
        res = conjugate_gradient(d.normal_apply, b, tol=1e-9, max_iter=500)
        assert res.converged
        assert spinor_norm(d.normal_apply(res.x) - b) / spinor_norm(b) < 1e-8

    def test_fixed_iterations_mode(self, rng, hot):
        """The robustness rule: run exactly N iterations, converged or
        not (Sec. V-B)."""
        d = WilsonDirac(hot, kappa=0.12)
        b = random_spinor(rng, DIMS)
        res = conjugate_gradient(d.normal_apply, b, fixed_iterations=5)
        assert res.iterations == 5
        assert len(res.residual_history) == 6

    def test_residual_history_decreases_overall(self, rng, hot):
        d = WilsonDirac(hot, kappa=0.12)
        b = random_spinor(rng, DIMS)
        res = conjugate_gradient(d.normal_apply, b, tol=1e-9, max_iter=500)
        assert res.residual_history[-1] < res.residual_history[0] * 1e-6

    def test_zero_rhs(self, hot):
        d = WilsonDirac(hot, kappa=0.12)
        res = conjugate_gradient(d.normal_apply,
                                 np.zeros(DIMS + (4, 3), dtype=complex))
        assert res.converged
        assert res.iterations == 0

    def test_invalid_args(self, hot, rng):
        d = WilsonDirac(hot, kappa=0.12)
        b = random_spinor(rng, DIMS)
        with pytest.raises(ValueError):
            conjugate_gradient(d.normal_apply, b, tol=0.0)


class TestHmc:
    def test_energy_conservation_scales_as_dt_squared(self, rng, hot):
        action = GaugeAction(beta=5.5)
        pi = random_algebra(rng, (4,) + DIMS)
        h0 = kinetic_energy(pi) + action.value(hot)
        errors = []
        for steps, dt in [(5, 0.02), (10, 0.01)]:
            g2, pi2 = leapfrog(hot, pi, action, steps, dt)
            errors.append(abs(kinetic_energy(pi2) + action.value(g2) - h0))
        assert errors[1] < errors[0] / 2.5  # ~4x for exact O(dt^2)

    def test_reversibility(self, rng, hot):
        action = GaugeAction(beta=5.5)
        pi = random_algebra(rng, (4,) + DIMS)
        g2, pi2 = leapfrog(hot, pi, action, 8, 0.01)
        g3, _ = leapfrog(g2, -pi2, action, 8, 0.01)
        assert np.max(np.abs(g3.u - hot.u)) < 1e-10

    def test_links_stay_su3(self, rng, hot):
        action = GaugeAction(beta=5.5)
        pi = random_algebra(rng, (4,) + DIMS)
        g2, _ = leapfrog(hot, pi, action, 10, 0.02)
        assert is_su3(g2.u)

    def test_run_hmc_accepts_with_small_steps(self, rng, hot):
        action = GaugeAction(beta=5.5)
        _, result = run_hmc(hot, action, rng, trajectories=3, steps=8,
                            dt=0.01)
        assert result.acceptance > 0.5
        assert result.mean_abs_dh < 1.0

    def test_plaquette_rises_from_hot_start(self, rng, hot):
        """At beta = 5.7 equilibrium plaquette is ~0.55; from a hot start
        (plaquette ~ 0) HMC must drive it upward."""
        action = GaugeAction(beta=5.7)
        g, result = run_hmc(hot, action, rng, trajectories=5, steps=10,
                            dt=0.02)
        assert result.trajectories[-1].plaquette > 0.15
        assert result.trajectories[-1].plaquette > \
            result.trajectories[0].plaquette

    def test_invalid_params(self, rng, hot):
        action = GaugeAction()
        with pytest.raises(ValueError):
            leapfrog(hot, random_algebra(rng, (4,) + DIMS), action, 0, 0.1)
        with pytest.raises(ValueError):
            run_hmc(hot, action, rng, trajectories=0)


class TestDistributedLattice:
    def test_distributed_dirac_matches_serial(self, rng):
        dims = (8, 4, 4, 4)
        g = GaugeField.hot(dims, rng)
        psi = random_spinor(rng, dims)
        ref = WilsonDirac(g, kappa=0.12).apply(psi)

        def prog(comm):
            op = distribute_gauge(g, comm.rank, comm.size, kappa=0.12)
            out = yield from dist_apply_dirac(
                comm, op, slab_of(psi, comm.rank, comm.size))
            return float(np.max(np.abs(
                out - slab_of(ref, comm.rank, comm.size))))

        res = run_spmd(prog, machine=Machine.on(juwels_booster(), 4))
        assert max(res.values) < 1e-12

    def test_distributed_cg_matches_serial(self, rng):
        dims = (8, 4, 4, 4)
        g = GaugeField.hot(dims, rng)
        b = random_spinor(rng, dims)
        d = WilsonDirac(g, kappa=0.12)
        ref = conjugate_gradient(d.normal_apply, b, tol=1e-8, max_iter=300)

        def prog(comm):
            op = distribute_gauge(g, comm.rank, comm.size, kappa=0.12)
            res = yield from dist_cg(comm, op,
                                     slab_of(b, comm.rank, comm.size),
                                     tol=1e-8, max_iter=300)
            err = float(np.max(np.abs(
                res.x - slab_of(ref.x, comm.rank, comm.size))))
            return err, res.iterations

        res = run_spmd(prog, machine=Machine.on(juwels_booster(), 2))
        assert max(v[0] for v in res.values) < 1e-10
        assert res.values[0][1] == ref.iterations

    def test_too_many_ranks_rejected(self, rng):
        g = GaugeField.hot((4, 4, 4, 4), rng)
        with pytest.raises(ValueError):
            distribute_gauge(g, 0, 8, kappa=0.12)


class TestChromaBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return ChromaBenchmark()

    def test_real_run_verified_at_base_tolerance(self, bench):
        res = bench.run(nodes=1, real=True, scale=0.5)
        assert res.verified is True
        assert "1e-10" in res.verification or "relative error" in res.verification

    def test_timing_run_excludes_first_update(self, bench):
        res = bench.run(nodes=2)
        assert res.fom_seconds > 0
        assert res.details["md_steps"] == 15

    def test_hs_lattice_exceeds_int32(self, bench):
        """The Chroma patch for > 2^31 sites (Sec. IV-A2b) is exercised
        by the 512-node Large workload."""
        dims = local_lattice_dims(bench.device_bytes(MemoryVariant.LARGE))
        sites = int(np.prod(dims)) * 512 * 4
        assert sites > 2 ** 31

    def test_power_of_two_node_rule(self, bench):
        res = bench.run(nodes=6)
        assert res.nodes == 4

    def test_variant_scales_local_volume(self, bench):
        small = local_lattice_dims(bench.device_bytes(MemoryVariant.SMALL))
        large = local_lattice_dims(bench.device_bytes(MemoryVariant.LARGE))
        assert np.prod(small) < np.prod(large)


class TestDynqcdBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return DynqcdBenchmark()

    def test_runs_on_cpu_module(self, bench):
        assert bench.system().node.device.kind == "cpu"

    def test_real_propagators_verified(self, bench):
        res = bench.run(nodes=1, real=True, scale=0.4)
        assert res.verified is True
        assert "propagators" in res.verification

    def test_timing_charges_600_propagators(self, bench):
        res = bench.run(nodes=4)
        assert res.details["propagators"] == 600
        assert res.fom_seconds > 0
