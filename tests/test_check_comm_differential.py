"""The differential oracle: static COMM verdicts vs the real engine.

The contract the COMM5xx family rests on:

* every program the pass flags **COMM503** actually deadlocks in
  ``VmpiEngine(mode="step")`` at the flagged rank count -- the static
  deadlock verdict is never a false positive;
* collective-alignment verdicts (COMM501/502/505) correspond to an
  engine error (deadlock or collective mismatch) at runtime;
* programs the pass reports clean -- the fixture control group and
  every real app/synthetic kernel it can resolve -- run to completion.
"""

import ast
import importlib.util
from pathlib import Path

import pytest

from repro.check.protocol import analyze_modules
from repro.cluster import juwels_booster
from repro.synthetic.linktest import bisection_program
from repro.units import MIB
from repro.vmpi import Machine, run_spmd
from repro.vmpi.collectives import CollectiveMismatchError, DeadlockError

FIXTURES = Path(__file__).parent / "fixtures" / "comm"


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"comm_fixture_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _fixture_findings():
    modules = [(p.name, ast.parse(p.read_text()))
               for p in sorted(FIXTURES.glob("*.py"))]
    return analyze_modules(modules)


FINDINGS = _fixture_findings()


def _run_fixture(relpath: str, program: str, nranks: int):
    mod = _load_module(FIXTURES / relpath)
    machine = Machine.on(juwels_booster(), nranks)
    return run_spmd(getattr(mod, program), machine=machine,
                    mode="step")


# -- COMM503: every static deadlock is a real deadlock -----------------------

DEADLOCKS = [f for f in FINDINGS if f.rule_id == "COMM503"]


def test_corpus_contains_deadlock_verdicts():
    assert len(DEADLOCKS) >= 2


@pytest.mark.parametrize(
    "finding", DEADLOCKS,
    ids=[f"{f.program}-n{f.nranks}" for f in DEADLOCKS])
def test_every_comm503_fixture_deadlocks_in_step_engine(finding):
    with pytest.raises(DeadlockError):
        _run_fixture(finding.program_relpath, finding.program,
                     finding.nranks)


# -- COMM501/502/505: collective misalignment fails at runtime ---------------

MISALIGNED = [f for f in FINDINGS
              if f.rule_id in ("COMM501", "COMM502", "COMM505")]


@pytest.mark.parametrize(
    "finding", MISALIGNED,
    ids=[f"{f.rule_id}-{f.program}" for f in MISALIGNED])
def test_collective_verdicts_fail_in_step_engine(finding):
    with pytest.raises((DeadlockError, CollectiveMismatchError)):
        _run_fixture(finding.program_relpath, finding.program,
                     finding.nranks)


# -- control group: clean and warning-only programs run clean ----------------

CLEAN_CASES = [
    ("clean_ring.py", "ring_shift"),
    ("clean_ring.py", "staged_pipeline"),
    ("clean_ring.py", "rooted_round_trip"),
    # COMM504 is a warning, not an error: matching falls back to
    # posting order but the programs complete
    ("tag_collision.py", "p2p_tag_reuse"),
    ("tag_collision.py", "exchange_tag_reuse"),
]


@pytest.mark.parametrize("relpath,program", CLEAN_CASES,
                         ids=[f"{p}" for _, p in CLEAN_CASES])
@pytest.mark.parametrize("nranks", [2, 3, 5])
def test_clean_fixtures_complete(relpath, program, nranks):
    result = _run_fixture(relpath, program, nranks)
    assert result.elapsed >= 0.0


def test_clean_fixtures_have_no_error_findings():
    clean = {f.rule_id for f in FINDINGS
             if f.program_relpath == "clean_ring.py"}
    assert clean == set()


# -- regression: the linktest spectator-barrier fix --------------------------

@pytest.mark.parametrize("nranks", [2, 3, 4, 5])
def test_linktest_bisection_completes_at_odd_rank_counts(nranks):
    """The odd rank out used to post one barrier against everyone
    else's two, deadlocking the stop barrier at odd rank counts --
    found by COMM501, fixed by making the spectator post the same
    barrier sequence."""
    machine = Machine.on(juwels_booster(), nranks)
    result = run_spmd(bisection_program, machine=machine,
                      args=(16 * MIB, 2), mode="step")
    assert result.elapsed > 0.0
