"""Regenerate the golden snapshots under ``tests/goldens/``.

Usage (from the repository root)::

    PYTHONPATH=src python tests/regen_goldens.py

Only run this when a change *intentionally* shifts paper-facing
numbers (Table II FOMs, scaling curves); commit the regenerated JSON
together with an explanation of why the numbers moved.  The golden
tests (``tests/test_golden_regression.py``) compare against these
snapshots with a small relative tolerance so incidental float noise
does not fail them, but any real shift does.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The strong-scaling curve snapshotted alongside the FOM table.
SCALING_BENCHMARK = "Arbor"


def regenerate() -> dict[str, Path]:
    from repro.core import load_suite

    suite = load_suite()
    GOLDEN_DIR.mkdir(exist_ok=True)

    foms = {name: suite.run(name).fom_seconds for name in suite.names()}
    foms_path = GOLDEN_DIR / "table2_foms.json"
    foms_path.write_text(json.dumps({
        "_meta": {
            "description": "Table II reference-node FOM time metrics "
                           "(seconds) of every registered benchmark",
            "regenerate": "PYTHONPATH=src python tests/regen_goldens.py",
        },
        "foms": foms,
    }, indent=2, sort_keys=True) + "\n")

    study = suite.strong_scaling_study(SCALING_BENCHMARK)
    curve_path = GOLDEN_DIR / "strong_scaling_curve.json"
    curve_path.write_text(json.dumps({
        "_meta": {
            "description": f"Fig. 2 strong-scaling curve of "
                           f"{SCALING_BENCHMARK} (nodes vs runtime "
                           f"seconds)",
            "regenerate": "PYTHONPATH=src python tests/regen_goldens.py",
        },
        "benchmark": SCALING_BENCHMARK,
        "reference_nodes": study.reference.nodes,
        "points": [[p.nodes, p.runtime] for p in study.points],
    }, indent=2, sort_keys=True) + "\n")

    return {"foms": foms_path, "curve": curve_path}


if __name__ == "__main__":
    for kind, path in regenerate().items():
        print(f"wrote {kind}: {path}")
    sys.exit(0)
