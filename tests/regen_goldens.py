"""Regenerate the golden snapshots under ``tests/goldens/``.

Usage (from the repository root)::

    PYTHONPATH=src python tests/regen_goldens.py

Only run this when a change *intentionally* shifts paper-facing
numbers (Table II FOMs, scaling curves); commit the regenerated JSON
together with an explanation of why the numbers moved.  The golden
tests (``tests/test_golden_regression.py``) compare against these
snapshots with a small relative tolerance so incidental float noise
does not fail them, but any real shift does.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The strong-scaling curve snapshotted alongside the FOM table.
SCALING_BENCHMARK = "Arbor"


def build_telemetry_tracer(subscriber=None):
    """The deterministic trace behind the telemetry golden files.

    A :class:`~repro.telemetry.ManualClock` stamps the timestamps, the
    span tree is fixed (driver -> benchmark, plus a retroactive task
    span) and a two-rank vmpi cost table mimics an SPMD run -- so the
    JSONL and Chrome exports are byte-stable across regenerations.
    """
    from repro.telemetry import ManualClock, Tracer, emit_vmpi

    class _RankTrace:
        def __init__(self, compute, comm):
            self.compute = compute
            self.comm = comm

    class _Spmd:
        def __init__(self, traces):
            self.traces = traces

    tracer = Tracer(clock=ManualClock(start=0.0, tick=0.25))
    if subscriber is not None:
        tracer.subscribe(subscriber)
    spmd = _Spmd([
        _RankTrace({"channels": 1.5, "cable": 1.0}, {"exchange": 0.25}),
        _RankTrace({"channels": 1.25, "cable": 1.125}, {"exchange": 0.375}),
    ])
    with tracer.span("suite.run_all", kind="driver", benchmarks=1):
        with tracer.span("run:Arbor", kind="benchmark", benchmark="Arbor"):
            emit_vmpi(tracer, "Arbor", 2, spmd)
        tracer.add_span(
            "task:run:Arbor", 0.5, 1.0, attrs={
                "kind": "task", "index": 0, "label": "run:Arbor",
                "status": "ok", "cache": "miss", "attempts": 1,
                "key": None, "error": None})
    return tracer


#: The benchmark set of the chaos equivalence golden.
CHAOS_BENCHMARKS = ("Arbor", "JUQCS", "HPL", "STREAM")


def chaos_plan():
    """The canned fault plan behind the chaos goldens.

    Authored explicitly (not seed-generated) so the exercised paths
    are obvious: Arbor sails through, JUQCS recovers after one
    injected failure, HPL after two, and STREAM exhausts the retry
    budget of 2 and lands in the journal as an explicit error.  The
    cluster and link faults only feed the trace's fault lane here.
    """
    from repro.faults import (
        FaultPlan,
        LinkFault,
        NodeFault,
        StragglerFault,
        TaskFaultRule,
    )

    return FaultPlan(
        seed=2024,
        tasks=(
            TaskFaultRule(match="run:JUQCS", attempts=(1,)),
            TaskFaultRule(match="run:HPL", attempts=(1, 2)),
            TaskFaultRule(match="run:STREAM", attempts=(1, 2, 3)),
        ),
        nodes=(NodeFault(node=3, at=10.0, duration=25.0),),
        stragglers=(StragglerFault(node=5, factor=2.0, at=0.0,
                                   duration=40.0),),
        links=(LinkFault(link="inter_cell", factor=0.5),),
    )


def build_chaos_artifacts(workers: int = 2):
    """Run the four-benchmark suite under the canned chaos plan.

    Returns ``(journal, plan)``; shared between golden regeneration
    and the byte-stability tests so both see the same run recipe.
    """
    from repro.core import load_suite
    from repro.exec import BackoffPolicy, CircuitBreaker, ExecutionEngine
    from repro.faults import FaultInjector
    from repro.telemetry import ManualClock, Tracer

    plan = chaos_plan()
    engine = ExecutionEngine(
        workers=workers, backend="thread", cache=None, retries=2,
        tracer=Tracer(clock=ManualClock(start=0.0, tick=0.25)),
        faults=FaultInjector(plan), backoff=BackoffPolicy(seed=plan.seed),
        breaker=CircuitBreaker())
    suite = load_suite()
    prev = suite.engine
    suite.engine = engine
    try:
        suite.run_all(list(CHAOS_BENCHMARKS))
    finally:
        suite.engine = prev
    return engine.journal, plan


def regenerate_chaos_goldens() -> dict[str, Path]:
    """The chaos equivalence artifacts: canonical journal + trace.

    Both are rendered from the canonical journal / the declarative
    plan, so they are byte-stable across regenerations *and* worker
    counts (the chaos determinism pin).
    """
    from repro.faults import write_chaos_trace

    journal, plan = build_chaos_artifacts()
    journal_path = GOLDEN_DIR / "chaos_journal.jsonl"
    journal.canonical().to_jsonl(journal_path)
    trace_path = GOLDEN_DIR / "chaos_trace.json"
    write_chaos_trace(trace_path, journal, plan)
    return {"chaos_journal": journal_path, "chaos_trace": trace_path}


def regenerate_check_goldens() -> dict[str, Path]:
    """Static-analysis snapshots over the known-bad fixture tree.

    Both documents are deterministic: findings are sorted, paths are
    fixture-relative, and the reporters emit no timestamps -- so the
    golden comparison is byte-for-byte.
    """
    from repro.check import Analyzer, render_json, render_sarif

    fixtures = Path(__file__).parent / "fixtures" / "check"
    report = Analyzer().run(fixtures, rel_base=fixtures)
    sarif_path = GOLDEN_DIR / "check_fixture.sarif"
    sarif_path.write_text(render_sarif(report))
    json_path = GOLDEN_DIR / "check_fixture.json"
    json_path.write_text(render_json(report, strict=True))
    return {"check_sarif": sarif_path, "check_json": json_path}


def regenerate_comm_goldens() -> dict[str, Path]:
    """COMM5xx snapshots over the broken-rank-program fixtures.

    The fixture tree is analyzed with only the COMM family enabled, so
    the goldens isolate the protocol verdicts (including their
    inference traces).  The same fixtures feed the differential suite
    (``tests/test_check_comm_differential.py``), which replays them
    through the step engine.
    """
    from repro.check import Analyzer, render_json, render_sarif
    from repro.check.rules import expand_rule_prefixes

    fixtures = Path(__file__).parent / "fixtures" / "comm"
    report = Analyzer(only=expand_rule_prefixes(["COMM"])).run(
        fixtures, rel_base=fixtures)
    sarif_path = GOLDEN_DIR / "comm_fixture.sarif"
    sarif_path.write_text(render_sarif(report))
    json_path = GOLDEN_DIR / "comm_fixture.json"
    json_path.write_text(render_json(report, strict=True))
    return {"comm_sarif": sarif_path, "comm_json": json_path}


def regenerate_rep_goldens() -> dict[str, Path]:
    """REP6xx snapshots over the reproducibility-taint fixtures.

    The fixture tree is analyzed with only the REP family enabled, so
    the goldens isolate the taint verdicts and their inference traces.
    The same fixtures feed the differential oracle
    (``tests/test_check_rep_differential.py``), which runs each one as
    a subprocess and asserts genuine byte-divergence (reruns, worker
    counts, ``PYTHONHASHSEED``) for every tainted fixture and byte
    identity for the clean control.
    """
    from repro.check import Analyzer, render_json, render_sarif
    from repro.check.rules import expand_rule_prefixes

    fixtures = Path(__file__).parent / "fixtures" / "rep"
    report = Analyzer(only=expand_rule_prefixes(["REP"])).run(
        fixtures, rel_base=fixtures)
    sarif_path = GOLDEN_DIR / "rep_fixture.sarif"
    sarif_path.write_text(render_sarif(report))
    json_path = GOLDEN_DIR / "rep_fixture.json"
    json_path.write_text(render_json(report, strict=True))
    return {"rep_sarif": sarif_path, "rep_json": json_path}


def regenerate() -> dict[str, Path]:
    from repro.core import load_suite
    from repro.vmpi import default_mode

    suite = load_suite()
    GOLDEN_DIR.mkdir(exist_ok=True)

    foms = {name: suite.run(name).fom_seconds for name in suite.names()}
    foms_path = GOLDEN_DIR / "table2_foms.json"
    foms_path.write_text(json.dumps({
        "_meta": {
            "description": "Table II reference-node FOM time metrics "
                           "(seconds) of every registered benchmark",
            "regenerate": "PYTHONPATH=src python tests/regen_goldens.py",
            "vmpi_mode": default_mode(),
        },
        "foms": foms,
    }, indent=2, sort_keys=True) + "\n")

    study = suite.strong_scaling_study(SCALING_BENCHMARK)
    curve_path = GOLDEN_DIR / "strong_scaling_curve.json"
    curve_path.write_text(json.dumps({
        "_meta": {
            "description": f"Fig. 2 strong-scaling curve of "
                           f"{SCALING_BENCHMARK} (nodes vs runtime "
                           f"seconds)",
            "regenerate": "PYTHONPATH=src python tests/regen_goldens.py",
            "vmpi_mode": default_mode(),
        },
        "benchmark": SCALING_BENCHMARK,
        "reference_nodes": study.reference.nodes,
        "points": [[p.nodes, p.runtime] for p in study.points],
    }, indent=2, sort_keys=True) + "\n")

    from repro.telemetry import JsonlSink, write_chrome_trace

    trace_path = GOLDEN_DIR / "telemetry_trace.jsonl"
    with open(trace_path, "w", encoding="utf-8") as fh:
        tracer = build_telemetry_tracer(subscriber=JsonlSink(fh))
    chrome_path = GOLDEN_DIR / "telemetry_chrome.json"
    write_chrome_trace(chrome_path, tracer)

    return {"foms": foms_path, "curve": curve_path,
            "telemetry_trace": trace_path,
            "telemetry_chrome": chrome_path,
            **regenerate_chaos_goldens(),
            **regenerate_check_goldens(),
            **regenerate_comm_goldens(),
            **regenerate_rep_goldens()}


if __name__ == "__main__":
    for kind, path in regenerate().items():
        print(f"wrote {kind}: {path}")
    sys.exit(0)
