"""Rule-level tests of ``repro.check`` against the known-bad fixtures.

Every rule family gets a fixture file under ``tests/fixtures/check/``
engineered to trip it (plus negative controls that must stay clean);
the assertions pin rule ids, paths, line numbers, and severities.
"""

from pathlib import Path

import pytest

from repro.check import Analyzer, Severity

FIXTURES = Path(__file__).parent / "fixtures" / "check"


@pytest.fixture(scope="module")
def report():
    return Analyzer().run(FIXTURES, rel_base=FIXTURES)


def by_rule(report, rule):
    return [f for f in report.active if f.rule == rule]


def locations(report, rule):
    return {(f.path, f.line) for f in by_rule(report, rule)}


# -- determinism -------------------------------------------------------------

def test_wall_clocks_flagged_in_model_code(report):
    assert locations(report, "DET001") == {
        ("apps/bad_determinism.py", 12),
        ("apps/bad_determinism.py", 13),
    }
    assert all(f.severity is Severity.WARNING
               for f in by_rule(report, "DET001"))


def test_unseeded_rng_flagged(report):
    assert locations(report, "DET002") == {
        ("apps/bad_determinism.py", 18),   # default_rng() bare call
        ("apps/bad_determinism.py", 19),   # np.random.uniform global fn
        ("apps/bad_determinism.py", 20),   # random.random global state
        ("apps/bad_determinism.py", 21),   # random.Random() unseeded
        ("apps/bad_determinism.py", 31),   # default_factory reference
    }
    assert all(f.severity is Severity.ERROR
               for f in by_rule(report, "DET002"))


def test_default_factory_reference_message(report):
    ref = [f for f in by_rule(report, "DET002") if f.line == 31]
    assert "by reference" in ref[0].message
    assert "default_factory" in ref[0].message


def test_seeded_rng_not_flagged(report):
    # seeded_ok() at line 26 uses default_rng(42): clean
    assert ("apps/bad_determinism.py", 26) not in locations(report,
                                                            "DET002")


def test_telemetry_segment_exempt(report):
    assert not any(f.path.startswith("telemetry/")
                   for f in report.active)


# -- contracts ---------------------------------------------------------------

def test_missing_fom_and_unregistered_name(report):
    findings = by_rule(report, "CON101")
    assert {f.path for f in findings} == {"apps/bench_no_fom.py"}
    messages = sorted(f.message for f in findings)
    assert "declares no class-level FOM" in messages[0]
    assert "not a registered Table II benchmark" in messages[1]
    # GoodBench inherits its fom from BaseBench and uses a registered
    # name, so only MissingFom is flagged
    assert all("MissingFom" in f.message for f in findings)


def test_variant_order_violations(report):
    findings = {f.message.split(":")[0]: f for f in by_rule(report,
                                                            "CON102")}
    assert set(findings) == {"Backwards", "NoVariants", "Partial",
                             "Base"}
    assert findings["Backwards"].severity is Severity.ERROR
    assert findings["NoVariants"].severity is Severity.ERROR
    assert findings["Base"].severity is Severity.ERROR
    # incomplete-but-ordered variant sets are a note (baseline them)
    assert findings["Partial"].severity is Severity.NOTE
    # the baseline identity names the benchmark, not the source line
    assert findings["Partial"].snippet == "BenchmarkInfo(name='Partial')"


def test_param_references_must_resolve(report):
    assert locations(report, "CON103") == {
        ("apps/spec_params.py", 8),    # ${gpus_per_node} in dict spec
        ("apps/spec_params.py", 16),   # $nodes in builder scope
    }


def test_resolving_param_references_clean(report):
    # "run-$nodes" (dict spec) and "${ranks} * 2" (builder) resolve
    lines = {line for _, line in locations(report, "CON103")}
    assert 9 not in lines and 17 not in lines


def test_unit_prefix_arithmetic(report):
    assert locations(report, "CON104") == {
        ("apps/units_misuse.py", 7),
        ("apps/units_misuse.py", 8),
    }
    # multiplicative use (4 * GIB, 2.5 * GIGA) stays clean
    lines = {line for _, line in locations(report, "CON104")}
    assert 5 not in lines and 6 not in lines


# -- dimensional dataflow ----------------------------------------------------

def test_dimensional_findings_pinned(report):
    path = "apps/units_dataflow.py"
    got = {(f.rule, f.line) for f in report.active if f.path == path}
    assert got == {
        ("UNIT303", 12),   # GIB * GIGA prefix-family mixing
        ("UNIT301", 20),   # seconds + bytes
        ("UNIT302", 24),   # B/s * FLOP/s
        ("UNIT304", 28),   # time passed to an annotated bytes param
        ("UNIT304", 32),   # fmt_si unit-string mismatch
        ("UNIT305", 36),   # *_seconds returning B^2/s
    }


def test_dimensional_severities(report):
    findings = [f for f in report.active
                if f.path == "apps/units_dataflow.py"]
    for f in findings:
        expected = Severity.WARNING if f.rule == "UNIT303" \
            else Severity.ERROR
        assert f.severity is expected, (f.rule, f.severity)


def test_dimensional_negative_controls(report):
    # correct reduction (16), literal-arm IfExp (40), weak return
    # (44) and rate*time (47) must all stay clean
    lines = {f.line for f in report.active
             if f.path == "apps/units_dataflow.py"}
    assert not lines & {16, 40, 44, 47}


def test_dimensional_findings_explain_themselves(report):
    findings = [f for f in report.active
                if f.path == "apps/units_dataflow.py"]
    assert findings
    for f in findings:
        assert f.trace, f.rule
    annotated = [f for f in findings if f.line == 28]
    assert any("DIMS annotation" in step
               for step in annotated[0].trace)


# -- concurrency -------------------------------------------------------------

def test_unlocked_module_state(report):
    assert locations(report, "LCK201") == {
        ("apps/locked_state.py", 22),   # container subscript write
        ("apps/locked_state.py", 27),   # global reassignment
        ("apps/locked_state.py", 31),   # .pop() mutator
        ("apps/locked_state.py", 35),   # del
    }


def test_locked_mutations_clean(report):
    # good_write / good_global mutate under `with _LOCK:`
    lines = {line for _, line in locations(report, "LCK201")}
    assert 12 not in lines and 18 not in lines


# -- reproducibility taint ---------------------------------------------------

def test_wall_clock_escaping_model_return_is_rep603(report):
    # stamp() returns (t, now): the wall-clock values escape the model
    # function, which DET001 (call sites only) cannot see
    assert locations(report, "REP603") == {
        ("apps/bad_determinism.py", 14),
    }
    (finding,) = by_rule(report, "REP603")
    assert finding.severity is Severity.WARNING
    assert finding.trace  # the inference chain ships with the finding


def test_rep_quiet_on_sanitized_fixtures(report):
    # the other fixtures exercise DET/CON/UNIT/LCK sources without
    # letting taint reach a sink; REP must not double-report them
    rep = [f for f in report.active if f.rule.startswith("REP")
           and f.rule != "REP603"]
    assert rep == []


# -- suppressions ------------------------------------------------------------

def test_inline_allows_suppress(report):
    suppressed = {(f.path, f.line): f.justification
                  for f in report.suppressed}
    assert suppressed == {
        ("apps/allowed.py", 8): "startup banner only, never cached",
        ("apps/allowed.py", 12): "",
        ("apps/allowed.py", 17): "demo site",
    }
    assert not any(f.path == "apps/allowed.py" for f in report.active)


def test_strict_flags_unjustified_suppression(report):
    violations = report.strict_violations()
    assert [(v.rule, v.path, v.line) for v in violations] == \
        [("SUP001", "apps/allowed.py", 12)]


def test_failed_depends_on_strict(tmp_path):
    """A clean-but-unjustified report only fails under --strict."""
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "m.py").write_text(
        "import time\n\n\ndef f():\n"
        "    t = time.time()  # repro: allow(DET001)\n")
    report = Analyzer().run(tmp_path, rel_base=tmp_path)
    assert not report.active
    assert not report.failed(strict=False)
    assert report.failed(strict=True)


# -- rule filtering ----------------------------------------------------------

def test_only_and_disable_filters():
    only = Analyzer(only=["DET001"]).run(FIXTURES, rel_base=FIXTURES)
    assert {f.rule for f in only.active} == {"DET001"}
    disabled = Analyzer(disable=["DET001", "DET002"]).run(
        FIXTURES, rel_base=FIXTURES)
    assert not {f.rule for f in disabled.active} & {"DET001", "DET002"}


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule id"):
        Analyzer(only=["NOPE999"])
