"""Engine tests: baseline round-trip, classification, repo cleanliness."""

import json
from pathlib import Path

from repro.check import (
    Analyzer,
    Baseline,
    load_baseline,
    runtime_contract_findings,
    save_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).parent / "fixtures" / "check"


# -- baseline round-trip -----------------------------------------------------

def test_baseline_round_trip(tmp_path):
    """Finding -> --write-baseline -> clean run, end to end."""
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "model.py").write_text(
        "import time\n\n\ndef run():\n    return time.time()\n")

    first = Analyzer().run(tmp_path, rel_base=tmp_path)
    assert [f.rule for f in first.active] == ["DET001"]
    assert first.failed()

    baseline_path = tmp_path / "check-baseline.json"
    save_baseline(baseline_path,
                  Baseline.from_findings(first.active,
                                         justification="known legacy"))

    second = Analyzer(baseline=load_baseline(baseline_path)).run(
        tmp_path, rel_base=tmp_path)
    assert not second.active and not second.failed()
    assert [f.justification for f in second.baselined] == ["known legacy"]
    assert not second.unused_baseline


def test_baseline_survives_line_shifts(tmp_path):
    """Matching is (rule, path, snippet): edits above don't invalidate."""
    tree = tmp_path / "apps"
    tree.mkdir()
    src = tree / "model.py"
    src.write_text("import time\n\n\ndef run():\n    return time.time()\n")
    first = Analyzer().run(tmp_path, rel_base=tmp_path)
    baseline = Baseline.from_findings(first.active, justification="ok")

    # insert unrelated lines above the finding
    src.write_text("import time\n\nX = 1\nY = 2\n\n\ndef run():\n"
                   "    return time.time()\n")
    second = Analyzer(baseline=baseline).run(tmp_path, rel_base=tmp_path)
    assert not second.active
    assert len(second.baselined) == 1


def test_stale_baseline_entries_reported(tmp_path):
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "model.py").write_text("X = 1\n")
    baseline = Baseline.from_findings([])
    from repro.check import BaselineEntry
    baseline = Baseline(entries=[BaselineEntry(
        rule="DET001", path="apps/model.py",
        snippet="return time.time()", justification="gone")])
    report = Analyzer(baseline=baseline).run(tmp_path, rel_base=tmp_path)
    assert len(report.unused_baseline) == 1
    assert report.unused_baseline[0].snippet == "return time.time()"


def test_baseline_file_round_trips_on_disk(tmp_path):
    from repro.check import BaselineEntry
    path = tmp_path / "b.json"
    baseline = Baseline(entries=[BaselineEntry(
        rule="CON102", path="core/registry.py",
        snippet="BenchmarkInfo(name='X')", justification="Table II")])
    save_baseline(path, baseline)
    data = json.loads(path.read_text())
    assert "_meta" in data
    loaded = load_baseline(path)
    assert [e.to_dict() for e in loaded.entries] == \
        [e.to_dict() for e in baseline.entries]
    assert load_baseline(tmp_path / "missing.json").entries == []


# -- engine edge cases -------------------------------------------------------

def test_syntax_error_becomes_finding(tmp_path):
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "broken.py").write_text("def broken(:\n")
    report = Analyzer().run(tmp_path, rel_base=tmp_path)
    assert [f.rule for f in report.active] == ["ENG001"]
    assert "syntax error" in report.active[0].message


def test_suppression_only_covers_named_rule(tmp_path):
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "model.py").write_text(
        "import time\nimport numpy as np\n\n\ndef run():\n"
        "    # repro: allow(DET001): timing demo\n"
        "    t = time.time()\n"
        "    return t, np.random.default_rng()\n")
    report = Analyzer().run(tmp_path, rel_base=tmp_path)
    # the DET002 on the next line is NOT covered by the DET001 allow
    assert [f.rule for f in report.active] == ["DET002"]
    assert [f.rule for f in report.suppressed] == ["DET001"]


# -- the repository itself must be clean -------------------------------------

def test_repo_is_clean_under_own_analyzer():
    """The acceptance criterion: `jubench check` is clean at HEAD."""
    baseline = load_baseline(REPO_ROOT / "check-baseline.json")
    analyzer = Analyzer(baseline=baseline)
    report = analyzer.run(REPO_ROOT / "src" / "repro",
                          rel_base=REPO_ROOT)
    assert not report.active, [f.render() for f in report.active]
    assert not report.unused_baseline
    # every exemption carries a justification (--strict contract)
    assert not report.failed(strict=True)


def test_runtime_contracts_clean_at_head():
    assert runtime_contract_findings() == []
