"""Engine tests: baseline round-trip, classification, incremental
cache, parallel parity, repo cleanliness."""

import json
from pathlib import Path

from repro.check import (
    Analyzer,
    Baseline,
    load_baseline,
    runtime_contract_findings,
    save_baseline,
)
from repro.exec import DiskCache

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).parent / "fixtures" / "check"


# -- baseline round-trip -----------------------------------------------------

def test_baseline_round_trip(tmp_path):
    """Finding -> --write-baseline -> clean run, end to end."""
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "model.py").write_text(
        "import time\n\n\ndef run():\n    t = time.time()\n")

    first = Analyzer().run(tmp_path, rel_base=tmp_path)
    assert [f.rule for f in first.active] == ["DET001"]
    assert first.failed()

    baseline_path = tmp_path / "check-baseline.json"
    save_baseline(baseline_path,
                  Baseline.from_findings(first.active,
                                         justification="known legacy"))

    second = Analyzer(baseline=load_baseline(baseline_path)).run(
        tmp_path, rel_base=tmp_path)
    assert not second.active and not second.failed()
    assert [f.justification for f in second.baselined] == ["known legacy"]
    assert not second.unused_baseline


def test_baseline_survives_line_shifts(tmp_path):
    """Matching is (rule, path, snippet): edits above don't invalidate."""
    tree = tmp_path / "apps"
    tree.mkdir()
    src = tree / "model.py"
    src.write_text("import time\n\n\ndef run():\n    t = time.time()\n")
    first = Analyzer().run(tmp_path, rel_base=tmp_path)
    baseline = Baseline.from_findings(first.active, justification="ok")

    # insert unrelated lines above the finding
    src.write_text("import time\n\nX = 1\nY = 2\n\n\ndef run():\n"
                   "    t = time.time()\n")
    second = Analyzer(baseline=baseline).run(tmp_path, rel_base=tmp_path)
    assert not second.active
    assert len(second.baselined) == 1


def test_stale_baseline_entries_reported(tmp_path):
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "model.py").write_text("X = 1\n")
    baseline = Baseline.from_findings([])
    from repro.check import BaselineEntry
    baseline = Baseline(entries=[BaselineEntry(
        rule="DET001", path="apps/model.py",
        snippet="return time.time()", justification="gone")])
    report = Analyzer(baseline=baseline).run(tmp_path, rel_base=tmp_path)
    assert len(report.unused_baseline) == 1
    assert report.unused_baseline[0].snippet == "return time.time()"


def test_baseline_file_round_trips_on_disk(tmp_path):
    from repro.check import BaselineEntry
    path = tmp_path / "b.json"
    baseline = Baseline(entries=[BaselineEntry(
        rule="CON102", path="core/registry.py",
        snippet="BenchmarkInfo(name='X')", justification="Table II")])
    save_baseline(path, baseline)
    data = json.loads(path.read_text())
    assert "_meta" in data
    loaded = load_baseline(path)
    assert [e.to_dict() for e in loaded.entries] == \
        [e.to_dict() for e in baseline.entries]
    assert load_baseline(tmp_path / "missing.json").entries == []


# -- engine edge cases -------------------------------------------------------

def test_syntax_error_becomes_finding(tmp_path):
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "broken.py").write_text("def broken(:\n")
    report = Analyzer().run(tmp_path, rel_base=tmp_path)
    assert [f.rule for f in report.active] == ["ENG001"]
    assert "syntax error" in report.active[0].message


def test_suppression_only_covers_named_rule(tmp_path):
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "model.py").write_text(
        "import time\nimport numpy as np\n\n\ndef run():\n"
        "    # repro: allow(DET001): timing demo\n"
        "    t = time.time()\n"
        "    return np.random.default_rng()\n")
    report = Analyzer().run(tmp_path, rel_base=tmp_path)
    # the DET002 on the next line is NOT covered by the DET001 allow
    assert [f.rule for f in report.active] == ["DET002"]
    assert [f.rule for f in report.suppressed] == ["DET001"]


def test_suppression_on_multiline_statement(tmp_path):
    """The allow comment rides the statement's *first* line even when
    the expression spans several physical lines."""
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "model.py").write_text(
        "import time\n\n\ndef run():\n"
        "    # repro: allow(DET001): demo timing\n"
        "    t = (time.time()\n"
        "         + 0.0)\n")
    report = Analyzer().run(tmp_path, rel_base=tmp_path)
    assert not report.active
    assert [f.justification for f in report.suppressed] == \
        ["demo timing"]


def test_baseline_entry_for_deleted_file_reported_stale(tmp_path):
    """An entry whose file no longer exists matches nothing and must
    show up as prunable, not crash or hide."""
    from repro.check import BaselineEntry
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "kept.py").write_text("X = 1\n")
    baseline = Baseline(entries=[BaselineEntry(
        rule="DET001", path="apps/deleted_long_ago.py",
        snippet="return time.time()", justification="was fine")])
    report = Analyzer(baseline=baseline).run(tmp_path, rel_base=tmp_path)
    assert not report.active
    assert [e.path for e in report.unused_baseline] == \
        ["apps/deleted_long_ago.py"]


# -- incremental + parallel runs ---------------------------------------------

def _dirty_tree(tmp_path):
    tree = tmp_path / "apps"
    tree.mkdir()
    (tree / "a.py").write_text(
        "import time\n\n\ndef run():\n    t = time.time()\n")
    (tree / "b.py").write_text(
        "def f(elapsed, nbytes):\n    return elapsed + nbytes\n")
    (tree / "c.py").write_text("X = 1\n")
    return tree


def test_cold_and_warm_cache_runs_are_identical(tmp_path):
    from repro.check import render_json
    tree_root = tmp_path / "proj"
    tree_root.mkdir()
    _dirty_tree(tree_root)
    cache = DiskCache(tmp_path / "cache")

    cold = Analyzer().run(tree_root, rel_base=tree_root, cache=cache)
    assert cold.cache_misses > 0 and cold.cache_hits == 0

    warm = Analyzer().run(tree_root, rel_base=tree_root, cache=cache)
    assert warm.cache_hits == cold.cache_misses
    assert warm.cache_misses == 0

    # the reports must agree byte-for-byte, counters excluded
    assert render_json(cold, strict=True) == render_json(warm,
                                                         strict=True)
    assert cold.counts() == warm.counts()
    assert "cache" not in json.dumps(cold.counts())


def test_editing_one_file_invalidates_only_it(tmp_path):
    tree_root = tmp_path / "proj"
    tree_root.mkdir()
    tree = _dirty_tree(tree_root)
    cache = DiskCache(tmp_path / "cache")
    Analyzer().run(tree_root, rel_base=tree_root, cache=cache)

    (tree / "c.py").write_text("X = 2\n")
    third = Analyzer().run(tree_root, rel_base=tree_root, cache=cache)
    assert third.cache_misses == 1
    assert third.cache_hits == 2


def test_changing_enabled_rules_changes_cache_keys(tmp_path):
    tree_root = tmp_path / "proj"
    tree_root.mkdir()
    _dirty_tree(tree_root)
    cache = DiskCache(tmp_path / "cache")
    Analyzer().run(tree_root, rel_base=tree_root, cache=cache)
    narrowed = Analyzer(only=["DET001"]).run(tree_root,
                                             rel_base=tree_root,
                                             cache=cache)
    assert narrowed.cache_hits == 0 and narrowed.cache_misses > 0
    assert [f.rule for f in narrowed.active] == ["DET001"]


def test_parallel_workers_match_serial(tmp_path):
    from repro.check import render_json
    tree_root = tmp_path / "proj"
    tree_root.mkdir()
    _dirty_tree(tree_root)
    serial = Analyzer().run(tree_root, rel_base=tree_root, workers=1)
    parallel = Analyzer().run(tree_root, rel_base=tree_root, workers=4)
    assert render_json(serial, strict=True) == \
        render_json(parallel, strict=True)
    assert [f.rule for f in serial.active] == \
        [f.rule for f in parallel.active]


# -- the repository itself must be clean -------------------------------------

def test_repo_is_clean_under_own_analyzer():
    """The acceptance criterion: `jubench check` is clean at HEAD."""
    baseline = load_baseline(REPO_ROOT / "check-baseline.json")
    analyzer = Analyzer(baseline=baseline)
    report = analyzer.run(REPO_ROOT / "src" / "repro",
                          rel_base=REPO_ROOT)
    assert not report.active, [f.render() for f in report.active]
    assert not report.unused_baseline
    # every exemption carries a justification (--strict contract)
    assert not report.failed(strict=True)


def test_runtime_contracts_clean_at_head():
    assert runtime_contract_findings() == []
