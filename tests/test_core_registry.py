"""Tests for the suite registry against the paper's Tables I and II."""

import pytest

from repro.core import (
    BENCHMARKS,
    Category,
    Dwarf,
    Target,
    application_benchmarks,
    by_category,
    get_info,
    high_scaling_benchmarks,
    procurement_benchmarks,
    synthetic_benchmarks,
)
from repro.core.variants import MemoryVariant


class TestSuiteComposition:
    def test_23_benchmarks_total(self):
        assert len(BENCHMARKS) == 23

    def test_16_applications_7_synthetics(self):
        assert len(application_benchmarks()) == 16
        assert len(synthetic_benchmarks()) == 7

    def test_5_high_scaling(self):
        names = {b.name for b in high_scaling_benchmarks()}
        assert names == {"Arbor", "Chroma-QCD", "JUQCS", "nekRS", "PIConGPU"}

    def test_12_used_in_procurement(self):
        """Sec. IV: 'the number of application benchmarks was reduced
        to 12'."""
        assert len(procurement_benchmarks()) == 12

    def test_unused_are_the_starred_rows(self):
        unused = {b.name for b in application_benchmarks()
                  if not b.used_in_procurement}
        assert unused == {"Amber", "ParFlow", "SOMA", "ResNet"}

    def test_unique_names(self):
        names = [b.name for b in BENCHMARKS]
        assert len(names) == len(set(names))


class TestTable2Details:
    def test_reference_node_counts(self):
        assert get_info("Arbor").base_nodes == (8,)
        assert get_info("GROMACS").base_nodes == (3, 128)
        assert get_info("ICON").base_nodes == (120, 300)
        assert get_info("Megatron-LM").base_nodes == (96,)
        assert get_info("Amber").base_nodes == (1,)

    def test_high_scaling_nodes_and_variants(self):
        arbor = get_info("Arbor")
        assert arbor.highscale_nodes == 642
        assert len(arbor.variants) == 4  # T,S,M,L
        chroma = get_info("Chroma-QCD")
        assert chroma.highscale_nodes == 512  # power-of-two constraint
        assert MemoryVariant.TINY not in chroma.variants
        juqcs = get_info("JUQCS")
        assert set(juqcs.variants) == {MemoryVariant.SMALL, MemoryVariant.LARGE}
        assert get_info("PIConGPU").highscale_nodes == 640  # 3D decomposition

    def test_cpu_only_benchmarks(self):
        """NAStJA and DynQCD are the CPU-only applications."""
        cpu_only = {b.name for b in application_benchmarks() if b.is_cpu_only}
        assert cpu_only == {"NAStJA", "DynQCD"}

    def test_msa_benchmark(self):
        assert Target.MSA in get_info("JUQCS").targets

    def test_icon_touches_storage(self):
        """ICON's multi-TB input makes it an I/O test too (Sec. IV-A1b)."""
        assert Target.STORAGE in get_info("ICON").targets

    def test_ai_benchmarks_use_pytorch_or_tensorflow(self):
        for name in ("MMoCLIP", "Megatron-LM"):
            assert "PyTorch" in get_info(name).libraries
        assert "TensorFlow" in get_info("ResNet").libraries


class TestTable1Dwarfs:
    @pytest.mark.parametrize("name,dwarf", [
        ("Chroma-QCD", Dwarf.SPARSE_LA),
        ("JUQCS", Dwarf.DENSE_LA),
        ("ICON", Dwarf.STRUCTURED_GRID),
        ("GROMACS", Dwarf.PARTICLE),
        ("Quantum Espresso", Dwarf.SPECTRAL),
        ("Graph500", Dwarf.GRAPH_TRAVERSAL),
        ("HPL", Dwarf.DENSE_LA),
        ("HPCG", Dwarf.SPARSE_LA),
        ("IOR", Dwarf.IO),
        ("STREAM", Dwarf.MEMORY),
        ("nekRS", Dwarf.UNSTRUCTURED_GRID),
        ("NAStJA", Dwarf.MONTE_CARLO),
    ])
    def test_classification(self, name, dwarf):
        assert dwarf in get_info(name).dwarfs

    def test_every_benchmark_has_a_dwarf(self):
        assert all(b.dwarfs for b in BENCHMARKS)

    def test_every_benchmark_has_domain_language_license(self):
        for b in BENCHMARKS:
            assert b.domain and b.languages and b.license


class TestLookups:
    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_info("LINPACK-3000")

    def test_by_category_order_preserved(self):
        base = by_category(Category.BASE)
        names = [b.name for b in base]
        assert names.index("Arbor") < names.index("NAStJA")

    def test_reference_nodes_property(self):
        assert get_info("ICON").reference_nodes == 120
        assert get_info("LinkTest").reference_nodes == 936  # "all" nodes
