"""Unit tests of the span tracer (repro.telemetry.spans): nesting and
ordering, deterministic clocks, grafting, the ambient-tracer plumbing
and thread safety under a multi-thread hammer."""

import threading

import pytest

from repro.telemetry import (
    NULL_TRACER,
    ManualClock,
    Tracer,
    current_tracer,
    install_tracer,
    traced,
    use_tracer,
)


class TestNesting:
    def test_parent_child_links_and_clock(self):
        tracer = Tracer(clock=ManualClock(start=0.0, tick=1.0))
        with tracer.span("outer", kind="driver") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = tracer.finished()
        # completion order: inner closes first
        assert [s.name for s in spans] == ["inner", "outer"]
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        # ManualClock(tick=1): outer@0, inner@1, inner-end@2, outer-end@3
        assert (by_name["outer"].start, by_name["outer"].end) == (0.0, 3.0)
        assert (by_name["inner"].start, by_name["inner"].end) == (1.0, 2.0)
        assert by_name["inner"].duration == 1.0
        assert outer.span_id != inner.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        kids = tracer.children(parent.span_id)
        assert sorted(s.name for s in kids) == ["a", "b"]
        assert [s.name for s in tracer.roots()] == ["parent"]

    def test_set_updates_attrs_mid_span(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("work", phase="start") as span:
            span.set(phase="end", status="ok")
        record = tracer.finished()[0]
        assert record.attrs == {"phase": "end", "status": "ok"}

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(ValueError, match="kaput"):
            with tracer.span("doomed"):
                raise ValueError("kaput")
        record = tracer.finished()[0]
        assert record.attrs["error"] == "ValueError: kaput"

    def test_add_span_defaults_to_open_parent(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("parent") as parent:
            span_id = tracer.add_span("retro", 1.0, 2.0,
                                      attrs={"kind": "task"})
        retro = [s for s in tracer.finished() if s.name == "retro"][0]
        assert retro.span_id == span_id
        assert retro.parent_id == parent.span_id
        assert (retro.start, retro.end) == (1.0, 2.0)


class TestGraft:
    def test_graft_remaps_rebases_and_reparents(self):
        worker = Tracer(clock=ManualClock(start=0.0, tick=1.0))
        with worker.span("attempt", n=1):
            with worker.span("step"):
                pass
        parent = Tracer(clock=ManualClock(start=100.0, tick=1.0))
        with parent.span("task") as task:
            pass
        parent.graft(worker.finished(), offset=50.0,
                     parent_id=task.span_id, thread=7)
        by_name = {s.name: s for s in parent.finished()}
        attempt, step = by_name["attempt"], by_name["step"]
        # roots re-parent onto the task; children follow the remapping
        assert attempt.parent_id == task.span_id
        assert step.parent_id == attempt.span_id
        assert {attempt.span_id, step.span_id}.isdisjoint(
            {s.span_id for s in worker.finished()} & {task.span_id})
        # worker clocks shift by the offset onto the parent domain
        assert (attempt.start, attempt.end) == (50.0, 53.0)
        assert (step.start, step.end) == (51.0, 52.0)
        # everything moves onto the requested export lane
        assert attempt.thread == step.thread == 7

    def test_graft_subscribers_see_adopted_spans(self):
        class Sink:
            def __init__(self):
                self.names = []

            def on_span(self, record):
                self.names.append(record.name)

        worker = Tracer(clock=ManualClock())
        with worker.span("inner"):
            pass
        parent = Tracer(clock=ManualClock())
        sink = Sink()
        parent.subscribe(sink)
        parent.graft(worker.finished())
        assert sink.names == ["inner"]


class TestAmbient:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_tracer_is_a_cheap_noop(self):
        handle1 = NULL_TRACER.span("a", x=1)
        handle2 = NULL_TRACER.span("b")
        assert handle1 is handle2  # shared handle: no per-span alloc
        with NULL_TRACER.span("c") as span:
            span.set(anything="goes")
        NULL_TRACER.emit({"type": "vmpi"})
        assert NULL_TRACER.finished() == []
        assert NULL_TRACER.events() == []

    def test_use_tracer_scopes_thread_locally(self):
        tracer = Tracer(clock=ManualClock())
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with current_tracer().span("scoped"):
                pass
        assert current_tracer() is NULL_TRACER
        assert [s.name for s in tracer.finished()] == ["scoped"]

    def test_install_tracer_globally(self):
        tracer = Tracer(clock=ManualClock())
        install_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            install_tracer(None)
        assert current_tracer() is NULL_TRACER

    def test_traced_decorator(self):
        tracer = Tracer(clock=ManualClock())

        @traced("compute", kind="step")
        def work(x):
            return x + 1

        with use_tracer(tracer):
            assert work(1) == 2
        record = tracer.finished()[0]
        assert record.name == "compute"
        assert record.attrs == {"kind": "step"}


class TestThreadHammer:
    THREADS = 8
    REPEATS = 50

    def test_parallel_nesting_stays_isolated(self):
        """8 threads hammer one tracer with nested spans; every chain
        must keep its own parenting and its own export lane."""
        tracer = Tracer()
        barrier = threading.Barrier(self.THREADS)
        errors = []

        def worker(tid):
            try:
                barrier.wait()
                for _ in range(self.REPEATS):
                    with tracer.span(f"t{tid}-outer"):
                        with tracer.span(f"t{tid}-mid"):
                            with tracer.span(f"t{tid}-inner"):
                                pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tracer.finished()
        assert len(spans) == self.THREADS * self.REPEATS * 3
        by_id = {s.span_id: s for s in spans}
        lanes = {}
        for span in spans:
            tid = span.name.split("-")[0]
            # each thread occupies exactly one export lane
            lanes.setdefault(tid, set()).add(span.thread)
            # parenting never crosses threads
            if span.name.endswith("-inner"):
                assert by_id[span.parent_id].name == f"{tid}-mid"
            elif span.name.endswith("-mid"):
                assert by_id[span.parent_id].name == f"{tid}-outer"
            else:
                assert span.parent_id is None
            assert span.end >= span.start
        assert all(len(v) == 1 for v in lanes.values())
        assert len({lane for v in lanes.values() for lane in v}) == \
            self.THREADS
