"""COMM505 fixtures: rooted/reducing collectives whose root or reduce
op is not rank-invariant."""


def skewed_root(comm):
    """Each rank derives its own root: the collective cannot agree on
    a data source."""
    yield comm.reduce(float(comm.rank), root=comm.rank % 2)
    return None


def mixed_reduce_op(comm):
    """Rank 0 sums while everyone else takes the max."""
    op = "sum" if comm.rank == 0 else "max"
    total = yield comm.allreduce(1.0, op=op)
    return total
