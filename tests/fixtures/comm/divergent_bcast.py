"""COMM501 fixture: a collective under non-covering rank-dependent
control flow -- only the root posts the bcast."""


def lonely_bcast(comm):
    if comm.rank == 0:
        yield comm.bcast("config", root=0)
    yield comm.compute(flops=1.0)
    return None
