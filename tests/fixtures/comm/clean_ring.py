"""Clean control programs: correct protocols the pass must stay quiet
on, and the differential suite must run to completion."""


def ring_shift(comm):
    """Classic ring rotation via sendrecv, then a reduction."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    token = yield comm.sendrecv(right, float(comm.rank), left, tag=2)
    total = yield comm.allreduce(token)
    return total


def staged_pipeline(comm):
    """Nonblocking recv posted first, then the send: always safe."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    req = yield comm.irecv(left, tag=4)
    yield comm.send(right, comm.rank, tag=4)
    value = yield comm.wait(req)
    yield comm.barrier(label="drain")
    return value


def rooted_round_trip(comm):
    """Rank-invariant root: scatter out, gather back."""
    if comm.rank == 0:
        parts = tuple(float(i) for i in range(comm.size))
    else:
        parts = None
    mine = yield comm.scatter(parts, root=0)
    gathered = yield comm.gather(mine, root=0)
    return gathered
