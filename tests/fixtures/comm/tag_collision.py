"""COMM504 fixtures: concurrent transfers sharing one channel key.

Both programs complete (the engine falls back to posting order), so
the verdict is a WARNING, not an abort -- and the differential suite
asserts they run clean under the step engine.
"""


def p2p_tag_reuse(comm):
    """Two in-flight sends on one (src, dst, tag) channel in a single
    batch: posting order silently decides which recv gets which."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    reqs = yield (comm.isend(right, 1.0, tag=7),
                  comm.isend(right, 2.0, tag=7),
                  comm.irecv(left, tag=7),
                  comm.irecv(left, tag=7))
    yield comm.waitall(reqs)
    return None


def exchange_tag_reuse(comm):
    """Two concurrent exchange rounds on one (communicator, tag)."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    yield (comm.exchange(sends=((right, 1.0),), recvs=(left,), tag=3),
           comm.exchange(sends=((left, 2.0),), recvs=(right,), tag=3))
    return None
