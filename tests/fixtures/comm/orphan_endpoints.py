"""COMM506 fixtures: unmatched point-to-point endpoints."""


def orphan_recv(comm):
    """Rank 0 waits for a message rank 1 never sends; rank 1 simply
    terminates, so the recv can never complete."""
    if comm.rank == 0:
        yield comm.recv(1, tag=5)
    else:
        yield comm.compute(flops=1.0)
    return None


def orphan_send(comm):
    """Rank 0's eager send completes locally but nobody ever receives
    it: the message is still queued when every rank terminates."""
    if comm.rank == 0:
        yield comm.send(1, 42.0, tag=6)
    yield comm.barrier(label="done")
    return None
