"""COMM503 fixtures: genuine send/recv wait-for cycles.

Every program here must deadlock under ``VmpiEngine(mode="step")`` --
the differential suite asserts it.
"""

from repro.vmpi import Phantom


def recv_cycle(comm):
    """Every rank receives from its left neighbour before sending right:
    all ranks block on the first recv and nobody ever sends."""
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    token = yield comm.recv(left, tag=1)
    yield comm.send(right, token, tag=1)
    return token


def head_to_head(comm):
    """Paired ranks push 1 MiB at each other before receiving: both
    sends exceed the eager limit, rendezvous blocks, nobody reaches
    the recv."""
    peer = comm.rank ^ 1
    yield comm.send(peer, Phantom(1 << 20), tag=2)
    back = yield comm.recv(peer, tag=2)
    return back
