"""COMM502 fixture: ranks of one communicator disagree on collective
order -- the same sequence position mixes a barrier and an allreduce."""


def crossed_order(comm):
    if comm.rank == 0:
        yield comm.barrier(label="sync")
        total = yield comm.allreduce(1.0)
    else:
        total = yield comm.allreduce(1.0)
        yield comm.barrier(label="sync")
    return total
