"""REP603 fixture: a wall-clock reading reaches canonical().

Runnable oracle: two back-to-back runs print different bytes because
``time.time_ns()`` never repeats.
"""

import json
import time


def canonical():
    return {"benchmark": "fixture", "generated_ns": time.time_ns()}


if __name__ == "__main__":
    print(json.dumps(canonical(), sort_keys=True))
