"""Clean control: every source appears, every flow is sanitized.

Sets are sorted before serialization, the RNG is content-seeded, the
pool collects in submission order (``pool.map``), the environment read
lands in a volatile dict that never reaches the canonical form, and
the timestamp stays inside the volatile block.

Runnable oracle: byte-identical across reruns, worker counts and
``PYTHONHASHSEED`` values.
"""

import json
import os
import random
import sys
import time
from concurrent.futures import ThreadPoolExecutor


def _unit(i):
    return i * i


def canonical_export(workers):
    tags = {"arbor", "chroma", "icon", "juqcs", "nekrs", "parflow",
            "picongpu", "soma", "stream", "turbulence"}
    rng = random.Random(2024)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        squares = list(pool.map(_unit, range(8)))
    volatile = {
        "hash_seed": os.environ.get("PYTHONHASHSEED", ""),
        "exported_ns": time.time_ns(),
    }
    del volatile  # provenance only; never part of the canonical form
    doc = {"tags": sorted(tags), "draw": rng.random(),
           "squares": squares}
    return json.dumps(doc, sort_keys=True)


if __name__ == "__main__":
    print(canonical_export(int(sys.argv[1])))
