"""REP604 fixture: process-global RNG reaches a content-address hash.

``stable_hash`` is a local stand-in for ``repro.exec.cache.stable_hash``
(the fixture must run without the package on the path); the rule's
sink recognition is name-based, so the taint verdict is identical.

Runnable oracle: two runs draw different jitter from the unseeded
global Mersenne state, so the printed address differs every time.
"""

import hashlib
import json
import random


def stable_hash(obj):
    payload = json.dumps(obj, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def record_key():
    jitter = random.random()
    return stable_hash({"benchmark": "fixture", "jitter": jitter})


if __name__ == "__main__":
    print(record_key())
