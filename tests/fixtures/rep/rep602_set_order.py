"""REP602 fixture: set iteration order reaches canonical_export().

Runnable oracle: the joined string follows the set's hash-seeded
iteration order, so different ``PYTHONHASHSEED`` values produce
different bytes (16 strings make a collision across seeds unlikely).
"""


def canonical_export():
    tags = {"arbor", "chroma", "gromacs", "icon", "juqcs", "mptrac",
            "nanoria", "nekrs", "parflow", "picongpu", "quantum",
            "soma", "stream", "turbulence", "waves", "xcompact"}
    return ",".join(tags)


if __name__ == "__main__":
    print(canonical_export())
