"""REP606 fixture: an undeclared volatile field is serialized.

``started_ns`` is assigned from the wall clock in ``__init__`` and
read back in ``canonical()`` -- volatile in all but name, but never
declared in a volatile block.

Runnable oracle: two runs construct records at different instants, so
the canonical bytes differ.
"""

import json
import time


class Record:
    def __init__(self):
        self.benchmark = "fixture"
        self.started_ns = time.time_ns()

    def canonical(self):
        return {"benchmark": self.benchmark,
                "started_ns": self.started_ns}


if __name__ == "__main__":
    print(json.dumps(Record().canonical(), sort_keys=True))
