"""REP601 fixture: environment + string-hash identity reach canonical().

Runnable oracle: ``python rep601_env.py`` prints the canonical bytes;
flipping ``PYTHONHASHSEED`` (or the variable itself) changes them.
"""

import json
import os


def canonical():
    return {
        "benchmark": "fixture",
        "hash_seed": os.environ.get("PYTHONHASHSEED", ""),
        "token": hash("jupiter-benchmark-suite"),
    }


if __name__ == "__main__":
    print(json.dumps(canonical(), sort_keys=True))
