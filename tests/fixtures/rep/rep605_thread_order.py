"""REP605 fixture: thread-completion order reaches canonical_export().

Runnable oracle: tasks sleep in *reverse* submission order, so with one
worker ``as_completed`` yields submission order while with eight
workers it yields reverse order -- the bytes differ deterministically
between ``workers=1`` and ``workers=8``.
"""

import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor, as_completed


def _unit(i):
    time.sleep((8 - i) * 0.02)
    return i


def canonical_export(workers):
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_unit, i) for i in range(8)]
        results = []
        for fut in as_completed(futures):
            results.append(fut.result())
    return json.dumps(results)


if __name__ == "__main__":
    print(canonical_export(int(sys.argv[1])))
