"""Exempt fixture: telemetry code may read the wall clock."""

import time


def now():
    return time.time()
