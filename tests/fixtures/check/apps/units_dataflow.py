"""Known-bad fixture: dimensional-analysis violations (UNIT3xx)."""

from repro.units import GIB, GIGA, fmt_si

DIMS = {
    "p2p_time.nbytes": "B",
    "p2p_time.bw": "B/s",
    "p2p_time.return": "s",
    "DeviceSpec.peak_flops": "FLOP/s",
}

mixed_scale = GIB * GIGA


def p2p_time(nbytes, bw, latency):
    return latency + nbytes / bw


def add_time_to_bytes(elapsed, nbytes):
    return elapsed + nbytes


def rate_product(bandwidth, peak_flops):
    return bandwidth * peak_flops


def misdirected_call(elapsed, bandwidth):
    return p2p_time(elapsed, bandwidth, 0.0)


def mislabelled_format(elapsed):
    return fmt_si(elapsed, "FLOP/s")


def total_seconds(nbytes, bandwidth):
    return nbytes * bandwidth


def transfer_seconds(nbytes, bandwidth):
    return nbytes / bandwidth if bandwidth else 0.0


def warmup_seconds():
    return 0.0


def device_flop_budget(spec, elapsed):
    return spec.peak_flops * elapsed
