"""Known-bad fixture: unresolved ``$param`` references."""

SPEC = {
    "benchmark": "fixture",
    "parametersets": [
        {"name": "run", "parameters": [
            {"name": "nodes", "value": "4"},
            {"name": "tasks", "value": "${nodes} * ${gpus_per_node}"},
            {"name": "label", "value": "run-$nodes"},
        ]},
    ],
}


def build(pset):
    pset.add("ranks", "$nodes")
    pset.add("total", "${ranks} * 2")
    return pset
