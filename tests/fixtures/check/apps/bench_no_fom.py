"""Known-bad fixture: benchmark classes breaking the FOM contract."""


class BaseBench:
    NAME = ""
    fom = None


class MissingFom:
    NAME = "MissingFom"

    def run(self):
        return 0.0


class GoodBench(BaseBench):
    NAME = "Ordered"
    fom = object()
