"""Known-bad fixture: wall clocks and unseeded RNG in model code."""

import random
import time
from dataclasses import dataclass, field
from datetime import datetime

import numpy as np


def stamp():
    t = time.time()
    now = datetime.now()
    return t, now


def draw():
    a = np.random.default_rng()
    b = np.random.uniform(0.0, 1.0)
    c = random.random()
    d = random.Random()
    return a, b, c, d


def seeded_ok():
    return np.random.default_rng(42).random()


@dataclass
class Model:
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
