"""Known-bad fixture: unit prefixes used additively."""

from repro.units import GIB, GIGA

bytes_total = 4 * GIB
flops = 2.5 * GIGA
wrong_sum = GIGA + 5
wrong_diff = 10 - GIB
