"""Suppression fixture: justified and unjustified inline allows."""

import time


def justified():
    # repro: allow(DET001): startup banner only, never cached
    return time.time()


def unjustified():
    return time.time()  # repro: allow(DET001)


def wildcard():
    # repro: allow(*): demo site
    return time.time()
