"""Suppression fixture: justified and unjustified inline allows."""

import time


def justified():
    # repro: allow(DET001): startup banner only, never cached
    t = time.time()


def unjustified():
    t = time.time()  # repro: allow(DET001)


def wildcard():
    # repro: allow(*): demo site
    t = time.time()
