"""Known-bad fixture: module state mutated outside the lock."""

import threading

_LOCK = threading.Lock()
_CACHE: dict = {}
_TOTAL = 0


def good_write(key, value):
    with _LOCK:
        _CACHE[key] = value


def good_global(n):
    global _TOTAL
    with _LOCK:
        _TOTAL = n


def bad_write(key, value):
    _CACHE[key] = value


def bad_global(n):
    global _TOTAL
    _TOTAL = n


def bad_mutator(key):
    _CACHE.pop(key, None)


def bad_del(key):
    del _CACHE[key]
