"""Known-bad fixture registry: variant-order violations."""

from dataclasses import dataclass
from enum import Enum


class MemoryVariant(Enum):
    TINY = "T"
    SMALL = "S"
    MEDIUM = "M"
    LARGE = "L"


class Category(Enum):
    BASE = "base"
    HIGH_SCALING = "high-scaling"


@dataclass
class BenchmarkInfo:
    name: str
    variants: tuple = ()
    categories: tuple = ()


_T, _S, _M, _L = (MemoryVariant.TINY, MemoryVariant.SMALL,
                  MemoryVariant.MEDIUM, MemoryVariant.LARGE)
_HS = (Category.HIGH_SCALING,)

BENCHMARKS = [
    BenchmarkInfo(name="Backwards", variants=(_L, _S), categories=_HS),
    BenchmarkInfo(name="NoVariants", variants=(), categories=_HS),
    BenchmarkInfo(name="Partial", variants=(_S, _M), categories=_HS),
    BenchmarkInfo(name="Ordered", variants=(_T, _S, _M, _L),
                  categories=_HS),
    BenchmarkInfo(name="Base", variants=(_S, _T),
                  categories=(Category.BASE,)),
]
