"""Shared-state safety of the suite registry under the parallel engine:
the module-level default suite and the per-suite instance cache are
hammered from 8 threads and must never duplicate, lose, or corrupt
state."""

import threading
from concurrent.futures import ThreadPoolExecutor

import repro.core.suite as suite_module
from repro.core import JupiterBenchmarkSuite, load_suite
from repro import apps, synthetic

THREADS = 8


def hammer(fn, n_threads=THREADS, repeats=1):
    """Run ``fn(thread_index)`` concurrently with a start barrier."""
    barrier = threading.Barrier(n_threads)
    results = []

    def worker(i):
        barrier.wait()
        out = [fn(i) for _ in range(repeats)]
        return out

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        for future in [pool.submit(worker, i) for i in range(n_threads)]:
            results.extend(future.result())
    return results


class TestDefaultSuiteRace:
    def test_concurrent_first_load_builds_one_suite(self):
        saved = suite_module._DEFAULT
        suite_module._DEFAULT = None
        try:
            suites = hammer(lambda i: load_suite())
            assert len({id(s) for s in suites}) == 1
            assert len(suites[0].names()) == 23
        finally:
            suite_module._DEFAULT = saved

    def test_no_partially_registered_suite_observable(self):
        # every load_suite() caller must see the fully populated registry
        saved = suite_module._DEFAULT
        suite_module._DEFAULT = None
        try:
            counts = hammer(lambda i: len(load_suite().names()))
            assert set(counts) == {23}
        finally:
            suite_module._DEFAULT = saved


class TestInstanceCacheRace:
    def test_get_yields_one_instance_per_name(self):
        suite = JupiterBenchmarkSuite()
        apps.register_all(suite)
        synthetic.register_all(suite)
        names = suite.names()

        def fetch(i):
            return [id(suite.get(name)) for name in names]

        id_lists = hammer(fetch, repeats=3)
        # every thread, every repeat: the exact same instance per name
        assert len({tuple(ids) for ids in id_lists}) == 1

    def test_concurrent_register_and_lookup(self):
        suite = JupiterBenchmarkSuite()
        synthetic.register_all(suite)

        def churn(i):
            if i % 2 == 0:
                apps.register_all(suite)     # idempotent re-registration
                return None
            return len(suite.names())        # must never see torn state

        counts = [c for c in hammer(churn, repeats=5) if c is not None]
        assert all(7 <= c <= 23 for c in counts)
        assert len(suite.names()) == 23

    def test_parallel_runs_stay_deterministic(self):
        suite = JupiterBenchmarkSuite()
        apps.register_all(suite)
        synthetic.register_all(suite)
        foms = hammer(lambda i: suite.run("STREAM").fom_seconds,
                      repeats=2)
        assert len(set(foms)) == 1
