"""Integration tests: the populated suite, scaling studies, analysis
tables/figures, performance models, and the CLI."""

import numpy as np
import pytest

from repro.analysis import (
    JuqcsNetworkModel,
    NekrsPredictor,
    PicongpuScalingModel,
    figure2,
    figure3,
    render_table1,
    render_table2,
    table1_records,
    table2_records,
)
from repro.cli import main
from repro.core import (
    BENCHMARKS,
    Category,
    JupiterBenchmarkSuite,
    MemoryVariant,
    load_suite,
)


@pytest.fixture(scope="module")
def suite():
    return load_suite()


class TestSuiteFacade:
    def test_all_23_registered(self, suite):
        assert len(suite.names()) == 23
        assert set(suite.names()) == {b.name for b in BENCHMARKS}

    def test_get_caches_instances(self, suite):
        assert suite.get("Arbor") is suite.get("Arbor")

    def test_unknown_benchmark(self, suite):
        with pytest.raises(KeyError):
            suite.get("LINPACK-3000")

    def test_unregistered_name_rejected(self):
        fresh = JupiterBenchmarkSuite()
        with pytest.raises(KeyError):
            fresh.register("NotInTable2", lambda: None)

    def test_infos_by_category(self, suite):
        assert len(suite.infos(Category.HIGH_SCALING)) == 5
        assert len(suite.infos(Category.SYNTHETIC)) == 7

    def test_reference_run(self, suite):
        ref = suite.reference_run("Arbor")
        assert ref.nodes == 8
        assert ref.time_metric == pytest.approx(498, rel=0.1)

    def test_strong_scaling_study(self, suite):
        study = suite.strong_scaling_study("nekRS")
        assert study.reference.nodes == 8
        assert study.monotone_decreasing()

    def test_weak_scaling_study(self, suite):
        study = suite.weak_scaling_study("PIConGPU", (8, 32),
                                         variant=MemoryVariant.SMALL)
        assert study.efficiency_at(32) > 0.9

    def test_variant_validation_through_suite(self, suite):
        with pytest.raises(ValueError):
            suite.run("JUQCS", 8, variant=MemoryVariant.TINY)  # S/L only

    def test_deterministic_results(self, suite):
        a = suite.run("Chroma-QCD", 2).fom_seconds
        b = suite.run("Chroma-QCD", 2).fom_seconds
        assert a == b


class TestAnalysisTables:
    def test_table1_complete(self):
        records = table1_records()
        assert len(records) == 23
        text = render_table1()
        for info in BENCHMARKS:
            assert info.name in text

    def test_table1_starred_rows(self):
        text = render_table1()
        for name in ("Amber*", "ParFlow*", "SOMA*", "ResNet*"):
            assert name in text

    def test_table2_highscale_column(self):
        by_name = {r.params["benchmark"].rstrip("*"): r.params
                   for r in table2_records()}
        assert by_name["Arbor"]["highscale"] == "642^{T,S,M,L}"
        assert by_name["GROMACS"]["highscale"] == "-"

    def test_table2_renders(self):
        text = render_table2()
        assert "LGPLv2.1" in text       # GROMACS licence
        assert "642^{T,S,M,L}" in text


class TestFigures:
    def test_figure2_subset(self, suite):
        data = figure2(suite, apps=(("Arbor", False), ("JUQCS", True)))
        assert set(data.curves) == {"Arbor", "JUQCS"}
        text = data.render()
        assert "Arbor" in text and "(1.00, 1.00)" in text

    def test_figure3_subset(self, suite):
        data = figure3(suite, nodes=(1, 2, 8),
                       apps=(("JUQCS", MemoryVariant.SMALL),))
        eff = dict(data.curves["JUQCS"].efficiency())
        assert eff[1] == pytest.approx(1.0)
        assert eff[2] < 0.7  # the NVLink -> IB drop
        assert dict(data.juqcs_compute)[8] == pytest.approx(1.0, abs=0.05)
        assert "JUQCS (comm.)" in data.render()


class TestPerformanceModels:
    def test_juqcs_model_rank_bit_classes(self):
        m = JuqcsNetworkModel()
        # low rank bits stay on NVLink, high bits cross nodes
        low = m.gate_comm_seconds(30, 64, rank_bit=0)
        high = m.gate_comm_seconds(30, 64, rank_bit=5)
        assert high > 3 * low

    def test_juqcs_model_bounds(self):
        m = JuqcsNetworkModel()
        with pytest.raises(ValueError):
            m.gate_comm_seconds(30, 8, rank_bit=5)

    def test_nekrs_predictor_accuracy(self):
        p = NekrsPredictor(warmup_steps=2)
        steps = [10.0, 4.0] + [1.0] * 8
        predicted = p.predict(steps, 100)
        actual = 14.0 + 98.0
        assert p.relative_error(steps, 100, actual) < 0.01
        assert predicted == pytest.approx(actual)

    def test_nekrs_predictor_validation(self):
        p = NekrsPredictor()
        with pytest.raises(ValueError):
            p.predict([1.0], 100)
        with pytest.raises(ValueError):
            p.predict([1.0, 1.0, 1.0], 2)

    def test_picongpu_model_gives_paper_cap(self):
        model = PicongpuScalingModel()
        assert model.max_nodes((4096, 2048, 1024)) == 640
        assert not model.valid((4096, 2048, 1024), 642)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "23 benchmarks" in out

    def test_tables(self, capsys):
        assert main(["table1"]) == 0
        assert "Benchmark" in capsys.readouterr().out
        assert main(["table2"]) == 0
        assert "Licence" in capsys.readouterr().out

    def test_run_real(self, capsys):
        code = main(["run", "JUQCS", "--nodes", "1", "--real",
                     "--scale", "0.4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASSED" in out

    def test_run_with_variant(self, capsys):
        assert main(["run", "JUQCS", "--nodes", "8", "--variant",
                     "S"]) == 0
        assert "variant   : S" in capsys.readouterr().out

    def test_fig2_subset(self, capsys):
        assert main(["fig2", "--apps", "Arbor"]) == 0
        assert "Arbor" in capsys.readouterr().out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--nodes", "1,2"]) == 0
        assert "JUQCS" in capsys.readouterr().out

    def test_procurement(self, capsys):
        assert main(["procurement"]) == 0
        assert "value-for-money" in capsys.readouterr().out
