"""Property tests for the statistical regression detector: quiet on
seeded stationary series, catches injected step shifts, verdicts are
bit-reproducible."""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.history import ChangePoint, RegressionDetector, Verdict
from repro.history.detect import STATUSES


def stationary(seed: int, n: int, level: float = 100.0,
               noise: float = 0.01) -> list[float]:
    """A seeded stationary series: ``level`` +- uniform ``noise``."""
    rng = random.Random(seed)
    return [level * (1.0 + noise * (2.0 * rng.random() - 1.0))
            for _ in range(n)]


class TestClassify:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(6, 60))
    def test_zero_false_positives_on_stationary_series(self, seed, n):
        det = RegressionDetector()
        verdicts = det.classify(stationary(seed, n))
        assert all(v.status in ("baseline", "ok") for v in verdicts)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           shift=st.floats(0.10, 0.50),
           onset=st.integers(6, 20))
    def test_detects_injected_step_shift(self, seed, shift, onset):
        """Any >= 10% sustained slowdown is flagged from its onset."""
        det = RegressionDetector()
        values = stationary(seed, onset + 8)
        values = values[:onset] + [v * (1.0 + shift)
                                   for v in values[onset:]]
        verdicts = det.classify(values)
        assert all(v.status != "regression" for v in verdicts[:onset])
        assert all(v.status == "regression" for v in verdicts[onset:]), \
            "a sustained shift must keep flagging until acknowledged"

    def test_single_spike_flags_exactly_that_point(self):
        values = stationary(7, 12)
        values[9] *= 1.15
        verdicts = RegressionDetector().classify(values)
        flagged = [v.index for v in verdicts if v.status == "regression"]
        assert flagged == [9]
        # the spike does not poison the baseline: later points stay ok
        assert verdicts[10].status == "ok"
        assert verdicts[11].status == "ok"

    def test_improvement_direction(self):
        values = stationary(3, 10) + [80.0]  # 20% faster
        verdict = RegressionDetector().classify(values)[-1]
        assert verdict.status == "improvement"
        assert verdict.delta < 0

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(2, 40))
    def test_verdicts_bit_reproducible(self, seed, n):
        det = RegressionDetector()
        values = stationary(seed, n)
        if n > 8:
            values[n // 2] *= 1.2
        first = json.dumps([v.to_dict() for v in det.classify(values)],
                           sort_keys=True)
        second = json.dumps([v.to_dict() for v in det.classify(values)],
                            sort_keys=True)
        third = json.dumps(
            [v.to_dict()
             for v in RegressionDetector().classify(list(values))],
            sort_keys=True)
        assert first == second == third

    def test_verdict_depends_only_on_prefix(self):
        """Appending new runs never rewrites old verdicts."""
        det = RegressionDetector()
        values = stationary(11, 20)
        values[12] *= 1.3
        full = det.classify(values)
        for cut in range(1, len(values)):
            prefix = det.classify(values[:cut])
            assert [v.to_dict() for v in prefix] == \
                [v.to_dict() for v in full[:cut]]

    def test_traces_explain_every_judged_point(self):
        verdicts = RegressionDetector().classify(stationary(5, 10))
        for v in verdicts:
            assert v.trace
            if v.status != "baseline":
                assert "baseline=" in v.trace and "margin=" in v.trace

    def test_burn_in_points_accepted_unconditionally(self):
        det = RegressionDetector(burn_in=4)
        verdicts = det.classify([100.0, 900.0, 100.0, 100.0])
        assert [v.status for v in verdicts] == ["baseline"] * 4

    def test_constant_series_stays_quiet(self):
        det = RegressionDetector()
        verdicts = det.classify([5.0] * 20)
        assert all(v.status in ("baseline", "ok") for v in verdicts)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RegressionDetector(window=1)
        with pytest.raises(ValueError):
            RegressionDetector(sigma=0.0)
        with pytest.raises(ValueError):
            RegressionDetector(burn_in=1)

    def test_latest_and_empty(self):
        det = RegressionDetector()
        assert det.latest([]) is None
        assert det.classify([]) == []
        assert det.latest(stationary(1, 10)).index == 9


class TestChangePoints:
    def test_locates_step_onset(self):
        values = stationary(21, 14) + [v * 1.2
                                       for v in stationary(22, 14)]
        shifts = RegressionDetector().change_points(values)
        assert len(shifts) == 1
        cp = shifts[0]
        assert cp.direction == "up"
        assert cp.index == 14
        assert cp.relative == pytest.approx(0.2, abs=0.05)

    def test_multiple_shifts_reported(self):
        base = stationary(31, 12)
        values = base + [v * 1.3 for v in stationary(32, 12)] + \
            [v * 0.9 for v in stationary(33, 12)]
        shifts = RegressionDetector().change_points(values)
        assert [cp.direction for cp in shifts] == ["up", "down"]
        assert shifts[0].index == 12
        assert 20 <= shifts[1].index <= 26

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_no_shift_on_stationary_series(self, seed):
        assert RegressionDetector().change_points(
            stationary(seed, 40)) == []

    def test_short_series_yield_nothing(self):
        assert RegressionDetector().change_points([1.0, 2.0]) == []

    def test_change_point_serialisation(self):
        cp = ChangePoint(index=3, direction="up", before=10.0,
                         after=12.0, statistic=6.5)
        assert cp.to_dict()["relative"] == pytest.approx(0.2)


class TestSummarize:
    def test_summary_counts_and_shapes(self):
        det = RegressionDetector()
        values = stationary(41, 12)
        values[10] *= 1.15
        summary = det.summarize(values)
        assert summary["points"] == 12
        assert set(summary["counts"]) == set(STATUSES)
        assert summary["counts"]["regression"] == 1
        assert len(summary["verdicts"]) == 12
        assert isinstance(summary["verdicts"][0], dict)

    def test_summary_is_bit_reproducible(self):
        det = RegressionDetector()
        values = stationary(42, 30)
        values[15:] = [v * 1.25 for v in values[15:]]
        a = json.dumps(det.summarize(values), sort_keys=True)
        b = json.dumps(det.summarize(values), sort_keys=True)
        assert a == b

    def test_verdict_dataclass_is_frozen(self):
        verdict = Verdict(index=0, value=1.0, status="ok")
        with pytest.raises(AttributeError):
            verdict.status = "regression"
