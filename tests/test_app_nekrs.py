"""Tests for the nekRS spectral-element substrate and benchmark."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.nekrs import (
    BASE_ELEMENTS,
    HS_ELEMENTS,
    NekrsBenchmark,
    STRONG_SCALING_LIMIT,
    StripMesh,
    conduction_nusselt,
    derivative_matrix,
    flops_per_element,
    gll_nodes_weights,
    solve_poisson,
    tensor_apply_3d,
)
from repro.core import MemoryVariant


class TestGll:
    def test_nodes_include_endpoints(self):
        x, _ = gll_nodes_weights(6)
        assert x[0] == pytest.approx(-1.0)
        assert x[-1] == pytest.approx(1.0)

    def test_weights_sum_to_two(self):
        for n in (3, 5, 8, 12):
            _, w = gll_nodes_weights(n)
            assert w.sum() == pytest.approx(2.0)

    @given(st.integers(min_value=3, max_value=10),
           st.integers(min_value=0, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_quadrature_exact_to_2n_minus_3(self, n, k):
        """GLL with n points integrates x^k exactly for k <= 2n-3."""
        x, w = gll_nodes_weights(n)
        k = min(k, 2 * n - 3)
        exact = 2.0 / (k + 1) if k % 2 == 0 else 0.0
        assert np.sum(w * x ** k) == pytest.approx(exact, abs=1e-12)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            gll_nodes_weights(1)


class TestDerivativeMatrix:
    @given(st.integers(min_value=3, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_differentiates_polynomials_exactly(self, n):
        x, _ = gll_nodes_weights(n)
        d = derivative_matrix(n)
        for k in range(n):
            assert np.allclose(d @ x ** k,
                               k * x ** (k - 1) if k else np.zeros(n),
                               atol=1e-10)

    def test_constant_derivative_zero(self):
        d = derivative_matrix(8)
        assert np.allclose(d @ np.ones(8), 0.0, atol=1e-12)


class TestTensorOps:
    def test_axis_application(self):
        n = 4
        u = np.arange(n ** 3, dtype=float).reshape(n, n, n)
        d = np.eye(n) * 2.0
        assert np.allclose(tensor_apply_3d(d, u, 0), 2 * u)
        with pytest.raises(ValueError):
            tensor_apply_3d(d, u, 3)

    def test_flops_model_scales_as_n4(self):
        assert flops_per_element(10) > 14 * flops_per_element(5)


class TestPoissonSolve:
    def exact(self, mesh):
        x, y, z = mesh.coords()
        return np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)

    def test_spectral_convergence(self):
        """Error must fall exponentially with polynomial order."""
        errors = []
        for n in (4, 6, 8):
            mesh = StripMesh(n_elements=3, n=n)
            u_exact = self.exact(mesh)
            u, _ = solve_poisson(mesh, 3 * np.pi ** 2 * u_exact, tol=1e-12)
            errors.append(float(np.max(np.abs(u - u_exact))))
        assert errors[1] < errors[0] / 50
        assert errors[2] < errors[1] / 50

    def test_gather_scatter_sums_shared_faces(self):
        mesh = StripMesh(n_elements=2, n=3)
        u = np.ones((2, 3, 3, 3))
        gs = mesh.gather_scatter(u)
        assert gs[0, -1, 0, 0] == pytest.approx(2.0)
        assert gs[0, 0, 0, 0] == pytest.approx(1.0)

    def test_multiplicity(self):
        mesh = StripMesh(n_elements=2, n=3)
        m = mesh.multiplicity()
        assert m[0, -1, 1, 1] == 2.0
        assert m[0, 0, 1, 1] == 1.0

    def test_zero_rhs(self):
        mesh = StripMesh(n_elements=2, n=4)
        u, iters = solve_poisson(mesh, np.zeros((2, 4, 4, 4)))
        assert iters == 0
        assert np.all(u == 0)

    def test_conduction_nusselt_is_one(self):
        assert conduction_nusselt(n=8) == pytest.approx(1.0, abs=1e-3)

    def test_mesh_validation(self):
        with pytest.raises(ValueError):
            StripMesh(n_elements=0, n=4)


class TestNekrsBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return NekrsBenchmark()

    def test_real_run_verified(self, bench):
        res = bench.run(nodes=1, real=True, scale=0.8)
        assert res.verified is True
        assert res.details["poisson_error"] < 1e-4

    def test_base_element_count(self, bench):
        """Sec. IV-A2d: 719104 elements, 22472 per GPU on 8 nodes."""
        res = bench.run(nodes=8)
        assert res.details["elements"] == BASE_ELEMENTS
        assert res.details["elements_per_gpu"] == pytest.approx(22472, rel=0.01)

    def test_hs_variants_above_strong_scaling_limit(self, bench):
        """All HS variants stay above 7000-8000 elements/GPU."""
        for v in (MemoryVariant.SMALL, MemoryVariant.LARGE):
            per_gpu = HS_ELEMENTS[v] / (642 * 4)
            assert per_gpu > STRONG_SCALING_LIMIT

    def test_hs_small_elements_per_gpu(self, bench):
        assert HS_ELEMENTS[MemoryVariant.SMALL] / (642 * 4) == \
            pytest.approx(11229, rel=0.01)

    def test_strong_scaling_improves(self, bench):
        t4 = bench.run(nodes=4).fom_seconds
        t16 = bench.run(nodes=16).fom_seconds
        assert t16 < t4 / 2

    def test_weak_scaling_flat(self, bench):
        t64 = bench.run(nodes=64).fom_seconds
        t256 = bench.run(nodes=256).fom_seconds
        assert t64 / t256 > 0.9
