"""Tests for unit helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestFormatting:
    def test_fmt_si_picks_prefix(self):
        assert units.fmt_si(1e18, "FLOP/s") == "1 EFLOP/s"
        assert units.fmt_si(50e15, "FLOP/s") == "50 PFLOP/s"
        assert units.fmt_si(9.7e12, "FLOP/s").endswith("TFLOP/s")

    def test_fmt_si_small_values_have_no_prefix(self):
        assert units.fmt_si(12.0, "s") == "12 s"

    def test_fmt_bytes_binary_prefixes(self):
        assert units.fmt_bytes(64 * units.TIB) == "64 TiB"
        assert units.fmt_bytes(0.5 * units.PIB) == "512 TiB"
        assert units.fmt_bytes(512) == "512 B"

    def test_fmt_seconds_ranges(self):
        assert units.fmt_seconds(0) == "0 s"
        assert units.fmt_seconds(498) == "498 s"
        assert "ms" in units.fmt_seconds(0.002)
        assert "us" in units.fmt_seconds(2e-5)
        assert "ns" in units.fmt_seconds(3e-8)
        assert "min" in units.fmt_seconds(1200)
        assert "h" in units.fmt_seconds(4 * 3600)

    def test_fmt_seconds_negative(self):
        assert units.fmt_seconds(-3.0) == "-3 s"


class TestParseBytes:
    @pytest.mark.parametrize("text,expected", [
        ("16 MiB", 16 * units.MIB),
        ("4KiB", 4 * units.KIB),
        ("4 kb", 4e3),
        ("1.5GiB", 1.5 * units.GIB),
        ("512", 512.0),
        ("2e3 B", 2000.0),
    ])
    def test_examples(self, text, expected):
        assert units.parse_bytes(text) == pytest.approx(expected)

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ValueError):
            units.parse_bytes("3 XB")

    @given(st.floats(min_value=0.001, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_binary(self, mib):
        text = f"{mib} MiB"
        assert units.parse_bytes(text) == pytest.approx(mib * units.MIB)


class TestJuqcsMemoryLaw:
    """The paper's JUQCS sizes must come out of the unit constants."""

    @pytest.mark.parametrize("qubits,expected_bytes", [
        (36, units.TIB),            # Base: 1 TiB
        (41, 32 * units.TIB),       # High-Scaling small
        (42, 64 * units.TIB),       # High-Scaling large
        (45, 0.5 * units.PIB),      # "a little over 0.5 PiB" for n=45
    ])
    def test_state_vector_sizes(self, qubits, expected_bytes):
        nbytes = units.BYTES_PER_COMPLEX128 * 2.0 ** qubits
        assert nbytes == pytest.approx(expected_bytes)

    def test_prefix_ladder_consistent(self):
        assert units.MIB == units.KIB ** 2
        assert math.isclose(units.PIB / units.TIB, 1024.0)
