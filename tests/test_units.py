"""Tests for unit helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestFormatting:
    def test_fmt_si_picks_prefix(self):
        assert units.fmt_si(1e18, "FLOP/s") == "1 EFLOP/s"
        assert units.fmt_si(50e15, "FLOP/s") == "50 PFLOP/s"
        assert units.fmt_si(9.7e12, "FLOP/s").endswith("TFLOP/s")

    def test_fmt_si_small_values_have_no_prefix(self):
        assert units.fmt_si(12.0, "s") == "12 s"

    def test_fmt_bytes_binary_prefixes(self):
        assert units.fmt_bytes(64 * units.TIB) == "64 TiB"
        assert units.fmt_bytes(0.5 * units.PIB) == "512 TiB"
        assert units.fmt_bytes(512) == "512 B"

    def test_fmt_seconds_ranges(self):
        assert units.fmt_seconds(0) == "0 s"
        assert units.fmt_seconds(498) == "498 s"
        assert "ms" in units.fmt_seconds(0.002)
        assert "us" in units.fmt_seconds(2e-5)
        assert "ns" in units.fmt_seconds(3e-8)
        assert "min" in units.fmt_seconds(1200)
        assert "h" in units.fmt_seconds(4 * 3600)

    def test_fmt_seconds_negative(self):
        assert units.fmt_seconds(-3.0) == "-3 s"


class TestParseBytes:
    @pytest.mark.parametrize("text,expected", [
        ("16 MiB", 16 * units.MIB),
        ("4KiB", 4 * units.KIB),
        ("4 kb", 4e3),
        ("1.5GiB", 1.5 * units.GIB),
        ("512", 512.0),
        ("2e3 B", 2000.0),
    ])
    def test_examples(self, text, expected):
        assert units.parse_bytes(text) == pytest.approx(expected)

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ValueError):
            units.parse_bytes("3 XB")

    @given(st.floats(min_value=0.001, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_binary(self, mib):
        text = f"{mib} MiB"
        assert units.parse_bytes(text) == pytest.approx(mib * units.MIB)


class TestParseSi:
    @pytest.mark.parametrize("text,unit,expected", [
        ("25 GB/s", "B/s", 25e9),
        ("1 EFLOP/s", "FLOP/s", 1e18),
        ("9.7 TFLOP/s", "FLOP/s", 9.7e12),
        ("1.5k", "", 1500.0),
        ("498 s", "s", 498.0),
        ("-3 Gs", "s", -3e9),
    ])
    def test_examples(self, text, unit, expected):
        assert units.parse_si(text, unit) == pytest.approx(expected)

    def test_wrong_unit_rejected(self):
        with pytest.raises(ValueError, match="expected unit"):
            units.parse_si("25 GB/s", "FLOP/s")

    def test_unknown_prefix_rejected(self):
        with pytest.raises(ValueError, match="unknown SI prefix"):
            units.parse_si("3 QFLOP/s", "FLOP/s")

    def test_binary_prefix_is_not_si(self):
        # family separation: KiB never parses as an SI quantity
        with pytest.raises(ValueError):
            units.parse_si("1 KiB", "B")

    @given(st.floats(min_value=1.0, max_value=1e21,
                     allow_nan=False, allow_infinity=False))
    def test_fmt_parse_roundtrip(self, value):
        text = units.fmt_si(value, "FLOP/s")
        back = units.parse_si(text, "FLOP/s")
        # fmt_si keeps 3 significant digits, so the round trip is
        # exact up to that rendering precision
        assert back == pytest.approx(value, rel=5e-3)

    @given(st.sampled_from([units.KILO, units.MEGA, units.GIGA,
                            units.TERA, units.PETA, units.EXA]),
           st.floats(min_value=1.0, max_value=999.0,
                     allow_nan=False, allow_infinity=False))
    def test_parse_fmt_consistent_across_prefixes(self, scale, mantissa):
        assert units.parse_si(units.fmt_si(mantissa * scale, "B/s"),
                              "B/s") == \
            pytest.approx(mantissa * scale, rel=5e-3)


class TestParseBin:
    @pytest.mark.parametrize("text,expected", [
        ("64 TiB", 64 * units.TIB),
        ("16 MiB", 16 * units.MIB),
        ("1.5GiB", 1.5 * units.GIB),
        ("512 B", 512.0),
        ("512", 512.0),
    ])
    def test_examples(self, text, expected):
        assert units.parse_bin(text) == pytest.approx(expected)

    def test_decimal_prefix_is_not_binary(self):
        # parse_bytes accepts '4 GB'; the strict binary inverse must not
        with pytest.raises(ValueError, match="unknown binary prefix"):
            units.parse_bin("4 GB")

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ValueError):
            units.parse_bin("3 XB")

    @given(st.floats(min_value=1.0, max_value=1023.0,
                     allow_nan=False, allow_infinity=False),
           st.sampled_from([1.0, units.KIB, units.MIB, units.GIB,
                            units.TIB, units.PIB]))
    def test_fmt_bytes_roundtrip(self, mantissa, scale):
        value = mantissa * scale
        assert units.parse_bin(units.fmt_bytes(value)) == \
            pytest.approx(value, rel=5e-3)

    @given(st.floats(min_value=0.001, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    def test_parse_bin_agrees_with_parse_bytes_on_binary(self, mib):
        text = f"{mib} MiB"
        assert units.parse_bin(text) == units.parse_bytes(text)


class TestDimAnnotationRegistry:
    def test_register_and_introspect(self):
        dims = {"f.x": "s", "f.return": "B/s"}
        returned = units.register_dims("tests.fake_module", dims)
        assert returned is dims   # one-line idiom keeps the dict
        assert units.registered_dims()["tests.fake_module"] == dims

    def test_registered_dims_returns_copies(self):
        units.register_dims("tests.fake_module2", {"g.y": "B"})
        snapshot = units.registered_dims()
        snapshot["tests.fake_module2"]["g.y"] = "tampered"
        assert units.registered_dims()["tests.fake_module2"]["g.y"] == "B"

    def test_model_modules_register_at_import(self):
        import repro.cluster.network  # noqa: F401 -- import side effect
        assert any(mod.endswith("cluster.network")
                   for mod in units.registered_dims())


class TestJuqcsMemoryLaw:
    """The paper's JUQCS sizes must come out of the unit constants."""

    @pytest.mark.parametrize("qubits,expected_bytes", [
        (36, units.TIB),            # Base: 1 TiB
        (41, 32 * units.TIB),       # High-Scaling small
        (42, 64 * units.TIB),       # High-Scaling large
        (45, 0.5 * units.PIB),      # "a little over 0.5 PiB" for n=45
    ])
    def test_state_vector_sizes(self, qubits, expected_bytes):
        nbytes = units.BYTES_PER_COMPLEX128 * 2.0 ** qubits
        assert nbytes == pytest.approx(expected_bytes)

    def test_prefix_ladder_consistent(self):
        assert units.MIB == units.KIB ** 2
        assert math.isclose(units.PIB / units.TIB, 1024.0)
