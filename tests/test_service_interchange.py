"""Deterministic interchange tests: fairness, admission, endpoint death.

The control plane runs on a virtual clock, so every schedule here is a
pure function of (submissions, endpoint layout, fault plan):

* a seeded 8-client x 2-endpoint hammer whose dispatch log and
  canonical result export are **byte-reproducible** across reruns,
* fair-share ordering (a 1-task client is served within one cycle of
  an N-task client, never starved behind it),
* admission control (per-client backlog cap -> explicit ``rejected``
  result recorded in the store, plus client-side retry after drain),
* endpoint death mid-flight (fault-plan driven): lease expiry requeues
  the dead endpoint's envelopes and every task completes elsewhere
  with zero lost and zero duplicated results.
"""

import random

import pytest

from repro.core.benchmark import BenchmarkResult
from repro.exec.cache import result_key
from repro.faults.plan import FaultPlan, NodeFault
from repro.service import (
    BenchmarkService,
    CancelledError,
    Capabilities,
    LeaseTable,
    LocalEndpoint,
    RejectedError,
    ResultEnvelope,
    ServiceClient,
    ServiceError,
    ServiceFuture,
    TaskEnvelope,
)
from repro.telemetry import ManualClock

SEED = 0x5E21CE


class FakeSuite:
    """Deterministic stand-in: FOM is a pure function of the request."""

    def run_key(self, name, nodes=None, *, variant=None, scale=1.0,
                real=False):
        return result_key(name, {"nodes": nodes or 4, "scale": scale,
                                 "real": real,
                                 "variant": variant.value
                                 if variant else None})

    def run(self, name, nodes=None, *, variant=None, scale=1.0,
            real=False):
        return BenchmarkResult(benchmark=name, nodes=nodes or 4,
                               fom_seconds=1.0 + (len(name) % 7) * 0.25
                               + scale)


def _service(**kwargs) -> BenchmarkService:
    kwargs.setdefault("clock", ManualClock())
    return BenchmarkService(**kwargs)


def _endpoint(eid: str, workers: int = 1,
              benchmarks: tuple = ()) -> LocalEndpoint:
    return LocalEndpoint(
        eid, suite=FakeSuite(),
        capabilities=Capabilities(workers=workers, benchmarks=benchmarks))


def _hammer(seed: int = SEED):
    """The seeded 8-client x 2-endpoint hammer; returns the service
    and the futures in submission order."""
    rng = random.Random(seed)
    service = _service(max_backlog=32)
    service.register_endpoint(_endpoint("ep0", workers=2))
    service.register_endpoint(_endpoint("ep1", workers=1))
    suite = FakeSuite()
    clients = [ServiceClient(service, f"client{i}", suite=suite)
               for i in range(8)]
    futures = []
    for _ in range(40):
        client = clients[rng.randrange(len(clients))]
        name = rng.choice(["Alpha", "Beta", "Gamma", "Delta"])
        futures.append(client.submit(name,
                                     scale=1.0 + rng.randrange(4) * 0.5))
    service.drain()
    return service, futures


class TestHammerDeterminism:
    def test_everything_completes(self):
        service, futures = _hammer()
        assert all(f.status == "ok" for f in futures)
        assert service.store.counts() == {"ok": len(futures)}

    def test_schedule_byte_reproducible_across_reruns(self):
        first, _ = _hammer()
        second, _ = _hammer()
        assert first.log_json().encode() == second.log_json().encode()
        assert first.store.canonical_export().encode() == \
            second.store.canonical_export().encode()

    def test_different_seed_different_schedule(self):
        first, _ = _hammer()
        other, _ = _hammer(seed=SEED + 1)
        assert first.log_json() != other.log_json()

    def test_export_independent_of_endpoint_layout(self):
        wide, _ = _hammer()
        rng = random.Random(SEED)
        narrow = _service(max_backlog=32)
        narrow.register_endpoint(_endpoint("solo", workers=1))
        suite = FakeSuite()
        clients = [ServiceClient(narrow, f"client{i}", suite=suite)
                   for i in range(8)]
        for _ in range(40):
            client = clients[rng.randrange(len(clients))]
            name = rng.choice(["Alpha", "Beta", "Gamma", "Delta"])
            client.submit(name, scale=1.0 + rng.randrange(4) * 0.5)
        narrow.drain()
        assert narrow.store.canonical_export() == \
            wide.store.canonical_export()


class TestFairShare:
    def test_small_client_not_starved_by_large_one(self):
        service = _service(max_backlog=32)
        service.register_endpoint(_endpoint("ep0", workers=1))
        suite = FakeSuite()
        hog = ServiceClient(service, "hog", suite=suite)
        mouse = ServiceClient(service, "mouse", suite=suite)
        hog_futures = [hog.submit("Alpha", label=f"hog{i}")
                       for i in range(6)]
        mouse_future = mouse.submit("Beta")
        service.drain()
        dispatches = [e for e in service.dispatch_log
                      if e["event"] == "dispatch"]
        order = [e["client"] for e in dispatches]
        # the mouse's single task is served in the first two cycles,
        # not behind the hog's whole queue
        assert order.index("mouse") <= 2
        assert all(f.status == "ok" for f in hog_futures + [mouse_future])

    def test_round_robin_cycles_clients_in_sorted_order(self):
        service = _service(max_backlog=32)
        service.register_endpoint(_endpoint("ep0", workers=1))
        suite = FakeSuite()
        for cid in ("b", "a", "c"):  # registration order != sorted
            ServiceClient(service, cid, suite=suite).submit(
                "Alpha", label=f"task-{cid}")
        service.drain()
        order = [e["client"] for e in service.dispatch_log
                 if e["event"] == "dispatch"]
        assert order == ["a", "b", "c"]


class TestAdmissionControl:
    def test_backlog_cap_rejects_explicitly(self):
        service = _service(max_backlog=2)
        service.register_endpoint(_endpoint("ep0"))
        client = ServiceClient(service, "c0", suite=FakeSuite())
        futures = [client.submit("Alpha", label=f"t{i}") for i in range(3)]
        assert [f.status for f in futures[:2]] == [None, None]
        assert futures[2].status == "rejected"
        with pytest.raises(RejectedError, match="backlog full"):
            futures[2].result()
        # the rejection is recorded, never silently dropped
        rejected = [r for r in service.store.records
                    if r.status == "rejected"]
        assert len(rejected) == 1
        assert "cap 2" in rejected[0].error
        service.drain()
        assert [f.status for f in futures] == ["ok", "ok", "rejected"]

    def test_client_retry_after_drain_succeeds(self):
        service = _service(max_backlog=1)
        service.register_endpoint(_endpoint("ep0"))
        client = ServiceClient(service, "c0", suite=FakeSuite(),
                               retries=3)
        first = client.submit("Alpha", label="first")
        # the retry loop pauses (virtual clock), steps the service so
        # the backlog drains, then resubmits the same envelope
        second = client.submit("Alpha", label="second")
        assert second.status != "rejected"
        service.drain()
        assert first.status == "ok" and second.status == "ok"
        # the journalled store keeps the full history: the bounce and
        # the eventual completion of the same task id
        statuses = [r.status for r in service.store.records
                    if r.task_id == second.task_id]
        assert statuses == ["rejected", "ok"]

    def test_resubmission_is_idempotent(self):
        service = _service()
        service.register_endpoint(_endpoint("ep0"))
        client = ServiceClient(service, "c0", suite=FakeSuite())
        envelope = client.make_envelope("Alpha")
        first = service.submit(envelope)
        again = service.submit(envelope)
        assert again is first
        service.drain()
        assert service.submit(envelope) is first  # completed: same future
        assert service.store.counts() == {"ok": 1}

    def test_cancellation_before_dispatch(self):
        service = _service()
        service.register_endpoint(_endpoint("ep0"))
        client = ServiceClient(service, "c0", suite=FakeSuite())
        keep = client.submit("Alpha", label="keep")
        drop = client.submit("Beta", label="drop")
        assert client.cancel(drop) is True
        assert drop.cancelled()
        with pytest.raises(CancelledError):
            drop.result()
        service.drain()
        assert keep.status == "ok"
        assert client.cancel(keep) is False  # already completed
        assert service.store.counts() == {"ok": 1, "cancelled": 1}


class TestEndpointDeath:
    def _crash_service(self, *, duration):
        plan = FaultPlan(nodes=(NodeFault(node=0, at=0.0,
                                          duration=duration),))
        service = _service(max_backlog=32, faults=plan)
        service.register_endpoint(_endpoint("doomed", workers=4))
        service.register_endpoint(_endpoint("survivor", workers=1))
        return service

    def test_death_mid_flight_requeues_without_loss(self):
        service = self._crash_service(duration=1000.0)
        client = ServiceClient(service, "c0", suite=FakeSuite())
        futures = [client.submit("Alpha", label=f"t{i}") for i in range(8)]
        service.drain()
        assert all(f.status == "ok" for f in futures)
        # zero lost: every task has exactly one ok record (no dups)
        ok_records = [r for r in service.store.records if r.status == "ok"]
        assert len(ok_records) == len(futures)
        assert len({r.task_id for r in ok_records}) == len(futures)
        # the doomed endpoint's lease lapsed and its envelopes requeued
        events = [e["event"] for e in service.dispatch_log]
        assert "lost" in events and "requeue" in events
        assert all(r.endpoint == "survivor" for r in ok_records)

    def test_lease_expiry_is_deterministic(self):
        service = self._crash_service(duration=1000.0)
        client = ServiceClient(service, "c0", suite=FakeSuite())
        client.submit("Alpha")
        service.drain()
        lost = [e for e in service.dispatch_log if e["event"] == "lost"]
        assert len(lost) == 1
        # the lease lapses strictly after threshold x period of silence
        assert lost[0]["at"] > service.leases.window

    def test_endpoint_restore_rejoins_service(self):
        service = self._crash_service(duration=30.0)
        client = ServiceClient(service, "c0", suite=FakeSuite())
        futures = [client.submit("Alpha", label=f"t{i}") for i in range(4)]
        service.drain()
        assert all(f.status == "ok" for f in futures)
        # the drain finished (t=20) inside the 30 s crash window; once
        # the window closes, the next round restores the endpoint
        service.clock.advance(60.0)
        service.pump()
        events = [e["event"] for e in service.dispatch_log]
        assert "crash" in events and "restore" in events
        assert service.endpoints()["doomed"]["lost"] is False
        late = client.submit("Beta")
        service.drain()
        assert late.status == "ok"
        assert service.store.final()[late.task_id].endpoint == "doomed"

    def test_all_endpoints_dead_fails_loudly(self):
        plan = FaultPlan(nodes=(NodeFault(node=0, at=0.0, duration=None),))
        service = _service(faults=plan)
        service.register_endpoint(_endpoint("doomed"))
        client = ServiceClient(service, "c0", suite=FakeSuite())
        client.submit("Alpha")
        with pytest.raises(ServiceError, match="stalled"):
            service.drain()

    def test_no_capable_endpoint_fails_loudly(self):
        service = _service()
        service.register_endpoint(_endpoint("narrow",
                                            benchmarks=("OnlyThis",)))
        client = ServiceClient(service, "c0", suite=FakeSuite())
        client.submit("SomethingElse")
        with pytest.raises(ServiceError, match="stalled"):
            service.drain()


class TestLeaseTable:
    def test_expiry_boundary_is_strict(self):
        clock = ManualClock()
        leases = LeaseTable(clock, period=5.0, threshold=3)
        leases.register("ep")
        clock.advance(15.0)
        assert leases.expired() == []       # exactly the window: alive
        clock.advance(0.001)
        assert leases.expired() == ["ep"]   # past it: lost

    def test_beat_renews(self):
        clock = ManualClock()
        leases = LeaseTable(clock, period=1.0, threshold=2)
        leases.register("ep")
        for _ in range(10):
            clock.advance(1.0)
            leases.beat("ep")
        assert leases.expired() == []
        assert leases.deadline("ep") == clock() + leases.window

    def test_validation(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            LeaseTable(clock, period=0.0)
        with pytest.raises(ValueError):
            LeaseTable(clock, threshold=0)


class TestDuplicateGuard:
    def test_double_resolution_raises(self):
        env = TaskEnvelope(client="c", benchmark="b", key="k")
        future = ServiceFuture(env)
        result = ResultEnvelope(task_id=env.task_id, client="c",
                                benchmark="b", key="k", status="ok",
                                value=1.0)
        future.resolve(result)
        with pytest.raises(ServiceError, match="duplicate result"):
            future.resolve(result)

    def test_misrouted_result_raises(self):
        env = TaskEnvelope(client="c", benchmark="b", key="k")
        future = ServiceFuture(env)
        stray = ResultEnvelope(task_id="someone-else", client="c",
                               benchmark="b", key="k", status="ok",
                               value=1.0)
        with pytest.raises(ServiceError, match="routed"):
            future.resolve(stray)
