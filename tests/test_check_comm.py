"""COMM5xx protocol-verification tests: extraction, replay verdicts,
goldens, filtering, and the clean-at-HEAD acceptance criterion."""

import ast
import inspect
import json
import textwrap
from pathlib import Path

import pytest

from repro.check import (
    Analyzer,
    analyze_modules,
    load_baseline,
    rank_programs,
    render_json,
    render_sarif,
)
from repro.check.protocol import DEFAULT_SIZES, EAGER_LIMIT
from repro.check.rules import expand_rule_prefixes, rule_ids
from repro.check.rules.comm import ID_DESCRIPTIONS, ID_SEVERITY
from repro.vmpi.comm import Comm
from repro.vmpi.engine import VmpiEngine
from repro.vmpi.ops import COMM_METHODS

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).parent / "fixtures" / "comm"
GOLDEN_DIR = Path(__file__).parent / "goldens"

COMM_IDS = tuple(sorted(ID_SEVERITY))


def analyze_source(source: str, relpath: str = "prog.py",
                   sizes=DEFAULT_SIZES):
    tree = ast.parse(textwrap.dedent(source))
    return analyze_modules([(relpath, tree)], sizes=sizes)


# -- model/engine contracts --------------------------------------------------

def test_comm_methods_match_facade_signatures():
    """The introspection table the static pass binds against must
    mirror the real Comm facade, parameter for parameter."""
    for name, spec in COMM_METHODS.items():
        method = getattr(Comm, name)
        sig = inspect.signature(method)
        params = [p for p in sig.parameters.values()
                  if p.name != "self"]
        assert tuple(p.name for p in params) == spec["params"], name
        defaults = {p.name: p.default for p in params
                    if p.default is not inspect.Parameter.empty}
        assert defaults == spec["defaults"], name


def test_eager_limit_mirrors_engine():
    assert EAGER_LIMIT == VmpiEngine.EAGER_LIMIT


def test_comm_ids_registered():
    ids = rule_ids()
    for rid in COMM_IDS:
        assert rid in ids
    assert set(ID_DESCRIPTIONS) == set(ID_SEVERITY)


# -- extraction --------------------------------------------------------------

def test_rank_program_detection():
    tree = ast.parse(textwrap.dedent("""
        def prog(comm, n):
            yield comm.barrier()

        def helper(comm):
            return comm.size  # not a generator

        def other(x):
            yield x  # first arg is not a communicator

        def annotated(c: Comm):
            yield c.barrier()
    """))
    names = [fn.name for fn in rank_programs(tree)]
    assert names == ["prog", "annotated"]


def test_skeleton_follows_yield_from_helpers():
    # the helper's parameter is not named ``comm``, so it is not a
    # standalone rank program -- only the inlined call sees the bug
    findings = analyze_source("""
        def half_barrier(c):
            if c.rank == 0:
                yield c.barrier()

        def prog(comm):
            yield from half_barrier(comm)
            yield comm.compute(flops=1.0)
    """)
    assert [f.rule_id for f in findings] == ["COMM501"]
    # the finding anchors at the collective inside the helper
    assert findings[0].line == 4
    assert findings[0].program == "prog"


def test_unresolvable_programs_stay_quiet():
    # communication under a rank-dependent unproven branch is beyond
    # the model: no findings, no crashes (exchange results are opaque)
    findings = analyze_source("""
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            (back,) = yield comm.exchange(sends=((right, 1.0),),
                                          recvs=(left,), tag=1)
            if back:
                yield comm.barrier()
    """)
    assert findings == []


def test_out_of_range_peer_is_not_a_protocol_bug():
    # xor partners fall outside the communicator at non-power-of-two
    # sizes; the facade raises at construction (a crash, not a
    # deadlock), so the pass must not report it
    findings = analyze_source("""
        def prog(comm):
            peer = comm.rank ^ 1
            yield comm.send(peer, 1.0, tag=1)
            back = yield comm.recv(peer, tag=1)
    """, sizes=(3,))
    assert findings == []


# -- verdicts ----------------------------------------------------------------

def test_comm501_divergent_collective():
    findings = analyze_source("""
        def prog(comm):
            if comm.rank < comm.size - 1:
                yield comm.barrier()
    """)
    assert [f.rule_id for f in findings] == ["COMM501"]
    assert findings[0].nranks == 2


def test_comm502_order_mismatch():
    findings = analyze_source("""
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
                yield comm.allreduce(1.0)
            else:
                yield comm.allreduce(1.0)
                yield comm.barrier()
    """)
    assert [f.rule_id for f in findings] == ["COMM502"]


def test_comm503_recv_cycle():
    findings = analyze_source("""
        def prog(comm):
            left = (comm.rank - 1) % comm.size
            right = (comm.rank + 1) % comm.size
            token = yield comm.recv(left, tag=1)
            yield comm.send(right, token, tag=1)
    """)
    assert [f.rule_id for f in findings] == ["COMM503"]
    assert any("wait-for cycle" in f.message for f in findings)


def test_comm503_rendezvous_head_to_head():
    # proven-large payloads block; symmetric sends deadlock
    findings = analyze_source("""
        from repro.vmpi import Phantom

        def prog(comm):
            peer = (comm.rank + 1) % 2
            yield comm.send(peer, Phantom(1 << 20), tag=2)
            back = yield comm.recv(peer, tag=2)
    """, sizes=(2,))
    assert [f.rule_id for f in findings] == ["COMM503"]


def test_eager_sends_do_not_deadlock():
    # same shape, small payload: eager completes locally, no deadlock
    findings = analyze_source("""
        def prog(comm):
            peer = (comm.rank + 1) % 2
            yield comm.send(peer, 1.0, tag=2)
            back = yield comm.recv(peer, tag=2)
    """, sizes=(2,))
    assert findings == []


def test_comm504_tag_collision_in_batch():
    findings = analyze_source("""
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            reqs = yield (comm.isend(right, 1.0, tag=9),
                          comm.isend(right, 2.0, tag=9),
                          comm.irecv(left, tag=9),
                          comm.irecv(left, tag=9))
            yield comm.waitall(reqs)
    """)
    assert "COMM504" in {f.rule_id for f in findings}
    assert all(f.rule_id == "COMM504" for f in findings)


def test_comm505_rank_dependent_root():
    findings = analyze_source("""
        def prog(comm):
            yield comm.reduce(1.0, root=comm.rank % 2)
    """)
    assert [f.rule_id for f in findings] == ["COMM505"]


def test_comm506_orphan_recv():
    findings = analyze_source("""
        def prog(comm):
            if comm.rank == 0:
                yield comm.recv(1, tag=5)
    """)
    assert [f.rule_id for f in findings] == ["COMM506"]


def test_comm506_orphan_send():
    findings = analyze_source("""
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, 7.0, tag=6)
            yield comm.barrier()
    """)
    assert [f.rule_id for f in findings] == ["COMM506"]


def test_clean_ring_is_quiet():
    findings = analyze_source("""
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            token = yield comm.sendrecv(right, 1.0, left, tag=2)
            total = yield comm.allreduce(token)
            yield comm.barrier()
    """)
    assert findings == []


def test_split_collectives_are_tracked():
    # divergence *within* a derived communicator is still caught:
    # at size 4 the even subgroup is {0, 2} but only rank 0 posts
    findings = analyze_source("""
        def prog(comm):
            sub = yield comm.split(comm.rank % 2)
            if comm.rank < 2:
                yield sub.barrier()
    """, sizes=(4,))
    assert [f.rule_id for f in findings] == ["COMM501"]


def test_split_clean_subgroups():
    findings = analyze_source("""
        def prog(comm):
            sub = yield comm.split(comm.rank % 2)
            total = yield sub.allreduce(1.0)
            yield comm.barrier()
    """)
    assert findings == []


def test_approximate_replays_suppress_exact_verdicts():
    # unknown loop bounds poison exact traces: COMM503/COMM506 are
    # suppressed, collective-alignment verdicts are not
    findings = analyze_source("""
        def prog(comm, rounds):
            for _ in range(rounds):
                yield comm.send(0, 1.0, tag=1)
            if comm.rank == 0:
                yield comm.barrier()
    """)
    assert [f.rule_id for f in findings] == ["COMM501"]


def test_findings_carry_program_provenance():
    findings = analyze_source("""
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
    """)
    (f,) = findings
    assert f.program == "prog"
    assert f.trace[0].startswith("program prog (prog.py:")
    assert f.trace[1] == f"nranks={f.nranks}"


# -- fixture corpus + goldens ------------------------------------------------

@pytest.fixture(scope="module")
def fixture_report():
    return Analyzer(only=expand_rule_prefixes(["COMM"])).run(
        FIXTURES, rel_base=FIXTURES)


def test_fixture_corpus_covers_every_rule_id(fixture_report):
    seen = {f.rule for f in fixture_report.active}
    assert seen == set(COMM_IDS)


def test_fixture_json_matches_golden(fixture_report):
    golden = (GOLDEN_DIR / "comm_fixture.json").read_text()
    assert render_json(fixture_report, strict=True) == golden


def test_fixture_sarif_matches_golden(fixture_report):
    golden = (GOLDEN_DIR / "comm_fixture.sarif").read_text()
    assert render_sarif(fixture_report) == golden


def test_fixture_sarif_is_valid(fixture_report):
    doc = json.loads(render_sarif(fixture_report))
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert set(COMM_IDS) <= rules


# -- family filtering --------------------------------------------------------

def test_expand_rule_prefixes():
    assert expand_rule_prefixes(["COMM"]) == list(COMM_IDS)
    assert expand_rule_prefixes(["COMM503"]) == ["COMM503"]
    assert expand_rule_prefixes(["UNIT3", "COMM50"]) == \
        [rid for rid in rule_ids() if rid.startswith("UNIT3")] + \
        list(COMM_IDS)
    with pytest.raises(ValueError):
        expand_rule_prefixes(["NOPE"])


def test_select_family_reaches_analyzer():
    report = Analyzer(only=expand_rule_prefixes(["COMM"])).run(
        FIXTURES, rel_base=FIXTURES)
    assert {f.rule for f in report.active} == set(COMM_IDS)
    # non-COMM rules did not run: fixtures contain no other findings
    assert all(f.rule.startswith("COMM") for f in report.active)


def test_select_does_not_report_filtered_baselines_stale():
    # entries of rules that did not run cannot have matched anything;
    # a family-filtered run must not flag them for pruning
    baseline = load_baseline(REPO_ROOT / "check-baseline.json")
    assert baseline.entries, "expected a non-empty committed baseline"
    report = Analyzer(baseline=baseline,
                      only=expand_rule_prefixes(["COMM"])).run(
        REPO_ROOT / "src" / "repro", rel_base=REPO_ROOT)
    assert report.unused_baseline == []


def test_select_comm_cold_vs_warm_identical(tmp_path):
    from repro.exec import DiskCache

    cache = DiskCache(tmp_path / "cache")
    only = expand_rule_prefixes(["COMM"])
    cold = Analyzer(only=only).run(FIXTURES, rel_base=FIXTURES,
                                   cache=cache)
    warm = Analyzer(only=only).run(FIXTURES, rel_base=FIXTURES,
                                   cache=cache)
    assert render_json(cold, strict=True) == \
        render_json(warm, strict=True)
    assert render_sarif(cold) == render_sarif(warm)


# -- acceptance: the repository itself --------------------------------------

def test_repo_has_zero_comm_findings_at_head():
    """COMM5xx acceptance criterion: apps/ and synthetic/ are clean
    (the linktest spectator-barrier bug is fixed, nothing baselined)."""
    baseline = load_baseline(REPO_ROOT / "check-baseline.json")
    analyzer = Analyzer(baseline=baseline,
                        only=expand_rule_prefixes(["COMM"]))
    report = analyzer.run(REPO_ROOT / "src" / "repro",
                          rel_base=REPO_ROOT)
    assert not report.active, [f.render() for f in report.active]
    assert not any(f.rule.startswith("COMM")
                   for f in report.baselined)
