"""Property-based differential testing of the engine cores.

Hypothesis generates random-but-well-formed SPMD programs (every rank
executes the same randomly drawn phase sequence, so they are
deadlock-free by construction) and asserts the cross-core invariants on
each: virtual clocks advance monotonically, no spurious
:class:`DeadlockError` is raised, and the step and event cores agree
exactly on final clocks, payloads and traces.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import juwels_booster
from repro.vmpi import Machine, Phantom, run_spmd


def machine(nranks, **kw):
    return Machine.on(juwels_booster(), nranks, **kw)


# A phase is one op family, drawn with small parameter spaces so runs
# stay fast while still mixing blocking structure.
PHASES = st.one_of(
    st.tuples(st.just("compute"),
              st.sampled_from([1e9, 5e9, 2e10]),
              st.sampled_from([0.25, 1.0])),
    st.tuples(st.just("elapse"), st.sampled_from([0.01, 0.5])),
    st.tuples(st.just("allreduce"), st.sampled_from([64.0, 2e6])),
    st.tuples(st.just("barrier")),
    st.tuples(st.just("allgather"), st.sampled_from([8.0, 1e5])),
    st.tuples(st.just("ring"), st.integers(min_value=1, max_value=3),
              st.sampled_from([128.0, 1e6])),
    st.tuples(st.just("exchange"), st.integers(min_value=1, max_value=3),
              st.sampled_from([256.0, 5e5])),
    st.tuples(st.just("p2p_pair"), st.sampled_from([32.0, 3e6])),
)


def build_program(phases):
    """An SPMD generator executing the drawn phase list on every rank."""

    def prog(comm):
        out = 0.0
        for phase in phases:
            kind = phase[0]
            if kind == "compute":
                yield comm.compute(flops=phase[1], efficiency=phase[2])
            elif kind == "elapse":
                yield comm.elapse(phase[1])
            elif kind == "allreduce":
                got = yield comm.allreduce(Phantom(phase[1]))
                out += got.nbytes
            elif kind == "barrier":
                yield comm.barrier()
            elif kind == "allgather":
                got = yield comm.allgather(Phantom(phase[1]))
                out += len(got)
            elif kind == "ring":
                shift, size = phase[1], phase[2]
                right = (comm.rank + shift) % comm.size
                left = (comm.rank - shift) % comm.size
                got = yield comm.sendrecv(right, Phantom(size), left)
                out += got.nbytes
            elif kind == "exchange":
                shift, size = phase[1], phase[2]
                dest = (comm.rank + shift) % comm.size
                src = (comm.rank - shift) % comm.size
                got = yield comm.exchange(((dest, Phantom(size)),), (src,))
                out += got[0].nbytes
            elif kind == "p2p_pair":
                peer = comm.rank ^ 1
                if peer < comm.size:
                    sreq = yield comm.isend(peer, Phantom(phase[1]))
                    rreq = yield comm.irecv(peer)
                    got = yield comm.waitall([sreq, rreq])
                    out += got[1].nbytes
        return out

    return prog


@given(phases=st.lists(PHASES, min_size=1, max_size=8),
       nranks=st.integers(min_value=2, max_value=8))
@settings(max_examples=40, deadline=None)
def test_random_programs_agree_across_cores(phases, nranks):
    prog = build_program(phases)
    m = machine(nranks)
    step = run_spmd(prog, machine=m, mode="step")     # must not deadlock
    event = run_spmd(prog, machine=m, mode="event")   # must not deadlock
    # exact agreement, float for float
    assert step.clocks == event.clocks
    assert step.values == event.values
    for ts, te in zip(step.traces, event.traces):
        assert dict(ts.compute) == dict(te.compute)
        assert dict(ts.comm) == dict(te.comm)
        assert ts.bytes_sent == te.bytes_sent
        assert ts.ops == te.ops


@given(phases=st.lists(PHASES, min_size=1, max_size=6),
       nranks=st.integers(min_value=2, max_value=6))
@settings(max_examples=25, deadline=None)
def test_clocks_monotonic_and_consistent(phases, nranks):
    """Clocks never run backwards: every rank's final clock is at least
    its accumulated compute + blocked-communication time, and rerunning
    is bit-reproducible."""
    prog = build_program(phases)
    m = machine(nranks)
    res = run_spmd(prog, machine=m, mode="event")
    for r in range(nranks):
        t = res.traces[r]
        assert res.clocks[r] >= 0.0
        # compute and blocked time partition the clock (nothing else
        # advances it), so their sum can exceed it only by float error
        assert res.clocks[r] >= t.compute_seconds - 1e-12
        assert t.comm_seconds >= 0.0
        assert t.compute_seconds + t.comm_seconds <= \
            res.clocks[r] * (1 + 1e-9) + 1e-12
    again = run_spmd(prog, machine=m, mode="event")
    assert again.clocks == res.clocks
    assert again.values == res.values
