"""Telemetry integration with the execution engine and CLI: the
journal as a span-stream consumer, worker-count-invariant span trees,
cross-process clock rebasing, JSONL persistence and the observability
command-line surface."""

import json
import time

import pytest

from repro.exec import ExecutionEngine, MemoryCache, RunJournal, WorkItem
from repro.exec.journal import TaskRecord
from repro.telemetry import JsonlSink, validate_file


def _double(x):
    return x * 2


def _boom():
    raise ValueError("kaput\nwith a second line\tand tabs")


def _nap(seconds):
    time.sleep(seconds)
    return seconds


class _FlakyOnce:
    """Fails on the first call, succeeds afterwards (thread backend)."""

    def __init__(self):
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls == 1:
            raise ValueError("transient")
        return "ok"


def _task_tree(engine):
    """The engine's span tree, normalised for comparison: one entry
    per task span (sorted by submission index) with its attrs and its
    child spans' (name, status) pairs -- no ids, no timings."""
    spans = engine.tracer.finished()
    tasks = sorted((s for s in spans if s.attrs.get("kind") == "task"),
                   key=lambda s: s.attrs["index"])
    out = []
    for task in tasks:
        children = sorted(
            (c.name, c.attrs.get("status"), c.attrs.get("n"))
            for c in spans if c.parent_id == task.span_id)
        out.append((task.name, dict(task.attrs), children))
    return out


class TestJournalIsASpanConsumer:
    def test_task_spans_feed_the_journal(self):
        engine = ExecutionEngine(workers=1)
        engine.map([WorkItem(fn=_double, args=(i,), label=f"t{i}")
                    for i in range(3)])
        assert len(engine.journal) == 3
        records = engine.journal.records
        assert [r.label for r in records] == ["t0", "t1", "t2"]
        assert all(r.status == "ok" for r in records)
        # each task span has exactly one successful attempt child
        tree = _task_tree(engine)
        assert [t[0] for t in tree] == ["task:t0", "task:t1", "task:t2"]
        assert all(t[2] == [("attempt", "ok", 1)] for t in tree)

    def test_external_subscriber_sees_the_same_stream(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        engine = ExecutionEngine(workers=2, backend="thread")
        sink = JsonlSink(path)
        engine.tracer.subscribe(sink)
        engine.map([WorkItem(fn=_double, args=(i,)) for i in range(4)])
        sink.close()
        rebuilt = RunJournal.from_jsonl(path)
        assert [r.label for r in rebuilt.records] == \
            [r.label for r in engine.journal.records]


class TestWorkerCountInvariance:
    def test_workers_1_vs_8_identical_span_trees(self):
        items = lambda: [  # noqa: E731 -- fresh WorkItems per engine
            WorkItem(fn=_double, args=(i,), label=f"job{i}")
            for i in range(10)]
        serial = ExecutionEngine(workers=1)
        serial.map(items())
        threaded = ExecutionEngine(workers=8, backend="thread")
        threaded.map(items())
        assert _task_tree(serial) == _task_tree(threaded)

    def test_failures_keep_the_trees_identical_too(self):
        def items():
            batch = [WorkItem(fn=_double, args=(i,), label=f"ok{i}")
                     for i in range(4)]
            batch.append(WorkItem(fn=_boom, label="bad"))
            return batch

        serial = ExecutionEngine(workers=1)
        serial.map(items())
        threaded = ExecutionEngine(workers=8, backend="thread")
        threaded.map(items())
        assert _task_tree(serial) == _task_tree(threaded)
        bad = _task_tree(serial)[-1]
        assert bad[1]["status"] == "error"
        assert "kaput" in bad[1]["error"]


class TestProcessClockRebase:
    def test_wall_seconds_live_on_the_parent_clock(self):
        engine = ExecutionEngine(workers=2, backend="process")
        before = engine.tracer.now()
        engine.map([WorkItem(fn=_nap, args=(0.05,), label=f"n{i}")
                    for i in range(2)])
        after = engine.tracer.now()
        stats = engine.journal.stats()
        # rebased intervals sit inside the parent-clock window ...
        for record in engine.journal.records:
            assert before <= record.started <= record.finished <= after
        # ... so the aggregate wall time is meaningful, not skewed
        assert 0.0 < stats.wall_seconds <= (after - before)
        assert stats.busy_seconds >= 0.1  # 2 x 0.05 s naps survived

    def test_worker_spans_are_grafted_under_task_spans(self):
        engine = ExecutionEngine(workers=2, backend="process")
        engine.map([WorkItem(fn=_double, args=(1,), label="t")])
        tree = _task_tree(engine)
        assert tree[0][2] == [("attempt", "ok", 1)]
        # the grafted attempt also lands inside the parent-clock window
        spans = {s.name: s for s in engine.tracer.finished()}
        task, attempt = spans["task:t"], spans["attempt"]
        assert task.start <= attempt.start <= attempt.end <= \
            task.end + 1e-6


class TestRetriesAndCache:
    def test_attempt_spans_count_retries(self):
        engine = ExecutionEngine(workers=2, backend="thread", retries=1)
        engine.map([WorkItem(fn=_FlakyOnce(), label="flaky")])
        tree = _task_tree(engine)
        assert tree[0][1]["attempts"] == 2
        assert tree[0][2] == [("attempt", "error", 1), ("attempt", "ok", 2)]

    def test_cache_hits_leave_attemptless_spans(self):
        engine = ExecutionEngine(workers=2, backend="thread",
                                 cache=MemoryCache())
        items = lambda: [WorkItem(fn=_double, args=(3,), key="k",  # noqa: E731
                                  label="cached")]
        engine.map(items())
        engine.map(items())
        tree = _task_tree(engine)
        assert [t[1]["cache"] for t in tree] == ["miss", "hit"]
        assert tree[1][2] == []  # a hit executes nothing
        hits = engine.metrics.counter("engine_tasks_total", status="ok",
                                      cache="hit")
        assert hits.value >= 1


class TestJournalSummaryAndPersistence:
    def _error_journal(self, errors):
        journal = RunJournal()
        for i, error in enumerate(errors):
            journal.append(TaskRecord(index=i, label=f"t{i}",
                                      status="error", cache="off",
                                      started=0.0, finished=0.1,
                                      error=error))
        return journal

    def test_multiline_errors_stay_on_one_line(self):
        journal = self._error_journal(["bad\nnews\ttoday\r!"])
        summary = journal.summary()
        lines = summary.splitlines()
        assert len(lines) == 3  # header, the task, totals
        assert "bad\\nnews\\ttoday\\r!" in summary

    def test_long_errors_truncate_with_ellipsis(self):
        journal = self._error_journal(["x" * 300])
        line = journal.summary().splitlines()[1]
        assert "…" in line
        assert len(line) < 200

    def test_max_errors_collapses_the_tail(self):
        journal = self._error_journal([f"boom {i}" for i in range(12)])
        summary = journal.summary(max_errors=3)
        assert "boom 2" in summary
        assert "boom 7" not in summary
        assert "… and 9 more errors" in summary

    def test_jsonl_round_trip(self, tmp_path):
        engine = ExecutionEngine(workers=1, retries=0)
        engine.map([WorkItem(fn=_double, args=(i,), label=f"t{i}")
                    for i in range(3)] + [WorkItem(fn=_boom, label="bad")])
        path = tmp_path / "journal.jsonl"
        assert engine.journal.to_jsonl(path) == 4
        assert validate_file(path) == {"meta": 1, "task": 4}
        rebuilt = RunJournal.from_jsonl(path)
        assert rebuilt.records == engine.journal.records
        assert rebuilt.summary() == engine.journal.summary()


class TestCliObservability:
    def _run(self, argv):
        from repro.cli import main

        return main(argv)

    def test_trace_out_jsonl_metrics_and_report(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert self._run(["suite", "--benchmarks", "STREAM",
                          "--trace-out", str(trace), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics report" in out
        assert "engine_tasks_total" in out
        counts = validate_file(trace)
        assert counts["span"] >= 2   # suite driver + the task span
        assert counts["metrics"] == 1
        assert counts["vmpi"] > 0
        assert self._run(["report", str(trace)]) == 0
        report = capsys.readouterr().out
        assert "run journal -- 1 tasks" in report
        assert "cost centres" in report

    def test_trace_out_chrome_has_rank_timelines(self, tmp_path):
        trace = tmp_path / "trace.json"
        assert self._run(["suite", "--benchmarks", "STREAM",
                          "--trace-out", str(trace)]) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        vmpi = [e for e in events if e.get("pid", 0) >= 100
                and e["ph"] == "X"]
        assert vmpi, "expected vmpi rank slices in the Chrome trace"
        assert len({e["tid"] for e in vmpi}) > 1  # one tid per rank
        assert {e["cat"] for e in vmpi} <= {"compute", "comm"}

    def test_journal_path_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "journal.jsonl"
        assert self._run(["suite", "--benchmarks", "STREAM",
                          "--journal", str(path)]) == 0
        assert "journal: 1 task record(s)" in capsys.readouterr().out
        journal = RunJournal.from_jsonl(path)
        assert [r.label for r in journal.records] == ["run:STREAM"]

    def test_journal_flag_still_prints(self, capsys):
        assert self._run(["suite", "--benchmarks", "STREAM",
                          "--journal"]) == 0
        assert "run journal -- 1 tasks" in capsys.readouterr().out

    def test_ambient_tracer_restored_after_run(self, tmp_path):
        from repro.telemetry import NULL_TRACER, current_tracer

        self._run(["suite", "--benchmarks", "STREAM",
                   "--trace-out", str(tmp_path / "t.jsonl")])
        assert current_tracer() is NULL_TRACER
