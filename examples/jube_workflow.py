#!/usr/bin/env python
"""Author a benchmark the JUBE way (Sec. III-B of the paper).

Defines a suite-style benchmark as a JUBE workflow: parameter sets with
``$ref`` substitution and python-mode evaluation, tag-selected memory
variants, a compile -> execute -> verify step DAG, and a result table
with the FOM -- then runs it through the in-process JUBE runtime over
the simulated batch system.
"""

from repro.core import MemoryVariant, load_suite
from repro.jube import (
    JUWELS_BOOSTER,
    BenchmarkSpec,
    JubeRuntime,
    ParameterSet,
    Step,
    table,
)

suite = load_suite()

# -- the "JUBE script": parameters -----------------------------------------

params = (
    ParameterSet("juqcs")
    .add("benchmark", "JUQCS")
    .add("nodes", [1, 2, 4, 8])                     # a workunit per count
    .add("tasks", "$nodes * $gpus_per_node", mode="python")
    .add("variant", "L")
    .add("variant", "S", tags=["small-memory"])      # tag-selected override
    .add("walltime", 3600)
)

# -- the step DAG ------------------------------------------------------------


def compile_step(ctx):
    """'Compilation': resolve the benchmark implementation."""
    return {"binary": f"juqcs-{ctx.params['variant'].lower()}"}


def execute_step(ctx):
    """Run on the simulated machine; emit the FOM."""
    result = suite.run(ctx.params["benchmark"], ctx.params["nodes"],
                       variant=MemoryVariant.from_label(
                           ctx.params["variant"]))
    return {"fom_seconds": result.fom_seconds,
            "qubits": result.details["qubits"],
            "comm_seconds": result.details["comm_seconds"]}


def verify_step(ctx):
    """Exact verification on a small real run (the suite rule)."""
    result = suite.run(ctx.params["benchmark"], ctx.params["nodes"],
                       real=True)
    return {"verified": bool(result.verified),
            "verification": result.verification}


spec = BenchmarkSpec(
    name="juqcs-sweep",
    platform=JUWELS_BOOSTER,
    parametersets=[params],
    steps=[
        Step("compile", tasks=[compile_step]),
        Step("execute", tasks=[execute_step], depends=("compile",)),
        Step("verify", tasks=[verify_step], depends=("execute",)),
    ],
    tables=[table("result",
                  "nodes", "tasks", "variant", "qubits",
                  ("fom_seconds", "FOM [s]", ".2f"),
                  ("comm_seconds", "comm [s]", ".2f"),
                  "verified",
                  sort_by="nodes")],
)

# -- run ---------------------------------------------------------------------

print("running the JUQCS sweep through the JUBE runtime "
      "(large-memory variant)...\n")
run = JubeRuntime().run(spec)
print(run.render(spec.tables[0]))

print("\nsame spec with the 'small-memory' tag active:\n")
run_small = JubeRuntime().run(spec, tags=["small-memory"])
print(run_small.render(spec.tables[0]))
