#!/usr/bin/env python
"""Continuous Benchmarking over the system lifetime (Sec. VI).

The paper's stated future work: re-run the suite after every
maintenance and catch performance regressions before users do.  This
example simulates exactly that story:

1. acceptance runs establish the baseline FOMs,
2. several healthy maintenance intervals pass,
3. a 'bad firmware update' degrades the interconnect of the simulated
   machine -- and the campaign flags precisely the communication-bound
   benchmarks (JUQCS, Quantum Espresso) while the compute-bound ones
   (Arbor) stay green.
"""

from dataclasses import replace

from repro.core import Baseline, ContinuousBenchmarking, load_suite
from repro.cluster.hardware import juwels_booster
from repro.history import HistoryStore
from repro.vmpi.machine import Machine

suite = load_suite()
BENCHES = ("Arbor", "JUQCS", "Quantum Espresso")

# -- 1. acceptance: build the baseline ---------------------------------------

print("acceptance runs (healthy machine):")
baseline = Baseline()
for name in BENCHES:
    fom = suite.run(name).fom_seconds
    baseline.record(name, fom, noise=0.02)
    print(f"  {name:<18} baseline FOM {fom:9.2f} s")

# -- 2. the machine under test (degradable) ----------------------------------

state = {"nic_factor": 1.0}


def degraded_machine(nodes: int) -> Machine:
    healthy = juwels_booster()
    node = replace(healthy.node,
                   nic_bandwidth=healthy.node.nic_bandwidth *
                   state["nic_factor"])
    system = replace(healthy, node=node)
    return Machine.on(system, nranks=nodes * 4, ranks_per_node=4)


def runner(name):
    bench = suite.get(name)
    original = bench.machine
    bench.machine = lambda nodes, ranks_per_node=None: degraded_machine(nodes)
    try:
        return bench.run()
    finally:
        bench.machine = original


# every interval's FOMs also land in a provenance-complete history DB
# (PR 7: repro.history) so regressions are detectable statistically,
# without a hand-built baseline
store = HistoryStore()
campaign = ContinuousBenchmarking(baseline, runner, sigma=3.0, store=store)

# -- 3. maintenance intervals -------------------------------------------------

for interval in range(5):
    if interval == 3:
        print("\n!! maintenance applies a bad NIC firmware "
              "(inter-node bandwidth -40 %)")
        state["nic_factor"] = 0.6
    report = campaign.run_interval(list(BENCHES))
    status = "healthy" if report.healthy else \
        "REGRESSIONS: " + ", ".join(
            f"{a.benchmark} x{a.slowdown:.2f}" for a in report.alerts)
    print(f"interval {interval}: {status}")

print()
print(campaign.summary())

flagged = {a.benchmark for rep in campaign.history for a in rep.alerts}
assert "JUQCS" in flagged, "the comm-bound benchmark must be caught"
assert "Arbor" not in flagged, "the compute-bound benchmark stays green"
print("\nthe campaign caught the interconnect regression via the "
      "communication-bound benchmarks only -- as designed.")

# -- 4. the history DB reaches the same verdict statistically ----------------

print(f"\nhistory DB: {len(store)} record(s), "
      f"{len(store.series_keys())} series")
detected = {verdict and verdict.status
            for verdict in campaign.verdicts().values()}
print("latest per-series detector verdicts:", sorted(filter(None, detected)))
assert "regression" in detected, \
    "the stationary-window detector must flag the degraded intervals too"
