#!/usr/bin/env python
"""An end-to-end procurement evaluation (Sec. II of the paper).

Plays both sides of the JUPITER procurement:

* the *site* measures reference time metrics on the preparation system
  and defines the workload mix, the High-Scaling cases and the rules;
* two *bidders* propose system designs (built from the parametric
  JUPITER model), choose memory variants that fit their accelerators,
  and commit runtimes;
* the evaluation validates the commitments against the rules and ranks
  the proposals by TCO value-for-money combined with the High-Scaling
  ratios.
"""

from repro.cluster.hardware import jupiter_booster_model
from repro.core import (
    HighScalingCase,
    HighScalingCommitment,
    MemoryVariant,
    ProcurementEvaluation,
    ReferenceResult,
    SystemProposal,
    WorkloadMix,
    load_suite,
    prep_partition_nodes,
)
from repro.units import fmt_seconds

suite = load_suite()

# -- the site side ----------------------------------------------------------

print("=" * 72)
print("SITE: reference executions on the simulated preparation system")
print("=" * 72)
mix = (WorkloadMix()
       .add("GROMACS", 3.0)     # classical simulation backbone
       .add("Arbor", 2.0)
       .add("nekRS", 2.0)
       .add("Quantum Espresso", 2.0)
       .add("Megatron-LM", 1.5)  # the rising AI share
       .add("JUQCS", 1.0))
references: dict[str, ReferenceResult] = {}
for entry in mix.entries:
    ref = suite.reference_run(entry.benchmark)
    references[entry.benchmark] = ref
    print(f"  {entry.benchmark:<18} weight {entry.weight:3.1f}  "
          f"{ref.nodes:>4} nodes  {fmt_seconds(ref.time_metric)}")

print(f"\nHigh-Scaling preparation partition: "
      f"{prep_partition_nodes()} nodes (50 PFLOP/s th);"
      f" power-of-two codes use {prep_partition_nodes(power_of_two=True)}")

cases = {
    "JUQCS": HighScalingCase("JUQCS",
                             variants=(MemoryVariant.SMALL,
                                       MemoryVariant.LARGE),
                             power_of_two=True),
    "Arbor": HighScalingCase("Arbor", variants=tuple(MemoryVariant)),
}
hs_refs = {}
for name, case in cases.items():
    res = suite.run(name, case.prep_nodes(),
                    variant=case.variants[-1])
    hs_refs[name] = res.fom_seconds
    print(f"  HS reference {name:<8} {res.nodes:>4} nodes  "
          f"{fmt_seconds(res.fom_seconds)}")

evaluation = ProcurementEvaluation(
    mix=mix, references=references,
    highscaling_cases=cases, highscaling_references=hs_refs)

# -- the bidder side --------------------------------------------------------

print()
print("=" * 72)
print("BIDDERS: proposals with commitments")
print("=" * 72)
candidates = []
for name, gpu_speedup, mem, capex in (
        ("vendor-evolution", 3.2, 96e9, 240e6),
        ("vendor-bold", 4.5, 64e9, 290e6)):
    system = jupiter_booster_model(gpu_speedup=gpu_speedup,
                                   mem_per_device=mem)
    proposal = SystemProposal(name=name, system=system, capex_eur=capex)
    # Base commitments: scale each reference by the proposal's speedup
    for bench, ref in references.items():
        proposal.commit(bench, nodes=max(1, ref.nodes // 2),
                        time_metric=ref.time_metric / gpu_speedup * 1.15)
    # High-Scaling commitments: pick the variant that fits the device
    hs_commitments = {}
    for bench, case in cases.items():
        variant = case.choose_variant(system)
        hs_commitments[bench] = HighScalingCommitment(
            benchmark=bench, variant=variant,
            runtime=hs_refs[bench] / gpu_speedup * 1.3)
        print(f"  {name}: {bench} commits variant {variant.value}")
    candidates.append((proposal, hs_commitments))

# -- evaluation -------------------------------------------------------------

print()
print("=" * 72)
print("EVALUATION: rule validation + combined scoring")
print("=" * 72)
for score in evaluation.select(candidates):
    status = "valid" if score.valid else "INVALID"
    print(f"\n  {score.proposal}  [{status}]")
    if score.violations:
        for violation in score.violations:
            print(f"    rule violation: {violation.benchmark}: "
                  f"{violation.rule}")
        continue
    print(f"    value-for-money       : {score.value_for_money:.1f} "
          "workloads per MEUR")
    print(f"    mean High-Scaling ratio: {score.mean_highscaling_ratio:.3f}"
          " (committed / reference; < 1 beats the prep system)")
    print(f"    combined score        : {score.combined_score():.1f}")
