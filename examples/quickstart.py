#!/usr/bin/env python
"""Quickstart: load the suite, run benchmarks, verify results.

Covers the three things a new user does first:

1. list what is in the suite (the paper's 23 benchmarks),
2. run a benchmark in *real* mode -- the actual algorithm executes and
   is verified (here: JUQCS, whose distributed state vector is checked
   bit-for-bit against the serial reference),
3. run the same benchmark in *timing* mode at paper scale -- the
   identical communication/compute structure with phantom payloads,
   priced by the machine model of JUWELS Booster.
"""

from repro.core import Category, get_info, load_suite
from repro.units import fmt_bytes, fmt_seconds

suite = load_suite()

print("=" * 70)
print("The JUPITER Benchmark Suite:", len(suite.names()), "benchmarks")
print("=" * 70)
for category in Category:
    names = [i.name for i in suite.infos(category)]
    print(f"{category.value:>14}: {', '.join(names)}")

print()
print("=" * 70)
print("1. Real (verifying) run: JUQCS on 2 simulated nodes")
print("=" * 70)
result = suite.run("JUQCS", nodes=2, real=True)
print(f"qubits simulated : {result.details['qubits']}")
print(f"verification     : {result.verification}")
assert result.verified, "exact verification must pass"

print()
print("=" * 70)
print("2. Timing run: the Base workload (n = 36 qubits, 1 TiB) on the")
print("   reference 8 nodes of the simulated JUWELS Booster")
print("=" * 70)
result = suite.run("JUQCS", nodes=8)
print(f"state vector     : {fmt_bytes(result.details['state_bytes'])}")
print(f"gates applied    : {result.details['gates']} "
      f"({result.details['nonlocal_gates']} moving half of all memory)")
print(f"FOM time metric  : {fmt_seconds(result.fom_seconds)}")
print(f"communication    : {fmt_seconds(result.details['comm_seconds'])} "
      f"of the critical path")

print()
print("=" * 70)
print("3. Reference executions for a few Base benchmarks")
print("=" * 70)
for name in ("Arbor", "GROMACS", "nekRS"):
    info = get_info(name)
    res = suite.run(name)
    print(f"{name:<10} {info.reference_nodes:>4} nodes  "
          f"FOM = {fmt_seconds(res.fom_seconds)}")

print()
print("done -- see examples/scaling_studies.py for the paper's figures")
