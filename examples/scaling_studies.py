#!/usr/bin/env python
"""Reproduce the paper's scalability studies (Figures 2 and 3).

Figure 2: strong scaling of the Base applications around their
reference node counts -- including the published Arbor anchor points
(663 s @ 4 nodes, 498 @ 8, 332 @ 12, 250 @ 16).

Figure 3: weak-scaling efficiency of the five High-Scaling benchmarks,
with JUQCS' computation/communication split showing the two drops the
paper highlights (NVLink -> InfiniBand at 2 nodes; the large-scale
congestion regime at >= 256 nodes).
"""

from repro.analysis import figure2, figure3
from repro.core import load_suite

suite = load_suite()

print("=" * 70)
print("Figure 2 -- Base applications (subset for speed)")
print("=" * 70)
fig2 = figure2(suite, apps=(
    ("Arbor", False),
    ("GROMACS", False),
    ("Amber", False),
    ("JUQCS", True),
    ("nekRS", False),
    ("PIConGPU", False),
    ("Quantum Espresso", False),
))
print(fig2.render())

arbor = fig2.curves["Arbor"]
print()
print("Arbor vs the paper's published points:")
paper = {4: 663.0, 8: 498.0, 12: 332.0, 16: 250.0}
for point in sorted(arbor.points, key=lambda p: p.nodes):
    expected = paper.get(point.nodes)
    if expected:
        err = abs(point.runtime - expected) / expected * 100
        print(f"  {point.nodes:>3} nodes: measured {point.runtime:6.0f} s, "
              f"paper {expected:6.0f} s  ({err:.1f} % off)")

print()
print("=" * 70)
print("Figure 3 -- High-Scaling weak-scaling efficiency")
print("=" * 70)
fig3 = figure3(suite, nodes=(8, 16, 32, 64, 128, 256))
print(fig3.render())

print()
print("JUQCS communication regimes (the two drops):")
comm = dict(fig3.juqcs_comm)
nodes = sorted(comm)
for a, b in zip(nodes, nodes[1:]):
    change = comm[b] / comm[a]
    marker = "  <-- drop" if change < 0.9 else ""
    print(f"  {a:>4} -> {b:>4} nodes: comm efficiency x{change:.2f}{marker}")
