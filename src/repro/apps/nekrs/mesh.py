"""Multi-element SEM mesh (1D element strip), gather-scatter, Poisson CG.

The global spectral-element operator is assembled matrix-free by
*direct stiffness summation*: element-local operator applications plus
a gather-scatter that sums duplicated face degrees of freedom -- the
communication kernel nekRS spends its halo time in.  Elements here form
a strip along x (each element the full y-z extent), which keeps the
assembly honest (true duplicated-face summation, true multiplicity
weighting) while staying compact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sem import derivative_matrix, gll_nodes_weights, tensor_apply_3d


@dataclass
class StripMesh:
    """E spectral elements of order n-1 tiling [0, 1]^3 along x."""

    n_elements: int
    n: int  # points per direction per element

    def __post_init__(self) -> None:
        if self.n_elements < 1 or self.n < 2:
            raise ValueError("need >= 1 element and >= 2 points")

    @property
    def hx(self) -> float:
        return 1.0 / self.n_elements

    def coords(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Physical (x, y, z) of every dof, shape (E, n, n, n) each."""
        xi, _ = gll_nodes_weights(self.n)
        ref = (xi + 1.0) / 2.0
        e = np.arange(self.n_elements)[:, None]
        x1d = e * self.hx + ref[None, :] * self.hx      # (E, n)
        shape = (self.n_elements, self.n, self.n, self.n)
        x = np.broadcast_to(x1d[:, :, None, None], shape).copy()
        y = np.broadcast_to(ref[None, None, :, None], shape).copy()
        z = np.broadcast_to(ref[None, None, None, :], shape).copy()
        return x, y, z

    # -- assembly ------------------------------------------------------------

    def gather_scatter(self, u: np.ndarray) -> np.ndarray:
        """Direct stiffness summation across shared element faces."""
        out = u.copy()
        for e in range(self.n_elements - 1):
            shared = out[e, -1, :, :] + out[e + 1, 0, :, :]
            out[e, -1, :, :] = shared
            out[e + 1, 0, :, :] = shared
        return out

    def multiplicity(self) -> np.ndarray:
        """How many elements own each dof (for weighted inner products)."""
        m = np.ones((self.n_elements, self.n, self.n, self.n))
        for e in range(self.n_elements - 1):
            m[e, -1, :, :] = 2.0
            m[e + 1, 0, :, :] = 2.0
        return m

    def boundary_mask(self) -> np.ndarray:
        """1 on interior dofs, 0 on the domain boundary (Dirichlet)."""
        mask = np.ones((self.n_elements, self.n, self.n, self.n))
        mask[0, 0, :, :] = 0.0
        mask[-1, -1, :, :] = 0.0
        mask[:, :, 0, :] = 0.0
        mask[:, :, -1, :] = 0.0
        mask[:, :, :, 0] = 0.0
        mask[:, :, :, -1] = 0.0
        return mask

    def stiffness(self, u: np.ndarray) -> np.ndarray:
        """Global weak Laplacian action (local op + gather-scatter)."""
        d = derivative_matrix(self.n)
        _, w = gll_nodes_weights(self.n)
        w3 = w[:, None, None] * w[None, :, None] * w[None, None, :]
        jac = (self.hx / 2.0) * (0.5) * (0.5)  # volume Jacobian
        scale = {0: (2.0 / self.hx) ** 2, 1: 4.0, 2: 4.0}
        out = np.zeros_like(u)
        for axis in range(3):
            du = tensor_apply_3d(d, u, axis)
            out += tensor_apply_3d(d.T, w3 * du, axis) * (scale[axis] * jac)
        return self.gather_scatter(out)

    def mass(self, u: np.ndarray) -> np.ndarray:
        """Global (assembled) diagonal mass action."""
        _, w = gll_nodes_weights(self.n)
        w3 = w[:, None, None] * w[None, :, None] * w[None, None, :]
        jac = (self.hx / 2.0) * 0.25
        return self.gather_scatter(u * w3 * jac)

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """Global inner product with duplicated dofs counted once."""
        return float(np.sum(a * b / self.multiplicity()))


def solve_poisson(mesh: StripMesh, f: np.ndarray, tol: float = 1e-10,
                  max_iter: int = 2000) -> tuple[np.ndarray, int]:
    """CG solve of -lap(u) = f with homogeneous Dirichlet walls.

    ``f`` is sampled at the dofs; returns (u, iterations).  The rhs is
    the assembled weak form M f; the operator is the masked global
    stiffness.  Convergence to spectral accuracy is what the tests
    assert (exponential error decay in N).
    """
    mask = mesh.boundary_mask()
    b = mesh.mass(f) * mask

    def operator(u: np.ndarray) -> np.ndarray:
        # enforce continuity of the iterate, apply, mask Dirichlet rows
        return mesh.stiffness(u) * mask

    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rr = mesh.dot(r, r)
    b_norm = np.sqrt(mesh.dot(b, b))
    if b_norm == 0:
        return x, 0
    it = 0
    for it in range(1, max_iter + 1):
        ap = operator(p)
        alpha = rr / mesh.dot(p, ap)
        x += alpha * p
        r -= alpha * ap
        rr_new = mesh.dot(r, r)
        if np.sqrt(rr_new) / b_norm < tol:
            rr = rr_new
            break
        p = r + (rr_new / rr) * p
        rr = rr_new
    return x, it
