"""nekRS: GPU spectral-element Navier-Stokes (Rayleigh-Bénard case)."""

from .benchmark import (
    BASE_ELEMENTS,
    HS_ELEMENTS,
    NekrsBenchmark,
    STRONG_SCALING_LIMIT,
    conduction_nusselt,
    nekrs_timing_program,
)
from .mesh import StripMesh, solve_poisson
from .sem import (
    derivative_matrix,
    flops_per_element,
    gll_nodes_weights,
    gradient_3d,
    mass_apply,
    stiffness_apply,
    tensor_apply_3d,
)

__all__ = [
    "BASE_ELEMENTS", "HS_ELEMENTS", "NekrsBenchmark",
    "STRONG_SCALING_LIMIT", "StripMesh", "conduction_nusselt",
    "derivative_matrix", "flops_per_element", "gll_nodes_weights",
    "gradient_3d", "mass_apply", "nekrs_timing_program", "solve_poisson",
    "stiffness_apply", "tensor_apply_3d",
]
