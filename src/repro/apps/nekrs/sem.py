"""Spectral-element machinery: GLL nodes, derivative matrices, tensor ops.

nekRS represents "the solution, data, and test functions as locally
structured N-th order tensor product polynomials on a set of E globally
unstructured curvilinear hexahedral brick elements" (Sec. IV-A2d).  The
two key properties quoted by the paper are implemented exactly:

* sum factorisation gives O(n) storage and O(nN) work, and
* "the leading order O(nN) work terms can be cast as small dense
  matrix-matrix products" -- the tensor contractions below.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=64)
def gll_nodes_weights(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Lobatto-Legendre nodes and quadrature weights on [-1, 1].

    ``n`` points integrate polynomials up to degree 2n - 3 exactly.
    Nodes are the roots of (1 - x^2) P'_{n-1}(x), found by Newton
    iteration from Chebyshev initial guesses.
    """
    if n < 2:
        raise ValueError("GLL needs at least 2 points")
    x = np.cos(np.pi * np.arange(n) / (n - 1))[::-1].copy()
    p = np.zeros((n, n))
    for _ in range(100):
        p[:, 0] = 1.0
        p[:, 1] = x
        for k in range(2, n):
            p[:, k] = ((2 * k - 1) * x * p[:, k - 1] -
                       (k - 1) * p[:, k - 2]) / k
        dx = (x * p[:, n - 1] - p[:, n - 2]) / (n * p[:, n - 1])
        x -= dx
        if np.max(np.abs(dx)) < 1e-15:
            break
    w = 2.0 / (n * (n - 1) * p[:, n - 1] ** 2)
    return x, w


@lru_cache(maxsize=64)
def derivative_matrix(n: int) -> np.ndarray:
    """Spectral differentiation matrix D on the GLL points.

    ``(D @ f)`` is the exact derivative of any polynomial of degree
    < n sampled at the nodes.
    """
    x, _ = gll_nodes_weights(n)
    # barycentric weights
    c = np.ones(n)
    for i in range(n):
        for j in range(n):
            if i != j:
                c[i] *= x[i] - x[j]
    d = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i != j:
                d[i, j] = c[i] / (c[j] * (x[i] - x[j]))
        d[i, i] = -np.sum(d[i, np.arange(n) != i])
    return d


def tensor_apply_3d(d: np.ndarray, u: np.ndarray,
                    axis: int) -> np.ndarray:
    """Apply a 1D operator along one axis of element data.

    ``u`` has shape (..., n, n, n) with the element axes last; the
    contraction is the small dense matmul the paper highlights.
    """
    if axis == 0:
        return np.einsum("ai,...ijk->...ajk", d, u)
    if axis == 1:
        return np.einsum("bj,...ijk->...ibk", d, u)
    if axis == 2:
        return np.einsum("ck,...ijk->...ijc", d, u)
    raise ValueError("axis must be 0, 1 or 2")


def gradient_3d(u: np.ndarray, n: int,
                jac: float = 1.0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Physical gradient of element data (affine elements, scale jac)."""
    d = derivative_matrix(n)
    return (tensor_apply_3d(d, u, 0) * jac,
            tensor_apply_3d(d, u, 1) * jac,
            tensor_apply_3d(d, u, 2) * jac)


def stiffness_apply(u: np.ndarray, n: int, jac: float = 1.0) -> np.ndarray:
    """Local weak Laplacian: A u = D^T W D u summed over directions.

    For affine elements with uniform Jacobian this is the exact
    spectral-element stiffness action; the global operator follows by
    gather-scatter (direct stiffness summation).
    """
    d = derivative_matrix(n)
    _, w = gll_nodes_weights(n)
    w3 = w[:, None, None] * w[None, :, None] * w[None, None, :]
    out = np.zeros_like(u)
    for axis in range(3):
        du = tensor_apply_3d(d, u, axis) * jac
        out += tensor_apply_3d(d.T, w3 * du, axis) * jac
    return out


def mass_apply(u: np.ndarray, n: int, jac3: float = 1.0) -> np.ndarray:
    """Local mass-matrix action (diagonal for GLL collocation)."""
    _, w = gll_nodes_weights(n)
    w3 = w[:, None, None] * w[None, :, None] * w[None, None, :]
    return u * w3 * jac3


def flops_per_element(n: int) -> float:
    """Arithmetic of one stiffness application on an N^3 element:
    six tensor contractions of 2 n^4 each plus pointwise work."""
    return 12.0 * n ** 4 + 6.0 * n ** 3
