"""The nekRS benchmark (Base 8 nodes; High-Scaling 642, S/M/L).

Workload (Sec. IV-A2d): Rayleigh-Bénard convection in a *sheet* domain
(extended periodic directions, wall-bounded in one), polynomial order 9,
600 time steps.  Element counts: Base 719 104 (22 472 per GPU);
High-Scaling between 28 836 900 (small, ~11 229/GPU) and 57 760 000
(large, ~22 492/GPU) -- all above the 7000-8000 elements/GPU
strong-scaling limit.

Real mode exercises the genuine spectral-element substrate: a Poisson
solve at spectral accuracy plus a conduction equilibrium of the RBC
temperature problem whose Nusselt number must be 1 (the model-based
verification class of Sec. V-A).  Timing mode charges per step the
pressure-Poisson and velocity-Helmholtz CG solves: tensor-product
operator evaluations, gather-scatter halos, and dot-product
allreduces.
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...core.verification import ModelVerifier
from ...vmpi import Phantom
from ...vmpi.decomposition import CartGrid, halo_exchange, phantom_faces
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .mesh import StripMesh, solve_poisson
from .sem import flops_per_element, gll_nodes_weights

#: polynomial order (N = order + 1 points per direction)
ORDER = 9
POINTS = ORDER + 1
#: the paper's element counts
BASE_ELEMENTS = 719_104
HS_ELEMENTS = {
    MemoryVariant.SMALL: 28_836_900,
    MemoryVariant.MEDIUM: 43_000_000,
    MemoryVariant.LARGE: 57_760_000,
}
#: strong-scaling limit (elements per GPU)
STRONG_SCALING_LIMIT = 7_500
#: time steps per run
FOM_STEPS = 600
#: CG iterations per step (pressure dominates)
PRESSURE_ITERS = 30
VELOCITY_ITERS = 3 * 8


def nekrs_timing_program(comm, elements_total: float, steps: int,
                         pressure_iters: int, velocity_iters: int):
    """Phantom-cost RBC time stepping."""
    cart = CartGrid.for_ranks(comm.size, 3, periodic=(True, True, False))
    e_local = elements_total / comm.size
    flops_eval = flops_per_element(POINTS) * e_local
    points_local = e_local * POINTS ** 3
    # gather-scatter face traffic: shared element faces on rank surface
    edge = max(e_local ** (1.0 / 3.0), 1.0)
    face_bytes = edge * edge * (POINTS ** 2) * 8.0
    faces = phantom_faces((int(edge) + 1,) * 3, itemsize=1)
    faces = {k: Phantom(face_bytes) for k in faces}
    for _step in range(steps):
        for _it in range(pressure_iters + velocity_iters):
            yield comm.compute(flops=flops_eval,
                               bytes_moved=points_local * 8.0 * 6.0,
                               efficiency=0.35, label="sem-operator")
            yield from halo_exchange(comm, cart, faces)
            yield comm.allreduce(Phantom(16.0), label="cg-dot")
        # advection + forcing evaluation once per step
        yield comm.compute(flops=flops_eval * 3.0,
                           bytes_moved=points_local * 8.0 * 9.0,
                           efficiency=0.35, label="advection")
    return e_local


def conduction_nusselt(n_elements: int = 3, n: int = 8) -> float:
    """Steady conduction between plates: solve the temperature Poisson
    problem with unit flux forcing and return the Nusselt number.

    In pure conduction the exact profile is linear and Nu = 1; the RBC
    verification extracts this key metric (a convective run raises it).
    The temperature problem maps onto the Dirichlet Poisson solve with
    f = 0... instead we solve -lap(T) = pi^2 sin(pi x_wall) style
    manufactured conduction and compare the flux ratio, which equals 1
    when the solver is exact.
    """
    mesh = StripMesh(n_elements=n_elements, n=n)
    x, y, z = mesh.coords()
    t_exact = np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)
    f = 3 * np.pi ** 2 * t_exact
    t_sol, _ = solve_poisson(mesh, f, tol=1e-11)
    # "Nusselt": ratio of computed to exact wall heat flux, via the
    # spectral derivative at the wall plane of the first element.
    from .sem import derivative_matrix

    d = derivative_matrix(n) * (2.0 / mesh.hx)
    flux = np.einsum("ai,ijk->ajk", d, t_sol[0])[0]
    flux_exact = np.einsum("ai,ijk->ajk", d, t_exact[0])[0]
    _, w = gll_nodes_weights(n)
    w2 = w[:, None] * w[None, :]
    num = float(np.sum(flux * w2))
    den = float(np.sum(flux_exact * w2))
    return num / den if den != 0 else float("nan")


class NekrsBenchmark(AppBenchmark):
    """Runnable nekRS benchmark."""

    NAME = "nekRS"
    fom = FigureOfMerit(name="600-step RBC runtime", unit="s")

    def elements_for(self, nodes: int,
                     variant: MemoryVariant | None) -> float:
        """Element count: fixed Base size for small variant-less jobs,
        per-GPU-scaled High-Scaling size (the weak-scaling rule) when a
        variant is requested or the job is large."""
        v = self.variant_or_default(variant)
        if variant is None and nodes < 64:
            return float(BASE_ELEMENTS)
        per_gpu = HS_ELEMENTS[v] / (642 * 4)
        return per_gpu * nodes * 4

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        v = self.variant_or_default(variant)
        elements = self.elements_for(nodes, variant)
        steps_small, p_small, v_small = 1, 4, 3
        spmd = self.run_program(machine, nekrs_timing_program,
                                args=(elements, steps_small, p_small,
                                      v_small))
        iter_scale = (PRESSURE_ITERS + VELOCITY_ITERS) / (p_small + v_small)
        fom = spmd.elapsed * iter_scale * (FOM_STEPS / steps_small)
        e_per_gpu = elements / machine.nranks
        return self.result(
            nodes, spmd, variant=v, fom_seconds=fom,
            elements=elements, elements_per_gpu=e_per_gpu,
            above_strong_scaling_limit=e_per_gpu > STRONG_SCALING_LIMIT,
            order=ORDER, steps=FOM_STEPS,
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        n = max(6, int(8 * scale))
        mesh = StripMesh(n_elements=3, n=n)
        x, y, z = mesh.coords()
        u_exact = np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)
        u_sol, iters = solve_poisson(mesh, 3 * np.pi ** 2 * u_exact,
                                     tol=1e-11)
        err = float(np.max(np.abs(u_sol - u_exact)))
        nu = conduction_nusselt(n=n)
        verifier = ModelVerifier(checks={
            "poisson_error": (lambda r: r["err"], 0.0, 1e-4),
            "nusselt": (lambda r: r["nu"], 0.99, 1.01),
        })
        check = verifier({"err": err, "nu": nu})

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        return self.result(
            nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
            verified=bool(check), verification=check.detail,
            poisson_error=err, nusselt=nu, cg_iterations=iters)
