"""Neural-network layers with explicit forward/backward (NumPy).

The substrate of the three AI benchmarks (Megatron-LM, MMoCLIP,
ResNet).  Every layer implements ``forward`` (caching what backward
needs) and ``backward`` (returning the input gradient and accumulating
parameter gradients); all backwards are validated against numerical
differentiation in the test suite.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class Layer:
    """Base layer: parameter iteration + train/eval plumbing."""

    def parameters(self) -> list[Parameter]:
        """All trainable parameters (subclasses extend)."""
        out: list[Parameter] = []
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                out.append(attr)
            elif isinstance(attr, Layer):
                out.extend(attr.parameters())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Layer):
                        out.extend(item.parameters())
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.value.size for p in self.parameters())

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Linear(Layer):
    """y = x @ W + b for inputs of shape (..., in_dim)."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator, bias: bool = True):
        scale = 1.0 / math.sqrt(in_dim)
        self.w = Parameter(rng.normal(scale=scale, size=(in_dim, out_dim)))
        self.b = Parameter(np.zeros(out_dim)) if bias else None
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.w] + ([self.b] if self.b is not None else [])

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        y = x @ self.w.value
        if self.b is not None:
            y = y + self.b.value
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x = self._x
        flat_x = x.reshape(-1, x.shape[-1])
        flat_dy = dy.reshape(-1, dy.shape[-1])
        self.w.grad += flat_x.T @ flat_dy
        if self.b is not None:
            self.b.grad += flat_dy.sum(axis=0)
        return dy @ self.w.value.T


class Gelu(Layer):
    """GELU activation (tanh approximation, as in GPT-style MLPs)."""

    _C = math.sqrt(2.0 / math.pi)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        inner = self._C * (x + 0.044715 * x ** 3)
        self._tanh = np.tanh(inner)
        return 0.5 * x * (1.0 + self._tanh)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x, t = self._x, self._tanh
        dinner = self._C * (1.0 + 3 * 0.044715 * x ** 2)
        return dy * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t ** 2) * dinner)


class Relu(Layer):
    """Rectified linear unit."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * self._mask


class LayerNorm(Layer):
    """Layer normalisation over the trailing dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self.eps = eps

    def forward(self, x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        self._inv = 1.0 / np.sqrt(var + self.eps)
        self._xhat = (x - mu) * self._inv
        return self.gamma.value * self._xhat + self.beta.value

    def backward(self, dy: np.ndarray) -> np.ndarray:
        xhat, inv = self._xhat, self._inv
        d = xhat.shape[-1]
        self.gamma.grad += (dy * xhat).reshape(-1, d).sum(axis=0)
        self.beta.grad += dy.reshape(-1, d).sum(axis=0)
        dxhat = dy * self.gamma.value
        return inv * (dxhat - dxhat.mean(axis=-1, keepdims=True) -
                      xhat * (dxhat * xhat).mean(axis=-1, keepdims=True))


class Embedding(Layer):
    """Token embedding lookup: int ids (..., ) -> vectors (..., dim)."""

    def __init__(self, vocab: int, dim: int, rng: np.random.Generator):
        self.table = Parameter(rng.normal(scale=0.02, size=(vocab, dim)))

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = ids
        return self.table.value[ids]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        np.add.at(self.table.grad, self._ids, dy)
        return np.zeros_like(self._ids, dtype=float)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


class SelfAttention(Layer):
    """Multi-head self-attention, optionally causal (GPT-style)."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator,
                 causal: bool = False):
        if dim % heads != 0:
            raise ValueError("dim must be divisible by heads")
        self.dim = dim
        self.heads = heads
        self.causal = causal
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, t, d = x.shape
        h = self.heads
        hd = d // h
        qkv = self.qkv(x).reshape(b, t, 3, h, hd)
        q = qkv[:, :, 0].transpose(0, 2, 1, 3)   # (b, h, t, hd)
        k = qkv[:, :, 1].transpose(0, 2, 1, 3)
        v = qkv[:, :, 2].transpose(0, 2, 1, 3)
        scores = q @ k.transpose(0, 1, 3, 2) / math.sqrt(hd)
        if self.causal:
            mask = np.triu(np.ones((t, t), dtype=bool), k=1)
            scores = np.where(mask, -1e30, scores)
        attn = softmax(scores)
        out = attn @ v                           # (b, h, t, hd)
        self._cache = (q, k, v, attn)
        merged = out.transpose(0, 2, 1, 3).reshape(b, t, d)
        return self.proj(merged)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        b, t, d = dy.shape
        h = self.heads
        hd = d // h
        q, k, v, attn = self._cache
        dmerged = self.proj.backward(dy)
        dout = dmerged.reshape(b, t, h, hd).transpose(0, 2, 1, 3)
        dattn = dout @ v.transpose(0, 1, 3, 2)
        dv = attn.transpose(0, 1, 3, 2) @ dout
        # softmax backward
        ds = attn * (dattn - np.sum(dattn * attn, axis=-1, keepdims=True))
        ds = ds / math.sqrt(hd)
        dq = ds @ k
        dk = ds.transpose(0, 1, 3, 2) @ q
        dqkv = np.zeros((b, t, 3, h, hd))
        dqkv[:, :, 0] = dq.transpose(0, 2, 1, 3)
        dqkv[:, :, 1] = dk.transpose(0, 2, 1, 3)
        dqkv[:, :, 2] = dv.transpose(0, 2, 1, 3)
        return self.qkv.backward(dqkv.reshape(b, t, 3 * d))


class Sequential(Layer):
    """Layers applied in order."""

    def __init__(self, layers: Iterable[Layer]):
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy


class Conv2d(Layer):
    """2D convolution via im2col (NCHW, stride 1, 'same' padding)."""

    def __init__(self, in_ch: int, out_ch: int, k: int,
                 rng: np.random.Generator):
        if k % 2 != 1:
            raise ValueError("kernel size must be odd for same padding")
        scale = 1.0 / math.sqrt(in_ch * k * k)
        self.w = Parameter(rng.normal(scale=scale,
                                      size=(out_ch, in_ch, k, k)))
        self.b = Parameter(np.zeros(out_ch))
        self.k = k

    def parameters(self) -> list[Parameter]:
        return [self.w, self.b]

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        n, c, hh, ww = x.shape
        k = self.k
        pad = k // 2
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        cols = np.empty((n, c, k, k, hh, ww))
        for i in range(k):
            for j in range(k):
                cols[:, :, i, j] = xp[:, :, i:i + hh, j:j + ww]
        return cols.reshape(n, c * k * k, hh * ww)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, hh, ww = x.shape
        self._xshape = x.shape
        self._cols = self._im2col(x)                     # (n, ckk, hw)
        wmat = self.w.value.reshape(self.w.shape[0], -1)  # (o, ckk)
        out = np.einsum("ok,nkp->nop", wmat, self._cols)
        out += self.b.value[None, :, None]
        return out.reshape(n, -1, hh, ww)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        n, c, hh, ww = self._xshape
        o = self.w.shape[0]
        k = self.k
        dy_mat = dy.reshape(n, o, hh * ww)
        wmat = self.w.value.reshape(o, -1)
        self.w.grad += np.einsum("nop,nkp->ok", dy_mat,
                                 self._cols).reshape(self.w.shape)
        self.b.grad += dy_mat.sum(axis=(0, 2))
        dcols = np.einsum("ok,nop->nkp", wmat, dy_mat)
        dcols = dcols.reshape(n, c, k, k, hh, ww)
        pad = k // 2
        dxp = np.zeros((n, c, hh + 2 * pad, ww + 2 * pad))
        for i in range(k):
            for j in range(k):
                dxp[:, :, i:i + hh, j:j + ww] += dcols[:, :, i, j]
        return dxp[:, :, pad:pad + hh, pad:pad + ww]


class GlobalAvgPool(Layer):
    """NCHW -> NC global average pooling."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        n, c, h, w = self._shape
        return np.broadcast_to(dy[:, :, None, None] / (h * w),
                               self._shape).copy()


def cross_entropy(logits: np.ndarray,
                  targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its logits gradient.

    ``logits`` (..., classes); ``targets`` int class ids (...,).
    """
    probs = softmax(logits)
    flat_p = probs.reshape(-1, probs.shape[-1])
    flat_t = targets.reshape(-1)
    n = flat_t.shape[0]
    loss = -float(np.mean(np.log(flat_p[np.arange(n), flat_t] + 1e-30)))
    grad = flat_p.copy()
    grad[np.arange(n), flat_t] -= 1.0
    return loss, (grad / n).reshape(logits.shape)
