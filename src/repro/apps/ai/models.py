"""Small trainable models: GPT block stack, CLIP towers, ResNet.

These are the *real-mode* models of the three AI benchmarks: tiny
enough to train in a test, structurally identical to the production
architectures (pre-norm transformer blocks, two-tower contrastive
setup, residual conv blocks).
"""

from __future__ import annotations

import math

import numpy as np

from .layers import (
    Conv2d,
    Embedding,
    Gelu,
    GlobalAvgPool,
    Layer,
    LayerNorm,
    Linear,
    Relu,
    SelfAttention,
    Sequential,
    cross_entropy,
    softmax,
)


class TransformerBlock(Layer):
    """Pre-norm transformer block: LN->attention->+, LN->MLP->+."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator,
                 causal: bool = False, mlp_ratio: int = 4):
        self.ln1 = LayerNorm(dim)
        self.attn = SelfAttention(dim, heads, rng, causal=causal)
        self.ln2 = LayerNorm(dim)
        self.mlp = Sequential([Linear(dim, mlp_ratio * dim, rng), Gelu(),
                               Linear(mlp_ratio * dim, dim, rng)])

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attn(self.ln1(x))
        return x + self.mlp(self.ln2(x))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        d_mlp = self.ln2.backward(self.mlp.backward(dy))
        dy = dy + d_mlp
        d_attn = self.ln1.backward(self.attn.backward(dy))
        return dy + d_attn


class TinyGpt(Layer):
    """A GPT: token + position embeddings, causal blocks, LM head."""

    def __init__(self, vocab: int, dim: int, heads: int, layers: int,
                 seq: int, rng: np.random.Generator):
        self.embed = Embedding(vocab, dim, rng)
        self.pos = Embedding(seq, dim, rng)
        self.blocks = [TransformerBlock(dim, heads, rng, causal=True)
                       for _ in range(layers)]
        self.ln_f = LayerNorm(dim)
        self.head = Linear(dim, vocab, rng, bias=False)
        self.seq = seq

    def forward(self, ids: np.ndarray) -> np.ndarray:
        b, t = ids.shape
        pos_ids = np.broadcast_to(np.arange(t), (b, t))
        x = self.embed(ids) + self.pos(pos_ids)
        for blk in self.blocks:
            x = blk(x)
        return self.head(self.ln_f(x))

    def backward(self, dlogits: np.ndarray) -> np.ndarray:
        dx = self.ln_f.backward(self.head.backward(dlogits))
        for blk in reversed(self.blocks):
            dx = blk.backward(dx)
        self.embed.backward(dx)
        self.pos.backward(dx)
        return dx

    def train_step(self, ids: np.ndarray, targets: np.ndarray,
                   optimizer) -> float:
        """One LM training step; returns the loss."""
        self.zero_grad()
        logits = self.forward(ids)
        loss, dlogits = cross_entropy(logits, targets)
        self.backward(dlogits)
        optimizer.step()
        return loss


class ClipTower(Layer):
    """One CLIP tower: input projection, transformer blocks, pooled and
    L2-normalised embedding."""

    def __init__(self, in_dim: int, dim: int, heads: int, layers: int,
                 embed_dim: int, rng: np.random.Generator):
        self.proj_in = Linear(in_dim, dim, rng)
        self.blocks = [TransformerBlock(dim, heads, rng)
                       for _ in range(layers)]
        self.ln = LayerNorm(dim)
        self.proj_out = Linear(dim, embed_dim, rng, bias=False)

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.proj_in(x)
        for blk in self.blocks:
            h = blk(h)
        h = self.ln(h)
        self._tokens = h.shape[1]
        pooled = h.mean(axis=1)
        z = self.proj_out(pooled)
        self._z_raw = z
        norm = np.linalg.norm(z, axis=-1, keepdims=True) + 1e-12
        self._norm = norm
        return z / norm

    def backward(self, dz_hat: np.ndarray) -> np.ndarray:
        z, norm = self._z_raw, self._norm
        zhat = z / norm
        dz = (dz_hat - zhat * np.sum(dz_hat * zhat, axis=-1,
                                     keepdims=True)) / norm
        dpooled = self.proj_out.backward(dz)
        dh = np.broadcast_to(dpooled[:, None, :] / self._tokens,
                             (dpooled.shape[0], self._tokens,
                              dpooled.shape[1])).copy()
        dh = self.ln.backward(dh)
        for blk in reversed(self.blocks):
            dh = blk.backward(dh)
        return self.proj_in.backward(dh)


def clip_contrastive_loss(z_img: np.ndarray, z_txt: np.ndarray,
                          temperature: float = 0.07
                          ) -> tuple[float, np.ndarray, np.ndarray]:
    """Symmetric InfoNCE loss over the in-batch similarity matrix.

    Returns (loss, d z_img, d z_txt).  Random embeddings give
    loss ~ ln(batch); training must push it below that baseline.
    """
    n = z_img.shape[0]
    logits = z_img @ z_txt.T / temperature
    targets = np.arange(n)
    loss_i, dlog_i = cross_entropy(logits, targets)
    loss_t, dlog_t = cross_entropy(logits.T, targets)
    loss = 0.5 * (loss_i + loss_t)
    dlogits = 0.5 * (dlog_i + dlog_t.T) / temperature
    return loss, dlogits @ z_txt, dlogits.T @ z_img


class ResidualConvBlock(Layer):
    """Conv-ReLU-Conv with identity skip (the ResNet cell)."""

    def __init__(self, channels: int, rng: np.random.Generator):
        self.conv1 = Conv2d(channels, channels, 3, rng)
        self.relu1 = Relu()
        self.conv2 = Conv2d(channels, channels, 3, rng)
        self.relu2 = Relu()

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.conv2(self.relu1(self.conv1(x)))
        return self.relu2(x + h)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dy = self.relu2.backward(dy)
        dh = self.conv1.backward(self.relu1.backward(self.conv2.backward(dy)))
        return dy + dh


class TinyResNet(Layer):
    """Stem conv, residual blocks, global pool, classifier."""

    def __init__(self, in_ch: int, channels: int, blocks: int,
                 classes: int, rng: np.random.Generator):
        self.stem = Conv2d(in_ch, channels, 3, rng)
        self.relu = Relu()
        self.blocks = [ResidualConvBlock(channels, rng)
                       for _ in range(blocks)]
        self.pool = GlobalAvgPool()
        self.fc = Linear(channels, classes, rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.relu(self.stem(x))
        for blk in self.blocks:
            h = blk(h)
        return self.fc(self.pool(h))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dh = self.pool.backward(self.fc.backward(dy))
        for blk in reversed(self.blocks):
            dh = blk.backward(dh)
        return self.stem.backward(self.relu.backward(dh))

    def train_step(self, images: np.ndarray, labels: np.ndarray,
                   optimizer) -> float:
        """One classification training step; returns the loss."""
        self.zero_grad()
        logits = self.forward(images)
        loss, dlogits = cross_entropy(logits, labels)
        self.backward(dlogits)
        optimizer.step()
        return loss


def synthetic_tokens(batch: int, seq: int, vocab: int,
                     rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A learnable synthetic LM task: next token = (token + 1) % vocab
    with occasional noise, so the loss floor is well below ln(vocab)."""
    start = rng.integers(vocab, size=(batch, 1))
    ramp = (start + np.arange(seq + 1)) % vocab
    noise = rng.random((batch, seq + 1)) < 0.02
    ramp = np.where(noise, rng.integers(vocab, size=(batch, seq + 1)), ramp)
    return ramp[:, :-1], ramp[:, 1:]


def synthetic_pairs(batch: int, tokens: int, in_dim: int,
                    rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Paired 'image'/'text' features sharing a latent (CLIP-learnable)."""
    latent = rng.normal(size=(batch, in_dim))
    img = latent[:, None, :] + 0.1 * rng.normal(size=(batch, tokens, in_dim))
    txt = latent[:, None, :] + 0.1 * rng.normal(size=(batch, tokens, in_dim))
    return img, txt


def synthetic_images(batch: int, channels: int, size: int, classes: int,
                     rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Class-dependent blob images (ResNet-learnable)."""
    labels = rng.integers(classes, size=batch)
    images = 0.3 * rng.normal(size=(batch, channels, size, size))
    xx, yy = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    for i, lab in enumerate(labels):
        cx = (lab + 1) * size / (classes + 1)
        blob = np.exp(-((xx - cx) ** 2 + (yy - size / 2) ** 2) / 4.0)
        images[i, lab % channels] += 3.0 * blob
    return images, labels
