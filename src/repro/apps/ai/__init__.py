"""AI benchmarks substrate: NumPy NN layers with explicit backward,
optimisers, parallel training schemes, and the three benchmarks
(Megatron-LM, MMoCLIP, ResNet)."""

from .benchmarks import (
    BF16_FACTOR,
    CLIP_SAMPLES,
    FOM_TOKENS,
    GPT_PARAMS,
    MegatronBenchmark,
    MmoclipBenchmark,
    RESNET_IMAGES,
    ResnetBenchmark,
    megatron_timing_program,
    mmoclip_timing_program,
    resnet_timing_program,
)
from .layers import (
    Conv2d,
    Embedding,
    Gelu,
    GlobalAvgPool,
    Layer,
    LayerNorm,
    Linear,
    Parameter,
    Relu,
    SelfAttention,
    Sequential,
    cross_entropy,
    softmax,
)
from .models import (
    ClipTower,
    ResidualConvBlock,
    TinyGpt,
    TinyResNet,
    TransformerBlock,
    clip_contrastive_loss,
    synthetic_images,
    synthetic_pairs,
    synthetic_tokens,
)
from .optim import Adam, Sgd
from .parallelism import (
    ColumnParallelLinear,
    allreduce_gradients,
    pipeline_train_step,
)

__all__ = [
    "Adam", "BF16_FACTOR", "CLIP_SAMPLES", "ClipTower",
    "ColumnParallelLinear", "Conv2d", "Embedding", "FOM_TOKENS", "GPT_PARAMS",
    "Gelu", "GlobalAvgPool", "Layer", "LayerNorm", "Linear",
    "MegatronBenchmark", "MmoclipBenchmark", "Parameter", "RESNET_IMAGES",
    "Relu", "ResidualConvBlock", "ResnetBenchmark", "SelfAttention",
    "Sequential", "Sgd", "TinyGpt", "TinyResNet", "TransformerBlock",
    "allreduce_gradients", "clip_contrastive_loss", "cross_entropy",
    "megatron_timing_program", "mmoclip_timing_program",
    "pipeline_train_step", "resnet_timing_program", "softmax",
    "synthetic_images", "synthetic_pairs", "synthetic_tokens",
]
