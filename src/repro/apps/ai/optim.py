"""Optimisers for the AI benchmarks."""

from __future__ import annotations

import numpy as np

from .layers import Parameter


class Sgd:
    """SGD with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.1,
                 momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (the optimiser all three AI benchmarks train with)."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        self.t += 1
        b1t = 1.0 - self.b1 ** self.t
        b2t = 1.0 - self.b2 ** self.t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.b1
            m += (1 - self.b1) * p.grad
            v *= self.b2
            v += (1 - self.b2) * p.grad ** 2
            p.value -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
