"""Distributed training schemes over virtual MPI.

The parallelisation techniques Megatron-LM layers on PyTorch
(Sec. IV-A1c): *data parallelism* (replicate the model, shard the
batch, allreduce gradients), *tensor parallelism* (shard each weight
matrix across ranks -- column-parallel forward needs an allgather,
row-parallel needs an allreduce), and *pipeline parallelism* (shard the
layer stack, ship activations forward and gradients backward).  Each
scheme moves real data through the engine and is verified equivalent to
its serial counterpart in the tests.
"""

from __future__ import annotations

import numpy as np

from ...vmpi import Comm
from .layers import Layer, Parameter


def allreduce_gradients(comm: Comm, params: list[Parameter]):
    """Data parallelism: average parameter gradients across ranks
    (generator).  After this, identical optimiser steps keep replicas
    bit-identical -- equivalent to one step on the concatenated batch
    when the loss is a mean over samples."""
    flat = np.concatenate([p.grad.ravel() for p in params]) \
        if params else np.zeros(0)
    total = yield comm.allreduce(flat, label="grad-allreduce")
    total = total / comm.size
    offset = 0
    for p in params:
        n = p.grad.size
        p.grad[...] = total[offset:offset + n].reshape(p.grad.shape)
        offset += n


class ColumnParallelLinear:
    """A linear layer with its output dimension sharded across ranks.

    Each rank holds W[:, shard]; forward computes its output shard and
    allgathers the full activation; backward reduces input gradients.
    The test suite checks exact equivalence with the serial layer whose
    weight is the column-concatenation of the shards.
    """

    def __init__(self, comm: Comm, in_dim: int, out_dim: int,
                 rng: np.random.Generator):
        if out_dim % comm.size != 0:
            raise ValueError("out_dim must divide by the TP group size")
        self.comm = comm
        self.shard = out_dim // comm.size
        scale = 1.0 / np.sqrt(in_dim)
        # every rank draws the full matrix from the shared seed and keeps
        # its shard: the serial reference is reproducible
        full = rng.normal(scale=scale, size=(in_dim, out_dim))
        lo = comm.rank * self.shard
        self.w = Parameter(full[:, lo:lo + self.shard].copy())
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray):
        """Generator: returns the full (allgathered) output."""
        self._x = x
        local = x @ self.w.value
        pieces = yield self.comm.allgather(local, label="tp-allgather")
        return np.concatenate(pieces, axis=-1)

    def backward(self, dy_full: np.ndarray):
        """Generator: returns dx (already reduced across the group)."""
        lo = self.comm.rank * self.shard
        dy = dy_full[..., lo:lo + self.shard]
        flat_x = self._x.reshape(-1, self._x.shape[-1])
        self.w.grad += flat_x.T @ dy.reshape(-1, self.shard)
        dx_partial = dy @ self.w.value.T
        dx = yield self.comm.allreduce(dx_partial, label="tp-allreduce")
        return dx


def pipeline_train_step(comm: Comm, stage: Layer, x0: np.ndarray | None,
                        loss_grad_fn, tag: int = 40):
    """One pipeline-parallel forward+backward over ``comm`` (generator).

    Rank r holds stage r of the network.  Rank 0 feeds ``x0``; the last
    rank computes the loss gradient via ``loss_grad_fn(activations)``
    which must return (loss, dy).  Returns the loss on the last rank
    (None elsewhere).  Parameter gradients are left on each stage.
    """
    # forward
    if comm.rank == 0:
        x = x0
    else:
        x = yield comm.recv(comm.rank - 1, tag=tag)
    y = stage.forward(x)
    if comm.rank < comm.size - 1:
        yield comm.send(comm.rank + 1, y, tag=tag)
        dy = yield comm.recv(comm.rank + 1, tag=tag + 1)
        loss = None
    else:
        loss, dy = loss_grad_fn(y)
    dx = stage.backward(dy)
    if comm.rank > 0:
        yield comm.send(comm.rank - 1, dx, tag=tag + 1)
    return loss
