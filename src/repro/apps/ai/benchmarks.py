"""The three AI benchmarks: Megatron-LM, MMoCLIP, ResNet.

Timing notes: the machine model's ``peak_flops`` is the FP64
tensor-core rate (19.5 TF on A100); mixed-precision training runs on
the BF16 tensor pipeline at 16x that rate, so AI compute is charged as
``flops / BF16_FACTOR`` with the attainable-fraction efficiency applied
on top (A100 Megatron sustains ~150 TF/s BF16 = 0.48 of 312).

Verification is framework-inherent (Sec. V-A, "arguably the weakest
form"): the training loss on a fixed synthetic dataset must decrease --
exactly what the paper says Megatron-LM-class benchmarks rely on.
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit, FomKind
from ...core.variants import MemoryVariant
from ...core.verification import FrameworkVerifier
from ...vmpi import Phantom
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .models import (
    ClipTower,
    TinyGpt,
    TinyResNet,
    clip_contrastive_loss,
    synthetic_images,
    synthetic_pairs,
    synthetic_tokens,
)
from .optim import Adam

#: BF16 tensor throughput relative to the FP64 tensor peak on A100
BF16_FACTOR = 16.0
#: attainable fraction of the BF16 peak for large GEMMs
GEMM_EFFICIENCY = 0.48


def _train_verifier(losses: list[float]) -> tuple[bool, str]:
    check = FrameworkVerifier(decreasing_series="loss")(
        {"loss": np.asarray(losses)})
    return bool(check), (f"{check.detail}; loss {losses[0]:.3f} -> "
                         f"{losses[-1]:.3f}")


# ---------------------------------------------------------------------------
# Megatron-LM
# ---------------------------------------------------------------------------

#: GPT-175B profile (Sec. IV-A1c: "trains a 175 billion parameter model")
GPT_PARAMS = 175e9
GPT_LAYERS = 96
GPT_HIDDEN = 12288
GPT_SEQ = 2048
#: the FOM: time to train 20 million tokens at the measured rate
FOM_TOKENS = 20e6
#: global batch in tokens per optimiser step
TOKENS_PER_STEP = 2048 * GPT_SEQ
TP_SIZE = 4  # tensor parallelism within a node (NVLink)


def megatron_timing_program(comm, steps: int):
    """3D-parallel GPT training steps (phantom costs).

    TP group = the node's 4 GPUs; PP stages split the layer stack over
    nodes (up to 12); DP replicates the rest.  Per step: the GEMM work
    of 6 * params * tokens FLOPs spread over all ranks, TP allreduces
    per layer, PP boundary sendrecvs, and the DP gradient allreduce.
    """
    tp = yield comm.split(comm.rank // TP_SIZE)           # node-local
    nodes = comm.size // TP_SIZE
    pp_stages = min(12, max(1, nodes))
    node_id = comm.rank // TP_SIZE
    pp = yield comm.split(node_id % max(1, nodes // pp_stages),
                          key=node_id)
    dp = yield comm.split((comm.rank % TP_SIZE) * pp_stages +
                          (node_id // max(1, nodes // pp_stages)) % pp_stages)
    flops_per_rank = 6.0 * GPT_PARAMS * TOKENS_PER_STEP / comm.size
    layers_per_stage = GPT_LAYERS / pp_stages
    micro_tokens = TOKENS_PER_STEP / max(1, dp.size) / 8.0  # 8 microbatches
    act_bytes = micro_tokens * GPT_HIDDEN * 2.0
    for _step in range(steps):
        # GEMMs (forward + backward + recompute)
        yield comm.compute(flops=flops_per_rank / BF16_FACTOR,
                           bytes_moved=flops_per_rank / 300.0,
                           efficiency=GEMM_EFFICIENCY, label="gemm")
        # tensor-parallel allreduces: ~4 per layer per microbatch,
        # aggregated here into one op per microbatch over the stage
        for _micro in range(8):
            yield tp.allreduce(
                Phantom(4.0 * layers_per_stage * act_bytes / 8.0),
                label="tp-allreduce")
            if pp.size > 1:
                nxt = (pp.rank + 1) % pp.size
                prv = (pp.rank - 1) % pp.size
                yield pp.sendrecv(nxt, Phantom(act_bytes), prv, tag=7)
        # data-parallel gradient allreduce (sharded parameters)
        yield dp.allreduce(
            Phantom(2.0 * GPT_PARAMS / (TP_SIZE * pp_stages)),
            label="dp-allreduce")
    return pp_stages


class MegatronBenchmark(AppBenchmark):
    """Runnable Megatron-LM benchmark."""

    NAME = "Megatron-LM"
    fom = FigureOfMerit(name="time to train 20M tokens",
                        kind=FomKind.RATE, work=FOM_TOKENS)

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        steps_small = 2
        spmd = self.run_program(machine, megatron_timing_program,
                                args=(steps_small,))
        seconds_per_step = spmd.elapsed / steps_small
        tokens_per_second = TOKENS_PER_STEP / seconds_per_step
        fom = self.fom.time_metric(tokens_per_second)
        return self.result(
            nodes, spmd, fom_seconds=fom,
            parameters=GPT_PARAMS,
            tokens_per_second=tokens_per_second,
            pipeline_stages=spmd.values[0],
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        rng = np.random.default_rng(175)
        gpt = TinyGpt(vocab=12, dim=16, heads=2, layers=2, seq=8, rng=rng)
        opt = Adam(gpt.parameters(), lr=3e-3)
        steps = max(40, int(120 * scale))
        losses = []
        for _ in range(steps):
            ids, tgt = synthetic_tokens(8, 8, 12, rng)
            losses.append(gpt.train_step(ids, tgt, opt))
        ok, detail = _train_verifier(losses)

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        return self.result(nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
                           verified=ok, verification=detail,
                           final_loss=losses[-1],
                           model_parameters=gpt.n_parameters())


# ---------------------------------------------------------------------------
# MMoCLIP
# ---------------------------------------------------------------------------

#: ViT-L/14 two-tower profile and dataset size (Sec. IV-A1d)
CLIP_PARAMS = 428e6
CLIP_SAMPLES = 3_200_000
CLIP_FLOPS_PER_PAIR = 3.0e11     # fwd+bwd, image + text towers
CLIP_GLOBAL_BATCH = 4096
CLIP_EMBED_DIM = 768


def mmoclip_timing_program(comm, steps: int):
    """Data-parallel contrastive training with the feature allgather."""
    batch_local = CLIP_GLOBAL_BATCH / comm.size
    flops = CLIP_FLOPS_PER_PAIR * batch_local
    feature_bytes = batch_local * CLIP_EMBED_DIM * 2.0 * 2  # both towers
    for _step in range(steps):
        yield comm.compute(flops=flops / BF16_FACTOR,
                           bytes_moved=flops / 300.0,
                           efficiency=GEMM_EFFICIENCY, label="towers")
        # the CLIP-specific step: allgather all ranks' embeddings to
        # build the global similarity matrix
        yield comm.allgather(Phantom(feature_bytes), label="feature-gather")
        yield comm.compute(flops=CLIP_GLOBAL_BATCH * batch_local *
                           CLIP_EMBED_DIM * 4.0 / BF16_FACTOR,
                           bytes_moved=CLIP_GLOBAL_BATCH * batch_local * 4.0,
                           efficiency=GEMM_EFFICIENCY, label="similarity")
        yield comm.allreduce(Phantom(2.0 * CLIP_PARAMS / comm.size),
                             label="dp-allreduce")
    return batch_local


class MmoclipBenchmark(AppBenchmark):
    """Runnable MMoCLIP benchmark."""

    NAME = "MMoCLIP"
    fom = FigureOfMerit(name="time to train 3.2M pairs",
                        kind=FomKind.RATE, work=float(CLIP_SAMPLES))

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        steps_small = 3
        spmd = self.run_program(machine, mmoclip_timing_program,
                                args=(steps_small,))
        pairs_per_second = CLIP_GLOBAL_BATCH * steps_small / spmd.elapsed
        fom = self.fom.time_metric(pairs_per_second)
        return self.result(
            nodes, spmd, fom_seconds=fom,
            pairs_per_second=pairs_per_second, samples=CLIP_SAMPLES,
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        rng = np.random.default_rng(14)
        img_tower = ClipTower(6, 12, 2, 1, 8, rng)
        txt_tower = ClipTower(6, 12, 2, 1, 8, rng)
        opt = Adam(img_tower.parameters() + txt_tower.parameters(), lr=3e-3)
        losses = []
        for _ in range(max(30, int(80 * scale))):
            img, txt = synthetic_pairs(16, 3, 6, rng)
            for p in opt.params:
                p.zero_grad()
            z_img = img_tower(img)
            z_txt = txt_tower(txt)
            loss, dzi, dzt = clip_contrastive_loss(z_img, z_txt)
            img_tower.backward(dzi)
            txt_tower.backward(dzt)
            opt.step()
            losses.append(loss)
        ok, detail = _train_verifier(losses)
        ok = bool(ok and losses[-1] < np.log(16))  # beat the random baseline

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        return self.result(nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
                           verified=ok, verification=detail,
                           final_loss=losses[-1])


# ---------------------------------------------------------------------------
# ResNet
# ---------------------------------------------------------------------------

RESNET_PARAMS = 25.6e6
RESNET_FLOPS_PER_IMAGE = 1.2e10  # fwd+bwd ResNet-50 at 224^2
RESNET_IMAGES = 25_600_000       # the fixed training workload
RESNET_GLOBAL_BATCH = 2048


def resnet_timing_program(comm, steps: int):
    """Horovod-style data-parallel ResNet-50 training."""
    batch_local = RESNET_GLOBAL_BATCH / comm.size
    for _step in range(steps):
        yield comm.compute(
            flops=RESNET_FLOPS_PER_IMAGE * batch_local / BF16_FACTOR,
            bytes_moved=batch_local * 150e6 / 10.0,
            efficiency=GEMM_EFFICIENCY * 0.6,  # convs attain less
            label="conv")
        yield comm.allreduce(Phantom(2.0 * RESNET_PARAMS),
                             label="grad-allreduce")
    return batch_local


class ResnetBenchmark(AppBenchmark):
    """Runnable ResNet benchmark."""

    NAME = "ResNet"
    fom = FigureOfMerit(name="time to train 25.6M images",
                        kind=FomKind.RATE, work=float(RESNET_IMAGES))

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        steps_small = 4
        spmd = self.run_program(machine, resnet_timing_program,
                                args=(steps_small,))
        images_per_second = RESNET_GLOBAL_BATCH * steps_small / spmd.elapsed
        fom = self.fom.time_metric(images_per_second)
        return self.result(
            nodes, spmd, fom_seconds=fom,
            images_per_second=images_per_second,
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        rng = np.random.default_rng(50)
        net = TinyResNet(in_ch=2, channels=6, blocks=1, classes=3, rng=rng)
        opt = Adam(net.parameters(), lr=2e-3)
        losses = []
        for _ in range(max(20, int(40 * scale))):
            x, y = synthetic_images(12, 2, 8, 3, rng)
            losses.append(net.train_step(x, y, opt))
        ok, detail = _train_verifier(losses)

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        return self.result(nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
                           verified=ok, verification=detail,
                           final_loss=losses[-1])
