"""The 16 application benchmarks of the JUPITER Benchmark Suite.

Each subpackage implements one application (or a shared substrate for a
family): the genuine algorithm in NumPy, an SPMD program over virtual
MPI, and a :class:`~repro.core.benchmark.Benchmark` subclass.
``register_all`` plugs every implementation into a suite instance.
"""

from typing import TYPE_CHECKING

from .base import AppBenchmark, pow2_floor

if TYPE_CHECKING:  # pragma: no cover
    from ..core.suite import JupiterBenchmarkSuite


def register_all(suite: "JupiterBenchmarkSuite") -> None:
    """Register all 16 application benchmarks with a suite."""
    from .ai import MegatronBenchmark, MmoclipBenchmark, ResnetBenchmark
    from .arbor import ArborBenchmark
    from .icon import IconBenchmark
    from .juqcs import JuqcsBenchmark
    from .lattice import ChromaBenchmark, DynqcdBenchmark
    from .md import AmberBenchmark, GromacsBenchmark
    from .nastja import NastjaBenchmark
    from .nekrs import NekrsBenchmark
    from .parflow import ParflowBenchmark
    from .picongpu import PicongpuBenchmark
    from .qe import QuantumEspressoBenchmark
    from .soma import SomaBenchmark

    suite.register("Amber", AmberBenchmark)
    suite.register("Arbor", ArborBenchmark)
    suite.register("Chroma-QCD", ChromaBenchmark)
    suite.register("GROMACS", GromacsBenchmark)
    suite.register("ICON", IconBenchmark)
    suite.register("JUQCS", JuqcsBenchmark)
    suite.register("nekRS", NekrsBenchmark)
    suite.register("ParFlow", ParflowBenchmark)
    suite.register("PIConGPU", PicongpuBenchmark)
    suite.register("Quantum Espresso", QuantumEspressoBenchmark)
    suite.register("SOMA", SomaBenchmark)
    suite.register("MMoCLIP", MmoclipBenchmark)
    suite.register("Megatron-LM", MegatronBenchmark)
    suite.register("ResNet", ResnetBenchmark)
    suite.register("DynQCD", DynqcdBenchmark)
    suite.register("NAStJA", NastjaBenchmark)


__all__ = ["AppBenchmark", "pow2_floor", "register_all"]
