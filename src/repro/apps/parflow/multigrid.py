"""Geometric multigrid for the Poisson-like systems in ParFlow.

ParFlow's solver stack is Newton-Krylov with a multigrid-preconditioned
linear solve (the Hypre dependency in Table II; Ashby & Falgout 1996).
This module implements a standard V-cycle on a 3D cell-centred grid
(damped-Jacobi smoothing, full-weighting-ish restriction, trilinear
prolongation) whose grid-independent convergence factor the tests
assert -- the property that makes the hydrology tractable at scale.
"""

from __future__ import annotations

import numpy as np


def apply_poisson(u: np.ndarray, h: float) -> np.ndarray:
    """7-point Laplacian with homogeneous Dirichlet walls: A u = -lap u."""
    out = 6.0 * u.copy()
    for axis in range(3):
        lo = np.zeros_like(u)
        hi = np.zeros_like(u)
        src = [slice(None)] * 3
        dst = [slice(None)] * 3
        src[axis] = slice(1, None)
        dst[axis] = slice(None, -1)
        hi[tuple(dst)] = u[tuple(src)]
        src[axis] = slice(None, -1)
        dst[axis] = slice(1, None)
        lo[tuple(dst)] = u[tuple(src)]
        out -= lo + hi
    return out / (h * h)


def jacobi_smooth(u: np.ndarray, f: np.ndarray, h: float,
                  sweeps: int = 2, omega: float = 0.8) -> np.ndarray:
    """Damped Jacobi relaxation sweeps."""
    diag = 6.0 / (h * h)
    for _ in range(sweeps):
        r = f - apply_poisson(u, h)
        u = u + omega * r / diag
    return u


def _checkerboard(shape: tuple[int, ...]) -> np.ndarray:
    idx = np.indices(shape).sum(axis=0)
    return idx % 2 == 0


def rb_gauss_seidel(u: np.ndarray, f: np.ndarray, h: float,
                    sweeps: int = 2) -> np.ndarray:
    """Red-black Gauss-Seidel sweeps (the stronger smoother; also the
    parallel-friendly one the production codes use)."""
    diag = 6.0 / (h * h)
    red = _checkerboard(u.shape)
    u = u.copy()
    for _ in range(sweeps):
        for color in (red, ~red):
            r = f - apply_poisson(u, h)
            u[color] += r[color] / diag
    return u


def restrict(r: np.ndarray) -> np.ndarray:
    """Cell-averaged restriction to a grid of half the points per axis."""
    n = r.shape[0]
    if n % 2 != 0:
        raise ValueError("restriction needs even extents")
    return 0.125 * (r[0::2, 0::2, 0::2] + r[1::2, 0::2, 0::2] +
                    r[0::2, 1::2, 0::2] + r[0::2, 0::2, 1::2] +
                    r[1::2, 1::2, 0::2] + r[1::2, 0::2, 1::2] +
                    r[0::2, 1::2, 1::2] + r[1::2, 1::2, 1::2])


def prolong(c: np.ndarray) -> np.ndarray:
    """Piecewise-constant prolongation (adjoint of the restriction)."""
    return np.repeat(np.repeat(np.repeat(c, 2, axis=0), 2, axis=1),
                     2, axis=2)


def v_cycle(u: np.ndarray, f: np.ndarray, h: float,
            pre: int = 2, post: int = 2, min_size: int = 4) -> np.ndarray:
    """One V(pre, post) cycle."""
    u = rb_gauss_seidel(u, f, h, sweeps=pre)
    if u.shape[0] > min_size and u.shape[0] % 2 == 0:
        r = f - apply_poisson(u, h)
        # For cell-centred averaging restriction with piecewise-constant
        # prolongation, the Galerkin coarse operator equals TWICE the
        # rediscretised Laplacian at 2h (per-direction child counting);
        # halving the restricted residual makes the rediscretised coarse
        # solve consistent.
        rc = 0.5 * restrict(r)
        ec = v_cycle(np.zeros_like(rc), rc, 2.0 * h, pre, post, min_size)
        u = u + prolong(ec)
    else:
        u = rb_gauss_seidel(u, f, h, sweeps=20)
    return rb_gauss_seidel(u, f, h, sweeps=post)


def mgcg_solve(f: np.ndarray, h: float, tol: float = 1e-8,
               max_iter: int = 60) -> tuple[np.ndarray, int, list[float]]:
    """Multigrid-preconditioned conjugate gradient.

    This is ParFlow's actual solver (Ashby & Falgout: "a parallel
    multigrid preconditioned conjugate gradient algorithm for
    groundwater flow simulations").  One V-cycle per application as the
    preconditioner; flexible (Polak-Ribiere) CG absorbs its slight
    non-symmetry.  Returns (solution, iterations, residual history).
    """
    u = np.zeros_like(f)
    f_norm = float(np.linalg.norm(f))
    if f_norm == 0.0:
        return u, 0, [0.0]
    r = f.copy()
    z = v_cycle(np.zeros_like(r), r, h)
    p = z.copy()
    rz = float(np.sum(r * z))
    history = [1.0]
    it = 0
    for it in range(1, max_iter + 1):
        ap = apply_poisson(p, h)
        alpha = rz / float(np.sum(p * ap))
        u += alpha * p
        r_new = r - alpha * ap
        res = float(np.linalg.norm(r_new)) / f_norm
        history.append(res)
        if res < tol:
            break
        z_new = v_cycle(np.zeros_like(r_new), r_new, h)
        rz_new = float(np.sum((r_new - r) * z_new))  # Polak-Ribiere
        beta = max(rz_new / rz, 0.0)
        p = z_new + beta * p
        r = r_new
        rz = float(np.sum(r * z_new))
    return u, it, history


def mg_solve(f: np.ndarray, h: float, tol: float = 1e-8,
             max_cycles: int = 50) -> tuple[np.ndarray, int, list[float]]:
    """V-cycle iteration to relative residual ``tol``.

    Returns (solution, cycles, residual history); the history's
    per-cycle contraction factor is the multigrid quality metric.
    """
    u = np.zeros_like(f)
    f_norm = float(np.linalg.norm(f))
    if f_norm == 0.0:
        return u, 0, [0.0]
    history = [1.0]
    cycles = 0
    for cycles in range(1, max_cycles + 1):
        u = v_cycle(u, f, h)
        res = float(np.linalg.norm(f - apply_poisson(u, h))) / f_norm
        history.append(res)
        if res < tol:
            break
    return u, cycles, history
