"""The ParFlow benchmark (Base 4 nodes; prepared, not used).

The ClayL test from ParFlow's suite: "simulating infiltration into clay
soil ... with a problem size of 1008 x 1008 x 240 cells" (Sec. IV).
Real mode runs genuine Richards infiltration (mass balance to 1e-8,
monotone wetting front) and the multigrid-preconditioned CG solver the
code is built on.  Timing mode charges Newton iterations x MGCG
iterations of 7-point stencil work over the 3D-decomposed domain.
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...core.verification import ModelVerifier
from ...vmpi import Phantom
from ...vmpi.decomposition import CartGrid, halo_exchange, phantom_faces
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .multigrid import mgcg_solve
from .richards import RichardsColumn

#: the ClayL problem size
DOMAIN = (1008, 1008, 240)
TIME_STEPS = 300
NEWTON_PER_STEP = 6
MGCG_PER_NEWTON = 15
#: stencil work per cell per linear-solver sweep (smoothing + residual)
FLOPS_PER_CELL = 60.0
BYTES_PER_CELL = 120.0


def parflow_timing_program(comm, domain, steps, newton, mgcg):
    """Phantom-cost Newton-Krylov stepping on the ClayL domain."""
    cart = CartGrid.for_ranks(comm.size, 3, extents=domain, periodic=False)
    cells_local = float(np.prod(domain)) / comm.size
    local_dims = tuple(max(1, int(d / g)) for d, g in zip(domain, cart.dims))
    faces = phantom_faces(local_dims, itemsize=8)
    for _step in range(steps):
        for _newton in range(newton):
            # nonlinear residual + Jacobian setup
            yield comm.compute(flops=3 * FLOPS_PER_CELL * cells_local,
                               bytes_moved=3 * BYTES_PER_CELL * cells_local,
                               efficiency=0.3, label="newton")
            for _it in range(mgcg):
                yield comm.compute(flops=FLOPS_PER_CELL * cells_local,
                                   bytes_moved=BYTES_PER_CELL * cells_local,
                                   efficiency=0.35, label="mgcg")
                yield from halo_exchange(comm, cart, faces)
                yield comm.allreduce(Phantom(16.0), label="cg-dot")
    return cells_local


class ParflowBenchmark(AppBenchmark):
    """Runnable ParFlow benchmark."""

    NAME = "ParFlow"
    fom = FigureOfMerit(name="ClayL infiltration runtime", unit="s")

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        steps_small, newton_small, mgcg_small = 1, 2, 3
        spmd = self.run_program(machine, parflow_timing_program,
                                args=(DOMAIN, steps_small, newton_small,
                                      mgcg_small))
        work_scale = (TIME_STEPS * NEWTON_PER_STEP * MGCG_PER_NEWTON) / \
            (steps_small * newton_small * mgcg_small)
        return self.result(
            nodes, spmd, fom_seconds=spmd.elapsed * work_scale,
            domain=DOMAIN, time_steps=TIME_STEPS,
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        col = RichardsColumn.clay_column(nz=max(20, int(40 * scale)))
        diag = col.infiltrate(t_end=max(1.0, 2.0 * scale), dt=0.1)
        sat = col.soil.saturation(col.psi)
        front_monotone = bool(np.all(np.diff(sat[:len(sat) // 2]) <= 1e-9))
        n = 16
        rng = np.random.default_rng(4)
        _, iters, hist = mgcg_solve(rng.normal(size=(n, n, n)), 1.0 / n,
                                    tol=1e-8)
        verifier = ModelVerifier(checks={
            "mass_balance": (lambda r: r["balance"], 0.0, 1e-8),
            "mgcg_iters": (lambda r: float(r["iters"]), 1.0, 30.0),
            "front": (lambda r: 1.0 if r["front"] else 0.0, 1.0, 1.0),
        })
        check = verifier({"balance": diag["balance_error"], "iters": iters,
                          "front": front_monotone})

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        return self.result(
            nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
            verified=bool(check), verification=check.detail,
            mass_balance=diag["balance_error"], mgcg_iterations=iters,
            infiltrated=diag["inflow"])
