"""ParFlow: integrated hydrology (Richards equation, multigrid CG)."""

from .benchmark import DOMAIN, ParflowBenchmark, parflow_timing_program
from .multigrid import apply_poisson, jacobi_smooth, mg_solve, mgcg_solve, \
    prolong, rb_gauss_seidel, restrict, v_cycle
from .richards import RichardsColumn, VanGenuchten

__all__ = ["DOMAIN", "ParflowBenchmark", "RichardsColumn", "VanGenuchten",
           "apply_poisson", "jacobi_smooth", "mg_solve", "mgcg_solve",
           "parflow_timing_program", "prolong", "rb_gauss_seidel",
           "restrict", "v_cycle"]
