"""The Richards equation: variably saturated subsurface flow.

ParFlow's physics (Sec. IV): infiltration into soil follows

    d theta(psi) / dt = d/dz [ K(psi) (d psi/dz + 1) ]

with pressure head psi, water content theta and hydraulic conductivity
K given by the van Genuchten relations.  The ClayL test case infiltrates
water into clay (very low conductivity, sharp wetting front).  We solve
the 1D column (the test's dynamics are vertical) with implicit Euler
and Newton iteration, verifying exact discrete mass balance and a
monotone wetting front.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VanGenuchten:
    """van Genuchten soil parameters (clay defaults, SI-ish units)."""

    theta_r: float = 0.068    # residual water content
    theta_s: float = 0.38     # saturated water content
    alpha: float = 0.8        # [1/m]
    n: float = 1.09           # clay: weakly nonlinear retention
    k_s: float = 0.048        # saturated conductivity [m/day]

    @property
    def m(self) -> float:
        return 1.0 - 1.0 / self.n

    def theta(self, psi: np.ndarray) -> np.ndarray:
        """Water content from pressure head (psi < 0 unsaturated)."""
        psi = np.asarray(psi, dtype=float)
        se = np.where(psi < 0,
                      (1.0 + np.abs(self.alpha * psi) ** self.n) ** (-self.m),
                      1.0)
        return self.theta_r + (self.theta_s - self.theta_r) * se

    def saturation(self, psi: np.ndarray) -> np.ndarray:
        """Effective saturation in [0, 1]."""
        return (self.theta(psi) - self.theta_r) / (self.theta_s - self.theta_r)

    def conductivity(self, psi: np.ndarray) -> np.ndarray:
        """Mualem-van Genuchten unsaturated conductivity."""
        se = np.clip(self.saturation(psi), 1e-9, 1.0)
        return self.k_s * np.sqrt(se) * \
            (1.0 - (1.0 - se ** (1.0 / self.m)) ** self.m) ** 2


@dataclass
class RichardsColumn:
    """A 1D soil column, cell-centred, surface at index 0."""

    soil: VanGenuchten
    nz: int
    dz: float
    psi: np.ndarray  # pressure head per cell [m]

    @classmethod
    def clay_column(cls, nz: int = 60, dz: float = 0.05,
                    psi0: float = -10.0) -> "RichardsColumn":
        """ClayL-style initial condition: uniformly dry clay."""
        soil = VanGenuchten()
        return cls(soil=soil, nz=nz, dz=dz,
                   psi=np.full(nz, float(psi0)))

    def water_volume(self) -> float:
        """Stored water per unit area [m]."""
        return float(np.sum(self.soil.theta(self.psi))) * self.dz

    def _fluxes(self, psi: np.ndarray, psi_top: float) -> np.ndarray:
        """Darcy fluxes at the nz+1 cell interfaces (positive downward)."""
        k = self.soil.conductivity(psi)
        k_top = self.soil.conductivity(np.array([psi_top]))[0]
        flux = np.zeros(self.nz + 1)
        # surface: ponded/wet boundary drives infiltration
        k_face = 0.5 * (k_top + k[0])
        flux[0] = k_face * ((psi_top - psi[0]) / (self.dz / 2) + 1.0)
        # interior faces
        k_faces = 0.5 * (k[:-1] + k[1:])
        flux[1:-1] = k_faces * ((psi[:-1] - psi[1:]) / self.dz + 1.0)
        # bottom: free drainage (unit gradient)
        flux[-1] = k[-1]
        return flux

    def residual(self, psi_new: np.ndarray, dt: float,
                 psi_top: float) -> np.ndarray:
        """Implicit-Euler residual of the water balance per cell."""
        theta_old = self.soil.theta(self.psi)
        theta_new = self.soil.theta(psi_new)
        flux = self._fluxes(psi_new, psi_top)
        return ((theta_new - theta_old) * self.dz / dt -
                (flux[:-1] - flux[1:]))

    def step(self, dt: float, psi_top: float = -0.01,
             newton_tol: float = 1e-10, max_newton: int = 40) -> int:
        """One implicit step via Newton with numerical Jacobian
        (tridiagonal; dense solve is fine at column size).

        Returns the Newton iteration count.  The infiltrated volume is
        exactly the boundary-flux integral (asserted by the mass-balance
        test).
        """
        psi_new = self.psi.copy()
        it = 0
        for it in range(1, max_newton + 1):
            r = self.residual(psi_new, dt, psi_top)
            if float(np.max(np.abs(r))) < newton_tol:
                break
            jac = np.zeros((self.nz, self.nz))
            eps = 1e-7
            for j in range(self.nz):
                pert = psi_new.copy()
                pert[j] += eps
                jac[:, j] = (self.residual(pert, dt, psi_top) - r) / eps
            delta = np.linalg.solve(jac, -r)
            # damped update for robustness on the sharp clay front
            step_scale = min(1.0, 1.0 / float(np.max(np.abs(delta)) + 1e-12))
            psi_new += max(step_scale, 0.2) * delta
        self.psi = psi_new
        return it

    def infiltrate(self, t_end: float, dt: float,
                   psi_top: float = -0.01) -> dict[str, float]:
        """Run infiltration; returns mass-balance diagnostics."""
        v0 = self.water_volume()
        inflow = 0.0
        outflow = 0.0
        steps = int(round(t_end / dt))
        for _ in range(steps):
            self.step(dt, psi_top)
            flux = self._fluxes(self.psi, psi_top)
            inflow += flux[0] * dt
            outflow += flux[-1] * dt
        v1 = self.water_volume()
        return {
            "initial": v0, "final": v1, "inflow": inflow,
            "outflow": outflow,
            "balance_error": abs((v1 - v0) - (inflow - outflow)) /
            max(abs(inflow), 1e-12),
        }
