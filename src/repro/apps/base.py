"""Shared plumbing for application benchmark implementations.

Every application in :mod:`repro.apps` follows the same pattern:

* a pure algorithm layer (NumPy), unit-tested on its own;
* an SPMD generator program running that algorithm through virtual MPI,
  with real payloads at small scale (``real=True``, verification) or
  phantom payloads at paper scale (``real=False``, timing);
* a :class:`~repro.core.benchmark.Benchmark` subclass mapping the
  paper's workload definition (reference nodes, memory variants,
  problem sizes) onto the SPMD program.

:class:`AppBenchmark` supplies the recurring pieces of the third layer.
"""

from __future__ import annotations

from typing import Any

from ..core.benchmark import Benchmark, BenchmarkResult
from ..core.registry import get_info
from ..core.variants import MemoryVariant, VariantSizing
from ..units import register_dims
from ..vmpi.engine import VmpiEngine
from ..vmpi.machine import Machine
from ..vmpi.trace import SpmdResult

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: every benchmark funnels its FOM through ``result(fom_seconds=...)``,
#: so this one key polices the suite-wide time-metric promise
DIMS = register_dims(__name__, {
    "result.fom_seconds": "s",
})


def pow2_floor(n: int) -> int:
    """Largest power of two <= n (the paper's footnote rule for codes
    with power-of-two node-count constraints)."""
    if n < 1:
        raise ValueError("need a positive count")
    return 1 << (n.bit_length() - 1)


class AppBenchmark(Benchmark):
    """Base class wiring an SPMD program into the benchmark contract."""

    #: Table II name; resolved against the registry at construction.
    NAME: str = ""
    #: default memory variant when none is requested
    DEFAULT_VARIANT = MemoryVariant.LARGE

    def __init__(self) -> None:
        if not self.NAME:
            raise TypeError(f"{type(self).__name__} must set NAME")
        self.info = get_info(self.NAME)
        self.sizing = VariantSizing()

    # -- helpers -----------------------------------------------------------

    def variant_or_default(self, variant: MemoryVariant | None) -> MemoryVariant:
        """Requested variant, or the benchmark's default."""
        if variant is not None:
            return variant
        if self.info.variants:
            return (self.DEFAULT_VARIANT if self.DEFAULT_VARIANT in
                    self.info.variants else self.info.variants[-1])
        return self.DEFAULT_VARIANT

    def device_bytes(self, variant: MemoryVariant | None) -> float:
        """Workload bytes per device for a variant (T/S/M/L sizing)."""
        return self.sizing.bytes_per_device(self.variant_or_default(variant))

    def run_program(self, machine: Machine, program: Any, *,
                    args: tuple = (), kwargs: dict | None = None,
                    mode: str | None = None) -> SpmdResult:
        """Execute an SPMD generator program on a machine.

        ``mode`` picks the engine core ("event" or "step"); ``None``
        defers to ``REPRO_VMPI_MODE`` / the default (the discrete-event
        core) -- the two are observationally equivalent, so this only
        matters for differential testing and benchmarking.
        """
        return VmpiEngine(machine, mode=mode).run(program, args=args,
                                                  kwargs=kwargs)

    def result(self, nodes: int, spmd: SpmdResult, *,
               variant: MemoryVariant | None = None,
               verified: bool | None = None,
               verification: str = "",
               fom_seconds: float | None = None,
               **details: Any) -> BenchmarkResult:
        """Package an SPMD run into a :class:`BenchmarkResult`."""
        return BenchmarkResult(
            benchmark=self.info.name,
            nodes=nodes,
            fom_seconds=spmd.elapsed if fom_seconds is None else fom_seconds,
            variant=variant,
            verified=None if verified is None else bool(verified),
            verification=verification,
            spmd=spmd,
            details=details,
        )
