"""Conjugate gradient for the normal Dirac equations.

Both LQCD benchmarks reduce to CG: Chroma's HMC solves D^+ D x = b for
the pseudofermion force, DynQCD "generates 600 quark propagators using a
conjugate gradient solver for sparse LQCD fermion matrices".  The
benchmark rule of Sec. V-B applies here too: iterate to a fixed cutoff
rather than convergence, because convergence behaviour may shift on
unknown hardware ("A more robust approach is to not compute until
convergence, but stop after a predetermined amount of iterations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .dirac import spinor_dot, spinor_norm


@dataclass
class CgResult:
    """Solution and convergence record of one CG solve."""

    x: np.ndarray
    iterations: int
    residual: float
    converged: bool
    residual_history: list[float]


def conjugate_gradient(apply_a: Callable[[np.ndarray], np.ndarray],
                       b: np.ndarray,
                       x0: np.ndarray | None = None,
                       tol: float = 1e-8,
                       max_iter: int = 1000,
                       fixed_iterations: int | None = None) -> CgResult:
    """Solve A x = b for hermitian positive-definite A.

    With ``fixed_iterations`` the solver runs exactly that many steps
    (the robust benchmark mode); otherwise it stops at relative residual
    ``tol`` or ``max_iter``.
    """
    if tol <= 0 or max_iter < 1:
        raise ValueError("tol must be positive and max_iter >= 1")
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - apply_a(x) if x0 is not None else b.copy()
    p = r.copy()
    rr = spinor_dot(r, r).real
    b_norm = spinor_norm(b)
    if b_norm == 0.0:
        return CgResult(x=np.zeros_like(b), iterations=0, residual=0.0,
                        converged=True, residual_history=[0.0])
    limit = fixed_iterations if fixed_iterations is not None else max_iter
    history: list[float] = [np.sqrt(rr) / b_norm]
    it = 0
    for it in range(1, limit + 1):
        ap = apply_a(p)
        p_ap = spinor_dot(p, ap).real
        if p_ap <= 0:
            raise ValueError("operator is not positive definite on p")
        alpha = rr / p_ap
        x += alpha * p
        r -= alpha * ap
        rr_new = spinor_dot(r, r).real
        rel = float(np.sqrt(rr_new) / b_norm)
        history.append(rel)
        if fixed_iterations is None and rel <= tol:
            rr = rr_new
            break
        beta = rr_new / rr
        p = r + beta * p
        rr = rr_new
    rel = history[-1]
    converged = rel <= tol
    return CgResult(x=x, iterations=it, residual=rel, converged=converged,
                    residual_history=history)
