"""Lattice QCD substrate shared by the Chroma-QCD and DynQCD benchmarks:
SU(3) algebra, gauge actions, the Wilson-clover Dirac operator, CG,
HMC, and the distributed (virtual-MPI) implementations."""

from .cg import CgResult, conjugate_gradient
from .chroma import (
    ChromaBenchmark,
    chroma_timing_program,
    local_lattice_dims,
)
from .dirac import (
    GAMMA,
    GAMMA5,
    WilsonDirac,
    clover_field_strength,
    lattice_bytes_per_site,
    random_spinor,
    sigma_munu,
    spinor_dot,
    spinor_norm,
)
from .distributed import (
    SlabDirac,
    dist_apply_dirac,
    dist_cg,
    dist_dot,
    dist_normal_apply,
    distribute_gauge,
    exchange_t_ghosts,
    slab_of,
)
from .dynqcd import DynqcdBenchmark, dynqcd_timing_program
from .gauge import (
    GaugeAction,
    GaugeField,
    average_plaquette,
    average_rectangle,
    field_at,
    path_product,
    plaquette_field,
    rectangle_field,
    staple_sum,
)
from .hmc import HmcResult, Trajectory, hmc_trajectory, kinetic_energy, leapfrog, run_hmc
from .su3 import (
    dagger,
    expm_su3,
    identity_links,
    is_su3,
    project_su3,
    random_algebra,
    random_su3,
    trace,
    traceless_antihermitian,
)

__all__ = [
    "CgResult", "ChromaBenchmark", "DynqcdBenchmark", "GAMMA", "GAMMA5",
    "GaugeAction", "GaugeField", "HmcResult", "SlabDirac", "Trajectory",
    "WilsonDirac", "average_plaquette", "average_rectangle",
    "chroma_timing_program", "clover_field_strength", "conjugate_gradient",
    "dagger", "dist_apply_dirac", "dist_cg", "dist_dot",
    "dist_normal_apply", "distribute_gauge", "dynqcd_timing_program",
    "exchange_t_ghosts", "expm_su3", "field_at", "hmc_trajectory",
    "identity_links", "is_su3", "kinetic_energy", "lattice_bytes_per_site",
    "leapfrog", "local_lattice_dims", "path_product", "plaquette_field",
    "project_su3", "random_algebra", "random_spinor", "random_su3",
    "rectangle_field", "run_hmc", "sigma_munu", "slab_of", "spinor_dot",
    "spinor_norm", "staple_sum", "trace", "traceless_antihermitian",
]
