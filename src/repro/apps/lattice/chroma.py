"""The Chroma-QCD benchmark (Base 8 nodes, High-Scaling 512 S/M/L).

Workload (Sec. IV-A2b): HMC update trajectories with 3+1 flavours of
clover Wilson fermions and the Lüscher-Weisz gauge action on a 4D
lattice initialised with random SU(3) links.  "The relevant metric (FOM)
is the total time spent in HMC updates, excluding the first update,
which includes overhead for tuning QUDA parameters.  So a minimum of two
updates must be prescribed."

Real mode runs genuine pure-gauge HMC plus a distributed-vs-serial
plaquette cross check at the Base tolerance of 1e-10 (the fermion force
enters the timing model only; see DESIGN.md).  Timing mode charges the
full 4D-decomposed cost profile: per MD step a gauge force and a
fixed-iteration CG whose Dslash applications exchange spin-projected
halos in all four directions -- "performance is sensitive to the
decomposition configuration", which :func:`~repro.vmpi.decomposition.
dims_create` chooses surface-optimally.
"""

from __future__ import annotations

import math

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...core.verification import ToleranceVerifier
from ...vmpi import Phantom
from ...vmpi.decomposition import CartGrid, dims_create, halo_exchange, phantom_faces
from ...vmpi.machine import Machine
from ..base import AppBenchmark, pow2_floor
from .cg import conjugate_gradient
from .dirac import WilsonDirac, lattice_bytes_per_site, random_spinor
from .gauge import GaugeAction, GaugeField, average_plaquette, plaquette_field
from .hmc import run_hmc
from .su3 import trace

#: production-profile iteration counts (charged analytically)
MD_STEPS = 15
CG_ITERATIONS = 120
TRAJECTORIES = 3  # 1 tuning + 2 measured (the required minimum)
#: spin-projected halo payload per boundary site (2-spinor, 6 complex)
HALO_BYTES_PER_SITE = 96
#: Dslash arithmetic per site (Wilson, 4D)
DSLASH_FLOPS_PER_SITE = 1464.0
DSLASH_BYTES_PER_SITE = 2880.0
#: gauge force arithmetic per site (staples in 4 directions)
FORCE_FLOPS_PER_SITE = 15000.0

BASE_TOLERANCE = 1e-10
HIGHSCALE_TOLERANCE = 1e-8


def local_lattice_dims(bytes_per_device: float) -> tuple[int, int, int, int]:
    """Per-GPU lattice block filling the given memory (even extents,
    near-hypercubic)."""
    sites = bytes_per_device / lattice_bytes_per_site()
    edge = int(sites ** 0.25)
    edge -= edge % 2  # even extents keep even-odd preconditioning valid
    edge = max(edge, 2)
    return (edge, edge, edge, edge)


def chroma_timing_program(comm, local_dims: tuple[int, int, int, int],
                          trajectories: int, md_steps: int, cg_iters: int):
    """Phantom-cost HMC trajectories on a 4D-decomposed lattice.

    Each rank owns ``local_dims`` sites; one MD step = gauge force +
    fermion CG (two Dslash halo exchanges + three reductions per
    iteration).  Returns the number of charged Dslash applications.
    """
    cart = CartGrid.for_ranks(comm.size, 4, periodic=True)
    faces = phantom_faces(local_dims, itemsize=HALO_BYTES_PER_SITE)
    local_sites = float(np.prod(local_dims))
    dslash_count = 0
    for _traj in range(trajectories):
        for _md in range(md_steps):
            yield comm.compute(flops=FORCE_FLOPS_PER_SITE * local_sites,
                               bytes_moved=600.0 * local_sites,
                               efficiency=0.30, label="gauge-force")
            for _it in range(cg_iters):
                for _ in range(2):  # D then D^+
                    yield from halo_exchange(comm, cart, faces)
                    yield comm.compute(
                        flops=DSLASH_FLOPS_PER_SITE * local_sites,
                        bytes_moved=DSLASH_BYTES_PER_SITE * local_sites,
                        efficiency=0.35, label="dslash")
                yield comm.allreduce(Phantom(16.0), label="cg-reduce")
                yield comm.allreduce(Phantom(16.0), label="cg-reduce")
                dslash_count += 2
        yield comm.allreduce(Phantom(8.0), label="metropolis")
    return dslash_count


def verification_program(comm, gauge: GaugeField):
    """Distributed plaquette: slab-sum cross-checked against the serial
    implementation (generator; returns the global average)."""
    t_extent = gauge.dims[0]
    from ...vmpi.decomposition import block_partition

    lo, hi = block_partition(t_extent, comm.size)[comm.rank]
    local = 0.0
    for mu in range(4):
        for nu in range(mu + 1, 4):
            p = plaquette_field(gauge.u, mu, nu)
            local += float(np.sum(trace(p[lo:hi]).real)) / 3.0
    total = yield comm.allreduce(np.array([local]))
    return float(total[0]) / (6 * gauge.volume)


class ChromaBenchmark(AppBenchmark):
    """Runnable Chroma-QCD benchmark."""

    NAME = "Chroma-QCD"
    fom = FigureOfMerit(name="HMC update time (excl. first)", unit="s")

    #: real-mode lattice (kept small; scaled by ``scale``)
    REAL_DIMS = (8, 4, 4, 4)

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        ranks = pow2_floor(nodes * 4)  # power-of-two decomposition
        used_nodes = max(1, ranks // 4)
        machine = self.machine(used_nodes, ranks_per_node=min(4, ranks))
        v = self.variant_or_default(variant)
        if real:
            return self._execute_real(used_nodes, machine, v, scale)
        weak = variant is not None or used_nodes >= 64
        return self._execute_timing(used_nodes, machine, v, weak)

    def _execute_timing(self, nodes: int, machine: Machine,
                        variant: MemoryVariant,
                        weak: bool) -> BenchmarkResult:
        clamped = False
        if weak:
            # High-Scaling rule: per-GPU volume pinned by the variant
            local_dims = local_lattice_dims(self.device_bytes(variant))
        else:
            # Base rule: the workload is fixed at the 8-node reference
            # size and strong-scaled; if it exceeds device memory the
            # run is clamped (cf. the Arbor 4-node point).
            ref_local = local_lattice_dims(self.device_bytes(variant))
            total_sites = float(np.prod(ref_local)) * \
                self.info.reference_nodes * 4
            per_gpu = total_sites / machine.nranks
            capacity = float(np.prod(ref_local))
            clamped = per_gpu > capacity
            per_gpu = min(per_gpu, capacity)
            edge = max(2, round(per_gpu ** 0.25))
            local_dims = (edge,) * 4
        # run a reduced, strictly proportional schedule and scale the FOM
        md_small, cg_small = 2, 4
        total = self.run_program(
            machine, chroma_timing_program,
            args=(local_dims, TRAJECTORIES, md_small, cg_small))
        first = self.run_program(
            machine, chroma_timing_program,
            args=(local_dims, 1, md_small, cg_small))
        measured = total.elapsed - first.elapsed  # excludes the first update
        work_scale = (MD_STEPS * CG_ITERATIONS) / (md_small * cg_small)
        if not weak and clamped:
            measured *= 1.3  # at-the-memory-limit degradation
        global_sites = int(np.prod(local_dims)) * machine.nranks
        return self.result(
            nodes, total, variant=variant,
            fom_seconds=measured * work_scale,
            workload_clamped=(not weak and clamped),
            local_dims=local_dims, global_sites=global_sites,
            exceeds_int32=global_sites > 2 ** 31,
            md_steps=MD_STEPS, cg_iterations=CG_ITERATIONS,
            decomposition=dims_create(machine.nranks, 4),
            compute_seconds=total.compute_seconds,
            comm_seconds=total.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      variant: MemoryVariant, scale: float) -> BenchmarkResult:
        rng = np.random.default_rng(2024)
        t_extent = max(machine.nranks, int(8 * scale))
        dims = (t_extent, 4, 4, 4)
        gauge = GaugeField.hot(dims, rng)
        # genuine HMC (pure gauge; see module docstring)
        action = GaugeAction.luscher_weisz(beta=5.7)
        evolved, hmc = run_hmc(gauge, action, rng,
                               trajectories=TRAJECTORIES, steps=6, dt=0.02)
        # distributed-vs-serial plaquette at the Base tolerance
        spmd = self.run_program(machine, verification_program,
                                args=(evolved,))
        serial = average_plaquette(evolved)
        verifier = ToleranceVerifier(reference=[serial], rtol=BASE_TOLERANCE)
        check = verifier([spmd.values[0]])
        # one real fermion solve on the evolved configuration
        dirac = WilsonDirac(evolved, kappa=0.115, c_sw=1.0)
        cg = conjugate_gradient(dirac.normal_apply,
                                random_spinor(rng, dims),
                                tol=1e-8, max_iter=400)
        return self.result(
            nodes, spmd, variant=variant,
            verified=bool(check) and cg.converged and hmc.acceptance > 0,
            verification=f"{check.detail}; CG {cg.iterations} iters to "
                         f"{cg.residual:.1e}; HMC acceptance {hmc.acceptance:.2f}",
            plaquette=serial, acceptance=hmc.acceptance,
            mean_abs_dh=hmc.mean_abs_dh, cg_iterations=cg.iterations)
