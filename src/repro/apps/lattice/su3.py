"""SU(3) matrix algebra, vectorised over lattice sites.

All routines operate on arrays of shape ``(..., 3, 3)`` so an entire
gauge field (one matrix per site and direction) is processed in single
NumPy calls -- the CPU analogue of how QUDA maps sites to GPU threads.
"""

from __future__ import annotations

import numpy as np


def identity_links(shape: tuple[int, ...]) -> np.ndarray:
    """A field of identity matrices (the 'cold' gauge configuration)."""
    out = np.zeros(shape + (3, 3), dtype=np.complex128)
    out[..., 0, 0] = 1.0
    out[..., 1, 1] = 1.0
    out[..., 2, 2] = 1.0
    return out


def dagger(m: np.ndarray) -> np.ndarray:
    """Hermitian conjugate on the trailing matrix axes."""
    return np.conjugate(np.swapaxes(m, -1, -2))


def mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product on the trailing axes (broadcasts elsewhere)."""
    return a @ b


def trace(m: np.ndarray) -> np.ndarray:
    """Matrix trace on the trailing axes."""
    return np.trace(m, axis1=-2, axis2=-1)


def random_algebra(rng: np.random.Generator,
                   shape: tuple[int, ...]) -> np.ndarray:
    """Gaussian su(3) algebra elements (traceless hermitian, unit
    variance per generator) -- the HMC momentum distribution."""
    a = rng.normal(size=shape + (3, 3)) + 1j * rng.normal(size=shape + (3, 3))
    h = 0.5 * (a + dagger(a))
    tr = trace(h)[..., None, None] / 3.0
    eye = np.eye(3, dtype=np.complex128)
    return h - tr * eye


def traceless_antihermitian(m: np.ndarray) -> np.ndarray:
    """Project onto the traceless anti-hermitian part (algebra direction
    of a force)."""
    ah = 0.5 * (m - dagger(m))
    tr = trace(ah)[..., None, None] / 3.0
    eye = np.eye(3, dtype=np.complex128)
    return ah - tr * eye


def expm_su3(a: np.ndarray) -> np.ndarray:
    """Matrix exponential of (anti-)hermitian 3x3 fields.

    Scaling-and-squaring with a Taylor series on the trailing axes --
    vectorised over all sites, exact to machine precision for the
    step-sized arguments HMC produces.
    """
    a = np.asarray(a, dtype=np.complex128)
    norms = np.sqrt(np.sum(np.abs(a) ** 2, axis=(-2, -1)))
    max_norm = float(norms.max()) if norms.size else 0.0
    # scale so the series converges fast, then square back
    k = max(0, int(np.ceil(np.log2(max(max_norm, 1e-30) / 0.25))))
    x = a / (2 ** k)
    eye = np.broadcast_to(np.eye(3, dtype=np.complex128), a.shape).copy()
    result = eye.copy()
    term = eye.copy()
    for i in range(1, 18):
        term = term @ x / i
        result += term
        if float(np.max(np.abs(term))) < 1e-17:
            break
    for _ in range(k):
        result = result @ result
    return result


def project_su3(m: np.ndarray) -> np.ndarray:
    """Re-unitarise a near-SU(3) field (Gram-Schmidt on rows, det fix).

    Long MD trajectories accumulate rounding; production codes
    re-project periodically, and so do we.
    """
    out = np.array(m, dtype=np.complex128, copy=True)
    r0 = out[..., 0, :]
    r0 = r0 / np.linalg.norm(r0, axis=-1, keepdims=True)
    r1 = out[..., 1, :]
    r1 = r1 - np.sum(np.conjugate(r0) * r1, axis=-1, keepdims=True) * r0
    r1 = r1 / np.linalg.norm(r1, axis=-1, keepdims=True)
    r2 = np.conjugate(np.cross(r0, r1, axis=-1))
    out[..., 0, :] = r0
    out[..., 1, :] = r1
    out[..., 2, :] = r2
    return out


def random_su3(rng: np.random.Generator,
               shape: tuple[int, ...]) -> np.ndarray:
    """Haar-ish random SU(3) field (the benchmark's 'random SU(3) element
    on each link' initialisation, Sec. IV-A2b)."""
    g = rng.normal(size=shape + (3, 3)) + 1j * rng.normal(size=shape + (3, 3))
    return project_su3(g)


def is_su3(m: np.ndarray, atol: float = 1e-10) -> bool:
    """Check unitarity and unit determinant across a field."""
    prod = m @ dagger(m)
    eye = np.eye(3)
    if not np.allclose(prod, eye, atol=atol):
        return False
    det = np.linalg.det(m)
    return bool(np.allclose(det, 1.0, atol=atol))
