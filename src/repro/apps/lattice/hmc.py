"""Hybrid Monte Carlo for the gauge field.

The Chroma benchmark's kernel (Sec. IV-A2b): "a number of HMC update
trajectories are performed", with the FOM being "the total time spent in
HMC updates, excluding the first update, which includes overhead for
tuning QUDA parameters.  So a minimum of two updates must be
prescribed."

One trajectory: draw Gaussian su(3) momenta, integrate the molecular-
dynamics equations with leapfrog, and Metropolis-accept on the energy
change.  Reversibility and O(dt^2) energy conservation of the integrator
are asserted by the tests -- the standard correctness criteria for an
HMC implementation.

Substitution note (documented in DESIGN.md): the 3+1-flavour fermion
determinant enters the production benchmark through pseudofermion CG
solves; in this reproduction the *real* HMC evolves the gauge action
(pure-gauge HMC, exactly verifiable), while the timing program charges
the fermion-force CG solves through the machine model so the benchmark's
cost profile is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .gauge import GaugeAction, GaugeField
from .su3 import expm_su3, project_su3, random_algebra, trace


@dataclass
class Trajectory:
    """Bookkeeping of one HMC trajectory."""

    delta_h: float
    accepted: bool
    plaquette: float


@dataclass
class HmcResult:
    """Outcome of a sequence of trajectories."""

    trajectories: list[Trajectory] = field(default_factory=list)

    @property
    def acceptance(self) -> float:
        if not self.trajectories:
            return 0.0
        return sum(t.accepted for t in self.trajectories) / len(self.trajectories)

    @property
    def mean_abs_dh(self) -> float:
        if not self.trajectories:
            return 0.0
        return float(np.mean([abs(t.delta_h) for t in self.trajectories]))


def kinetic_energy(momenta: np.ndarray) -> float:
    """H_kin = 1/2 sum Tr(Pi^2) over all links."""
    return 0.5 * float(np.sum(trace(momenta @ momenta).real))


def leapfrog(gauge: GaugeField, momenta: np.ndarray, action: GaugeAction,
             steps: int, dt: float) -> tuple[GaugeField, np.ndarray]:
    """Leapfrog MD integration of (U, Pi); returns evolved copies.

    U evolves as ``U <- exp(i dt Pi) U``; Pi as ``Pi <- Pi - dt F``.
    """
    if steps < 1 or dt <= 0:
        raise ValueError("need steps >= 1 and dt > 0")
    g = gauge.copy()
    pi = momenta.copy()
    pi -= 0.5 * dt * action.force(g)
    for step in range(steps):
        g.u = expm_su3(1j * dt * pi) @ g.u
        if step < steps - 1:
            pi -= dt * action.force(g)
    pi -= 0.5 * dt * action.force(g)
    g.u = project_su3(g.u)
    return g, pi


def hmc_trajectory(gauge: GaugeField, action: GaugeAction,
                   rng: np.random.Generator, steps: int = 10,
                   dt: float = 0.05) -> tuple[GaugeField, Trajectory]:
    """One HMC update; returns the (possibly unchanged) field and stats."""
    from .gauge import average_plaquette

    pi = random_algebra(rng, (4,) + gauge.dims)
    h_old = kinetic_energy(pi) + action.value(gauge)
    g_new, pi_new = leapfrog(gauge, pi, action, steps, dt)
    h_new = kinetic_energy(pi_new) + action.value(g_new)
    dh = h_new - h_old
    accept = dh < 0 or rng.random() < np.exp(-dh)
    out = g_new if accept else gauge
    return out, Trajectory(delta_h=float(dh), accepted=bool(accept),
                           plaquette=average_plaquette(out))


def run_hmc(gauge: GaugeField, action: GaugeAction,
            rng: np.random.Generator, trajectories: int = 3,
            steps: int = 10, dt: float = 0.05) -> tuple[GaugeField, HmcResult]:
    """A sequence of HMC updates (the benchmark prescribes >= 2)."""
    if trajectories < 1:
        raise ValueError("need at least one trajectory")
    result = HmcResult()
    g = gauge
    for _ in range(trajectories):
        g, traj = hmc_trajectory(g, action, rng, steps=steps, dt=dt)
        result.trajectories.append(traj)
    return g, result
