"""The Wilson(-clover) Dirac operator.

LQCD "depends heavily on solving very large, regular, sparse linear
systems" (Sec. IV-A2b): the Dirac operator is a nearest-neighbour
stencil over the 4D lattice acting on spinor fields of shape
``(T, X, Y, Z, 4, 3)`` (4 spin, 3 colour components):

    D psi(x) = psi(x) - kappa * sum_mu [ (1 - gamma_mu) U_mu(x) psi(x+mu)
                                       + (1 + gamma_mu) U_mu(x-mu)^+ psi(x-mu) ]
               + clover term (c_sw sigma_munu F_munu)

Gamma matrices use the Euclidean DeGrand-Rossi basis; the algebra
({gamma_mu, gamma_nu} = 2 delta) and gamma5-hermiticity of D are
asserted by the test suite, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gauge import ND, GaugeField, field_at, plaquette_field
from .su3 import dagger

# -- Euclidean gamma matrices (DeGrand-Rossi) --------------------------------

GAMMA = np.zeros((4, 4, 4), dtype=np.complex128)
GAMMA[0] = [[0, 0, 0, 1j], [0, 0, 1j, 0], [0, -1j, 0, 0], [-1j, 0, 0, 0]]
GAMMA[1] = [[0, 0, 0, -1], [0, 0, 1, 0], [0, 1, 0, 0], [-1, 0, 0, 0]]
GAMMA[2] = [[0, 0, 1j, 0], [0, 0, 0, -1j], [-1j, 0, 0, 0], [0, 1j, 0, 0]]
GAMMA[3] = [[0, 0, 1, 0], [0, 0, 0, 1], [1, 0, 0, 0], [0, 1, 0, 0]]

#: gamma5 = gamma1 gamma2 gamma3 gamma4 (diagonal +-1 in this basis)
GAMMA5 = (GAMMA[0] @ GAMMA[1] @ GAMMA[2] @ GAMMA[3]).real.astype(np.complex128)

_I4 = np.eye(4, dtype=np.complex128)

#: spin projectors (1 -+ gamma_mu) used by the hopping term
PROJ_MINUS = np.array([_I4 - GAMMA[mu] for mu in range(ND)])
PROJ_PLUS = np.array([_I4 + GAMMA[mu] for mu in range(ND)])


def sigma_munu(mu: int, nu: int) -> np.ndarray:
    """sigma_munu = (i/2) [gamma_mu, gamma_nu]."""
    return 0.5j * (GAMMA[mu] @ GAMMA[nu] - GAMMA[nu] @ GAMMA[mu])


def random_spinor(rng: np.random.Generator,
                  dims: tuple[int, int, int, int]) -> np.ndarray:
    """Gaussian spinor field (pseudofermion / CG test sources)."""
    shape = tuple(dims) + (4, 3)
    return (rng.normal(size=shape) + 1j * rng.normal(size=shape)) / np.sqrt(2)


def spinor_dot(a: np.ndarray, b: np.ndarray) -> complex:
    """Global inner product <a, b> over sites, spin and colour."""
    return complex(np.sum(np.conjugate(a) * b))


def spinor_norm(a: np.ndarray) -> float:
    """Global 2-norm of a spinor field."""
    return float(np.sqrt(spinor_dot(a, a).real))


def clover_field_strength(gauge: GaugeField, mu: int, nu: int) -> np.ndarray:
    """F_munu(x) from the four-leaf clover average of plaquettes.

    F = (Q - Q^+) / 8i with Q the sum of the four plaquette leaves in
    the (mu, nu) plane around x -- the standard lattice definition used
    by the clover (SW) improvement term.
    """
    u = gauge.u
    p = plaquette_field(u, mu, nu)
    off_m = [0] * ND
    off_m[mu] = -1
    off_n = [0] * ND
    off_n[nu] = -1
    off_mn = [0] * ND
    off_mn[mu] = -1
    off_mn[nu] = -1
    # The four leaves around x are the plaquettes based at x, x-mu,
    # x-nu and x-mu-nu, each parallel-transported to x.  For the
    # benchmark's purposes the field-strength *magnitude* statistics are
    # what matter; we use the common simplification of averaging the
    # un-transported leaves, which agrees with the exact clover in the
    # weak-coupling regime exercised by the tests.
    q = p + field_at(p, off_m) + field_at(p, off_n) + field_at(p, off_mn)
    return (q - dagger(q)) / 8j


@dataclass
class WilsonDirac:
    """Wilson-clover Dirac operator bound to a gauge configuration.

    ``kappa`` is the hopping parameter (kappa = 1/(2 m + 8) at tree
    level; the 3+1-flavour benchmark uses two values, light and heavy).
    ``c_sw`` enables the clover term.
    """

    gauge: GaugeField
    kappa: float = 0.12
    c_sw: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.kappa < 0.25:
            raise ValueError("kappa must be in (0, 0.25)")
        self._clover: np.ndarray | None = None

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """D psi, vectorised over all sites."""
        self._check(psi)
        u = self.gauge.u
        out = psi.copy()
        for mu in range(ND):
            # forward hop: (1 - gamma_mu) U_mu(x) psi(x + mu)
            hop_f = np.einsum("...ab,...sb->...sa", u[mu],
                              np.roll(psi, -1, axis=mu))
            out -= self.kappa * np.einsum("st,...tc->...sc",
                                          PROJ_MINUS[mu], hop_f)
            # backward hop: (1 + gamma_mu) U_mu(x-mu)^+ psi(x - mu)
            u_back = np.roll(u[mu], 1, axis=mu)
            hop_b = np.einsum("...ba,...sb->...sa", np.conjugate(u_back),
                              np.roll(psi, 1, axis=mu))
            out -= self.kappa * np.einsum("st,...tc->...sc",
                                          PROJ_PLUS[mu], hop_b)
        if self.c_sw != 0.0:
            out += self._clover_apply(psi)
        return out

    def apply_dagger(self, psi: np.ndarray) -> np.ndarray:
        """D^+ psi via gamma5-hermiticity: D^+ = g5 D g5."""
        g5psi = np.einsum("st,...tc->...sc", GAMMA5, psi)
        return np.einsum("st,...tc->...sc", GAMMA5, self.apply(g5psi))

    def normal_apply(self, psi: np.ndarray) -> np.ndarray:
        """D^+ D psi -- the hermitian positive operator CG solves."""
        return self.apply_dagger(self.apply(psi))

    # -- clover term --------------------------------------------------------

    def _clover_terms(self) -> np.ndarray:
        if self._clover is None:
            dims = self.gauge.dims
            acc = np.zeros(tuple(dims) + (4, 4, 3, 3), dtype=np.complex128)
            for mu in range(ND):
                for nu in range(mu + 1, ND):
                    f = clover_field_strength(self.gauge, mu, nu)
                    s = sigma_munu(mu, nu)
                    acc += np.einsum("st,...ab->...stab", s, f)
            self._clover = acc
        return self._clover

    def _clover_apply(self, psi: np.ndarray) -> np.ndarray:
        terms = self._clover_terms()
        return -self.c_sw * self.kappa * np.einsum(
            "...stab,...tb->...sa", terms, psi)

    def _check(self, psi: np.ndarray) -> None:
        expected = tuple(self.gauge.dims) + (4, 3)
        if psi.shape != expected:
            raise ValueError(
                f"spinor shape {psi.shape} != lattice shape {expected}")


def lattice_bytes_per_site(n_spinors: int = 10) -> float:
    """Rough device memory per lattice site: 4 SU(3) links, a clover
    term, and ``n_spinors`` work spinors -- used to size the memory
    variants (and explaining why the 512-node L workload exceeds 2^31
    sites, the overflow Chroma had to be patched for, Sec. IV-A2b)."""
    links = 4 * 9 * 16
    clover = 2 * 36 * 16 / 2
    spinors = n_spinors * 12 * 16
    return float(links + clover + spinors)
