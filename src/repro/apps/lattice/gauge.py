"""Gauge fields, Wilson loops, and the Wilson / Lüscher-Weisz actions.

The Chroma benchmark (Sec. IV-A2b) performs HMC updates with the
Lüscher-Weisz gauge action (plaquette + rectangle) on a 4D lattice
initialised "with a random SU(3) element on each link".  Fields are
stored as ``U[mu, t, x, y, z, a, b]`` with periodic boundaries.

Staples (the link derivatives of the loop sums) are built mechanically
from *path products*: a loop containing link ``U_mu(x)`` contributes the
ordered product of its remaining links, walked from ``x + mu`` back to
``x``.  The test suite validates the resulting forces against numerical
derivatives of the action, so no hand-derived sign survives unchecked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .su3 import dagger, identity_links, random_su3, trace

#: number of space-time dimensions
ND = 4

#: a path step: (direction, +1 forward / -1 backward)
Step = tuple[int, int]


def fwd(field: np.ndarray, mu: int) -> np.ndarray:
    """``fwd(f, mu)[x] = f[x + mu]`` (periodic)."""
    return np.roll(field, -1, axis=mu)


def field_at(field: np.ndarray, offset: Sequence[int]) -> np.ndarray:
    """``field_at(f, d)[x] = f[x + d]`` for a 4-vector offset."""
    out = field
    for axis, o in enumerate(offset):
        if o:
            out = np.roll(out, -o, axis=axis)
    return out


def path_product(u: np.ndarray, start: Sequence[int],
                 steps: Sequence[Step]) -> np.ndarray:
    """Ordered product of links along a path, as a field over sites x.

    The path starts at ``x + start`` and each step moves one lattice
    unit: a ``(mu, +1)`` step multiplies ``U_mu`` at the current point,
    a ``(mu, -1)`` step multiplies ``U_mu^+`` of the point stepped to.
    """
    off = list(start)
    result: np.ndarray | None = None
    for mu, sign in steps:
        if sign == +1:
            factor = field_at(u[mu], off)
            off[mu] += 1
        elif sign == -1:
            off[mu] -= 1
            factor = dagger(field_at(u[mu], off))
        else:
            raise ValueError("step sign must be +1 or -1")
        result = factor if result is None else result @ factor
    if result is None:
        raise ValueError("empty path")
    if any(o != 0 for o in off):
        raise ValueError(f"path is not closed back to x: ends at offset {off}")
    return result


@dataclass
class GaugeField:
    """An SU(3) gauge configuration on a 4D periodic lattice."""

    u: np.ndarray  # (4, T, X, Y, Z, 3, 3)

    @classmethod
    def cold(cls, dims: tuple[int, int, int, int]) -> "GaugeField":
        """Unit links everywhere (plaquette exactly 1)."""
        _check_dims(dims)
        return cls(u=identity_links((ND,) + tuple(dims)))

    @classmethod
    def hot(cls, dims: tuple[int, int, int, int],
            rng: np.random.Generator) -> "GaugeField":
        """Random SU(3) on every link (the benchmark initialisation)."""
        _check_dims(dims)
        return cls(u=random_su3(rng, (ND,) + tuple(dims)))

    @property
    def dims(self) -> tuple[int, int, int, int]:
        return tuple(self.u.shape[1:5])

    @property
    def volume(self) -> int:
        t, x, y, z = self.dims
        return t * x * y * z

    def copy(self) -> "GaugeField":
        return GaugeField(u=self.u.copy())


def _check_dims(dims: Sequence[int]) -> None:
    if len(dims) != ND or any(d < 2 for d in dims):
        raise ValueError(f"need 4 lattice extents >= 2, got {tuple(dims)}")


def plaquette_field(u: np.ndarray, mu: int, nu: int) -> np.ndarray:
    """P_munu(x): the 1x1 Wilson loop in the (mu, nu) plane at x."""
    if mu == nu:
        raise ValueError("plaquette needs two distinct directions")
    return path_product(u, (0, 0, 0, 0),
                        [(mu, +1), (nu, +1), (mu, -1), (nu, -1)])


def rectangle_field(u: np.ndarray, mu: int, nu: int) -> np.ndarray:
    """R_munu(x): the 2x1 loop, long side along mu."""
    if mu == nu:
        raise ValueError("rectangle needs two distinct directions")
    return path_product(u, (0, 0, 0, 0),
                        [(mu, +1), (mu, +1), (nu, +1),
                         (mu, -1), (mu, -1), (nu, -1)])


def average_plaquette(gauge: GaugeField) -> float:
    """Average of Re Tr P / 3 over all sites and the 6 planes.

    1.0 on a cold configuration; this is the scalar Chroma-style runs
    verify against a reference value within tolerance (1e-10 Base,
    1e-8 High-Scaling).
    """
    total = sum(float(np.sum(trace(plaquette_field(gauge.u, mu, nu)).real))
                for mu in range(ND) for nu in range(mu + 1, ND))
    return total / (3.0 * 6 * gauge.volume)


def average_rectangle(gauge: GaugeField) -> float:
    """Average of Re Tr R / 3 over sites and the 12 (mu-long, nu) pairs."""
    total = sum(float(np.sum(trace(rectangle_field(gauge.u, mu, nu)).real))
                for mu in range(ND) for nu in range(ND) if mu != nu)
    return total / (3.0 * 12 * gauge.volume)


def _plaquette_staples(mu: int) -> list[tuple[Sequence[int], list[Step]]]:
    """The two plaquette staples per transverse direction: paths from
    x + mu back to x whose product closes a plaquette through U_mu(x)."""
    staples = []
    for nu in range(ND):
        if nu == mu:
            continue
        start = [0] * ND
        start[mu] = 1
        staples.append((tuple(start), [(nu, +1), (mu, -1), (nu, -1)]))
        staples.append((tuple(start), [(nu, -1), (mu, -1), (nu, +1)]))
    return staples


def _rectangle_staples(mu: int) -> list[tuple[Sequence[int], list[Step]]]:
    """The six rectangle staples per transverse direction.

    U_mu(x) occurs in mu-long rectangles at two positions (first or
    second long-side link) and in nu-long rectangles once, each in both
    nu orientations -- six paths from x + mu back to x.
    """
    staples = []
    for nu in range(ND):
        if nu == mu:
            continue
        start = [0] * ND
        start[mu] = 1
        s = tuple(start)
        for sgn in (+1, -1):
            # link is the FIRST long-side link: remainder goes one more mu
            staples.append((s, [(mu, +1), (nu, sgn), (mu, -1), (mu, -1),
                                (nu, -sgn)]))
            # link is the SECOND long-side link: remainder wraps behind x
            staples.append((s, [(nu, sgn), (mu, -1), (mu, -1), (nu, -sgn),
                                (mu, +1)]))
            # link is the short side of a nu-long rectangle
            staples.append((s, [(nu, sgn), (nu, sgn), (mu, -1), (nu, -sgn),
                                (nu, -sgn)]))
    return staples


def staple_sum(u: np.ndarray, mu: int,
               rectangles: bool = False) -> np.ndarray:
    """Sum of staples around U_mu(x) for the plaquette (or rectangle)
    part of the action, such that summing ``Re Tr[U_mu(x) @ staple]``
    over x counts every loop containing the link once per occurrence."""
    paths = _rectangle_staples(mu) if rectangles else _plaquette_staples(mu)
    acc = np.zeros_like(u[mu])
    for start, steps in paths:
        acc += path_product(u, start, steps)
    return acc


@dataclass(frozen=True)
class GaugeAction:
    """Plaquette(+rectangle) gauge action.

    ``c1 = 0`` gives the Wilson action; the tree-level Lüscher-Weisz
    improvement is ``c1 = -1/12`` with ``c0 = 1 - 8 c1``.
    """

    beta: float = 5.7
    c1: float = 0.0

    @property
    def c0(self) -> float:
        return 1.0 - 8.0 * self.c1

    @classmethod
    def luscher_weisz(cls, beta: float = 5.7) -> "GaugeAction":
        return cls(beta=beta, c1=-1.0 / 12.0)

    def value(self, gauge: GaugeField) -> float:
        """S(U) = beta * [c0 sum_P (1 - ReTr P/3) + c1 sum_R (1 - ReTr R/3)]."""
        v = gauge.volume
        s = self.beta * self.c0 * 6 * v * (1.0 - average_plaquette(gauge))
        if self.c1 != 0.0:
            s += self.beta * self.c1 * 12 * v * (1.0 - average_rectangle(gauge))
        return s

    def force(self, gauge: GaugeField) -> np.ndarray:
        """dS/dU as hermitian traceless fields, one per direction.

        With links evolved as ``U <- exp(i dt Pi) U`` and momenta as
        ``Pi <- Pi - dt F``, this force conserves the HMC Hamiltonian to
        O(dt^2) (validated numerically in the tests).  Derivation: along
        ``U_mu(x) -> exp(i eps X) U_mu(x)`` the loop sums change by
        ``-Im Tr[X W]`` with ``W = U_mu(x) @ staples``, so
        ``dS/dX = (beta c / 3) * herm_traceless((W - W^+) / 2i)``.
        """
        u = gauge.u
        out = np.zeros_like(u)
        eye = np.eye(3, dtype=np.complex128)
        for mu in range(ND):
            w = (self.c0 * (u[mu] @ staple_sum(u, mu, rectangles=False)))
            if self.c1 != 0.0:
                w = w + self.c1 * (u[mu] @ staple_sum(u, mu, rectangles=True))
            a = (w - dagger(w)) / 2j
            a = a - (trace(a) / 3.0)[..., None, None] * eye
            out[mu] = (self.beta / 3.0) * a
        return out
