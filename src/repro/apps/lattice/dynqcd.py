"""The DynQCD benchmark (CPU-only, Base 8 Cluster nodes).

Workload: "generates 600 quark propagators using a conjugate gradient
solver for sparse LQCD fermion matrices, with high demands to the memory
sub-system" -- i.e. repeated fixed-iteration CG solves of the Wilson
system, memory-bandwidth-bound on the CPU module.

Real mode performs genuine (scaled-down) propagator solves with the
shared Wilson operator and verifies the residuals; timing mode charges
the 600-solve schedule with a strongly bandwidth-limited compute profile
(low arithmetic efficiency, high bytes/site), which is what
distinguishes this benchmark's hardware demands from Chroma's
GPU-tensor-friendly profile.
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...vmpi import Phantom
from ...vmpi.decomposition import CartGrid, halo_exchange, phantom_faces
from ...vmpi.machine import Machine
from ..base import AppBenchmark, pow2_floor
from .cg import conjugate_gradient
from .dirac import WilsonDirac, random_spinor
from .gauge import GaugeField

#: the benchmark's propagator count
PROPAGATORS = 600
#: fixed CG iteration cutoff per propagator (robustness rule, Sec. V-B)
CG_ITERATIONS = 250
#: per-CPU-rank local lattice (memory-per-socket sized)
LOCAL_DIMS = (16, 16, 16, 8)
HALO_BYTES_PER_SITE = 96
DSLASH_FLOPS_PER_SITE = 1464.0
#: CPU Dslash is memory-bound: ~2.9 KB of traffic per site
DSLASH_BYTES_PER_SITE = 2880.0


def dynqcd_timing_program(comm, local_dims, propagators: int, cg_iters: int):
    """Phantom-cost propagator generation on the CPU module."""
    cart = CartGrid.for_ranks(comm.size, 4, periodic=True)
    faces = phantom_faces(local_dims, itemsize=HALO_BYTES_PER_SITE)
    local_sites = float(np.prod(local_dims))
    for _prop in range(propagators):
        for _it in range(cg_iters):
            for _ in range(2):
                yield from halo_exchange(comm, cart, faces)
                yield comm.compute(
                    flops=DSLASH_FLOPS_PER_SITE * local_sites,
                    bytes_moved=DSLASH_BYTES_PER_SITE * local_sites,
                    efficiency=0.65, label="dslash")  # bandwidth-bound
            yield comm.allreduce(Phantom(16.0), label="cg-reduce")
            yield comm.allreduce(Phantom(16.0), label="cg-reduce")
    return propagators * cg_iters


class DynqcdBenchmark(AppBenchmark):
    """Runnable DynQCD benchmark (JUWELS Cluster target)."""

    NAME = "DynQCD"
    fom = FigureOfMerit(name="600-propagator runtime", unit="s")

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        ranks = pow2_floor(nodes * 2)  # 2 sockets per Cluster node
        used_nodes = max(1, ranks // 2)
        machine = Machine.on(self.system().with_nodes(max(used_nodes, 1)),
                             nranks=ranks, ranks_per_node=min(2, ranks))
        if real:
            return self._execute_real(used_nodes, machine, scale)
        # Fixed Base workload (sized for the 8-node / 16-socket
        # reference), strong-scaled over the job's ranks.
        total_sites = float(np.prod(LOCAL_DIMS)) * \
            self.info.reference_nodes * 2
        edge = max(2, int((total_sites / machine.nranks) ** 0.25))
        local_dims = (edge,) * 4
        # reduced proportional schedule, scaled to the full 600 x 250
        props_small, iters_small = 2, 3
        spmd = self.run_program(
            machine, dynqcd_timing_program,
            args=(local_dims, props_small, iters_small))
        work_scale = (PROPAGATORS * CG_ITERATIONS) / (props_small * iters_small)
        return self.result(
            used_nodes, spmd, fom_seconds=spmd.elapsed * work_scale,
            propagators=PROPAGATORS, cg_iterations=CG_ITERATIONS,
            local_dims=LOCAL_DIMS,
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        rng = np.random.default_rng(600)
        dims = (8, 4, 4, 4)
        gauge = GaugeField.hot(dims, rng)
        dirac = WilsonDirac(gauge, kappa=0.118)
        n_props = max(2, int(6 * scale))
        residuals = []
        for _ in range(n_props):
            src = random_spinor(rng, dims)
            res = conjugate_gradient(dirac.normal_apply, src,
                                     tol=1e-8, max_iter=500)
            residuals.append(res.residual)
        ok = all(r <= 1e-8 for r in residuals)

        def tiny_program(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny_program)
        return self.result(
            nodes, spmd,
            fom_seconds=max(spmd.elapsed, 1e-6),
            verified=ok,
            verification=f"{n_props} propagators solved; worst residual "
                         f"{max(residuals):.2e}",
            propagators=n_props, residuals=residuals)
