"""Distributed Dirac operator and CG over virtual MPI.

Real mode decomposes the lattice along the T direction (1D): each rank
owns a slab of time slices plus one ghost slice per side, exchanged
before every operator application -- the same halo + global-reduction
pattern the production 4D decomposition uses, in its simplest correct
form.  The distributed operator and CG are verified element-wise against
the single-process implementations.

The Chroma/DynQCD *timing* programs charge the full 4D decomposition
(surface-to-volume communication in all four directions) through the
machine model; see :mod:`.chroma`.
"""

from __future__ import annotations

import numpy as np

from ...vmpi import Comm
from ...vmpi.decomposition import block_partition
from .cg import CgResult
from .dirac import GAMMA5, ND, PROJ_MINUS, PROJ_PLUS, WilsonDirac
from .gauge import GaugeField


class SlabDirac:
    """Rank-local Wilson operator on a T-slab with ghost slices.

    ``u_local`` holds the slab's links *plus* the backward neighbour's
    last time-slice of U_t (needed by the backward hop).
    """

    def __init__(self, u_slab: np.ndarray, u_t_ghost: np.ndarray,
                 kappa: float):
        self.u = u_slab            # (4, Tloc, X, Y, Z, 3, 3)
        self.u_t_back = u_t_ghost  # (X, Y, Z, 3, 3): U_t on slice t0-1
        self.kappa = kappa

    def apply(self, psi: np.ndarray, ghost_fwd: np.ndarray,
              ghost_bwd: np.ndarray) -> np.ndarray:
        """D psi on the slab given neighbour ghost spinor slices.

        ``ghost_fwd`` is psi on the first slice of the forward (t+)
        neighbour; ``ghost_bwd`` the last slice of the backward one.
        """
        u = self.u
        kappa = self.kappa
        out = psi.copy()
        # spatial directions: fully local, periodic roll inside the slab
        for mu in range(1, ND):
            hop_f = np.einsum("...ab,...sb->...sa", u[mu],
                              np.roll(psi, -1, axis=mu))
            out -= kappa * np.einsum("st,...tc->...sc", PROJ_MINUS[mu], hop_f)
            u_back = np.roll(u[mu], 1, axis=mu)
            hop_b = np.einsum("...ba,...sb->...sa", np.conjugate(u_back),
                              np.roll(psi, 1, axis=mu))
            out -= kappa * np.einsum("st,...tc->...sc", PROJ_PLUS[mu], hop_b)
        # time direction: neighbours come from the ghosts
        psi_fwd = np.concatenate([psi[1:], ghost_fwd[None]], axis=0)
        hop_f = np.einsum("...ab,...sb->...sa", u[0], psi_fwd)
        out -= kappa * np.einsum("st,...tc->...sc", PROJ_MINUS[0], hop_f)
        psi_bwd = np.concatenate([ghost_bwd[None], psi[:-1]], axis=0)
        u_back = np.concatenate([self.u_t_back[None], u[0][:-1]], axis=0)
        hop_b = np.einsum("...ba,...sb->...sa", np.conjugate(u_back), psi_bwd)
        out -= kappa * np.einsum("st,...tc->...sc", PROJ_PLUS[0], hop_b)
        return out


def slab_of(field: np.ndarray, rank: int, ranks: int) -> np.ndarray:
    """This rank's T-slab of a site-major field."""
    lo, hi = block_partition(field.shape[0], ranks)[rank]
    return np.ascontiguousarray(field[lo:hi])


def distribute_gauge(gauge: GaugeField, rank: int, ranks: int,
                     kappa: float) -> SlabDirac:
    """Build the rank-local operator from the full configuration.

    (In a production code the field is read distributed; here the test
    configuration is small enough to slice.)
    """
    t_extent = gauge.dims[0]
    if ranks > t_extent:
        raise ValueError(f"{ranks} ranks exceed T extent {t_extent}")
    lo, hi = block_partition(t_extent, ranks)[rank]
    if hi - lo < 1:
        raise ValueError("each rank needs at least one time slice")
    u_slab = np.ascontiguousarray(gauge.u[:, lo:hi])
    u_t_ghost = gauge.u[0, (lo - 1) % t_extent].copy()
    return SlabDirac(u_slab=u_slab, u_t_ghost=u_t_ghost, kappa=kappa)


def exchange_t_ghosts(comm: Comm, psi: np.ndarray):
    """Swap boundary time-slices with the T-ring neighbours (generator).

    Returns (ghost_fwd, ghost_bwd): the forward neighbour's first slice
    and the backward neighbour's last slice.
    """
    fwd_rank = (comm.rank + 1) % comm.size
    bwd_rank = (comm.rank - 1) % comm.size
    # send my first slice backward / receive forward neighbour's first
    ghost_fwd = yield comm.sendrecv(bwd_rank, np.ascontiguousarray(psi[0]),
                                    fwd_rank, tag=31)
    # send my last slice forward / receive backward neighbour's last
    ghost_bwd = yield comm.sendrecv(fwd_rank, np.ascontiguousarray(psi[-1]),
                                    bwd_rank, tag=32)
    return ghost_fwd, ghost_bwd


def dist_apply_dirac(comm: Comm, op: SlabDirac, psi: np.ndarray,
                     dagger: bool = False):
    """Distributed D (or D^+) application (generator)."""
    work = psi
    if dagger:
        work = np.einsum("st,...tc->...sc", GAMMA5, work)
    ghost_fwd, ghost_bwd = yield from exchange_t_ghosts(comm, work)
    out = op.apply(work, ghost_fwd, ghost_bwd)
    if dagger:
        out = np.einsum("st,...tc->...sc", GAMMA5, out)
    sites = psi.size // 12
    yield comm.compute(flops=1464.0 * sites, bytes_moved=psi.nbytes * 3.0,
                       efficiency=0.35, label="dslash")
    return out


def dist_normal_apply(comm: Comm, op: SlabDirac, psi: np.ndarray):
    """Distributed D^+ D application (generator)."""
    dpsi = yield from dist_apply_dirac(comm, op, psi, dagger=False)
    out = yield from dist_apply_dirac(comm, op, dpsi, dagger=True)
    return out


def dist_dot(comm: Comm, a: np.ndarray, b: np.ndarray):
    """Global spinor inner product across all slabs (generator)."""
    local = complex(np.sum(np.conjugate(a) * b))
    total = yield comm.allreduce(np.array([local]), label="cg-reduce")
    return complex(total[0])


def dist_cg(comm: Comm, op: SlabDirac, b: np.ndarray,
            tol: float = 1e-8, max_iter: int = 1000,
            fixed_iterations: int | None = None):
    """Distributed CG on D^+ D x = b (generator; one slab per rank)."""
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rr = (yield from dist_dot(comm, r, r)).real
    bb = (yield from dist_dot(comm, b, b)).real
    b_norm = float(np.sqrt(bb))
    if b_norm == 0.0:
        return CgResult(x=x, iterations=0, residual=0.0, converged=True,
                        residual_history=[0.0])
    limit = fixed_iterations if fixed_iterations is not None else max_iter
    history = [float(np.sqrt(rr)) / b_norm]
    it = 0
    for it in range(1, limit + 1):
        ap = yield from dist_normal_apply(comm, op, p)
        p_ap = (yield from dist_dot(comm, p, ap)).real
        alpha = rr / p_ap
        x += alpha * p
        r -= alpha * ap
        rr_new = (yield from dist_dot(comm, r, r)).real
        rel = float(np.sqrt(rr_new)) / b_norm
        history.append(rel)
        if fixed_iterations is None and rel <= tol:
            rr = rr_new
            break
        p = r + (rr_new / rr) * p
        rr = rr_new
    return CgResult(x=x, iterations=it, residual=history[-1],
                    converged=history[-1] <= tol, residual_history=history)
