"""Shallow-water dynamics on a periodic structured grid.

A faithful proxy for ICON's non-hydrostatic dynamical core profile: a
horizontally-explicit time-stepped structured-grid stencil with
conserved invariants.  The rotating shallow-water equations (f-plane)
carry the same numerical character -- nearest-neighbour flux stencils,
CFL-limited explicit stepping, conservation laws to verify against
(mass exactly, energy to discretisation order), and a geostrophic
steady state as an analytic anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ShallowWaterState:
    """Height field h and velocities (u, v) on an (nx, ny) C-ish grid."""

    h: np.ndarray
    u: np.ndarray
    v: np.ndarray
    dx: float
    dy: float
    g: float = 9.81
    f: float = 1e-4   # Coriolis parameter

    def __post_init__(self) -> None:
        if not (self.h.shape == self.u.shape == self.v.shape):
            raise ValueError("h, u, v must share a shape")
        if np.any(self.h <= 0):
            raise ValueError("layer depth must stay positive")

    @property
    def shape(self) -> tuple[int, int]:
        return self.h.shape

    def mass(self) -> float:
        """Total fluid mass (exactly conserved by the flux form)."""
        return float(np.sum(self.h)) * self.dx * self.dy

    def energy(self) -> float:
        """Total energy: kinetic + potential."""
        ke = 0.5 * float(np.sum(self.h * (self.u ** 2 + self.v ** 2)))
        pe = 0.5 * self.g * float(np.sum(self.h ** 2))
        return (ke + pe) * self.dx * self.dy

    def courant_dt(self, safety: float = 0.4) -> float:
        """CFL-stable step from the gravity-wave speed."""
        c = np.sqrt(self.g * float(self.h.max()))
        umax = float(np.abs(self.u).max() + np.abs(self.v).max()) + c
        return safety * min(self.dx, self.dy) / max(umax, 1e-12)


def _ddx(a: np.ndarray, dx: float) -> np.ndarray:
    return (np.roll(a, -1, axis=0) - np.roll(a, 1, axis=0)) / (2 * dx)


def _ddy(a: np.ndarray, dy: float) -> np.ndarray:
    return (np.roll(a, -1, axis=1) - np.roll(a, 1, axis=1)) / (2 * dy)


def tendencies(s: ShallowWaterState) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Right-hand sides (dh/dt, du/dt, dv/dt), flux form for mass."""
    dh = -(_ddx(s.h * s.u, s.dx) + _ddy(s.h * s.v, s.dy))
    du = (-s.u * _ddx(s.u, s.dx) - s.v * _ddy(s.u, s.dy)
          - s.g * _ddx(s.h, s.dx) + s.f * s.v)
    dv = (-s.u * _ddx(s.v, s.dx) - s.v * _ddy(s.v, s.dy)
          - s.g * _ddy(s.h, s.dy) - s.f * s.u)
    return dh, du, dv


def step_rk3(s: ShallowWaterState, dt: float) -> None:
    """Third-order SSP Runge-Kutta step (ICON-like explicit stepping)."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    h0, u0, v0 = s.h.copy(), s.u.copy(), s.v.copy()
    for frac_old, frac_new in ((0.0, 1.0), (0.75, 0.25), (1.0 / 3, 2.0 / 3)):
        dh, du, dv = tendencies(s)
        s.h = frac_old * h0 + frac_new * (s.h + dt * dh)
        s.u = frac_old * u0 + frac_new * (s.u + dt * du)
        s.v = frac_old * v0 + frac_new * (s.v + dt * dv)


def gaussian_hill(nx: int, ny: int, dx: float = 1.0, dy: float = 1.0,
                  h0: float = 10.0, amp: float = 0.1) -> ShallowWaterState:
    """A Gaussian height anomaly at rest (gravity-wave test case)."""
    x = (np.arange(nx) - nx / 2)[:, None] * dx
    y = (np.arange(ny) - ny / 2)[None, :] * dy
    h = h0 + amp * np.exp(-(x ** 2 + y ** 2) / (nx * dx / 10) ** 2)
    return ShallowWaterState(h=h, u=np.zeros((nx, ny)),
                             v=np.zeros((nx, ny)), dx=dx, dy=dy)


def geostrophic_state(nx: int, ny: int, dx: float = 1.0, dy: float = 1.0,
                      h0: float = 10.0, amp: float = 0.01,
                      f: float = 0.5, g: float = 9.81) -> ShallowWaterState:
    """A geostrophically balanced jet: h varies in y, u balances it.

    An exact steady state of the f-plane equations (up to the advection
    of the balanced flow, which vanishes for this x-independent setup);
    drift from it measures the dynamical core's accuracy.
    """
    y = (np.arange(ny) + 0.5) / ny
    h1d = h0 + amp * np.sin(2 * np.pi * y)
    dhdy = amp * 2 * np.pi / (ny * dy) * np.cos(2 * np.pi * y)
    u1d = -(g / f) * dhdy
    h = np.broadcast_to(h1d[None, :], (nx, ny)).copy()
    u = np.broadcast_to(u1d[None, :], (nx, ny)).copy()
    return ShallowWaterState(h=h, u=u, v=np.zeros((nx, ny)), dx=dx, dy=dy,
                             g=g, f=f)
