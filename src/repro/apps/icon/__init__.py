"""ICON: icosahedral non-hydrostatic weather & climate model."""

from .benchmark import (
    FOM_STEPS,
    SUBCASES,
    IconBenchmark,
    icon_timing_program,
)
from .dynamics import (
    ShallowWaterState,
    gaussian_hill,
    geostrophic_state,
    step_rk3,
    tendencies,
)

__all__ = [
    "FOM_STEPS", "IconBenchmark", "SUBCASES", "ShallowWaterState",
    "gaussian_hill", "geostrophic_state", "icon_timing_program",
    "step_rk3", "tendencies",
]
