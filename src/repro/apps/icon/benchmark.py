"""The ICON benchmark (Base; R02B09 at 120 nodes, R02B10 at 300).

The benchmark (Sec. IV-A1b) is a global atmospheric forecast in two
resolutions: R02B09 (5 km, 120 nodes) and R02B10 (2.5 km, 300 nodes).
"A unique aspect of the ICON benchmark is its large input dataset:
R02B09 requires 1.8 TB of data, R02B10 needs 4.5 TB.  Therefore, the
ICON benchmark also tests the performance of I/O operations" -- the
timing program stages the input through the storage model before the
stepping loop.

Real mode runs the shallow-water dynamical-core proxy and applies the
model-based verification of Sec. V-A: exact mass conservation, bounded
energy drift, and persistence of a geostrophically balanced state.
"""

from __future__ import annotations

import numpy as np

from ...cluster.storage import StorageModel
from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...core.verification import ModelVerifier
from ...units import MIB, TERA
from ...vmpi.decomposition import CartGrid, halo_exchange_op, phantom_faces
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .dynamics import gaussian_hill, geostrophic_state, step_rk3

#: the two sub-benchmarks: icosahedral cell counts, input data, nodes
SUBCASES = {
    "R02B09": {"cells": 20_971_520, "input_bytes": 1.8 * TERA, "nodes": 120,
               "resolution_km": 5.0},
    "R02B10": {"cells": 83_886_080, "input_bytes": 4.5 * TERA, "nodes": 300,
               "resolution_km": 2.5},
}
VERTICAL_LEVELS = 90
FOM_STEPS = 7200           # forecast steps charged by the FOM (2.5-day
# forecast at the R02B09 time step)
#: per-cell-level arithmetic of one dynamics step (stencils + vertical
#: implicit solve + physics parameterisations)
FLOPS_PER_CELL_LEVEL = 1200.0
BYTES_PER_CELL_LEVEL = 2000.0


def icon_timing_program(comm, cells: float, input_bytes: float,
                        steps: int, io_seconds: float):
    """Input staging + horizontally decomposed forecast stepping."""
    cart = CartGrid.for_ranks(comm.size, 2, periodic=True)
    cells_local = cells / comm.size
    cols = max(cells_local ** 0.5, 1.0)
    local_dims = (int(cols) + 1, int(cols) + 1)
    faces = phantom_faces(local_dims,
                          itemsize=int(8 * VERTICAL_LEVELS * 3))
    # parallel read of the initial state (every rank takes its share)
    yield comm.elapse(io_seconds, label="input-staging")
    yield comm.barrier(label="startup")
    work = cells_local * VERTICAL_LEVELS
    # The forecast step is a constant program: hoist its ops once
    # (persistent-request style) and yield them as one fused batch.
    halo, _keys = halo_exchange_op(comm, cart, faces)
    forecast_step = (
        comm.compute(flops=work * FLOPS_PER_CELL_LEVEL * 0.7,
                     bytes_moved=work * BYTES_PER_CELL_LEVEL * 0.7,
                     efficiency=0.35, label="dynamics"),
        comm.compute(flops=work * FLOPS_PER_CELL_LEVEL * 0.3,
                     bytes_moved=work * BYTES_PER_CELL_LEVEL * 0.3,
                     efficiency=0.35, label="physics"),
        halo,
    )
    for _step in range(steps):
        yield forecast_step
    return cells_local


class IconBenchmark(AppBenchmark):
    """Runnable ICON benchmark."""

    NAME = "ICON"
    fom = FigureOfMerit(name="forecast runtime (incl. input staging)",
                        unit="s")

    def __init__(self, subcase: str = "R02B09") -> None:
        super().__init__()
        if subcase not in SUBCASES:
            raise ValueError(f"unknown ICON sub-benchmark {subcase!r}")
        self.subcase = subcase

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        case = SUBCASES[self.subcase]
        storage = StorageModel()
        io_seconds = storage.transfer_time(case["input_bytes"], nodes,
                                           transfer_size=16 * MIB,
                                           write=False)
        steps_small = 4
        spmd = self.run_program(machine, icon_timing_program,
                                args=(float(case["cells"]),
                                      case["input_bytes"], steps_small,
                                      io_seconds))
        stepping = spmd.elapsed - io_seconds
        fom = io_seconds + stepping * (FOM_STEPS / steps_small)
        return self.result(
            nodes, spmd, fom_seconds=fom,
            subcase=self.subcase, cells=case["cells"],
            input_bytes=case["input_bytes"], io_seconds=io_seconds,
            io_fraction=io_seconds / fom,
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        n = max(24, int(48 * scale))
        steps = max(30, int(80 * scale))
        # gravity-wave case: mass + energy conservation
        state = gaussian_hill(n, n)
        mass0, energy0 = state.mass(), state.energy()
        dt = state.courant_dt()
        for _ in range(steps):
            step_rk3(state, dt)
        mass_err = abs(state.mass() - mass0) / mass0
        energy_err = abs(state.energy() - energy0) / energy0
        # geostrophic balance persistence
        geo = geostrophic_state(8, n)
        u0 = geo.u.copy()
        dtg = geo.courant_dt()
        for _ in range(steps):
            step_rk3(geo, dtg)
        geo_drift = float(np.max(np.abs(geo.u - u0)) /
                          max(np.max(np.abs(u0)), 1e-12))
        verifier = ModelVerifier(checks={
            "mass_conservation": (lambda r: r["mass"], 0.0, 1e-12),
            "energy_drift": (lambda r: r["energy"], 0.0, 1e-3),
            "geostrophic_drift": (lambda r: r["geo"], 0.0, 0.05),
        })
        check = verifier({"mass": mass_err, "energy": energy_err,
                          "geo": geo_drift})

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        return self.result(
            nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
            verified=bool(check), verification=check.detail,
            mass_error=mass_err, energy_error=energy_err,
            geostrophic_drift=geo_drift)
