"""Distributed 3D FFT with slab decomposition (the QE kernel).

"The dominant kernel in QE performs a three-dimensional FFT, which is
usually a memory-bound kernel and is communication-bound for large
systems" (Sec. IV-A1e).  The classic slab scheme: each rank owns a slab
of z-planes, transforms locally in (x, y), transposes the distributed
array with an alltoall, and finishes with the z transforms.  The
implementation moves *real data* through the virtual-MPI alltoall and
is verified element-wise against ``np.fft.fftn``.
"""

from __future__ import annotations

import numpy as np

from ...vmpi import Comm
from ...vmpi.decomposition import block_partition


def slab_range(n: int, rank: int, ranks: int) -> tuple[int, int]:
    """This rank's contiguous slab of the leading axis."""
    return block_partition(n, ranks)[rank]


def dist_fft3(comm: Comm, local: np.ndarray, nz: int):
    """Forward 3D FFT of a z-slab-decomposed array (generator).

    ``local`` has shape (nz_local, ny, nx): this rank's z-planes.  The
    result is distributed over the *y* axis: shape (ny_local, nz, nx)
    with axes ordered (y, z, x) -- the standard post-transpose layout.
    Use ``yield from``.
    """
    if local.ndim != 3:
        raise ValueError("local slab must be 3D (nz_local, ny, nx)")
    p = comm.size
    _, ny, nx = local.shape
    # 1) local 2D FFTs in (y, x) on each owned z-plane
    stage1 = np.fft.fft2(local, axes=(1, 2))
    # 2) transpose: send y-blocks of my z-planes to the rank owning them
    chunks = []
    for r in range(p):
        ylo, yhi = slab_range(ny, r, p)
        chunks.append(np.ascontiguousarray(stage1[:, ylo:yhi, :]))
    received = yield comm.alltoall(chunks)
    # assemble (ny_local, nz, nx): received[r] is (nz_r, ny_local, nx)
    assembled = np.concatenate([blk.transpose(1, 0, 2) for blk in received],
                               axis=1)
    if assembled.shape[1] != nz:
        raise ValueError("z reassembly mismatch")
    # 3) local FFT along z (now axis 1)
    out = np.fft.fft(assembled, axis=1)
    return out


def dist_ifft3(comm: Comm, local_yzx: np.ndarray, nz: int, ny: int):
    """Inverse of :func:`dist_fft3` (generator): back to z slabs."""
    p = comm.size
    stage1 = np.fft.ifft(local_yzx, axis=1)  # undo z transform
    # reverse transpose: split my z-extent into the owners' slabs
    chunks = []
    for r in range(p):
        zlo, zhi = slab_range(nz, r, p)
        chunks.append(np.ascontiguousarray(
            stage1[:, zlo:zhi, :].transpose(1, 0, 2)))
    received = yield comm.alltoall(chunks)
    assembled = np.concatenate(received, axis=1)  # (nz_local, ny, nx)
    if assembled.shape[1] != ny:
        raise ValueError("y reassembly mismatch")
    return np.fft.ifft2(assembled, axes=(1, 2))


def gathered_fft3(comm: Comm, local: np.ndarray, nz: int):
    """Full forward transform gathered on every rank (test helper)."""
    out = yield from dist_fft3(comm, local, nz)
    pieces = yield comm.allgather(out)
    return np.concatenate(pieces, axis=0)  # (ny, nz, nx)
