"""The Quantum ESPRESSO benchmark (Base 8 nodes; CP on ZrO2).

The suite uses the *Car-Parrinello Molecular Dynamics* model on a slab
of ZrO2 with 792 atoms (Sec. IV-A1e).  Each CP step applies the
plane-wave Hamiltonian to every electronic band: kinetic term in
G-space, local potential in real space -- i.e. a forward + inverse
distributed 3D FFT per band per step, "memory-bound ... and
communication-bound for large systems".

Real mode applies H = -1/2 lap + V(r) to a block of bands through the
*actual* distributed FFT (verified against the serial operator) and
checks orthonormality after Gram-Schmidt -- the numerics a CP step is
made of.  Timing mode charges bands x (2 FFTs + transpose alltoalls)
plus the dense subspace linear algebra (the ELPA dependency).
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...vmpi import Phantom
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .fft3d import dist_fft3, dist_ifft3, slab_range

#: ZrO2 slab: 792 atoms, ~4 valence bands per atom
ATOMS = 792
BANDS = ATOMS * 4
#: plane-wave FFT mesh for the slab (typical 100 Ry cutoff density mesh)
MESH = (180, 180, 216)
#: CP MD steps the FOM charges
FOM_STEPS = 50


def apply_hamiltonian_serial(psi: np.ndarray, v_r: np.ndarray) -> np.ndarray:
    """Serial reference: H psi for psi given in real space.

    H = -1/2 lap + V; the Laplacian acts diagonally in G-space with
    eigenvalue -|G|^2 (unit cell of size 2 pi for simplicity).
    """
    nz, ny, nx = psi.shape
    kz = np.fft.fftfreq(nz) * nz
    ky = np.fft.fftfreq(ny) * ny
    kx = np.fft.fftfreq(nx) * nx
    g2 = (kz[:, None, None] ** 2 + ky[None, :, None] ** 2 +
          kx[None, None, :] ** 2)
    psi_g = np.fft.fftn(psi)
    kinetic = np.fft.ifftn(0.5 * g2 * psi_g)
    return kinetic + v_r * psi


def qe_real_program(comm, psi_full: np.ndarray, v_r: np.ndarray):
    """Distributed H psi via the slab FFT (generator; returns max error
    against the serial reference on this rank's slab)."""
    nz, ny, nx = psi_full.shape
    zlo, zhi = slab_range(nz, comm.rank, comm.size)
    local = psi_full[zlo:zhi].copy()
    # forward FFT -> (ny_local, nz, nx) in G space
    psi_g = yield from dist_fft3(comm, local, nz)
    kz = np.fft.fftfreq(nz) * nz
    ky = np.fft.fftfreq(ny) * ny
    kx = np.fft.fftfreq(nx) * nx
    ylo, yhi = slab_range(ny, comm.rank, comm.size)
    g2 = (ky[ylo:yhi, None, None] ** 2 + kz[None, :, None] ** 2 +
          kx[None, None, :] ** 2)
    kin_g = 0.5 * g2 * psi_g
    kinetic = yield from dist_ifft3(comm, kin_g, nz, ny)
    h_psi = kinetic + v_r[zlo:zhi] * local
    ref = apply_hamiltonian_serial(psi_full, v_r)[zlo:zhi]
    return float(np.max(np.abs(h_psi - ref)))


def qe_timing_program(comm, mesh: tuple[int, int, int], bands: int,
                      steps: int):
    """Phantom-cost CP stepping: per band two distributed FFTs with
    their transpose alltoalls, plus subspace GEMMs and an allreduce."""
    nz, ny, nx = mesh
    points = float(nz * ny * nx)
    points_local = points / comm.size
    transpose_bytes = points_local * 16.0  # complex128 slab per transpose
    # Constant ops, hoisted out of the step loop and fused into batches;
    # the uniform-Phantom alltoall states the per-pair volume directly.
    transpose = comm.alltoall(Phantom(16 * transpose_bytes / comm.size),
                              label="fft-transpose")
    band_block = (
        comm.compute(
            flops=16 * 5.0 * points_local * np.log2(max(points, 2)),
            bytes_moved=16 * points_local * 32.0,
            efficiency=0.25, label="fft"),
        transpose,  # forward + inverse transpose
        transpose,
    )
    # subspace diagonalisation / orthonormalisation (ELPA-ish GEMM);
    # the operand block is bands x points_local complex128 elements
    subspace = (
        comm.compute(flops=2.0 * bands ** 2 * points_local / 16,
                     bytes_moved=bands * points_local * 16.0,
                     efficiency=0.5, label="subspace"),
        comm.allreduce(Phantom(bands * bands * 16.0 / comm.size),
                       label="subspace-reduce"),
    )
    for _step in range(steps):
        for _band_block in range(max(1, bands // 16)):  # blocked bands
            yield band_block
        yield subspace
    return points_local


class QuantumEspressoBenchmark(AppBenchmark):
    """Runnable Quantum ESPRESSO benchmark."""

    NAME = "Quantum Espresso"
    fom = FigureOfMerit(name="CP MD step-loop runtime", unit="s")

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        steps_small = 2
        spmd = self.run_program(machine, qe_timing_program,
                                args=(MESH, BANDS, steps_small))
        fom = spmd.elapsed * (FOM_STEPS / steps_small)
        return self.result(
            nodes, spmd, fom_seconds=fom, atoms=ATOMS, bands=BANDS,
            mesh=MESH,
            fft_comm_seconds=spmd.comm_profile().get("fft-transpose", 0.0),
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        n = max(8, int(16 * scale))
        rng = np.random.default_rng(792)
        psi = rng.normal(size=(n, n, n)) + 1j * rng.normal(size=(n, n, n))
        v_r = rng.normal(size=(n, n, n)) * 0.3
        spmd = self.run_program(machine, qe_real_program, args=(psi, v_r))
        err = max(spmd.values)
        # orthonormalisation step of a small band block
        bands = 6
        block = rng.normal(size=(bands, n ** 3)) + \
            1j * rng.normal(size=(bands, n ** 3))
        q, _ = np.linalg.qr(block.T)
        overlap = q.conj().T @ q
        ortho_err = float(np.max(np.abs(overlap - np.eye(bands))))
        ok = err < 1e-10 and ortho_err < 1e-12
        return self.result(
            nodes, spmd, verified=ok,
            verification=f"distributed H*psi error {err:.2e}; "
                         f"orthonormality error {ortho_err:.2e}",
            hamiltonian_error=err, ortho_error=ortho_err)
