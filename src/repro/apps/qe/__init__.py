"""Quantum ESPRESSO: plane-wave DFT / Car-Parrinello MD."""

from .benchmark import (
    ATOMS,
    BANDS,
    MESH,
    QuantumEspressoBenchmark,
    apply_hamiltonian_serial,
    qe_real_program,
    qe_timing_program,
)
from .fft3d import dist_fft3, dist_ifft3, gathered_fft3, slab_range

__all__ = ["ATOMS", "BANDS", "MESH", "QuantumEspressoBenchmark",
           "apply_hamiltonian_serial", "dist_fft3", "dist_ifft3",
           "gathered_fft3", "qe_real_program", "qe_timing_program",
           "slab_range"]
