"""The cellular Potts model (Graner-Glazier) for tissue simulation.

NAStJA simulates "tissues composed of thousands to millions of cells at
subcellular resolution" with a Cellular Potts Model (Sec. IV-A1f): the
domain is a voxel grid whose value is the id of the biological cell
occupying it; Metropolis Monte Carlo proposes copying a neighbour's id
into a voxel, accepting with the Boltzmann probability of the energy
change.  The Hamiltonian has adhesion (boundary) terms and a volume
constraint:

    H = sum_boundary J(type_a, type_b) + lambda * sum_cells (V - V_t)^2

The test case is *adhesion-driven cell sorting* (Steinberg 1962): with
heterotypic contacts costlier than homotypic ones, initially mixed cell
types segregate -- measured here by the falling heterotypic boundary
fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: medium (empty) id
MEDIUM = 0


@dataclass
class PottsModel:
    """A 2D/3D cellular Potts system (2D used for the real runs)."""

    lattice: np.ndarray          # voxel -> cell id
    cell_type: np.ndarray        # cell id -> type (0 = medium)
    adhesion: np.ndarray         # type x type contact energy
    target_volume: float
    lambda_volume: float = 1.0
    temperature: float = 1.0
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        if self.lattice.ndim not in (2, 3):
            raise ValueError("lattice must be 2D or 3D")
        if self.adhesion.shape[0] != self.adhesion.shape[1]:
            raise ValueError("adhesion matrix must be square")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        self.volumes = np.bincount(self.lattice.ravel(),
                                   minlength=self.cell_type.shape[0])

    # -- energy ------------------------------------------------------------

    def boundary_energy(self) -> float:
        """Total adhesion energy over nearest-neighbour voxel pairs."""
        total = 0.0
        types = self.cell_type[self.lattice]
        for axis in range(self.lattice.ndim):
            a = self.lattice
            b = np.roll(self.lattice, -1, axis=axis)
            ta = types
            tb = np.roll(types, -1, axis=axis)
            different = a != b
            total += float(np.sum(self.adhesion[ta[different],
                                                tb[different]]))
        return total

    def volume_energy(self) -> float:
        """Volume-constraint energy over all (non-medium) cells."""
        cells = np.arange(1, self.cell_type.shape[0])
        dv = self.volumes[cells] - self.target_volume
        return float(self.lambda_volume * np.sum(dv * dv))

    def total_energy(self) -> float:
        return self.boundary_energy() + self.volume_energy()

    def heterotypic_fraction(self) -> float:
        """Share of cell-cell contacts between *different* types -- the
        sorting order parameter (falls as sorting proceeds)."""
        types = self.cell_type[self.lattice]
        hetero = 0
        contacts = 0
        for axis in range(self.lattice.ndim):
            ta = types
            tb = np.roll(types, -1, axis=axis)
            cell_contact = (ta > 0) & (tb > 0) & (
                self.lattice != np.roll(self.lattice, -1, axis=axis))
            contacts += int(np.sum(cell_contact))
            hetero += int(np.sum(cell_contact & (ta != tb)))
        return hetero / contacts if contacts else 0.0

    # -- Monte Carlo -----------------------------------------------------------

    def _site_energy(self, pos: tuple[int, ...], cell_id: int) -> float:
        """Adhesion energy of a voxel against its neighbours, assuming
        it held ``cell_id``."""
        e = 0.0
        t_self = self.cell_type[cell_id]
        for axis in range(self.lattice.ndim):
            for step in (-1, 1):
                q = list(pos)
                q[axis] = (q[axis] + step) % self.lattice.shape[axis]
                nb = self.lattice[tuple(q)]
                if nb != cell_id:
                    e += float(self.adhesion[t_self, self.cell_type[nb]])
        return e

    def attempt_flip(self) -> bool:
        """One Metropolis copy attempt; True if accepted."""
        shape = self.lattice.shape
        pos = tuple(int(self.rng.integers(s)) for s in shape)
        axis = int(self.rng.integers(self.lattice.ndim))
        step = 1 if self.rng.random() < 0.5 else -1
        src = list(pos)
        src[axis] = (src[axis] + step) % shape[axis]
        new_id = int(self.lattice[tuple(src)])
        old_id = int(self.lattice[pos])
        if new_id == old_id:
            return False
        de = (self._site_energy(pos, new_id) -
              self._site_energy(pos, old_id))
        # volume terms: old cell shrinks, new cell grows
        lam = self.lambda_volume
        vt = self.target_volume
        if old_id != MEDIUM:
            v = self.volumes[old_id]
            de += lam * ((v - 1 - vt) ** 2 - (v - vt) ** 2)
        if new_id != MEDIUM:
            v = self.volumes[new_id]
            de += lam * ((v + 1 - vt) ** 2 - (v - vt) ** 2)
        if de <= 0 or self.rng.random() < np.exp(-de / self.temperature):
            self.lattice[pos] = new_id
            self.volumes[old_id] -= 1
            self.volumes[new_id] += 1
            return True
        return False

    def monte_carlo_step(self) -> int:
        """One MC step = one attempted flip per voxel; returns accepts."""
        return sum(self.attempt_flip() for _ in range(self.lattice.size))


def checkerboard_tissue(n: int, cells_per_side: int, ndim: int = 2,
                        seed: int = 0) -> PottsModel:
    """A mixed two-type tissue: square cells alternating type A/B.

    With heterotypic adhesion J_AB > J_AA = J_BB the tissue sorts --
    the Steinberg cell-sorting test case of the benchmark.
    """
    if n % cells_per_side != 0:
        raise ValueError("cell size must divide lattice size")
    size = n // cells_per_side
    shape = (n,) * ndim
    lattice = np.zeros(shape, dtype=np.int64)
    idx = np.indices(shape) // size
    cell_coord = idx[0].copy()
    for d in range(1, ndim):
        cell_coord = cell_coord * cells_per_side + idx[d]
    lattice = cell_coord + 1
    n_cells = cells_per_side ** ndim
    parity = np.zeros(n_cells + 1, dtype=np.int64)
    coords = np.indices((cells_per_side,) * ndim).reshape(ndim, -1).sum(axis=0)
    parity[1:] = 1 + (coords % 2)
    adhesion = np.array([
        [0.0, 4.0, 4.0],   # medium contacts
        [4.0, 2.0, 11.0],  # A-A cheap, A-B expensive
        [4.0, 11.0, 2.0],
    ])
    return PottsModel(lattice=lattice, cell_type=parity, adhesion=adhesion,
                      target_volume=float(size ** ndim),
                      lambda_volume=0.5, temperature=4.0,
                      rng=np.random.default_rng(seed))
