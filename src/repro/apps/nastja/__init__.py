"""NAStJA: cellular Potts model for biological tissue (CPU-only)."""

from .benchmark import DOMAIN, MC_STEPS, NastjaBenchmark, nastja_timing_program
from .potts import MEDIUM, PottsModel, checkerboard_tissue

__all__ = ["DOMAIN", "MC_STEPS", "MEDIUM", "NastjaBenchmark",
           "PottsModel", "checkerboard_tissue", "nastja_timing_program"]
