"""The NAStJA benchmark (Base 8 nodes, CPU-only).

Workload (Sec. IV-A1f): "the first 5050 Monte Carlo steps of a system
of size 720 x 720 x 1152 um^3, containing roughly 600 000 cells" --
adhesion-driven cell sorting at subcellular resolution.  "NAStJA ...
is one of the few CPU-only benchmarks in the suite.  The application
exhibits an irregular memory access pattern at each iteration, which is
not suitable for GPU execution" -- modelled as a very low-efficiency,
byte-dominated compute profile on the Cluster module, with block halo
exchange each sweep.

Real mode runs genuine 2D cell sorting and verifies that the total
energy falls and the heterotypic contact fraction decreases (the
sorting signature).
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...core.verification import ModelVerifier
from ...vmpi.decomposition import CartGrid, halo_exchange, phantom_faces
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .potts import checkerboard_tissue

#: the paper's domain (voxels at 1 um resolution) and step count
DOMAIN = (720, 720, 1152)
MC_STEPS = 5050
CELL_COUNT = 600_000
#: per-voxel cost of one MC sweep: neighbour reads + RNG + energy
FLOPS_PER_VOXEL = 120.0
BYTES_PER_VOXEL = 160.0


def nastja_timing_program(comm, domain: tuple[int, int, int], steps: int):
    """Block-decomposed MC sweeps with per-sweep halo exchange."""
    cart = CartGrid.for_ranks(comm.size, 3, extents=domain, periodic=False)
    voxels_local = float(np.prod(domain)) / comm.size
    local_dims = tuple(max(1, int(d / g))
                       for d, g in zip(domain, cart.dims))
    faces = phantom_faces(local_dims, itemsize=8)
    for _step in range(steps):
        yield comm.compute(flops=FLOPS_PER_VOXEL * voxels_local,
                           bytes_moved=BYTES_PER_VOXEL * voxels_local,
                           efficiency=0.08,  # irregular access pattern
                           label="mc-sweep")
        yield from halo_exchange(comm, cart, faces)
    return voxels_local


class NastjaBenchmark(AppBenchmark):
    """Runnable NAStJA benchmark (JUWELS Cluster target)."""

    NAME = "NAStJA"
    fom = FigureOfMerit(name="5050-MC-step runtime", unit="s")

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        system = self.system()
        machine = Machine.on(system.with_nodes(max(nodes, 1)),
                             nranks=nodes * 2, ranks_per_node=2)
        if real:
            return self._execute_real(nodes, machine, scale)
        steps_small = 4
        spmd = self.run_program(machine, nastja_timing_program,
                                args=(DOMAIN, steps_small))
        fom = spmd.elapsed * (MC_STEPS / steps_small)
        return self.result(
            nodes, spmd, fom_seconds=fom, domain=DOMAIN,
            mc_steps=MC_STEPS, cells=CELL_COUNT,
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        n = max(24, int(40 * scale))
        model = checkerboard_tissue(n=n, cells_per_side=4, ndim=2, seed=3)
        e0 = model.total_energy()
        hetero0 = model.heterotypic_fraction()
        steps = max(4, int(12 * scale))
        accepts = sum(model.monte_carlo_step() for _ in range(steps))
        e1 = model.total_energy()
        hetero1 = model.heterotypic_fraction()
        # At finite temperature the total energy is not monotone (thermal
        # boundary roughening competes with sorting); the sorting order
        # parameter is the model prediction to verify.
        verifier = ModelVerifier(checks={
            "energy_bounded": (lambda r: r["e1"] / r["e0"], 0.0, 1.5),
            "sorting": (lambda r: r["h1"] / max(r["h0"], 1e-12), 0.0, 0.97),
            "acceptance": (lambda r: r["acc"], 1e-4, 0.9),
        })
        check = verifier({"e0": e0, "e1": e1, "h0": hetero0, "h1": hetero1,
                          "acc": accepts / (steps * model.lattice.size)})

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        return self.result(
            nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
            verified=bool(check), verification=check.detail,
            energy_before=e0, energy_after=e1,
            heterotypic_before=hetero0, heterotypic_after=hetero1)
