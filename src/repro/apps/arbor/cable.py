"""The cable equation and the Hines solver.

Arbor integrates "the *cable equation* ... alternating with a system of
ODEs for the channels" (Sec. IV-A2a).  The implicit-Euler discretisation
of the cable equation on a tree morphology yields a symmetric
tree-structured linear system solved in O(n) by the Hines algorithm --
one leaf-to-root elimination sweep and one root-to-leaf back-
substitution, exploiting the Hines ordering ``parent[i] < i``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .morphology import Morphology


def hines_solve(diag: np.ndarray, upper: np.ndarray, parent: np.ndarray,
                rhs: np.ndarray) -> np.ndarray:
    """Solve the tree-structured system in O(n).

    The matrix has ``diag[i]`` on the diagonal and ``upper[i]`` coupling
    compartment i with ``parent[i]`` (symmetric); ``upper[0]`` is
    ignored.  All inputs are copied; the solution vector is returned.
    """
    n = diag.shape[0]
    d = diag.astype(float).copy()
    b = rhs.astype(float).copy()
    u = upper
    for i in range(n - 1, 0, -1):
        p = parent[i]
        factor = u[i] / d[i]
        d[p] -= factor * u[i]
        b[p] -= factor * b[i]
    x = np.empty(n)
    x[0] = b[0] / d[0]
    for i in range(1, n):
        x[i] = (b[i] - u[i] * x[parent[i]]) / d[i]
    return x


def tree_matrix_dense(diag: np.ndarray, upper: np.ndarray,
                      parent: np.ndarray) -> np.ndarray:
    """The same system as a dense matrix (test oracle for Hines)."""
    n = diag.shape[0]
    a = np.zeros((n, n))
    a[np.arange(n), np.arange(n)] = diag
    for i in range(1, n):
        p = parent[i]
        a[i, p] = upper[i]
        a[p, i] = upper[i]
    return a


@dataclass
class CableDiscretisation:
    """Pre-computed quantities of the implicit cable operator.

    Units form a consistent set: potential [mV], time [ms], conductance
    [uS], capacitance [nF], current [nA] -- so ``C/dt`` is a
    conductance and ``g * V`` is a current without conversion factors.
    """

    morphology: Morphology
    c_m: np.ndarray        # membrane capacitance per compartment [nF]
    g_axial: np.ndarray    # axial conductance to parent [uS]

    @classmethod
    def from_morphology(cls, morph: Morphology, c_m_density: float = 0.01,
                        r_l: float = 100.0) -> "CableDiscretisation":
        """Build from membrane capacitance density [pF/um^2] and axial
        resistivity [Ohm cm]."""
        area = morph.area()
        c_m = c_m_density * area * 1e-3  # pF -> nF
        r_half = 0.5 * morph.axial_resistance(r_l)
        g = np.zeros(morph.n_compartments)
        for i in range(1, morph.n_compartments):
            p = morph.parent[i]
            g[i] = 1.0 / (r_half[i] + r_half[p])
        return cls(morphology=morph, c_m=c_m, g_axial=g)

    def implicit_step_matrix(self, dt: float,
                             g_mem: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(diag, upper) of the implicit-Euler matrix.

        Solves ``(C/dt + G_mem + L) V_new = C/dt * V + I`` where L is the
        tree Laplacian of axial conductances and ``g_mem`` the linearised
        membrane conductance per compartment.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        n = self.morphology.n_compartments
        diag = self.c_m / dt + g_mem
        upper = np.zeros(n)
        for i in range(1, n):
            p = self.morphology.parent[i]
            diag[i] += self.g_axial[i]
            diag[p] += self.g_axial[i]
            upper[i] = -self.g_axial[i]
        return diag, upper

    def step_voltage(self, v: np.ndarray, dt: float, g_mem: np.ndarray,
                     i_inject: np.ndarray) -> np.ndarray:
        """One implicit-Euler voltage update via the Hines solve.

        ``i_inject`` bundles channel reversal currents, synaptic input
        and electrode stimuli [nA].
        """
        diag, upper = self.implicit_step_matrix(dt, g_mem)
        rhs = self.c_m / dt * v + i_inject
        return hines_solve(diag, upper, self.morphology.parent, rhs)
