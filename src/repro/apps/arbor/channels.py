"""Hodgkin-Huxley ion channels.

The benchmark's profile is dominated by channel state updates ("52 %
ion channels", Sec. IV-A2a): per compartment, gating variables m, h, n
follow voltage-dependent first-order kinetics, integrated with the
exponential-Euler scheme (exact for frozen rates and unconditionally
stable -- the standard choice in production simulators).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _vtrap(x: np.ndarray, y: float) -> np.ndarray:
    """x / (exp(x/y) - 1) with the singularity at x = 0 removed."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    small = np.abs(x / y) < 1e-6
    out[small] = y * (1.0 - x[small] / y / 2.0)
    xs = x[~small]
    out[~small] = xs / (np.exp(xs / y) - 1.0)
    return out


def rates_m(v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sodium activation rate constants [1/ms] (classic HH, shifted to
    resting potential -65 mV)."""
    alpha = 0.1 * _vtrap(-(v + 40.0), 10.0)
    beta = 4.0 * np.exp(-(v + 65.0) / 18.0)
    return alpha, beta


def rates_h(v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sodium inactivation rate constants."""
    alpha = 0.07 * np.exp(-(v + 65.0) / 20.0)
    beta = 1.0 / (np.exp(-(v + 35.0) / 10.0) + 1.0)
    return alpha, beta


def rates_n(v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Potassium activation rate constants."""
    alpha = 0.01 * _vtrap(-(v + 55.0), 10.0)
    beta = 0.125 * np.exp(-(v + 65.0) / 80.0)
    return alpha, beta


@dataclass
class HHChannels:
    """HH Na/K/leak membrane mechanism over a set of compartments.

    Conductance densities in mS/cm^2 = 1e-2 uS/um^2 * 1e-3... we keep
    the conventional compartmental units: densities [uS/um^2-scaled]
    are multiplied by the compartment areas once at construction.
    """

    g_na: np.ndarray      # [uS] per compartment
    g_k: np.ndarray
    g_leak: np.ndarray
    e_na: float = 50.0    # [mV]
    e_k: float = -77.0
    e_leak: float = -54.387
    m: np.ndarray = field(default=None)  # type: ignore[assignment]
    h: np.ndarray = field(default=None)  # type: ignore[assignment]
    n: np.ndarray = field(default=None)  # type: ignore[assignment]

    @classmethod
    def for_areas(cls, area: np.ndarray, gbar_na: float = 1.2e-3,
                  gbar_k: float = 0.36e-3,
                  gbar_leak: float = 3e-6) -> "HHChannels":
        """Channels with classic HH densities (in uS/um^2) over
        compartment areas [um^2]."""
        return cls(g_na=gbar_na * area, g_k=gbar_k * area,
                   g_leak=gbar_leak * area)

    def __post_init__(self) -> None:
        n_comp = self.g_na.shape[0]
        v0 = np.full(n_comp, -65.0)
        if self.m is None:
            am, bm = rates_m(v0)
            self.m = am / (am + bm)
        if self.h is None:
            ah, bh = rates_h(v0)
            self.h = ah / (ah + bh)
        if self.n is None:
            an, bn = rates_n(v0)
            self.n = an / (an + bn)

    def advance_gates(self, v: np.ndarray, dt: float) -> None:
        """Exponential-Euler update of m, h, n."""
        for gate, rates in (("m", rates_m), ("h", rates_h), ("n", rates_n)):
            alpha, beta = rates(v)
            tau = 1.0 / (alpha + beta)
            inf = alpha * tau
            old = getattr(self, gate)
            setattr(self, gate, inf + (old - inf) * np.exp(-dt / tau))

    def conductance(self) -> np.ndarray:
        """Total membrane conductance [uS] at current gate states."""
        return (self.g_na * self.m ** 3 * self.h +
                self.g_k * self.n ** 4 + self.g_leak)

    def reversal_current(self) -> np.ndarray:
        """The g * E part of the channel current [nA] (so the membrane
        current is ``conductance() * V - reversal_current()``)."""
        return (self.g_na * self.m ** 3 * self.h * self.e_na +
                self.g_k * self.n ** 4 * self.e_k +
                self.g_leak * self.e_leak)
