"""Neuron morphologies: random trees of fixed depth.

Arbor models neurons "by morphology, ion channels, and connections"
(Sec. IV-A2a); the benchmark uses "a complex cell from the Allen
Institute ... adapted to random morphologies of fixed depth".  A
morphology here is a tree of cable segments, discretised into
compartments with a parent array in *Hines order* (every compartment's
parent has a smaller index), which is what makes the O(n) Hines solve
possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Morphology:
    """A compartmentalised tree neuron.

    ``parent[i] < i`` for all i > 0 (Hines ordering); ``parent[0] = -1``
    marks the soma.  Lengths are in um, radii in um.
    """

    parent: np.ndarray   # (n,) int
    length: np.ndarray   # (n,) float, um
    radius: np.ndarray   # (n,) float, um

    def __post_init__(self) -> None:
        n = self.parent.shape[0]
        if n < 1:
            raise ValueError("morphology needs at least the soma")
        if self.parent[0] != -1:
            raise ValueError("compartment 0 must be the root (parent -1)")
        if n > 1 and not np.all(self.parent[1:] < np.arange(1, n)):
            raise ValueError("parents must be Hines-ordered (parent[i] < i)")
        if np.any(self.length <= 0) or np.any(self.radius <= 0):
            raise ValueError("lengths and radii must be positive")

    @property
    def n_compartments(self) -> int:
        return int(self.parent.shape[0])

    def area(self) -> np.ndarray:
        """Lateral membrane area per compartment [um^2]."""
        return 2.0 * np.pi * self.radius * self.length

    def axial_resistance(self, r_l: float = 100.0) -> np.ndarray:
        """Axial resistance of each compartment [MOhm] for resistivity
        ``r_l`` [Ohm cm] (converted to the um/MOhm unit system)."""
        # R = r_l * L / (pi a^2); r_l[Ohm cm] = r_l * 1e4 [Ohm um] and
        # 1e-6 converts Ohm to MOhm.
        return (r_l * 1e4 * 1e-6) * self.length / (np.pi * self.radius ** 2)

    def depth_of(self, i: int) -> int:
        """Tree depth of compartment i (root = 0)."""
        d = 0
        while self.parent[i] != -1:
            i = int(self.parent[i])
            d += 1
        return d

    def max_depth(self) -> int:
        return max(self.depth_of(i) for i in range(self.n_compartments))


def random_tree(rng: np.random.Generator, depth: int = 4,
                branch_prob: float = 0.7,
                segments_per_branch: int = 4) -> Morphology:
    """A random morphology of fixed maximum depth.

    The soma roots a binary-ish tree: at each level every open branch
    continues, and with ``branch_prob`` it bifurcates, until ``depth``
    levels of branches exist.  Each branch is ``segments_per_branch``
    compartments long with tapering radii -- statistically similar work
    per cell, structurally distinct trees (the benchmark's trick for a
    deterministic yet realistic workload).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    parent = [-1]
    length = [20.0]   # soma
    radius = [10.0]
    tips = [0]
    for level in range(depth):
        new_tips = []
        for tip in tips:
            n_children = 2 if rng.random() < branch_prob else 1
            for _ in range(n_children):
                prev = tip
                for _seg in range(segments_per_branch):
                    parent.append(prev)
                    length.append(float(rng.uniform(15.0, 40.0)))
                    radius.append(max(0.2, 2.0 * 0.8 ** level *
                                      float(rng.uniform(0.7, 1.1))))
                    prev = len(parent) - 1
                new_tips.append(prev)
        tips = new_tips
    return Morphology(parent=np.array(parent, dtype=np.int64),
                      length=np.array(length),
                      radius=np.array(radius))


def allen_like_cell(rng: np.random.Generator) -> Morphology:
    """The benchmark's 'complex cell': a deep, heavily branched tree
    (hundreds of compartments), weighting work towards computation."""
    return random_tree(rng, depth=6, branch_prob=0.8, segments_per_branch=4)
