"""Arbor: morphologically detailed neural network simulation."""

from .benchmark import ArborBenchmark, arbor_real_program, arbor_timing_program
from .cable import CableDiscretisation, hines_solve, tree_matrix_dense
from .channels import HHChannels, rates_h, rates_m, rates_n
from .morphology import Morphology, allen_like_cell, random_tree
from .network import SPIKE_THRESHOLD, Cell, RingNetwork, simulate_rings

__all__ = [
    "ArborBenchmark", "CableDiscretisation", "Cell", "HHChannels",
    "Morphology", "RingNetwork", "SPIKE_THRESHOLD", "allen_like_cell",
    "arbor_real_program", "arbor_timing_program", "hines_solve",
    "random_tree", "rates_h", "rates_m", "rates_n", "simulate_rings",
    "tree_matrix_dense",
]
