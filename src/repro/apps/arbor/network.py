"""Cells, ring networks, and spike propagation.

The benchmark workload (Sec. IV-A2a): "Cells are organized into rings
propagating a single spike.  Rings are interconnected to place load on
the network without altering dynamics, yielding a deterministic,
scalable workload."  A cell spikes when its soma potential crosses
threshold upward; the spike reaches the next cell in the ring after a
synaptic delay and triggers it in turn.  "The number of generated spikes
is used for validation."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cable import CableDiscretisation
from .channels import HHChannels
from .morphology import Morphology, random_tree

#: soma spike detection threshold [mV]
SPIKE_THRESHOLD = 0.0


@dataclass
class Cell:
    """One simulated neuron: morphology + channels + state."""

    disc: CableDiscretisation
    channels: HHChannels
    v: np.ndarray
    #: pending synaptic current pulses: (start_time, stop_time, amplitude)
    pending: list[tuple[float, float, float]] = field(default_factory=list)
    last_v_soma: float = -65.0

    @classmethod
    def build(cls, morph: Morphology) -> "Cell":
        disc = CableDiscretisation.from_morphology(morph)
        channels = HHChannels.for_areas(morph.area())
        v = np.full(morph.n_compartments, -65.0)
        return cls(disc=disc, channels=channels, v=v)

    @property
    def n_compartments(self) -> int:
        return self.disc.morphology.n_compartments

    def inject(self, t_start: float, duration: float,
               amplitude: float) -> None:
        """Schedule a somatic current pulse [nA]."""
        self.pending.append((t_start, t_start + duration, amplitude))

    def step(self, t: float, dt: float) -> bool:
        """Advance one step; True if the soma spiked during it."""
        self.channels.advance_gates(self.v, dt)
        g_mem = self.channels.conductance()
        i_inj = self.channels.reversal_current()
        for (start, stop, amp) in self.pending:
            if start <= t < stop:
                i_inj = i_inj.copy()
                i_inj[0] += amp
        self.pending = [p for p in self.pending if t < p[1]]
        self.v = self.disc.step_voltage(self.v, dt, g_mem, i_inj)
        v_soma = float(self.v[0])
        spiked = self.last_v_soma < SPIKE_THRESHOLD <= v_soma
        self.last_v_soma = v_soma
        return spiked


@dataclass(frozen=True)
class RingNetwork:
    """Connectivity of the benchmark: rings with sparse cross links.

    ``n_rings`` rings of ``cells_per_ring`` cells; cell (r, i) excites
    cell (r, i+1 mod C).  Additionally each cell connects to the
    *corresponding* cell of the next ring with zero synaptic weight --
    traffic without dynamics, exactly the paper's trick.
    """

    n_rings: int
    cells_per_ring: int
    delay: float = 2.0       # [ms] synaptic delay (sets the comm epoch)
    weight: float = 1.5      # [nA] suprathreshold pulse amplitude
    pulse: float = 2.0       # [ms] pulse duration

    def __post_init__(self) -> None:
        if self.n_rings < 1 or self.cells_per_ring < 2:
            raise ValueError("need >= 1 ring of >= 2 cells")
        if self.delay <= 0:
            raise ValueError("delay must be positive")

    @property
    def n_cells(self) -> int:
        return self.n_rings * self.cells_per_ring

    def gid(self, ring: int, index: int) -> int:
        return ring * self.cells_per_ring + index % self.cells_per_ring

    def targets(self, gid: int) -> list[tuple[int, float]]:
        """(target gid, weight) pairs of a cell's outgoing synapses."""
        ring, idx = divmod(gid, self.cells_per_ring)
        out = [(self.gid(ring, idx + 1), self.weight)]
        if self.n_rings > 1:
            # zero-weight cross-ring link: network load, no dynamics
            out.append((self.gid((ring + 1) % self.n_rings, idx), 0.0))
        return out


def simulate_rings(network: RingNetwork, t_end: float, dt: float = 0.025,
                   seed: int = 42,
                   morph_depth: int = 3) -> dict[str, object]:
    """Single-process reference simulation; returns spike statistics.

    Cell 0 of each ring is stimulated once at t = 0; afterwards every
    spike excites the next cell, so spikes march around each ring at a
    fixed rate and the total count is deterministic.
    """
    rng = np.random.default_rng(seed)
    cells = [Cell.build(random_tree(rng, depth=morph_depth))
             for _ in range(network.n_cells)]
    for ring in range(network.n_rings):
        cells[network.gid(ring, 0)].inject(0.0, network.pulse, network.weight)
    spikes: list[tuple[float, int]] = []
    t = 0.0
    steps = int(round(t_end / dt))
    for _step in range(steps):
        for gid, cell in enumerate(cells):
            if cell.step(t, dt):
                spikes.append((t, gid))
                for target, weight in network.targets(gid):
                    if weight > 0.0:
                        cells[target].inject(t + network.delay,
                                             network.pulse, weight)
        t += dt
    return {"spikes": spikes, "count": len(spikes),
            "cells": network.n_cells}
