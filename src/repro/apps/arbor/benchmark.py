"""The Arbor benchmark (Base 8 nodes; High-Scaling 642, T/S/M/L).

Fig. 2's published reference points: 498 s on 8 nodes, 663 s on 4,
332 s on 12, 250 s on 16 -- nearly perfect strong scaling *except* when
the fixed workload no longer fits the GPUs (the 4-node point), which is
also why the Arbor developers "need to optimize memory usage" (Sec.
V-A).  The timing model reproduces both effects: per-cell channel and
cable costs in the paper's measured proportions (52 % ion channels,
33 % cable equation, communication fully hidden), plus a host-paging
penalty when the per-device workload exceeds GPU memory.

Real mode runs the genuine distributed ring network: cells partitioned
over ranks, spikes exchanged by allgather every synaptic-delay epoch
(Arbor's communication scheme), validated by the *exact spike count*
against the single-process reference -- the paper's validation metric.
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...vmpi import Phantom
from ...vmpi.decomposition import block_partition
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .morphology import random_tree
from .network import Cell, RingNetwork, simulate_rings

#: bytes of device state per compartment (voltage, gates, currents,
#: matrix coefficients, connectivity)
BYTES_PER_COMPARTMENT = 400.0
#: compartments per benchmark cell (the 'complex cell')
COMPARTMENTS_PER_CELL = 3000.0
#: simulated biological time of the FOM run [ms]
FOM_BIOLOGICAL_MS = 1000.0
DT_MS = 0.025
#: measured cost-centre shares (Sec. IV-A2a)
CHANNEL_SHARE = 0.52
CABLE_SHARE = 0.33
OTHER_SHARE = 1.0 - CHANNEL_SHARE - CABLE_SHARE
#: arithmetic per compartment-step attributable to each centre
FLOPS_PER_COMP_STEP = 400.0


def arbor_timing_program(comm, cells_total: float, steps: int,
                         exchange_every: int, pressure: float):
    """Phantom-cost ring-network integration.

    The integration kernels are bandwidth-bound streaming sweeps over
    the compartment state (hence the high bandwidth efficiency);
    ``pressure`` > 1 adds the allocator/fragmentation degradation of
    running at the memory limit (the Fig. 2 four-node point).
    """
    cells_local = cells_total / comm.size
    comps = cells_local * COMPARTMENTS_PER_CELL
    epoch = 0
    for step in range(steps):
        for share, label in ((CHANNEL_SHARE, "channels"),
                             (CABLE_SHARE, "cable"),
                             (OTHER_SHARE, "other")):
            yield comm.compute(
                flops=share * FLOPS_PER_COMP_STEP * comps,
                bytes_moved=share * BYTES_PER_COMPARTMENT * comps *
                0.3 * pressure,
                efficiency=0.60, label=label)
        if (step + 1) % exchange_every == 0:
            # spike exchange: tiny payloads, fully hidden behind compute
            yield comm.allgather(Phantom(64.0 * cells_local * 0.01),
                                 label="spike-exchange")
            epoch += 1
    return epoch


def arbor_real_program(comm, network: RingNetwork, t_end: float,
                       dt: float, seed: int, morph_depth: int):
    """Genuine distributed ring simulation with epoch spike exchange.

    Cells are block-partitioned by gid; every ``delay`` of biological
    time, ranks allgather their new spikes and deliver the resulting
    synaptic events locally -- semantically identical to the serial
    reference because no synapse can act sooner than one delay.
    """
    rng = np.random.default_rng(seed)
    # all ranks build all morphologies from the shared seed, keep theirs
    lo, hi = block_partition(network.n_cells, comm.size)[comm.rank]
    cells: dict[int, Cell] = {}
    for gid in range(network.n_cells):
        morph = random_tree(rng, depth=morph_depth)
        if lo <= gid < hi:
            cells[gid] = Cell.build(morph)
    for ring in range(network.n_rings):
        gid = network.gid(ring, 0)
        if gid in cells:
            cells[gid].inject(0.0, network.pulse, network.weight)
    steps_per_epoch = max(1, int(round(network.delay / dt)))
    total_steps = int(round(t_end / dt))
    t = 0.0
    my_spikes: list[tuple[float, int]] = []
    epoch_spikes: list[tuple[float, int]] = []
    for step in range(total_steps):
        for gid, cell in cells.items():
            if cell.step(t, dt):
                epoch_spikes.append((t, gid))
        t += dt
        if (step + 1) % steps_per_epoch == 0 or step == total_steps - 1:
            all_spikes = yield comm.allgather(list(epoch_spikes))
            for rank_spikes in all_spikes:
                for (t_spike, gid) in rank_spikes:
                    for target, weight in network.targets(gid):
                        if weight > 0.0 and target in cells:
                            cells[target].inject(t_spike + network.delay,
                                                 network.pulse, weight)
            my_spikes.extend(epoch_spikes)
            epoch_spikes = []
    total = yield comm.allreduce(len(my_spikes))
    return int(total)


class ArborBenchmark(AppBenchmark):
    """Runnable Arbor benchmark."""

    NAME = "Arbor"
    fom = FigureOfMerit(name="ring-network integration time", unit="s")

    def cells_for(self, nodes: int, variant: MemoryVariant | None) -> float:
        """Cells filling the variant fraction of a job's GPU memory.

        The Base workload is sized at the *reference* 8 nodes and kept
        fixed for strong scaling; High-Scaling sizes per device (weak).
        """
        per_device = self.device_bytes(variant) / (
            BYTES_PER_COMPARTMENT * COMPARTMENTS_PER_CELL)
        return per_device * nodes * 4

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        v = self.variant_or_default(variant)
        # Fixed Base workload (sized for 8 reference nodes) unless the
        # benchmark runs in its High-Scaling regime -- an explicit memory
        # variant was requested, or the job is large -- where the
        # workload is weak-scaled per device.
        weak = variant is not None or nodes >= 64
        sized_nodes = nodes if weak else self.info.reference_nodes
        cells = self.cells_for(sized_nodes, v)
        per_device_bytes = (cells * COMPARTMENTS_PER_CELL *
                            BYTES_PER_COMPARTMENT) / machine.nranks
        capacity = machine.system.node.device.mem_capacity * 0.95
        oversub = max(1.0, per_device_bytes / capacity)
        pressure = 1.0
        if oversub > 1.0:
            # The fixed workload does not fit: physically, only the part
            # that fits can be resident, so the run is clamped to it and
            # pays an at-the-limit degradation (the Fig. 2 four-node
            # point sits *below* the perfect-scaling line for exactly
            # this reason).
            cells = cells / oversub
            pressure = 1.3
        # one communication epoch per synaptic delay (2 ms at dt=0.025)
        exchange_every = max(1, int(round(2.0 / DT_MS)))
        steps_small = exchange_every
        spmd = self.run_program(machine, arbor_timing_program,
                                args=(cells, steps_small, exchange_every,
                                      pressure))
        full_steps = FOM_BIOLOGICAL_MS / DT_MS
        fom = spmd.elapsed * (full_steps / steps_small)
        profile = spmd.compute_profile()
        total_profile = sum(profile.values()) or 1.0
        return self.result(
            nodes, spmd, variant=v, fom_seconds=fom,
            cells=cells, oversubscription=oversub,
            workload_clamped=oversub > 1.0,
            channel_share=profile.get("channels", 0.0) / total_profile,
            cable_share=profile.get("cable", 0.0) / total_profile,
            comm_seconds=spmd.comm_seconds,
            compute_seconds=spmd.compute_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        network = RingNetwork(n_rings=2, cells_per_ring=4)
        t_end = max(10.0, 30.0 * scale)
        reference = simulate_rings(network, t_end=t_end, dt=DT_MS,
                                   seed=11, morph_depth=2)
        spmd = self.run_program(machine, arbor_real_program,
                                args=(network, t_end, DT_MS, 11, 2))
        counts = set(spmd.values)
        verified = counts == {reference["count"]} and reference["count"] > 0
        return self.result(
            nodes, spmd, verified=verified,
            verification=f"spike count {sorted(counts)} vs reference "
                         f"{reference['count']} (exact match required)",
            spikes=reference["count"], cells=network.n_cells)
