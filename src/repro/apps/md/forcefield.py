"""Lennard-Jones and Ewald electrostatics (real + reciprocal space).

The force field both MD benchmarks exercise: short-range LJ and
erfc-screened Coulomb over the neighbour list, plus the long-range
reciprocal-space Ewald sum on an FFT mesh -- the "system-supplied Fast
Fourier Transform" dependency that GROMACS test case C is explicitly
designed to stress at scale (Sec. IV-A1a).

Validation anchors used by the tests: analytic two-particle LJ values,
Newton's third law / momentum conservation, and the NaCl Madelung
constant (-1.747565) for the full Ewald electrostatic energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfc

from .neighbor import NeighborList, minimum_image


@dataclass(frozen=True)
class LjParams:
    """Single-species Lennard-Jones parameters (reduced units).

    ``shifted`` subtracts U(r_c) so the potential is continuous at the
    cutoff -- without it the truncation discontinuity destroys energy
    conservation (checked by the drift tests).
    """

    epsilon: float = 1.0
    sigma: float = 1.0
    cutoff: float = 2.5
    shifted: bool = True

    def __post_init__(self) -> None:
        if self.epsilon <= 0 or self.sigma <= 0 or self.cutoff <= 0:
            raise ValueError("LJ parameters must be positive")

    @property
    def shift(self) -> float:
        """Potential value at the cutoff (zero when not shifting)."""
        if not self.shifted:
            return 0.0
        sr6 = (self.sigma / self.cutoff) ** 6
        return 4.0 * self.epsilon * (sr6 * sr6 - sr6)


def lj_pair_energy(r: float, p: LjParams) -> float:
    """Analytic pair energy 4 eps [(s/r)^12 - (s/r)^6] (no shift)."""
    sr6 = (p.sigma / r) ** 6
    return 4.0 * p.epsilon * (sr6 * sr6 - sr6)


def lj_forces(pos: np.ndarray, box: float, nlist: NeighborList,
              params: LjParams) -> tuple[np.ndarray, float]:
    """LJ forces and total energy from the half neighbour list."""
    n = pos.shape[0]
    forces = np.zeros_like(pos)
    if nlist.n_pairs == 0:
        return forces, 0.0
    i = nlist.pairs[:, 0]
    j = nlist.pairs[:, 1]
    d = minimum_image(pos[i] - pos[j], box)
    r2 = (d ** 2).sum(axis=1)
    mask = r2 <= params.cutoff ** 2
    i, j, d, r2 = i[mask], j[mask], d[mask], r2[mask]
    if i.size == 0:
        return forces, 0.0
    inv_r2 = (params.sigma ** 2) / r2
    sr6 = inv_r2 ** 3
    energy = float(np.sum(4.0 * params.epsilon * (sr6 * sr6 - sr6)
                          - params.shift))
    # F = 24 eps (2 sr12 - sr6) / r^2 * d
    fmag = 24.0 * params.epsilon * (2.0 * sr6 * sr6 - sr6) / r2
    fvec = fmag[:, None] * d
    np.add.at(forces, i, fvec)
    np.add.at(forces, j, -fvec)
    return forces, energy


@dataclass(frozen=True)
class EwaldParams:
    """Classical Ewald splitting: alpha screening + k-space cutoff."""

    alpha: float = 1.0
    kmax: int = 8
    real_cutoff: float = 3.0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.kmax < 1 or self.real_cutoff <= 0:
            raise ValueError("invalid Ewald parameters")


def ewald_real_space(pos: np.ndarray, charges: np.ndarray, box: float,
                     nlist: NeighborList,
                     params: EwaldParams) -> tuple[np.ndarray, float]:
    """Real-space (erfc-screened) part of the Ewald sum."""
    forces = np.zeros_like(pos)
    if nlist.n_pairs == 0:
        return forces, 0.0
    i = nlist.pairs[:, 0]
    j = nlist.pairs[:, 1]
    d = minimum_image(pos[i] - pos[j], box)
    r2 = (d ** 2).sum(axis=1)
    mask = r2 <= params.real_cutoff ** 2
    i, j, d, r2 = i[mask], j[mask], d[mask], r2[mask]
    if i.size == 0:
        return forces, 0.0
    r = np.sqrt(r2)
    qq = charges[i] * charges[j]
    a = params.alpha
    energy = float(np.sum(qq * erfc(a * r) / r))
    fmag = qq * (erfc(a * r) / r +
                 2.0 * a / np.sqrt(np.pi) * np.exp(-(a * r) ** 2)) / r2
    fvec = fmag[:, None] * d
    np.add.at(forces, i, fvec)
    np.add.at(forces, j, -fvec)
    return forces, energy


def ewald_reciprocal(pos: np.ndarray, charges: np.ndarray, box: float,
                     params: EwaldParams) -> tuple[np.ndarray, float]:
    """Reciprocal-space Ewald sum (direct k-sum; exact reference).

    The distributed benchmark path replaces this with the FFT-mesh
    version; this direct sum is the accuracy anchor.
    """
    n = pos.shape[0]
    a = params.alpha
    two_pi = 2.0 * np.pi / box
    ks = np.arange(-params.kmax, params.kmax + 1)
    kx, ky, kz = np.meshgrid(ks, ks, ks, indexing="ij")
    kvecs = np.stack([kx.ravel(), ky.ravel(), kz.ravel()], axis=1) * two_pi
    k2 = (kvecs ** 2).sum(axis=1)
    keep = k2 > 1e-12
    kvecs, k2 = kvecs[keep], k2[keep]
    phases = pos @ kvecs.T                        # (n, nk)
    s_re = charges @ np.cos(phases)               # structure factor
    s_im = charges @ np.sin(phases)
    prefac = (4.0 * np.pi / box ** 3) * np.exp(-k2 / (4 * a * a)) / k2
    energy = 0.5 * float(np.sum(prefac * (s_re ** 2 + s_im ** 2)))
    # forces: F_i = q_i sum_k prefac * k * (sin(k.r_i) S_re - cos(k.r_i) S_im)
    sin_p = np.sin(phases)
    cos_p = np.cos(phases)
    coeff = prefac * (sin_p * s_re - cos_p * s_im)  # (n, nk)
    forces = charges[:, None] * (coeff @ kvecs)
    # self-energy correction
    energy -= a / np.sqrt(np.pi) * float(np.sum(charges ** 2))
    return forces, energy


def coulomb_energy(pos: np.ndarray, charges: np.ndarray, box: float,
                   nlist: NeighborList, params: EwaldParams) -> float:
    """Full Ewald electrostatic energy (real + reciprocal + self)."""
    _, e_real = ewald_real_space(pos, charges, box, nlist, params)
    _, e_recip = ewald_reciprocal(pos, charges, box, params)
    return e_real + e_recip


def madelung_nacl(cells: int = 2, alpha: float = 3.0,
                  kmax: int = 20) -> float:
    """Madelung constant of rock salt computed via Ewald (test anchor).

    Builds a ``2*cells`` cubed NaCl lattice with unit spacing and returns
    the energy per ion pair divided by the nearest-neighbour Coulomb
    energy; the literature value is -1.7475646.
    """
    npts = 2 * cells
    grid = np.arange(npts)
    x, y, z = np.meshgrid(grid, grid, grid, indexing="ij")
    pos = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1).astype(float)
    charges = np.where((x + y + z).ravel() % 2 == 0, 1.0, -1.0)
    box = float(npts)
    from .neighbor import build_neighbor_list

    rcut = min(3.0, box / 2 - 0.01)
    nlist = build_neighbor_list(pos, box, cutoff=rcut, skin=0.0)
    params = EwaldParams(alpha=alpha, kmax=kmax, real_cutoff=rcut)
    energy = coulomb_energy(pos, charges, box, nlist, params)
    n_ions = pos.shape[0]
    return 2.0 * energy / n_ions  # energy per ion pair at unit spacing
