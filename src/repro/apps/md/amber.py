"""The Amber benchmark (prepared for the procurement, not used).

The STMV case from the Amber20 suite: 1 067 095 atoms on a *single*
node.  "The code is mainly optimized for single GPU calculations and is
not intended to scale beyond a single node" (Sec. IV) -- the timing
program reflects that: only the four GPUs of one node decompose the
system (peer-to-peer over NVLink); any further nodes merely join the
per-step synchronisation, so the strong-scaling curve goes flat beyond
one node, which is exactly the shape Fig. 2 shows for Amber.

Real mode shares the MD engine with GROMACS (LJ melt, energy-drift and
momentum verification).
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...core.verification import ModelVerifier
from ...vmpi import Phantom
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .engine import MdEngine, MdSystem
from .forcefield import LjParams
from .gromacs import FLOPS_PER_PAIR, NEIGHBORS_PER_ATOM

#: the STMV atom count from the Amber20 benchmark suite
STMV_ATOMS = 1_067_095
#: MD steps the FOM charges
FOM_STEPS = 10_000
#: ranks that actually share the system (one node's GPUs)
COMPUTE_RANKS = 4


def amber_timing_program(comm, atoms_total: int, steps: int):
    """Single-node-optimised MD: 4 compute ranks, the rest synchronise."""
    computing = comm.rank < min(COMPUTE_RANKS, comm.size)
    n_compute = min(COMPUTE_RANKS, comm.size)
    atoms_local = atoms_total / n_compute
    edge = atoms_local ** (1.0 / 3.0)
    halo_bytes = 6.0 * edge * edge * 40.0
    for _step in range(steps):
        if computing:
            # pairwise exchange among the node's GPUs (NVLink)
            peer = comm.rank ^ 1 if n_compute > 1 else comm.rank
            if peer < n_compute and peer != comm.rank:
                yield comm.sendrecv(peer, Phantom(halo_bytes), peer, tag=5)
            yield comm.compute(
                flops=atoms_local * NEIGHBORS_PER_ATOM * FLOPS_PER_PAIR,
                bytes_moved=atoms_local * 200.0,
                efficiency=0.02, label="pair-forces")
            yield comm.compute(flops=atoms_local * 500.0,
                               bytes_moved=atoms_local * 150.0,
                               efficiency=0.03, label="pme")
        # every rank (incl. idle ones) joins the step barrier
        yield comm.barrier(label="step-sync")
    return atoms_local if computing else 0.0


class AmberBenchmark(AppBenchmark):
    """Runnable Amber benchmark (single-node STMV)."""

    NAME = "Amber"
    fom = FigureOfMerit(name="wall time for 10k MD steps", unit="s")

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        steps_small = 4
        spmd = self.run_program(machine, amber_timing_program,
                                args=(STMV_ATOMS, steps_small))
        per_step = spmd.elapsed / steps_small
        return self.result(
            nodes, spmd, fom_seconds=per_step * FOM_STEPS,
            atoms=STMV_ATOMS, compute_ranks=min(COMPUTE_RANKS,
                                                machine.nranks),
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        rng = np.random.default_rng(1995)
        n_side = max(3, int(5 * scale) + 1)
        a = 2.0 ** (1.0 / 6.0)
        system = MdSystem.lattice_gas(n_side, box=n_side * a,
                                      temperature=0.1, rng=rng)
        engine = MdEngine(system, LjParams(cutoff=2.5))
        obs = engine.run(max(30, int(100 * scale)), dt=0.002)
        kinetic_scale = float(np.mean(obs.kinetic))
        verifier = ModelVerifier(checks={
            "energy_drift": (lambda o: o.energy_drift() *
                             abs(o.total_energy[0]) / kinetic_scale,
                             0.0, 1e-2),
            "momentum": (lambda o: float(np.abs(
                system.total_momentum()).max()), 0.0, 1e-9),
        })
        check = verifier(obs)

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        return self.result(nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
                           verified=bool(check), verification=check.detail,
                           atoms=system.n_atoms, drift=obs.energy_drift())
