"""Cell lists and Verlet neighbour lists for periodic boxes.

Classical MD's O(N) machinery: bin particles into cells of at least the
cutoff radius, then build the half neighbour list from the 27-cell
stencil.  Used by both MD benchmarks (GROMACS, Amber) for the
short-range LJ + real-space Ewald interactions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def wrap_positions(pos: np.ndarray, box: float) -> np.ndarray:
    """Map positions into the primary periodic image [0, box)."""
    if box <= 0:
        raise ValueError("box must be positive")
    return np.mod(pos, box)


def minimum_image(delta: np.ndarray, box: float) -> np.ndarray:
    """Minimum-image displacement vectors for a cubic box."""
    return delta - box * np.round(delta / box)


@dataclass
class NeighborList:
    """Half list of interacting pairs within ``cutoff`` (+ skin)."""

    pairs: np.ndarray        # (n_pairs, 2) int indices, i < j
    cutoff: float
    skin: float
    #: positions at build time, for displacement-triggered rebuilds
    reference: np.ndarray | None = None

    @property
    def n_pairs(self) -> int:
        return int(self.pairs.shape[0])

    def needs_rebuild(self, pos: np.ndarray, box: float) -> bool:
        """True when any particle moved more than half the skin."""
        if self.reference is None:
            return True
        disp = minimum_image(pos - self.reference, box)
        max_disp = float(np.sqrt((disp ** 2).sum(axis=1)).max())
        return max_disp > 0.5 * self.skin


def build_neighbor_list(pos: np.ndarray, box: float, cutoff: float,
                        skin: float = 0.3) -> NeighborList:
    """Cell-list construction of the half neighbour list.

    O(N) given near-uniform density.  ``skin`` pads the search radius so
    the list stays valid for several steps (Verlet-list reuse).
    """
    n = pos.shape[0]
    if n < 2:
        return NeighborList(pairs=np.empty((0, 2), dtype=np.int64),
                            cutoff=cutoff, skin=skin, reference=pos.copy())
    if cutoff <= 0 or skin < 0:
        raise ValueError("cutoff must be positive, skin non-negative")
    r_list = cutoff + skin
    ncell = max(1, int(box / r_list))
    if r_list > box / 2 or ncell < 3:
        # Brute force for small boxes: minimum image is only unique below
        # half the box, and with fewer than 3 cells per dimension the
        # periodic +-1 stencil offsets alias onto the same cell, which
        # would double-count cross-cell pairs.
        return _brute_force_list(pos, box, cutoff, skin)
    cell_size = box / ncell
    wrapped = wrap_positions(pos, box)
    cell_idx = np.minimum((wrapped / cell_size).astype(np.int64), ncell - 1)
    flat = (cell_idx[:, 0] * ncell + cell_idx[:, 1]) * ncell + cell_idx[:, 2]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    starts = np.searchsorted(sorted_flat, np.arange(ncell ** 3))
    ends = np.searchsorted(sorted_flat, np.arange(ncell ** 3), side="right")

    members: list[np.ndarray] = [order[starts[c]:ends[c]]
                                 for c in range(ncell ** 3)]
    pair_chunks: list[np.ndarray] = []
    r2max = r_list * r_list
    offsets = [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
               for dz in (-1, 0, 1)]
    for cx in range(ncell):
        for cy in range(ncell):
            for cz in range(ncell):
                c = (cx * ncell + cy) * ncell + cz
                mine = members[c]
                if mine.size == 0:
                    continue
                for dx, dy, dz in offsets:
                    nc = (((cx + dx) % ncell) * ncell +
                          ((cy + dy) % ncell)) * ncell + ((cz + dz) % ncell)
                    if nc < c:
                        continue  # half stencil: each cell pair once
                    other = members[nc]
                    if other.size == 0:
                        continue
                    ii, jj = np.meshgrid(mine, other, indexing="ij")
                    if nc == c:
                        mask = ii < jj
                    else:
                        mask = np.ones_like(ii, dtype=bool)
                    ii, jj = ii[mask], jj[mask]
                    if ii.size == 0:
                        continue
                    d = minimum_image(wrapped[ii] - wrapped[jj], box)
                    r2 = (d ** 2).sum(axis=1)
                    keep = r2 <= r2max
                    if keep.any():
                        lo = np.minimum(ii[keep], jj[keep])
                        hi = np.maximum(ii[keep], jj[keep])
                        pair_chunks.append(np.stack([lo, hi], axis=1))
    pairs = (np.concatenate(pair_chunks, axis=0) if pair_chunks
             else np.empty((0, 2), dtype=np.int64))
    return NeighborList(pairs=pairs, cutoff=cutoff, skin=skin,
                        reference=pos.copy())


def _brute_force_list(pos: np.ndarray, box: float, cutoff: float,
                      skin: float) -> NeighborList:
    n = pos.shape[0]
    ii, jj = np.triu_indices(n, k=1)
    d = minimum_image(pos[ii] - pos[jj], box)
    r2 = (d ** 2).sum(axis=1)
    keep = r2 <= (cutoff + skin) ** 2
    pairs = np.stack([ii[keep], jj[keep]], axis=1)
    return NeighborList(pairs=pairs, cutoff=cutoff, skin=skin,
                        reference=pos.copy())
