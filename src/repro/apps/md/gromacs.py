"""The GROMACS benchmark (Base; test cases A and C).

Two UEABS-derived systems (Sec. IV-A1a):

* **Case A** -- a GluCl ion channel in a membrane, ~150k atoms,
  reference 3 nodes;
* **Case C** -- 27 replicas of the Satellite Tobacco Mosaic Virus,
  ~28 million atoms, reference 128 nodes, designed to "test the
  scalability of system-supplied Fast Fourier Transform libraries"
  (the PME long-range electrostatics).

Real mode integrates a genuine charged LJ melt with full Ewald
electrostatics and applies the model-based verification of Sec. V-A
(energy drift band, momentum conservation).  Timing mode charges the
production profile: 3D domain decomposition with position/force halos,
short-range pair kernels, and the PME mesh pipeline whose distributed
3D FFT performs rank-count-squared alltoall transposes -- the
communication pattern that limits case C at scale.
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit, FomKind
from ...core.variants import MemoryVariant
from ...core.verification import ModelVerifier
from ...vmpi import Phantom
from ...vmpi.decomposition import CartGrid, halo_exchange, phantom_faces
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .engine import MdEngine, MdSystem
from .forcefield import EwaldParams, LjParams

#: the two test cases: atom counts and reference nodes
CASES = {
    "A": {"atoms": 150_000, "nodes": 3},
    "C": {"atoms": 27 * 1_067_095, "nodes": 128},
}
#: MD steps the FOM charges (converted from the ns/day rate)
FOM_STEPS = 50_000
#: average interacting neighbours per atom at biomolecular density
NEIGHBORS_PER_ATOM = 80.0
#: arithmetic per pair interaction (LJ + PME real space)
FLOPS_PER_PAIR = 55.0
#: bytes per atom crossing a halo (position + force, single precision+idx)
HALO_BYTES_PER_ATOM = 40.0


def gromacs_timing_program(comm, atoms_total: int, steps: int,
                           fft_grid: int):
    """One domain-decomposed MD step-loop with PME (phantom costs).

    The distributed 3D FFT uses a 2D *pencil* decomposition: ranks form
    a near-square (rows x cols) grid and each transpose is an alltoall
    within a row or column subgroup of ~sqrt(P) ranks -- the structure
    that makes PME latency-tolerable at small payloads and
    bandwidth-bound at case-C scale.
    """
    cart = CartGrid.for_ranks(comm.size, 3, periodic=True)
    atoms_local = atoms_total / comm.size
    # boundary shell ~ surface fraction of the local box
    edge = max(atoms_local ** (1.0 / 3.0), 1.0)
    local_dims = (int(edge) + 1,) * 3
    faces = phantom_faces(local_dims, itemsize=int(HALO_BYTES_PER_ATOM))
    # pencil grid for the FFT transposes
    rows = int(np.sqrt(comm.size))
    while comm.size % rows != 0:
        rows -= 1
    cols = comm.size // rows
    row_comm = yield comm.split(comm.rank // cols)
    col_comm = yield comm.split(comm.rank % cols)
    # PME mesh pencil per rank (complex64 after r2c)
    grid_local_bytes = (fft_grid ** 3 / comm.size) * 8.0
    for _step in range(steps):
        # position halo, short-range kernel, force halo
        yield from halo_exchange(comm, cart, faces)
        yield comm.compute(
            flops=atoms_local * NEIGHBORS_PER_ATOM * FLOPS_PER_PAIR,
            bytes_moved=atoms_local * 200.0,
            efficiency=0.02, label="pair-forces")
        yield from halo_exchange(comm, cart, faces)
        # PME: spread, forward 3D FFT (row + col transpose), k-space
        # multiply, inverse FFT (col + row transpose), gather
        yield comm.compute(flops=atoms_local * 300.0,
                           bytes_moved=atoms_local * 100.0,
                           efficiency=0.05, label="pme-spread")
        for sub in (row_comm, col_comm, col_comm, row_comm):
            yield sub.alltoall(
                tuple(Phantom(grid_local_bytes / sub.size)
                      for _ in range(sub.size)),
                label="pme-fft")
            yield comm.compute(
                flops=2.5 * (fft_grid ** 3 / comm.size) *
                np.log2(max(fft_grid, 2)),
                bytes_moved=grid_local_bytes * 2.0,
                efficiency=0.10, label="pme-fft")
        yield comm.compute(flops=atoms_local * 300.0,
                           bytes_moved=atoms_local * 100.0,
                           efficiency=0.05, label="pme-gather")
        # integration + constraints (memory-bound)
        yield comm.compute(flops=atoms_local * 60.0,
                           bytes_moved=atoms_local * 72.0,
                           efficiency=0.6, label="integrate")
    # end-of-run global reduction (energies)
    yield comm.allreduce(Phantom(64.0), label="energies")
    return atoms_local


class GromacsBenchmark(AppBenchmark):
    """Runnable GROMACS benchmark (cases A and C)."""

    NAME = "GROMACS"
    fom = FigureOfMerit(name="wall time for 10k MD steps", kind=FomKind.RATE,
                        work=float(FOM_STEPS))

    def __init__(self, case: str = "A") -> None:
        super().__init__()
        if case not in CASES:
            raise ValueError(f"unknown GROMACS case {case!r}; choose A or C")
        self.case = case

    def fft_grid_size(self) -> int:
        """PME mesh dimension: about one grid point per 1.2 atoms^(1/3)
        linear density (typical production setting)."""
        atoms = CASES[self.case]["atoms"]
        return int(np.ceil(atoms ** (1.0 / 3.0) * 1.2))

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        if real:
            return self._execute_real(nodes, scale)
        machine = self.machine(nodes)
        atoms = CASES[self.case]["atoms"]
        steps_small = 3
        spmd = self.run_program(machine, gromacs_timing_program,
                                args=(atoms, steps_small,
                                      self.fft_grid_size()))
        per_step = spmd.elapsed / steps_small
        return self.result(
            nodes, spmd, fom_seconds=per_step * FOM_STEPS,
            case=self.case, atoms=atoms, fft_grid=self.fft_grid_size(),
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds,
            pme_comm_seconds=spmd.comm_profile().get("pme-fft", 0.0))

    def _execute_real(self, nodes: int, scale: float) -> BenchmarkResult:
        rng = np.random.default_rng(1887)
        n_side = max(3, int(4 * scale) + 2)
        system = MdSystem.lattice_gas(n_side, box=float(n_side),
                                      temperature=0.05, rng=rng,
                                      charged=True)
        engine = MdEngine(system, LjParams(sigma=0.8, cutoff=1.9),
                          ewald=EwaldParams(alpha=1.5, kmax=6,
                                            real_cutoff=1.9))
        steps = max(20, int(60 * scale))
        obs = engine.run(steps, dt=0.001)
        kinetic_scale = float(np.mean(obs.kinetic))
        verifier = ModelVerifier(checks={
            "energy_drift": (lambda o: o.energy_drift() *
                             abs(o.total_energy[0]) / kinetic_scale,
                             0.0, 1e-2),
            "momentum": (lambda o: float(np.abs(
                system.total_momentum()).max()), 0.0, 1e-9),
            "temperature": (lambda o: float(np.mean(o.temperature)),
                            1e-4, 10.0),
        })
        check = verifier(obs)

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(self.machine(nodes), tiny)
        return self.result(
            nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
            verified=bool(check), verification=check.detail,
            atoms=system.n_atoms, steps=steps,
            drift=obs.energy_drift())
