"""Molecular dynamics substrate shared by GROMACS and Amber:
neighbour lists, LJ + Ewald force field, velocity-Verlet engine."""

from .amber import STMV_ATOMS, AmberBenchmark, amber_timing_program
from .engine import MdEngine, MdObservables, MdSystem
from .forcefield import (
    EwaldParams,
    LjParams,
    coulomb_energy,
    ewald_real_space,
    ewald_reciprocal,
    lj_forces,
    lj_pair_energy,
    madelung_nacl,
)
from .gromacs import CASES, GromacsBenchmark, gromacs_timing_program
from .neighbor import (
    NeighborList,
    build_neighbor_list,
    minimum_image,
    wrap_positions,
)

__all__ = [
    "AmberBenchmark", "CASES", "EwaldParams", "GromacsBenchmark",
    "LjParams", "MdEngine", "MdObservables", "MdSystem", "NeighborList",
    "STMV_ATOMS", "amber_timing_program", "build_neighbor_list",
    "coulomb_energy", "ewald_real_space", "ewald_reciprocal",
    "gromacs_timing_program", "lj_forces", "lj_pair_energy",
    "madelung_nacl", "minimum_image", "wrap_positions",
]
