"""The MD engine: velocity-Verlet integration of LJ(+Coulomb) systems.

Integrates Newton's equations "for systems with hundreds to millions of
particles", providing the time-resolved trajectories both MD benchmarks
measure.  Verification follows the model-based class of Sec. V-A:
energy drift inside a band, momentum conserved, temperature sane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .forcefield import (
    EwaldParams,
    LjParams,
    ewald_real_space,
    ewald_reciprocal,
    lj_forces,
)
from .neighbor import NeighborList, build_neighbor_list, wrap_positions


@dataclass
class MdSystem:
    """State of a particle system in a cubic periodic box."""

    positions: np.ndarray
    velocities: np.ndarray
    box: float
    masses: np.ndarray
    charges: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = self.positions.shape[0]
        if self.positions.shape != (n, 3) or self.velocities.shape != (n, 3):
            raise ValueError("positions/velocities must be (N, 3)")
        if self.masses.shape != (n,):
            raise ValueError("masses must be (N,)")
        if self.charges is not None and self.charges.shape != (n,):
            raise ValueError("charges must be (N,)")
        if self.box <= 0:
            raise ValueError("box must be positive")

    @property
    def n_atoms(self) -> int:
        return int(self.positions.shape[0])

    @classmethod
    def lattice_gas(cls, n_side: int, box: float, temperature: float,
                    rng: np.random.Generator,
                    charged: bool = False) -> "MdSystem":
        """N = n_side^3 particles on a cubic lattice with Maxwell
        velocities (zero net momentum); alternating unit charges when
        ``charged`` (an NaCl-like melt)."""
        g = np.arange(n_side) * (box / n_side)
        x, y, z = np.meshgrid(g, g, g, indexing="ij")
        pos = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
        n = pos.shape[0]
        vel = rng.normal(scale=np.sqrt(temperature), size=(n, 3))
        vel -= vel.mean(axis=0)
        charges = None
        if charged:
            parity = (np.indices((n_side,) * 3).sum(axis=0).ravel() % 2)
            charges = np.where(parity == 0, 1.0, -1.0)
        return cls(positions=pos, velocities=vel, box=box,
                   masses=np.ones(n), charges=charges)

    def kinetic_energy(self) -> float:
        return 0.5 * float(np.sum(self.masses[:, None] *
                                  self.velocities ** 2))

    def temperature(self) -> float:
        """Instantaneous kinetic temperature (k_B = 1)."""
        dof = 3 * self.n_atoms - 3
        return 2.0 * self.kinetic_energy() / dof

    def total_momentum(self) -> np.ndarray:
        return (self.masses[:, None] * self.velocities).sum(axis=0)


@dataclass
class MdObservables:
    """Per-step record of the run."""

    potential: list[float] = field(default_factory=list)
    kinetic: list[float] = field(default_factory=list)
    temperature: list[float] = field(default_factory=list)
    neighbor_rebuilds: int = 0

    @property
    def total_energy(self) -> np.ndarray:
        return np.asarray(self.potential) + np.asarray(self.kinetic)

    def energy_drift(self) -> float:
        """Relative drift |E_end - E_start| / |E_start| of total energy."""
        e = self.total_energy
        if e.size < 2 or abs(e[0]) < 1e-30:
            return 0.0
        return float(abs(e[-1] - e[0]) / abs(e[0]))


class MdEngine:
    """Velocity-Verlet integrator with Verlet-list reuse."""

    def __init__(self, system: MdSystem, lj: LjParams,
                 ewald: EwaldParams | None = None, skin: float = 0.3):
        self.system = system
        self.lj = lj
        self.ewald = ewald
        if ewald is not None and system.charges is None:
            raise ValueError("Ewald electrostatics need charges")
        self.skin = skin
        self._nlist: NeighborList | None = None
        self._forces, self._potential = self.compute_forces()

    # -- forces ------------------------------------------------------------

    def _neighbor_list(self) -> tuple[NeighborList, bool]:
        sysm = self.system
        rebuilt = False
        reach = self.lj.cutoff
        if self.ewald is not None:
            reach = max(reach, self.ewald.real_cutoff)
        if self._nlist is None or self._nlist.needs_rebuild(sysm.positions,
                                                            sysm.box):
            self._nlist = build_neighbor_list(sysm.positions, sysm.box,
                                              cutoff=reach, skin=self.skin)
            rebuilt = True
        return self._nlist, rebuilt

    def compute_forces(self) -> tuple[np.ndarray, float]:
        """Total forces and potential energy at the current positions."""
        sysm = self.system
        nlist, _ = self._neighbor_list()
        forces, potential = lj_forces(sysm.positions, sysm.box, nlist,
                                      self.lj)
        if self.ewald is not None:
            fr, er = ewald_real_space(sysm.positions, sysm.charges,
                                      sysm.box, nlist, self.ewald)
            fk, ek = ewald_reciprocal(sysm.positions, sysm.charges,
                                      sysm.box, self.ewald)
            forces += fr + fk
            potential += er + ek
        return forces, potential

    # -- integration ----------------------------------------------------------

    def step(self, dt: float) -> None:
        """One velocity-Verlet step."""
        sysm = self.system
        inv_m = 1.0 / sysm.masses[:, None]
        sysm.velocities += 0.5 * dt * self._forces * inv_m
        sysm.positions = wrap_positions(
            sysm.positions + dt * sysm.velocities, sysm.box)
        self._forces, self._potential = self.compute_forces()
        sysm.velocities += 0.5 * dt * self._forces * inv_m

    def run(self, steps: int, dt: float = 0.002) -> MdObservables:
        """Integrate ``steps`` steps, recording observables."""
        if steps < 1 or dt <= 0:
            raise ValueError("need steps >= 1 and dt > 0")
        obs = MdObservables()
        obs.potential.append(self._potential)
        obs.kinetic.append(self.system.kinetic_energy())
        obs.temperature.append(self.system.temperature())
        for _ in range(steps):
            before = self._nlist
            self.step(dt)
            if self._nlist is not before:
                obs.neighbor_rebuilds += 1
            obs.potential.append(self._potential)
            obs.kinetic.append(self.system.kinetic_energy())
            obs.temperature.append(self.system.temperature())
        return obs
