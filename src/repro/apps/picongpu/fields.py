"""Yee-grid FDTD Maxwell solver (2D TEz, periodic).

The field half of the PIC loop: E and B live on a staggered Yee grid
and advance with the standard leapfrogged curl equations (natural units
c = 1, eps0 = 1).  Correctness anchors used by the tests: vacuum plane
waves propagate at c, and electromagnetic energy is conserved to
discretisation accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class YeeGrid2D:
    """TEz fields on a periodic 2D Yee grid: Ex, Ey in-plane, Bz out.

    Staggering: Ex at (i+1/2, j), Ey at (i, j+1/2), Bz at (i+1/2, j+1/2).
    """

    nx: int
    ny: int
    dx: float = 1.0
    dy: float = 1.0

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise ValueError("grid needs at least 2x2 cells")
        self.ex = np.zeros((self.nx, self.ny))
        self.ey = np.zeros((self.nx, self.ny))
        self.bz = np.zeros((self.nx, self.ny))

    def courant_dt(self, safety: float = 0.95) -> float:
        """Largest stable time step (2D CFL)."""
        return safety / np.sqrt(1.0 / self.dx ** 2 + 1.0 / self.dy ** 2)

    def step_b(self, dt: float) -> None:
        """Advance Bz by dt: dBz/dt = -(dEy/dx - dEx/dy)."""
        curl_e = ((np.roll(self.ey, -1, axis=0) - self.ey) / self.dx -
                  (np.roll(self.ex, -1, axis=1) - self.ex) / self.dy)
        self.bz -= dt * curl_e

    def step_e(self, dt: float, jx: np.ndarray | None = None,
               jy: np.ndarray | None = None) -> None:
        """Advance E by dt: dE/dt = curl B - J."""
        self.ex += dt * ((self.bz - np.roll(self.bz, 1, axis=1)) / self.dy)
        self.ey -= dt * ((self.bz - np.roll(self.bz, 1, axis=0)) / self.dx)
        if jx is not None:
            self.ex -= dt * jx
        if jy is not None:
            self.ey -= dt * jy

    def energy(self) -> float:
        """EM field energy (sum of E^2 + B^2 over cells, / 2)."""
        return 0.5 * float(np.sum(self.ex ** 2 + self.ey ** 2 +
                                  self.bz ** 2)) * self.dx * self.dy


def plane_wave(grid: YeeGrid2D, k_cells: int = 2) -> None:
    """Load a y-polarised plane wave travelling in +x."""
    k = 2 * np.pi * k_cells / (grid.nx * grid.dx)
    x_ey = (np.arange(grid.nx)) * grid.dx
    x_bz = (np.arange(grid.nx) + 0.5) * grid.dx
    grid.ey[:, :] = np.sin(k * x_ey)[:, None]
    grid.bz[:, :] = -np.sin(k * x_bz)[:, None]
