"""Relativistic particles: Boris push and CIC deposition.

The particle half of the PIC loop (Sec. IV-A2e): "particle
initialization, charge calculations using grid interpolation, field
calculations using densities, and time-marching due to Lorentz force".
Particles interact only "via fields on the grid rather than direct
pairwise interactions, reducing computational steps from N^2 to N".

Anchors: the Boris rotation reproduces the exact gyro-radius and
frequency in a uniform B field and is energy-conserving for E = 0; CIC
deposition conserves total charge exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ParticleSpecies:
    """A species: positions (N, 2), momenta (N, 2) [relativistic u =
    gamma v], charge and mass per macro-particle."""

    x: np.ndarray
    u: np.ndarray
    charge: float
    mass: float

    def __post_init__(self) -> None:
        if self.x.shape != self.u.shape or self.x.ndim != 2:
            raise ValueError("x and u must be matching (N, 2) arrays")
        if self.mass <= 0:
            raise ValueError("mass must be positive")

    @property
    def n(self) -> int:
        return int(self.x.shape[0])

    def gamma(self) -> np.ndarray:
        """Lorentz factor from the momentum (c = 1)."""
        return np.sqrt(1.0 + np.sum(self.u ** 2, axis=1))

    def velocity(self) -> np.ndarray:
        return self.u / self.gamma()[:, None]

    def kinetic_energy(self) -> float:
        """Total relativistic kinetic energy m (gamma - 1)."""
        return float(self.mass * np.sum(self.gamma() - 1.0))


def boris_push(species: ParticleSpecies, ex: np.ndarray, ey: np.ndarray,
               bz: np.ndarray, dt: float) -> None:
    """The Boris rotation: half E kick, B rotation, half E kick.

    Field arrays are per-particle samples (already interpolated).
    2D in-plane motion with out-of-plane Bz.
    """
    qmdt2 = species.charge / species.mass * dt / 2.0
    u = species.u
    # half electric impulse
    u[:, 0] += qmdt2 * ex
    u[:, 1] += qmdt2 * ey
    # magnetic rotation (relativistic: use gamma at mid-step)
    gamma = np.sqrt(1.0 + np.sum(u ** 2, axis=1))
    t = qmdt2 * bz / gamma
    s = 2.0 * t / (1.0 + t * t)
    ux = u[:, 0] + u[:, 1] * t
    uy = u[:, 1] - u[:, 0] * t
    u[:, 0] += uy * s
    u[:, 1] -= ux * s
    # second half electric impulse
    u[:, 0] += qmdt2 * ex
    u[:, 1] += qmdt2 * ey


def advance_positions(species: ParticleSpecies, dt: float,
                      lx: float, ly: float) -> None:
    """Move particles and wrap into the periodic box."""
    species.x += dt * species.velocity()
    species.x[:, 0] %= lx
    species.x[:, 1] %= ly


def cic_weights(x: np.ndarray, dx: float,
                n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cloud-in-cell: (left index, left weight, right weight) along one
    axis of a periodic grid with spacing ``dx``."""
    xi = x / dx
    i0 = np.floor(xi).astype(np.int64)
    w1 = xi - i0
    return i0 % n, 1.0 - w1, w1


def deposit_charge(species: ParticleSpecies, nx: int, ny: int,
                   dx: float, dy: float) -> np.ndarray:
    """CIC charge deposition onto the periodic grid (rho per cell)."""
    i0, wx0, wx1 = cic_weights(species.x[:, 0], dx, nx)
    j0, wy0, wy1 = cic_weights(species.x[:, 1], dy, ny)
    i1 = (i0 + 1) % nx
    j1 = (j0 + 1) % ny
    rho = np.zeros((nx, ny))
    q = species.charge
    np.add.at(rho, (i0, j0), q * wx0 * wy0)
    np.add.at(rho, (i1, j0), q * wx1 * wy0)
    np.add.at(rho, (i0, j1), q * wx0 * wy1)
    np.add.at(rho, (i1, j1), q * wx1 * wy1)
    return rho / (dx * dy)


def deposit_current(species: ParticleSpecies, nx: int, ny: int,
                    dx: float, dy: float) -> tuple[np.ndarray, np.ndarray]:
    """CIC current deposition (J = q n v), same stencil as the charge."""
    v = species.velocity()
    i0, wx0, wx1 = cic_weights(species.x[:, 0], dx, nx)
    j0, wy0, wy1 = cic_weights(species.x[:, 1], dy, ny)
    i1 = (i0 + 1) % nx
    j1 = (j0 + 1) % ny
    jx = np.zeros((nx, ny))
    jy = np.zeros((nx, ny))
    q = species.charge
    for (ii, jj, w) in ((i0, j0, wx0 * wy0), (i1, j0, wx1 * wy0),
                        (i0, j1, wx0 * wy1), (i1, j1, wx1 * wy1)):
        np.add.at(jx, (ii, jj), q * w * v[:, 0])
        np.add.at(jy, (ii, jj), q * w * v[:, 1])
    return jx / (dx * dy), jy / (dx * dy)


def gather_fields(species: ParticleSpecies, ex: np.ndarray, ey: np.ndarray,
                  bz: np.ndarray, dx: float,
                  dy: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CIC interpolation of grid fields to the particle positions
    (node-centred approximation; adequate for the benchmark physics)."""
    nx, ny = ex.shape
    i0, wx0, wx1 = cic_weights(species.x[:, 0], dx, nx)
    j0, wy0, wy1 = cic_weights(species.x[:, 1], dy, ny)
    i1 = (i0 + 1) % nx
    j1 = (j0 + 1) % ny

    def interp(f: np.ndarray) -> np.ndarray:
        return (f[i0, j0] * wx0 * wy0 + f[i1, j0] * wx1 * wy0 +
                f[i0, j1] * wx0 * wy1 + f[i1, j1] * wx1 * wy1)

    return interp(ex), interp(ey), interp(bz)
