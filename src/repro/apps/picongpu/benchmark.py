"""The PIConGPU benchmark (Base 4 nodes; High-Scaling 640, S/M/L).

Workload (Sec. IV-A2e): a 3D Kelvin-Helmholtz instability (KHI) in
pre-ionised hydrogen with periodic boundaries; 25 particles per cell,
grid (4096, 2048, 1024) for S, (4096, 2048, 2048) M, (4096, 4096, 2560)
L.  "To distribute along these three dimensions, the maximum number of
nodes that can be utilized is limited to 640, rather than 642."  The
shear flow "does not impose a significant load imbalance", so
performance follows the code structure, not the physics -- which is why
a phantom-cost structural model is faithful here.

Real mode runs a genuine (small, 2D) KHI PIC simulation: counter-
streaming slabs, full deposit-solve-gather-push loop, verified by exact
charge conservation and bounded total energy (the framework-inherent
class of Sec. V-A).
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...core.verification import FrameworkVerifier
from ...vmpi.decomposition import CartGrid, dims_create, halo_exchange, phantom_faces
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .fields import YeeGrid2D
from .particles import (
    ParticleSpecies,
    advance_positions,
    boris_push,
    deposit_charge,
    deposit_current,
    gather_fields,
)

#: the paper's grids per memory variant
GRIDS = {
    MemoryVariant.SMALL: (4096, 2048, 1024),
    MemoryVariant.MEDIUM: (4096, 2048, 2048),
    MemoryVariant.LARGE: (4096, 4096, 2560),
}
PARTICLES_PER_CELL = 25
#: hard node-count cap from the 3D decomposition
MAX_NODES = 640
FOM_STEPS = 2000
#: Base workload: the fixed grid for the 4-node reference execution
#: (same cells-per-GPU density as the S variant at 640 nodes)
BASE_GRID = (512, 512, 208)
#: bytes per macro-particle on device (position, momentum, id, fields)
BYTES_PER_PARTICLE = 64.0
BYTES_PER_CELL = 9 * 4.0  # E, B, J single precision


def picongpu_timing_program(comm, grid: tuple[int, int, int], steps: int):
    """Phantom-cost KHI stepping on a 3D-decomposed domain."""
    cart = CartGrid.for_ranks(comm.size, 3, extents=grid, periodic=True)
    cells_local = float(np.prod(grid)) / comm.size
    particles_local = cells_local * PARTICLES_PER_CELL
    local_dims = tuple(int(g / d) for g, d in zip(grid, cart.dims))
    # field halos: 2 ghost layers of E/B/J, plus particle migration
    faces = phantom_faces(local_dims, itemsize=int(BYTES_PER_CELL * 2))
    for _step in range(steps):
        yield comm.compute(flops=particles_local * 230.0,
                           bytes_moved=particles_local * BYTES_PER_PARTICLE,
                           efficiency=0.18, label="push-deposit")
        yield comm.compute(flops=cells_local * 80.0,
                           bytes_moved=cells_local * BYTES_PER_CELL * 2,
                           efficiency=0.4, label="fdtd")
        yield from halo_exchange(comm, cart, faces)
    return particles_local


def khi_setup_2d(nx: int, ny: int, ppc: int, shear_u: float,
                 rng: np.random.Generator) -> ParticleSpecies:
    """Counter-streaming electron slabs (2D KHI initial condition)."""
    n = nx * ny * ppc
    x = rng.random((n, 2)) * [nx, ny]
    u = rng.normal(scale=0.01, size=(n, 2))
    # upper half streams +x, lower half -x
    sign = np.where(x[:, 1] > ny / 2.0, 1.0, -1.0)
    u[:, 0] += sign * shear_u
    return ParticleSpecies(x=x, u=u, charge=-1.0 / ppc, mass=1.0 / ppc)


def run_khi_2d(nx: int = 32, ny: int = 32, ppc: int = 4, steps: int = 60,
               shear_u: float = 0.2, seed: int = 9) -> dict[str, object]:
    """A real (small) 2D PIC loop; returns conservation diagnostics."""
    rng = np.random.default_rng(seed)
    grid = YeeGrid2D(nx=nx, ny=ny)
    species = khi_setup_2d(nx, ny, ppc, shear_u, rng)
    dt = grid.courant_dt() * 0.5
    charge0 = float(np.sum(deposit_charge(species, nx, ny, 1.0, 1.0)))
    energies = []
    charge_err = 0.0
    for _ in range(steps):
        ex, ey, bz = gather_fields(species, grid.ex, grid.ey, grid.bz,
                                   1.0, 1.0)
        boris_push(species, ex, ey, bz, dt)
        advance_positions(species, dt, float(nx), float(ny))
        jx, jy = deposit_current(species, nx, ny, 1.0, 1.0)
        grid.step_b(dt / 2)
        grid.step_e(dt, jx, jy)
        grid.step_b(dt / 2)
        rho = deposit_charge(species, nx, ny, 1.0, 1.0)
        charge_err = max(charge_err,
                         abs(float(np.sum(rho)) - charge0))
        energies.append(grid.energy() + species.kinetic_energy())
    return {
        "charge_error": charge_err,
        "energy_series": energies,
        "energy_growth": energies[-1] / max(energies[0], 1e-30),
        "particles": species.n,
    }


class PicongpuBenchmark(AppBenchmark):
    """Runnable PIConGPU benchmark."""

    NAME = "PIConGPU"
    fom = FigureOfMerit(name="KHI stepping runtime", unit="s")
    DEFAULT_VARIANT = MemoryVariant.SMALL

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        if nodes > MAX_NODES:
            nodes = MAX_NODES  # the 3D-decomposition cap
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        v = self.variant_or_default(variant)
        if variant is None and nodes < 64:
            # Base regime: the fixed 4-node reference workload, strong-
            # scaled over the requested nodes (Fig. 2).
            grid = BASE_GRID
        else:
            # High-Scaling regime: constant work per GPU -- the variant
            # grid is defined for 640 nodes; smaller/larger jobs scale
            # every extent isotropically so cells-per-GPU stays fixed
            # (Fig. 3's weak-scaling rule).
            gx, gy, gz = GRIDS[v]
            factor = (nodes / MAX_NODES) ** (1.0 / 3.0)
            grid = tuple(max(8, int(round(g * factor / 8)) * 8)
                         for g in (gx, gy, gz))
        steps_small = 3
        spmd = self.run_program(machine, picongpu_timing_program,
                                args=(grid, steps_small))
        fom = spmd.elapsed * (FOM_STEPS / steps_small)
        return self.result(
            nodes, spmd, variant=v, fom_seconds=fom,
            grid=grid, particles=float(np.prod(grid)) * PARTICLES_PER_CELL,
            decomposition=dims_create(machine.nranks, 3, extents=grid),
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        size = max(16, int(32 * scale))
        diag = run_khi_2d(nx=size, ny=size, steps=max(20, int(60 * scale)))
        verifier = FrameworkVerifier(required_keys=("charge_error",
                                                    "energy_growth"))
        base = verifier(diag)
        ok = bool(base) and diag["charge_error"] < 1e-9 and \
            diag["energy_growth"] < 2.0

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        return self.result(
            nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
            verified=ok,
            verification=f"charge error {diag['charge_error']:.2e}; "
                         f"energy growth x{diag['energy_growth']:.3f}",
            particles=diag["particles"])
