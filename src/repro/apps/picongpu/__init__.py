"""PIConGPU: relativistic particle-in-cell (Kelvin-Helmholtz case)."""

from .benchmark import (
    GRIDS,
    MAX_NODES,
    PARTICLES_PER_CELL,
    PicongpuBenchmark,
    khi_setup_2d,
    picongpu_timing_program,
    run_khi_2d,
)
from .fields import YeeGrid2D, plane_wave
from .particles import (
    ParticleSpecies,
    advance_positions,
    boris_push,
    cic_weights,
    deposit_charge,
    deposit_current,
    gather_fields,
)

__all__ = [
    "GRIDS", "MAX_NODES", "PARTICLES_PER_CELL", "ParticleSpecies",
    "PicongpuBenchmark", "YeeGrid2D", "advance_positions", "boris_push",
    "cic_weights", "deposit_charge", "deposit_current", "gather_fields",
    "khi_setup_2d", "picongpu_timing_program", "plane_wave", "run_khi_2d",
]
