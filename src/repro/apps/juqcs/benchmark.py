"""The JUQCS benchmark (Base, High-Scaling S/L, and MSA variants).

Workload (Sec. IV-A2c): successive applications of a single-qubit gate
that requires large memory transfers -- i.e. gates on qubits currently
living in the *rank bits*, each moving half of all memory across the
network.  Sizes:

* Base: n = 36 qubits on 8 nodes (32 GPUs) -> 1 TiB of GPU memory;
* High-Scaling: n = 41 (S, 32 TiB) and n = 42 (L, 64 TiB) on 512 nodes,
  extrapolating to n = 45 / 46 on an exascale partition;
* MSA: n = 34 split half/half between Cluster and Booster memory.

Verification is *exact* (Sec. V-A): the distributed run is compared
against the single-process reference state, and against the theoretical
expectation for the benchmark circuit.
"""

from __future__ import annotations

import math

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...units import BYTES_PER_COMPLEX128
from ...vmpi.machine import Machine
from ..base import AppBenchmark, pow2_floor
from .distributed import dist_apply, dist_gather, dist_zero_state, reference_state
from .statevector import H

import numpy as np

#: Paper sizes: Base qubits on the reference 8 nodes.
BASE_QUBITS = 36
#: High-Scaling qubit counts per variant on 512 preparation nodes.
HS_QUBITS = {MemoryVariant.SMALL: 41, MemoryVariant.LARGE: 42}
#: Exascale extrapolation targets (rules in the benchmark description).
EXA_QUBITS = {MemoryVariant.SMALL: 45, MemoryVariant.LARGE: 46}
#: Gates applied by the benchmark kernel.
DEFAULT_GATES = 12


def state_vector_bytes(qubits: int) -> float:
    """Memory of an n-qubit double-precision state vector (16 B * 2^n)."""
    if qubits < 1:
        raise ValueError("need at least one qubit")
    return float(BYTES_PER_COMPLEX128) * 2.0 ** qubits


def qubits_for_memory(total_bytes: float) -> int:
    """Largest register that fits in ``total_bytes`` of memory."""
    if total_bytes < BYTES_PER_COMPLEX128 * 2:
        raise ValueError("not enough memory for one qubit")
    return int(math.floor(math.log2(total_bytes / BYTES_PER_COMPLEX128)))


def juqcs_program(comm, n_qubits: int, gates: int, real: bool):
    """The benchmark kernel: ``gates`` single-qubit gates, each targeting
    a logical qubit currently held in the rank bits (maximal transfers).

    Returns (max |psi - psi_ref|, #non-local gates) in real mode, or
    (None, #non-local) in phantom mode.
    """
    state = dist_zero_state(comm, n_qubits, real=real)
    p = state.rank_bits
    m = state.local_bits
    nonlocal_count = 0
    for _i in range(gates):
        if p > 0:
            # always the *top* rank bit: the partner is half the machine
            # away, so every gate moves half of all memory across the
            # widest cut (the benchmark's "large memory transfers" rule)
            target = state.layout[m + p - 1]
        else:
            target = state.layout[m - 1]
        was_nonlocal = yield from dist_apply(comm, state, H, target)
        nonlocal_count += int(was_nonlocal)
    if not real:
        return None, nonlocal_count
    full = yield from dist_gather(comm, state)
    ref = reference_state(n_qubits, state.history)
    return float(np.max(np.abs(full - ref))), nonlocal_count


class JuqcsBenchmark(AppBenchmark):
    """Runnable JUQCS benchmark against the simulated machine."""

    NAME = "JUQCS"
    fom = FigureOfMerit(name="gate-sequence runtime", unit="s")

    def qubits_for(self, nodes: int, variant: MemoryVariant | None,
                   weak: bool = True) -> int:
        """Register size for a job.

        Weak mode (the JUQCS rule): per-rank memory is pinned to the
        variant fraction of the device, so qubits grow with log2(ranks).
        Strong mode returns the fixed Base size regardless of nodes.
        """
        if not weak:
            return BASE_QUBITS
        ranks = pow2_floor(nodes * 4)
        v = self.variant_or_default(variant)
        local_qubits = qubits_for_memory(self.device_bytes(v))
        return local_qubits + int(math.log2(ranks))

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        ranks = pow2_floor(nodes * 4)
        used_nodes = max(1, ranks // 4)
        machine = self.machine(used_nodes, ranks_per_node=min(4, ranks))
        v = self.variant_or_default(variant)
        clamped = False
        if real:
            # exact verification at laptop scale: shrink the register but
            # keep at least one local bit per rank
            p = int(math.log2(ranks))
            n = max(p + 1, min(14, p + 1 + int(8 * scale)))
        elif variant is not None or used_nodes >= 64:
            # High-Scaling rule: per-rank memory pinned (weak scaling)
            n = self.qubits_for(used_nodes, v)
        else:
            # Base rule: the fixed n = 36 workload, strong-scaled; on
            # too few nodes the register is clamped to what fits (the
            # memory-pressure case, like Arbor's 4-node Fig. 2 point)
            n = BASE_QUBITS
            p = int(math.log2(ranks))
            capacity_qubits = qubits_for_memory(self.device_bytes(v)) + p
            if n > capacity_qubits:
                n = capacity_qubits
                clamped = True
        gates = DEFAULT_GATES
        spmd = self.run_program(machine, juqcs_program,
                                args=(n, gates, real))
        verified: bool | None = None
        verification = ""
        if real:
            err = max(val[0] for val in spmd.values)
            verified = err == 0.0
            verification = f"exact: max |psi - psi_ref| = {err:.1e}"
        nonlocal_gates = spmd.values[0][1]
        fom = spmd.elapsed * (1.3 if clamped else 1.0)
        return self.result(
            used_nodes, spmd, variant=v, verified=verified,
            verification=verification, fom_seconds=fom,
            workload_clamped=clamped, qubits=n, gates=gates,
            nonlocal_gates=nonlocal_gates,
            state_bytes=state_vector_bytes(n),
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def run_msa(self, cluster_nodes: int = 4, booster_nodes: int = 4,
                qubits: int | None = None, real: bool = True,
                gates: int = DEFAULT_GATES) -> BenchmarkResult:
        """The MSA variant: the register is split across Cluster and
        Booster memory, MPI bridging the modules (n = 34 in the paper;
        shrunk by default for real verification)."""
        machine = Machine.msa(cluster_nodes=cluster_nodes,
                              booster_nodes=booster_nodes)
        ranks = pow2_floor(machine.nranks)
        if ranks != machine.nranks:
            raise ValueError("MSA split must give a power-of-two rank count")
        p = int(math.log2(ranks))
        n = qubits if qubits is not None else (p + 6 if real else 34)
        spmd = self.run_program(machine, juqcs_program, args=(n, gates, real))
        verified = None
        verification = ""
        if real:
            err = max(val[0] for val in spmd.values)
            verified = err == 0.0
            verification = f"exact: max |psi - psi_ref| = {err:.1e}"
        return self.result(cluster_nodes + booster_nodes, spmd,
                           verified=verified, verification=verification,
                           qubits=n, gates=gates, msa=True)
