"""JUQCS: massively parallel universal quantum-computer simulator."""

from .benchmark import (
    BASE_QUBITS,
    EXA_QUBITS,
    HS_QUBITS,
    JuqcsBenchmark,
    juqcs_program,
    qubits_for_memory,
    state_vector_bytes,
)
from .distributed import (
    AMP_BYTES,
    DistState,
    dist_apply,
    dist_gather,
    dist_zero_state,
    reference_state,
)
from .statevector import (
    H,
    I2,
    S,
    T,
    X,
    Y,
    Z,
    Circuit,
    apply_controlled,
    apply_gate,
    is_unitary,
    norm,
    probabilities,
    rx,
    ry,
    rz,
    zero_state,
)

__all__ = [
    "AMP_BYTES", "BASE_QUBITS", "Circuit", "DistState", "EXA_QUBITS", "H",
    "HS_QUBITS", "I2", "JuqcsBenchmark", "S", "T", "X", "Y", "Z",
    "apply_controlled", "apply_gate", "dist_apply", "dist_gather",
    "dist_zero_state", "is_unitary", "juqcs_program", "norm",
    "probabilities", "qubits_for_memory", "reference_state", "rx", "ry",
    "rz", "state_vector_bytes", "zero_state",
]
