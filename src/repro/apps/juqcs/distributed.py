"""Distributed state-vector simulation over virtual MPI.

Implements the massively parallel scheme of JUQCS (De Raedt et al.):
2^p ranks each hold 2^(n-p) amplitudes.  Gates on *local* qubits (low
bit positions) apply without communication.  Gates on *global* qubits
(bit positions encoded in the rank index) pair each rank with a partner
differing in that rank bit; the partners exchange **half of their local
amplitudes** -- which is why "many operations require the transfer of
half of all memory, i.e., 2^n/2 complex double-precision numbers, across
the network" (Sec. IV-A2c) -- and then *relabel* qubits instead of
shipping results back:

* the rank with bit 0 keeps the lower local half and receives the
  partner's lower half; the rank with bit 1 keeps/receives the upper
  halves;
* afterwards, the top local bit and the global bit have swapped roles,
  recorded in the ``layout`` permutation (physical bit -> logical qubit);
* the gate then applies locally on the top local bit.

The same generator runs with real NumPy amplitudes (verified exactly
against :mod:`.statevector`) or with :class:`~repro.vmpi.ops.Phantom`
payloads for at-scale timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...vmpi import Comm, Phantom
from .statevector import is_unitary, zero_state

#: complex128 amplitude size
AMP_BYTES = 16


@dataclass
class DistState:
    """Per-rank piece of the distributed register.

    ``layout[i]`` is the logical qubit stored at physical bit ``i``;
    positions ``0..m-1`` index within the local array, ``m..n-1`` are the
    rank bits.  ``local`` is a complex array (real mode) or a Phantom.
    """

    n_qubits: int
    rank_bits: int
    local: "np.ndarray | Phantom"
    layout: list[int] = field(default_factory=list)
    #: recorded (matrix, logical qubit) ops for reference replay
    history: list[tuple[np.ndarray, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.layout:
            self.layout = list(range(self.n_qubits))

    @property
    def local_bits(self) -> int:
        """Number of local (within-rank) bit positions m = n - p."""
        return self.n_qubits - self.rank_bits

    @property
    def local_amplitudes(self) -> int:
        return 1 << self.local_bits

    @property
    def local_bytes(self) -> float:
        return float(self.local_amplitudes * AMP_BYTES)

    def position_of(self, qubit: int) -> int:
        """Physical bit position currently holding a logical qubit."""
        return self.layout.index(qubit)

    def is_local(self, qubit: int) -> bool:
        """Whether a gate on this qubit needs no communication now."""
        return self.position_of(qubit) < self.local_bits


def dist_zero_state(comm: Comm, n_qubits: int, real: bool = True) -> DistState:
    """The |0...0> register distributed over ``comm`` (power-of-two size)."""
    p = comm.size.bit_length() - 1
    if 1 << p != comm.size:
        raise ValueError(f"JUQCS needs a power-of-two rank count, got {comm.size}")
    if n_qubits <= p:
        raise ValueError(
            f"{n_qubits} qubits cannot be split over 2^{p} ranks")
    m = n_qubits - p
    if real:
        local = np.zeros(1 << m, dtype=np.complex128)
        if comm.rank == 0:
            local[0] = 1.0
    else:
        local = Phantom(float((1 << m) * AMP_BYTES))
    return DistState(n_qubits=n_qubits, rank_bits=p, local=local)


def _local_apply(local: np.ndarray, u: np.ndarray, pos: int) -> None:
    view = local.reshape(-1, 2, 1 << pos)
    a0 = view[:, 0, :].copy()
    a1 = view[:, 1, :]
    view[:, 0, :] = u[0, 0] * a0 + u[0, 1] * a1
    view[:, 1, :] = u[1, 0] * a0 + u[1, 1] * a1


def dist_apply(comm: Comm, state: DistState, u: np.ndarray, qubit: int,
               gate_efficiency: float = 0.6):
    """Apply a single-qubit gate (generator; use ``yield from``).

    Returns ``True`` if the gate was non-local (needed communication).
    """
    if not is_unitary(np.asarray(u)):
        raise ValueError("gate is not unitary")
    if not 0 <= qubit < state.n_qubits:
        raise ValueError(f"qubit {qubit} outside register")
    state.history.append((np.asarray(u, dtype=np.complex128), qubit))
    m = state.local_bits
    pos = state.position_of(qubit)
    real = isinstance(state.local, np.ndarray)
    nonlocal_gate = pos >= m
    if nonlocal_gate:
        if m < 1:
            raise ValueError("non-local gate needs at least one local bit")
        rank_bit = pos - m
        partner = comm.rank ^ (1 << rank_bit)
        my_bit = (comm.rank >> rank_bit) & 1
        half = state.local_amplitudes // 2
        if real:
            # bit 0 rank ships its upper half, keeps/receives lower halves;
            # bit 1 rank symmetric with the halves swapped.
            outgoing = state.local[half:].copy() if my_bit == 0 \
                else state.local[:half].copy()
            incoming = yield comm.sendrecv(partner, outgoing, partner,
                                           tag=77)
            if my_bit == 0:
                # keep own lower half (global bit 0), store the partner's
                # lower half (global bit 1) above it
                state.local[half:] = incoming
            else:
                # keep own upper half (global bit 1), store the partner's
                # upper half (global bit 0) below it
                state.local[:half] = incoming
        else:
            yield comm.sendrecv(partner, Phantom(half * AMP_BYTES), partner,
                                tag=77)
        # The top local bit and the global bit swap logical roles.
        state.layout[pos], state.layout[m - 1] = (
            state.layout[m - 1], state.layout[pos])
        pos = m - 1
    if real:
        _local_apply(state.local, np.asarray(u, dtype=np.complex128), pos)
    amps = state.local_amplitudes
    yield comm.compute(flops=14.0 * amps, bytes_moved=3.0 * AMP_BYTES * amps,
                       efficiency=gate_efficiency, label="gate")
    return nonlocal_gate


def dist_gather(comm: Comm, state: DistState):
    """Gather and un-permute the full state vector (generator).

    Every rank returns the complete logical-order state; only valid in
    real mode and for small registers (verification path).
    """
    if not isinstance(state.local, np.ndarray):
        raise ValueError("cannot gather a phantom state")
    pieces = yield comm.allgather(state.local)
    full = np.concatenate(pieces)  # physical order: rank bits high
    n = state.n_qubits
    idx = np.arange(full.size)
    logical = np.zeros_like(idx)
    for phys_pos, logical_qubit in enumerate(state.layout):
        logical |= ((idx >> phys_pos) & 1) << logical_qubit
    out = np.zeros_like(full)
    out[logical] = full
    return out


def reference_state(n_qubits: int,
                    history: list[tuple[np.ndarray, int]]) -> np.ndarray:
    """Replay a recorded gate history on the single-process simulator."""
    from .statevector import apply_gate

    psi = zero_state(n_qubits)
    for u, qubit in history:
        apply_gate(psi, u, qubit)
    return psi
