"""Single-process universal gate-based quantum-computer simulation.

The computational core of JUQCS (Sec. IV-A2c): an n-qubit register is a
rank-n tensor of 2^n complex doubles; a single-qubit gate on qubit q is
a 2x2 matrix applied across the q-th tensor index, a controlled gate
applies on the subspace where the control bit is set.  This module is
the exact (laptop-scale) reference against which the distributed
implementation is verified bit-for-bit.

Bit convention: qubit 0 is the *least significant* bit of the basis
index, so amplitude ``psi[i]`` belongs to the computational basis state
whose binary representation (LSB first) gives the qubit values.
"""

from __future__ import annotations

import math

import numpy as np

# -- standard gate matrices -------------------------------------------------

_SQRT2_INV = 1.0 / math.sqrt(2.0)

H = np.array([[1, 1], [1, -1]], dtype=np.complex128) * _SQRT2_INV
X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=np.complex128)
I2 = np.eye(2, dtype=np.complex128)


def rx(theta: float) -> np.ndarray:
    """Rotation around X by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def ry(theta: float) -> np.ndarray:
    """Rotation around Y by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def rz(theta: float) -> np.ndarray:
    """Rotation around Z by ``theta``."""
    return np.array([[np.exp(-0.5j * theta), 0], [0, np.exp(0.5j * theta)]],
                    dtype=np.complex128)


def is_unitary(u: np.ndarray, atol: float = 1e-12) -> bool:
    """Check a gate matrix for unitarity."""
    u = np.asarray(u, dtype=np.complex128)
    return u.shape == (2, 2) and bool(
        np.allclose(u.conj().T @ u, np.eye(2), atol=atol))


def apply_gate(psi: np.ndarray, u: np.ndarray, qubit: int) -> np.ndarray:
    """Apply a single-qubit gate in place; returns ``psi``.

    Reshapes the state to (high, 2, low) around the target bit so the
    update is two vectorised AXPY-like operations -- the same access
    pattern the real code implements on GPUs.
    """
    n = _nqubits(psi)
    if not 0 <= qubit < n:
        raise ValueError(f"qubit {qubit} outside register of {n}")
    low = 1 << qubit
    view = psi.reshape(-1, 2, low)
    a0 = view[:, 0, :].copy()
    a1 = view[:, 1, :]
    view[:, 0, :] = u[0, 0] * a0 + u[0, 1] * a1
    view[:, 1, :] = u[1, 0] * a0 + u[1, 1] * a1
    return psi


def apply_controlled(psi: np.ndarray, u: np.ndarray, control: int,
                     target: int) -> np.ndarray:
    """Apply a controlled single-qubit gate (e.g. CNOT = controlled-X)."""
    n = _nqubits(psi)
    if control == target:
        raise ValueError("control and target must differ")
    for q in (control, target):
        if not 0 <= q < n:
            raise ValueError(f"qubit {q} outside register of {n}")
    idx = np.arange(psi.size)
    mask = (idx >> control) & 1 == 1
    t0 = mask & ((idx >> target) & 1 == 0)
    t1 = mask & ((idx >> target) & 1 == 1)
    a0 = psi[t0].copy()
    a1 = psi[t1]
    psi[t0] = u[0, 0] * a0 + u[0, 1] * a1
    psi[t1] = u[1, 0] * a0 + u[1, 1] * a1
    return psi


def zero_state(n: int) -> np.ndarray:
    """|0...0> register of ``n`` qubits."""
    if n < 1:
        raise ValueError("need at least one qubit")
    psi = np.zeros(1 << n, dtype=np.complex128)
    psi[0] = 1.0
    return psi


def norm(psi: np.ndarray) -> float:
    """State norm (must stay 1 under unitaries)."""
    return float(np.sqrt(np.sum(np.abs(psi) ** 2)))


def probabilities(psi: np.ndarray, qubit: int) -> tuple[float, float]:
    """Marginal probabilities (p0, p1) of one qubit."""
    n = _nqubits(psi)
    if not 0 <= qubit < n:
        raise ValueError(f"qubit {qubit} outside register of {n}")
    view = psi.reshape(-1, 2, 1 << qubit)
    p1 = float(np.sum(np.abs(view[:, 1, :]) ** 2))
    return 1.0 - p1, p1


def _nqubits(psi: np.ndarray) -> int:
    size = psi.size
    n = size.bit_length() - 1
    if 1 << n != size:
        raise ValueError("state length must be a power of two")
    return n


class Circuit:
    """A recorded gate sequence, replayable on any backend.

    Used to run the identical program on the single-process reference
    and on the distributed simulator for exact verification.
    """

    def __init__(self, n_qubits: int):
        if n_qubits < 1:
            raise ValueError("need at least one qubit")
        self.n_qubits = n_qubits
        self.ops: list[tuple[str, np.ndarray, tuple[int, ...]]] = []

    def gate(self, u: np.ndarray, qubit: int, name: str = "u") -> "Circuit":
        """Append a single-qubit gate."""
        if not is_unitary(u):
            raise ValueError(f"gate {name!r} is not unitary")
        if not 0 <= qubit < self.n_qubits:
            raise ValueError(f"qubit {qubit} outside register")
        self.ops.append((name, np.asarray(u, dtype=np.complex128), (qubit,)))
        return self

    def h(self, qubit: int) -> "Circuit":
        return self.gate(H, qubit, "h")

    def x(self, qubit: int) -> "Circuit":
        return self.gate(X, qubit, "x")

    def run_reference(self) -> np.ndarray:
        """Execute on the single-process simulator."""
        psi = zero_state(self.n_qubits)
        for _name, u, qubits in self.ops:
            apply_gate(psi, u, qubits[0])
        return psi
