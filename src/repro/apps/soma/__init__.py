"""SOMA: Single Chain in Mean Field polymer Monte Carlo."""

from .benchmark import (
    BEADS_PER_CHAIN,
    CHAINS,
    FIELD_GRID,
    MC_SWEEPS,
    SomaBenchmark,
    soma_timing_program,
)
from .scmf import ScmfSystem

__all__ = ["BEADS_PER_CHAIN", "CHAINS", "FIELD_GRID", "MC_SWEEPS",
           "ScmfSystem", "SomaBenchmark", "soma_timing_program"]
