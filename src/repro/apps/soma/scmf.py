"""Single Chain in Mean Field (SCMF) polymer Monte Carlo.

SOMA (Sec. IV) "performs Monte Carlo simulations for the 'Single Chain
in Mean Field' model, studying the behaviour of soft coarse-grained
polymer chains in a solution": bead-spring chains interact *only*
through density fields on a grid (quasi-instantaneous field
approximation), so chains are independent between field updates --
the property that makes the model massively parallel.

Anchors: ideal chains (no field) reproduce Gaussian end-to-end
statistics <R^2> = (N-1) b^2; the incompressibility field drives an
initially clustered melt towards uniform density.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ScmfSystem:
    """Chains of beads in a periodic box with a density grid.

    ``beads`` has shape (n_chains, beads_per_chain, 3); bonds are
    harmonic with natural length b; the non-bonded energy is
    ``kappa/2 * sum_cells (rho - rho0)^2`` (Helfand compressibility).
    """

    beads: np.ndarray
    box: float
    grid_n: int
    bond_b: float = 1.0
    bond_k: float = 3.0
    kappa: float = 0.0
    rho0: float = 0.0
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0))

    @classmethod
    def ideal_melt(cls, n_chains: int, beads_per_chain: int, box: float,
                   grid_n: int = 8, seed: int = 0,
                   kappa: float = 0.0,
                   clustered: bool = False) -> "ScmfSystem":
        """Random-walk chains; ``clustered`` starts them in one corner
        (the worst case for the incompressibility test)."""
        rng = np.random.default_rng(seed)
        starts = rng.random((n_chains, 3)) * (box / 4 if clustered else box)
        steps = rng.normal(scale=1.0 / np.sqrt(3), size=(n_chains,
                                                         beads_per_chain, 3))
        steps[:, 0, :] = 0.0
        beads = starts[:, None, :] + np.cumsum(steps, axis=1)
        sys_ = cls(beads=beads % box, box=box, grid_n=grid_n, rng=rng,
                   kappa=kappa)
        sys_.rho0 = sys_.beads.shape[0] * sys_.beads.shape[1] / grid_n ** 3
        return sys_

    @property
    def n_chains(self) -> int:
        return int(self.beads.shape[0])

    @property
    def beads_per_chain(self) -> int:
        return int(self.beads.shape[1])

    # -- observables -------------------------------------------------------

    def end_to_end_sq(self) -> float:
        """Mean squared end-to-end distance (unwrapped via bond vectors)."""
        bonds = np.diff(self.beads, axis=1)
        bonds -= self.box * np.round(bonds / self.box)
        r = bonds.sum(axis=1)
        return float(np.mean(np.sum(r ** 2, axis=1)))

    def density(self) -> np.ndarray:
        """Bead counts per grid cell (nearest-cell assignment)."""
        n = self.grid_n
        cell = np.floor(self.beads / (self.box / n)).astype(np.int64) % n
        flat = (cell[..., 0] * n + cell[..., 1]) * n + cell[..., 2]
        return np.bincount(flat.ravel(), minlength=n ** 3).astype(float)

    def density_variance(self) -> float:
        """Relative variance of the cell densities (0 = uniform)."""
        rho = self.density()
        mean = rho.mean()
        return float(rho.var() / max(mean ** 2, 1e-30))

    def field_energy(self, rho: np.ndarray | None = None) -> float:
        """Helfand compressibility energy of the current densities."""
        if self.kappa == 0.0:
            return 0.0
        r = self.density() if rho is None else rho
        return 0.5 * self.kappa * float(np.sum((r - self.rho0) ** 2))

    def bond_energy(self, chain: int) -> float:
        """Harmonic bond energy of one chain (zero natural length)."""
        bonds = np.diff(self.beads[chain], axis=0)
        bonds -= self.box * np.round(bonds / self.box)
        return 0.5 * self.bond_k * float(np.sum(bonds ** 2))

    # -- Monte Carlo ------------------------------------------------------------

    def mc_sweep(self, max_disp: float = 0.4) -> float:
        """One SCMF sweep: trial displacement per bead, Metropolis on
        bond + field energy with *frozen* fields (the quasi-instantaneous
        field approximation), then a field refresh.  Returns acceptance.
        """
        n = self.grid_n
        cell_w = self.box / n
        rho = self.density()
        accepted = 0
        total = self.n_chains * self.beads_per_chain
        for c in range(self.n_chains):
            trials = self.rng.uniform(-max_disp, max_disp,
                                      size=(self.beads_per_chain, 3))
            for b in range(self.beads_per_chain):
                old = self.beads[c, b].copy()
                new = (old + trials[b]) % self.box
                de = self._bond_delta(c, b, new)
                if self.kappa != 0.0:
                    oc = tuple((np.floor(old / cell_w).astype(int)) % n)
                    nc = tuple((np.floor(new / cell_w).astype(int)) % n)
                    if oc != nc:
                        oi = (oc[0] * n + oc[1]) * n + oc[2]
                        ni = (nc[0] * n + nc[1]) * n + nc[2]
                        de += self.kappa * (
                            (rho[ni] - self.rho0) - (rho[oi] - self.rho0)
                            + 1.0)
                if de <= 0 or self.rng.random() < np.exp(-de):
                    self.beads[c, b] = new
                    accepted += 1
        return accepted / total

    def _bond_delta(self, chain: int, bead: int, new: np.ndarray) -> float:
        """Bond-energy change of moving one bead."""
        de = 0.0
        for nb in (bead - 1, bead + 1):
            if 0 <= nb < self.beads_per_chain:
                other = self.beads[chain, nb]
                for pos, sign in ((new, +1.0), (self.beads[chain, bead], -1.0)):
                    d = pos - other
                    d -= self.box * np.round(d / self.box)
                    de += sign * 0.5 * self.bond_k * float(np.sum(d ** 2))
        return de
