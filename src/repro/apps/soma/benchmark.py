"""The SOMA benchmark (Base 8 nodes; prepared, not used).

SCMF polymer Monte Carlo: because chains interact only through grid
density fields, a sweep is embarrassingly parallel between field
updates -- each rank owns a set of chains, a sweep is local, and only
the density fields are reduced (an allreduce per sweep).  Real mode
verifies ideal-chain statistics and that the compressibility field
homogenises a clustered melt.
"""

from __future__ import annotations

import numpy as np

from ...core.benchmark import BenchmarkResult
from ...core.fom import FigureOfMerit
from ...core.variants import MemoryVariant
from ...core.verification import ModelVerifier
from ...vmpi import Phantom
from ...vmpi.machine import Machine
from ..base import AppBenchmark
from .scmf import ScmfSystem

#: production workload: chains, beads, field grid
CHAINS = 2_000_000
BEADS_PER_CHAIN = 64
FIELD_GRID = 128
MC_SWEEPS = 20_000
FLOPS_PER_BEAD_MOVE = 90.0
BYTES_PER_BEAD = 48.0


def soma_timing_program(comm, chains: int, beads: int, grid: int,
                        sweeps: int):
    """Phantom-cost SCMF sweeps: local chain moves + field allreduce."""
    chains_local = chains / comm.size
    beads_local = chains_local * beads
    field_bytes = float(grid ** 3 * 4)  # single-precision densities
    for _sweep in range(sweeps):
        yield comm.compute(flops=FLOPS_PER_BEAD_MOVE * beads_local,
                           bytes_moved=BYTES_PER_BEAD * beads_local,
                           efficiency=0.1, label="chain-moves")
        yield comm.allreduce(Phantom(field_bytes), label="field-reduce")
    return chains_local


class SomaBenchmark(AppBenchmark):
    """Runnable SOMA benchmark."""

    NAME = "SOMA"
    fom = FigureOfMerit(name="SCMF sweep-loop runtime", unit="s")

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            return self._execute_real(nodes, machine, scale)
        sweeps_small = 5
        spmd = self.run_program(machine, soma_timing_program,
                                args=(CHAINS, BEADS_PER_CHAIN, FIELD_GRID,
                                      sweeps_small))
        fom = spmd.elapsed * (MC_SWEEPS / sweeps_small)
        return self.result(
            nodes, spmd, fom_seconds=fom, chains=CHAINS,
            beads=CHAINS * BEADS_PER_CHAIN,
            compute_seconds=spmd.compute_seconds,
            comm_seconds=spmd.comm_seconds)

    def _execute_real(self, nodes: int, machine: Machine,
                      scale: float) -> BenchmarkResult:
        # ideal-chain statistics: <R^2> = (N-1) / bond_k (b_eff^2 = 1/k
        # per dimension times 3 ... with our spring 3/(k) per bond times
        # 3 dims ... measured against the direct random-walk builder)
        n_chains = max(100, int(400 * scale))
        beads = 16
        ideal = ScmfSystem.ideal_melt(n_chains, beads, box=40.0, seed=5)
        r2 = ideal.end_to_end_sq()
        expected = (beads - 1) * 1.0  # walk built with unit-variance steps
        # incompressibility: clustered melt homogenises under kappa
        melt = ScmfSystem.ideal_melt(max(40, int(120 * scale)), 8, box=8.0,
                                     grid_n=4, seed=6, kappa=0.6,
                                     clustered=True)
        var0 = melt.density_variance()
        acc = 0.0
        sweeps = max(6, int(15 * scale))
        for _ in range(sweeps):
            acc = melt.mc_sweep()
        var1 = melt.density_variance()
        verifier = ModelVerifier(checks={
            "ideal_r2": (lambda r: r["r2"] / r["expected"], 0.7, 1.3),
            "homogenised": (lambda r: r["var1"] / max(r["var0"], 1e-12),
                            0.0, 0.8),
            "acceptance": (lambda r: r["acc"], 0.05, 0.995),
        })
        check = verifier({"r2": r2, "expected": expected, "var0": var0,
                          "var1": var1, "acc": acc})

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        return self.result(
            nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
            verified=bool(check), verification=check.detail,
            end_to_end_sq=r2, density_variance_drop=var1 / max(var0, 1e-12),
            acceptance=acc)
