"""The parallel + incremental execution engine.

The suite's unit of work -- run one benchmark, one scaling point, one
JUBE workunit -- is independent of its siblings, so a run is a batch of
:class:`WorkItem` thunks.  The engine executes a batch

* **concurrently** on a serial, thread-pool or process-pool backend
  with a configurable worker count, returning outcomes in *submission
  order* regardless of completion order (determinism first),
* **incrementally** through an optional content-addressed
  :class:`~repro.exec.cache.ResultCache` -- a keyed item whose result
  is cached is answered without executing (the exaCB property),
* **fault-bounded**: each item runs inside a guard with configurable
  retries and a per-attempt timeout, and failures are captured into the
  :class:`TaskOutcome` instead of aborting the batch.

``map`` is the degrade-gracefully API (callers inspect per-item
errors); ``run`` is the strict API (first failure re-raises the
original exception).  Every processed item leaves a ``task:`` span
(with per-attempt child spans) on the engine's
:class:`~repro.telemetry.spans.Tracer`; the run journal subscribes to
that span stream, so journalling and tracing are one path.  Process
workers execute under a local span collector and ship their span/event
batches back with the outcome; the parent rebases the timestamps onto
its own clock before grafting them in.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..telemetry.export import reemit_events
from ..telemetry.metrics import MetricsRegistry, default_registry
from ..telemetry.spans import SpanRecord, Tracer, use_tracer
from .cache import ResultCache
from .journal import RunJournal, TaskRecord

#: Supported execution backends.
BACKENDS = ("serial", "thread", "process")


class EngineError(RuntimeError):
    """A strict engine run hit a failed task."""


class TaskTimeout(RuntimeError):
    """A task attempt exceeded its time budget.

    The timeout is *cooperative* and enforced post-hoc: the attempt
    runs to completion, then its wall time is compared with the
    budget.  A too-slow attempt is therefore never preempted -- it
    fails after the fact with this exception carrying the measured
    ``elapsed`` time and the ``budget`` it blew (both also in the
    message, so journalled ``error`` strings show the overrun).
    """

    def __init__(self, message: str, *, elapsed: float = 0.0,
                 budget: float = 0.0):
        super().__init__(message)
        self.elapsed = elapsed
        self.budget = budget


@dataclass
class WorkItem:
    """One schedulable unit of work.

    ``fn(*args, **kwargs)`` produces the result.  ``key`` (optional)
    makes the item cacheable; ``encode``/``decode`` translate the
    result to/from the cache representation (needed for JSON disk
    caches holding rich objects).  ``retries``/``timeout`` override the
    engine defaults for this item.  For the process backend ``fn`` and
    its arguments must be picklable.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    key: str | None = None
    label: str = ""
    retries: int | None = None
    timeout: float | None = None
    encode: Callable[[Any], Any] | None = None
    decode: Callable[[Any], Any] | None = None

    def display(self, index: int) -> str:
        return self.label or getattr(self.fn, "__name__", f"task-{index}")


@dataclass
class TaskOutcome:
    """What became of one work item (the fault boundary's output)."""

    index: int
    label: str
    value: Any = None
    error: str | None = None
    exception: BaseException | None = None
    attempts: int = 0
    cache: str = "off"        # "hit" | "miss" | "off"
    started: float = 0.0
    finished: float = 0.0
    key: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def duration(self) -> float:
        return max(0.0, self.finished - self.started)

    def record(self) -> TaskRecord:
        return TaskRecord(index=self.index, label=self.label,
                          status="ok" if self.ok else "error",
                          cache=self.cache, attempts=self.attempts,
                          started=self.started, finished=self.finished,
                          key=self.key, error=self.error)


@dataclass
class _Attempt:
    ok: bool
    value: Any
    attempts: int
    started: float
    finished: float
    error: BaseException | None
    #: spans recorded inside the attempt (per-attempt spans plus
    #: anything the task itself emitted); picklable, shipped back from
    #: process workers with the outcome
    spans: list[SpanRecord] = field(default_factory=list)
    #: out-of-band telemetry events (vmpi cost buckets, ...) recorded
    #: inside the attempt, shipped back the same way
    events: list[dict[str, Any]] = field(default_factory=list)
    #: identity of the executing thread (export-lane assignment)
    thread_ident: int = 0


def _pause(clock: Callable[[], float], seconds: float) -> None:
    """Backoff pause: advance a virtual clock, else sleep for real.

    Virtual clocks (:class:`~repro.telemetry.spans.ManualClock`) expose
    ``advance``; under one, backoff costs simulated time only -- which
    keeps chaos runs fast *and* deterministic.
    """
    advance = getattr(clock, "advance", None)
    if advance is not None:
        advance(seconds)
    elif seconds > 0:
        time.sleep(seconds)


def _run_guarded(fn: Callable[..., Any], args: tuple,
                 kwargs: dict[str, Any], retries: int,
                 timeout: float | None,
                 clock: Callable[[], float] = time.perf_counter,
                 guard: Callable[[int], None] | None = None,
                 backoff: Any = None, label: str = "",
                 key: str | None = None) -> _Attempt:
    """Run one item inside the fault boundary.

    Module-level so the process backend can pickle it.

    **Cooperative timeout semantics**: the timeout is enforced
    *post-hoc* on the attempt's wall time -- simulated workloads cannot
    be preempted portably, so an attempt that exceeds ``timeout`` still
    runs to completion before :class:`TaskTimeout` is raised.  The
    too-slow attempt then counts as a failure (retried like any other);
    if it was the final attempt the outcome reports ``ok=False`` with
    the measured elapsed time in the error string.

    ``guard`` is the fault-injection hook: called with the 1-based
    attempt ordinal before the payload runs, it may raise
    ``InjectedFault`` (captured and retried like an organic failure).
    ``backoff`` (a :class:`~repro.exec.resilience.BackoffPolicy`)
    inserts a deterministic pause between failed attempts, advancing
    virtual clocks instead of sleeping.  When the item carries a
    content-addressed ``key`` it seeds the backoff jitter, so the
    retry schedule of a keyed item replays identically in any process
    (service-path determinism); keyless items keep the per-policy
    ``(seed, label, attempt)`` draw.

    Every attempt runs under a local span collector installed as the
    ambient tracer, so instrumented task code (JUBE workunits, nested
    suite calls) records spans even inside process workers; the batch
    travels back in :attr:`_Attempt.spans` and the parent grafts it
    under the task span (rebasing clocks for the process backend).
    """
    collector = Tracer(clock=clock)
    started = clock()
    attempts = 0
    last: BaseException | None = None
    ok = False
    value: Any = None
    with use_tracer(collector):
        while attempts <= retries:
            attempts += 1
            with collector.span("attempt", n=attempts) as span:
                t0 = clock()
                try:
                    if guard is not None:
                        guard(attempts)
                    value = fn(*args, **kwargs)
                    elapsed = clock() - t0
                    if timeout is not None and elapsed > timeout:
                        raise TaskTimeout(
                            f"attempt took {elapsed:.3f} s > "
                            f"timeout {timeout:.3f} s",
                            elapsed=elapsed, budget=timeout)
                except Exception as exc:  # the boundary: capture, retry
                    last = exc
                    span.set(status="error",
                             error=f"{type(exc).__name__}: {exc}")
                    if backoff is not None and attempts <= retries:
                        if key is not None:
                            delay = backoff.delay(label, attempts, key=key)
                        else:
                            delay = backoff.delay(label, attempts)
                        span.set(backoff=delay)
                        _pause(clock, delay)
                    continue
                span.set(status="ok")
                ok = True
                break
    return _Attempt(ok=ok, value=value if ok else None, attempts=attempts,
                    started=started, finished=clock(),
                    error=None if ok else last, spans=collector.finished(),
                    events=collector.events(),
                    thread_ident=threading.get_ident())


class ExecutionEngine:
    """Runs batches of work items in parallel with caching and retries.

    ``workers=1`` (or ``backend="serial"``) executes inline in
    submission order -- the reference semantics every parallel backend
    must reproduce bit-identically.
    """

    def __init__(self, workers: int = 1, backend: str = "thread", *,
                 cache: ResultCache | None = None, retries: int = 0,
                 timeout: float | None = None,
                 journal: RunJournal | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 faults: Any = None, backoff: Any = None,
                 breaker: Any = None, degrade: bool | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"choose from {BACKENDS}")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.workers = workers
        self.backend = "serial" if workers == 1 else backend
        self.cache = cache
        self.retries = retries
        self.timeout = timeout
        #: fault injector (duck-typed: ``task_guard(label)``); None = off
        self.faults = faults
        #: retry backoff policy (duck-typed: ``delay(label, attempt)``,
        #: plus a ``key=`` kwarg for content-addressed items)
        self.backoff = backoff
        #: circuit breaker (duck-typed: ``allow``/``block``/``record``)
        self.breaker = breaker
        #: graceful degradation: suite/scaling callers use ``map`` and
        #: record failures instead of aborting on the first error.
        #: Defaults to on whenever a fault injector is attached.
        self.degrade = (faults is not None) if degrade is None else degrade
        #: the span stream every processed task lands on
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else default_registry()
        #: the journal consumes the engine's span stream (it is a
        #: subscriber, not a parallel bookkeeping path)
        self.journal = journal if journal is not None else RunJournal()
        self.tracer.subscribe(self.journal)

    # -- batch execution ----------------------------------------------------

    def map(self, items: Sequence[WorkItem]) -> list[TaskOutcome]:
        """Process a batch; outcomes come back in submission order.

        Cached items are answered immediately; the rest run on the
        configured backend.  Failures are captured per item -- ``map``
        never raises for a task error.
        """
        items = list(items)
        outcomes: list[TaskOutcome | None] = [None] * len(items)
        pending: list[int] = []
        # Circuit-breaker decisions are snapshotted for the whole batch
        # before anything runs and outcomes are recorded after the
        # batch completes (in submission order) -- a mid-batch state
        # update would let thread interleaving change later decisions
        # and break workers=1 vs workers=8 equivalence.
        for i, item in enumerate(items):
            hit = self._lookup(i, item)
            if hit is not None:
                outcomes[i] = hit
            elif self.breaker is not None and \
                    not self.breaker.allow(item.display(i)):
                outcomes[i] = self._skip(i, item)
            else:
                pending.append(i)

        submitted = self.tracer.now()
        if self.backend == "serial":
            for i in pending:
                outcomes[i] = self._finish(i, items[i],
                                           self._attempt_inline(i, items[i]),
                                           submitted)
        else:
            with self._executor() as pool:
                futures = {
                    i: pool.submit(
                        _run_guarded, items[i].fn, items[i].args,
                        items[i].kwargs, self._retries_for(items[i]),
                        self._timeout_for(items[i]), self.tracer.clock,
                        self._guard_for(i, items[i]), self.backoff,
                        items[i].display(i), items[i].key)
                    for i in pending
                }
                for i, future in futures.items():
                    outcomes[i] = self._finish(i, items[i], future.result(),
                                               submitted)

        if self.breaker is not None:
            for i in pending:
                done_outcome = outcomes[i]
                assert done_outcome is not None
                self.breaker.record(done_outcome.label, done_outcome.ok)

        done = [o for o in outcomes if o is not None]
        assert len(done) == len(items)
        return done

    def run(self, items: Sequence[WorkItem]) -> list[Any]:
        """Strict batch execution: values in submission order.

        The first failed item (by submission order) re-raises its
        original exception, or :class:`EngineError` if it was lost in
        transit (process backend edge cases).
        """
        outcomes = self.map(items)
        for outcome in outcomes:
            if not outcome.ok:
                if outcome.exception is not None:
                    raise outcome.exception
                raise EngineError(
                    f"task {outcome.label!r} failed: {outcome.error}")
        return [o.value for o in outcomes]

    # -- helpers ------------------------------------------------------------

    def _executor(self) -> Executor:
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="repro-exec")

    def _retries_for(self, item: WorkItem) -> int:
        return self.retries if item.retries is None else item.retries

    def _timeout_for(self, item: WorkItem) -> float | None:
        return self.timeout if item.timeout is None else item.timeout

    def _attempt_inline(self, index: int, item: WorkItem) -> _Attempt:
        return _run_guarded(item.fn, item.args, item.kwargs,
                            self._retries_for(item),
                            self._timeout_for(item), self.tracer.clock,
                            self._guard_for(index, item), self.backoff,
                            item.display(index), item.key)

    def _guard_for(self, index: int,
                   item: WorkItem) -> Callable[[int], None] | None:
        """Fault-injection guard for one item (picklable), or None."""
        if self.faults is None:
            return None
        return self.faults.task_guard(item.display(index))

    def _skip(self, index: int, item: WorkItem) -> TaskOutcome:
        """Short-circuit an item whose label's circuit is open.

        No attempt runs; the outcome (attempts=0) carries a
        ``CircuitOpen`` error, lands in journal/metrics like any other
        failure, and a ``fault`` telemetry event marks the skip.
        """
        label = item.display(index)
        self.breaker.block(label)
        now = self.tracer.now()
        outcome = TaskOutcome(
            index=index, label=label, attempts=0, cache="off",
            started=now, finished=now, key=item.key,
            error=f"CircuitOpen: {label!r} skipped by circuit breaker "
                  f"(state {self.breaker.state(label)})")
        self._emit_task(outcome, spans=(), offset=0.0)
        self.tracer.emit({"type": "fault", "category": "breaker",
                          "target": label, "action": "skip", "at": now})
        self.metrics.counter("engine_tasks_total", status="error",
                             cache="off").inc()
        self.metrics.counter("engine_breaker_skips_total").inc()
        return outcome

    def _lookup(self, index: int, item: WorkItem) -> TaskOutcome | None:
        """Resolve an item from cache, or None when it must execute."""
        if self.cache is None or item.key is None:
            return None
        found, raw = self.cache.get(item.key)
        if not found:
            return None
        value = item.decode(raw) if item.decode is not None else raw
        now = self.tracer.now()
        outcome = TaskOutcome(index=index, label=item.display(index),
                              value=value, attempts=0, cache="hit",
                              started=now, finished=now, key=item.key)
        self._emit_task(outcome, spans=(), offset=0.0)
        self.metrics.counter("engine_tasks_total", status="ok",
                             cache="hit").inc()
        return outcome

    def _finish(self, index: int, item: WorkItem, attempt: _Attempt,
                submitted: float) -> TaskOutcome:
        """Turn a guarded attempt into an outcome; cache, trace, count it."""
        cache_state = "off"
        if self.cache is not None and item.key is not None:
            cache_state = "miss"
            if attempt.ok:
                value = item.encode(attempt.value) \
                    if item.encode is not None else attempt.value
                self.cache.put(item.key, value)
        error = None
        if not attempt.ok:
            exc = attempt.error
            error = f"{type(exc).__name__}: {exc}"
        started, finished = attempt.started, attempt.finished
        offset = 0.0
        if self.backend == "process":
            # Worker perf_counter timestamps live in another process's
            # clock domain; keep the locally measured duration and
            # rebase the interval so it ends at the parent-clock
            # arrival time -- journal wall/busy seconds stay meaningful.
            offset = self.tracer.now() - attempt.finished
            started += offset
            finished += offset
        outcome = TaskOutcome(index=index, label=item.display(index),
                              value=attempt.value, error=error,
                              exception=attempt.error,
                              attempts=attempt.attempts, cache=cache_state,
                              started=started, finished=finished,
                              key=item.key)
        self._emit_task(outcome, spans=attempt.spans, offset=offset,
                        thread_ident=attempt.thread_ident)
        if attempt.events:
            reemit_events(self.tracer, attempt.events)
        status = "ok" if attempt.ok else "error"
        self.metrics.counter("engine_tasks_total", status=status,
                             cache=cache_state).inc()
        if attempt.attempts > 1:
            self.metrics.counter("engine_task_retries_total").inc(
                attempt.attempts - 1)
        self.metrics.histogram("engine_task_seconds").observe(
            outcome.duration)
        if self.backend != "process":
            self.metrics.histogram("engine_queue_wait_seconds").observe(
                max(0.0, attempt.started - submitted))
        return outcome

    def _emit_task(self, outcome: TaskOutcome,
                   spans: Sequence[SpanRecord], offset: float,
                   thread_ident: int | None = None) -> TaskOutcome:
        """Record the task span (+ grafted attempt spans) on the tracer.

        The journal subscribes to the tracer, so this is also what
        journals the task.
        """
        lane = self.tracer.thread_index(thread_ident)
        span_id = self.tracer.add_span(
            f"task:{outcome.label}", outcome.started, outcome.finished,
            thread=lane,
            attrs={"kind": "task", "index": outcome.index,
                   "label": outcome.label,
                   "status": "ok" if outcome.ok else "error",
                   "cache": outcome.cache, "attempts": outcome.attempts,
                   "key": outcome.key, "error": outcome.error})
        if spans:
            self.tracer.graft(list(spans), offset=offset,
                              parent_id=span_id, thread=lane)
        return outcome
