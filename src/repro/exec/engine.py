"""The parallel + incremental execution engine.

The suite's unit of work -- run one benchmark, one scaling point, one
JUBE workunit -- is independent of its siblings, so a run is a batch of
:class:`WorkItem` thunks.  The engine executes a batch

* **concurrently** on a serial, thread-pool or process-pool backend
  with a configurable worker count, returning outcomes in *submission
  order* regardless of completion order (determinism first),
* **incrementally** through an optional content-addressed
  :class:`~repro.exec.cache.ResultCache` -- a keyed item whose result
  is cached is answered without executing (the exaCB property),
* **fault-bounded**: each item runs inside a guard with configurable
  retries and a per-attempt timeout, and failures are captured into the
  :class:`TaskOutcome` instead of aborting the batch.

``map`` is the degrade-gracefully API (callers inspect per-item
errors); ``run`` is the strict API (first failure re-raises the
original exception).  Every processed item is journalled.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .cache import ResultCache
from .journal import RunJournal, TaskRecord

#: Supported execution backends.
BACKENDS = ("serial", "thread", "process")


class EngineError(RuntimeError):
    """A strict engine run hit a failed task."""


class TaskTimeout(RuntimeError):
    """A task attempt exceeded its time budget."""


@dataclass
class WorkItem:
    """One schedulable unit of work.

    ``fn(*args, **kwargs)`` produces the result.  ``key`` (optional)
    makes the item cacheable; ``encode``/``decode`` translate the
    result to/from the cache representation (needed for JSON disk
    caches holding rich objects).  ``retries``/``timeout`` override the
    engine defaults for this item.  For the process backend ``fn`` and
    its arguments must be picklable.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    key: str | None = None
    label: str = ""
    retries: int | None = None
    timeout: float | None = None
    encode: Callable[[Any], Any] | None = None
    decode: Callable[[Any], Any] | None = None

    def display(self, index: int) -> str:
        return self.label or getattr(self.fn, "__name__", f"task-{index}")


@dataclass
class TaskOutcome:
    """What became of one work item (the fault boundary's output)."""

    index: int
    label: str
    value: Any = None
    error: str | None = None
    exception: BaseException | None = None
    attempts: int = 0
    cache: str = "off"        # "hit" | "miss" | "off"
    started: float = 0.0
    finished: float = 0.0
    key: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def duration(self) -> float:
        return max(0.0, self.finished - self.started)

    def record(self) -> TaskRecord:
        return TaskRecord(index=self.index, label=self.label,
                          status="ok" if self.ok else "error",
                          cache=self.cache, attempts=self.attempts,
                          started=self.started, finished=self.finished,
                          key=self.key, error=self.error)


@dataclass
class _Attempt:
    ok: bool
    value: Any
    attempts: int
    started: float
    finished: float
    error: BaseException | None


def _run_guarded(fn: Callable[..., Any], args: tuple,
                 kwargs: dict[str, Any], retries: int,
                 timeout: float | None) -> _Attempt:
    """Run one item inside the fault boundary.

    Module-level so the process backend can pickle it.  The timeout is
    enforced post-hoc on the attempt's wall time (simulated workloads
    cannot be preempted portably); a too-slow attempt counts as a
    failure and is retried like any other.
    """
    started = time.perf_counter()
    attempts = 0
    last: BaseException | None = None
    while attempts <= retries:
        attempts += 1
        t0 = time.perf_counter()
        try:
            value = fn(*args, **kwargs)
            elapsed = time.perf_counter() - t0
            if timeout is not None and elapsed > timeout:
                raise TaskTimeout(
                    f"attempt took {elapsed:.3f} s > timeout {timeout:.3f} s")
            return _Attempt(ok=True, value=value, attempts=attempts,
                            started=started,
                            finished=time.perf_counter(), error=None)
        except Exception as exc:  # the boundary: capture, maybe retry
            last = exc
    return _Attempt(ok=False, value=None, attempts=attempts,
                    started=started, finished=time.perf_counter(),
                    error=last)


class ExecutionEngine:
    """Runs batches of work items in parallel with caching and retries.

    ``workers=1`` (or ``backend="serial"``) executes inline in
    submission order -- the reference semantics every parallel backend
    must reproduce bit-identically.
    """

    def __init__(self, workers: int = 1, backend: str = "thread", *,
                 cache: ResultCache | None = None, retries: int = 0,
                 timeout: float | None = None,
                 journal: RunJournal | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"choose from {BACKENDS}")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.workers = workers
        self.backend = "serial" if workers == 1 else backend
        self.cache = cache
        self.retries = retries
        self.timeout = timeout
        self.journal = journal if journal is not None else RunJournal()

    # -- batch execution ----------------------------------------------------

    def map(self, items: Sequence[WorkItem]) -> list[TaskOutcome]:
        """Process a batch; outcomes come back in submission order.

        Cached items are answered immediately; the rest run on the
        configured backend.  Failures are captured per item -- ``map``
        never raises for a task error.
        """
        items = list(items)
        outcomes: list[TaskOutcome | None] = [None] * len(items)
        pending: list[int] = []
        for i, item in enumerate(items):
            hit = self._lookup(i, item)
            if hit is not None:
                outcomes[i] = hit
            else:
                pending.append(i)

        if self.backend == "serial":
            for i in pending:
                outcomes[i] = self._finish(i, items[i],
                                           self._attempt_inline(items[i]))
        else:
            with self._executor() as pool:
                futures = {
                    i: pool.submit(
                        _run_guarded, items[i].fn, items[i].args,
                        items[i].kwargs, self._retries_for(items[i]),
                        self._timeout_for(items[i]))
                    for i in pending
                }
                for i, future in futures.items():
                    outcomes[i] = self._finish(i, items[i], future.result())

        done = [o for o in outcomes if o is not None]
        assert len(done) == len(items)
        return done

    def run(self, items: Sequence[WorkItem]) -> list[Any]:
        """Strict batch execution: values in submission order.

        The first failed item (by submission order) re-raises its
        original exception, or :class:`EngineError` if it was lost in
        transit (process backend edge cases).
        """
        outcomes = self.map(items)
        for outcome in outcomes:
            if not outcome.ok:
                if outcome.exception is not None:
                    raise outcome.exception
                raise EngineError(
                    f"task {outcome.label!r} failed: {outcome.error}")
        return [o.value for o in outcomes]

    # -- helpers ------------------------------------------------------------

    def _executor(self) -> Executor:
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="repro-exec")

    def _retries_for(self, item: WorkItem) -> int:
        return self.retries if item.retries is None else item.retries

    def _timeout_for(self, item: WorkItem) -> float | None:
        return self.timeout if item.timeout is None else item.timeout

    def _attempt_inline(self, item: WorkItem) -> _Attempt:
        return _run_guarded(item.fn, item.args, item.kwargs,
                            self._retries_for(item),
                            self._timeout_for(item))

    def _lookup(self, index: int, item: WorkItem) -> TaskOutcome | None:
        """Resolve an item from cache, or None when it must execute."""
        if self.cache is None or item.key is None:
            return None
        found, raw = self.cache.get(item.key)
        if not found:
            return None
        value = item.decode(raw) if item.decode is not None else raw
        now = time.perf_counter()
        outcome = TaskOutcome(index=index, label=item.display(index),
                              value=value, attempts=0, cache="hit",
                              started=now, finished=now, key=item.key)
        self.journal.append(outcome.record())
        return outcome

    def _finish(self, index: int, item: WorkItem,
                attempt: _Attempt) -> TaskOutcome:
        """Turn a guarded attempt into an outcome; cache + journal it."""
        cache_state = "off"
        if self.cache is not None and item.key is not None:
            cache_state = "miss"
            if attempt.ok:
                value = item.encode(attempt.value) \
                    if item.encode is not None else attempt.value
                self.cache.put(item.key, value)
        error = None
        if not attempt.ok:
            exc = attempt.error
            error = f"{type(exc).__name__}: {exc}"
        outcome = TaskOutcome(index=index, label=item.display(index),
                              value=attempt.value, error=error,
                              exception=attempt.error,
                              attempts=attempt.attempts, cache=cache_state,
                              started=attempt.started,
                              finished=attempt.finished, key=item.key)
        self.journal.append(outcome.record())
        return outcome
