"""Content-addressed result caching (the exaCB incremental property).

A benchmark execution is fully determined by *what* ran (benchmark
name), *how* it was parameterised (the resolved parameter values),
*where* it ran (the machine/platform configuration) and *which code*
ran it (a version tag).  :func:`result_key` hashes exactly that tuple
into a stable content address; re-running an unchanged benchmark then
becomes a cache lookup instead of an execution.

Two backends share the :class:`ResultCache` protocol:

* :class:`MemoryCache` -- in-process, stores arbitrary Python values,
* :class:`DiskCache` -- one JSON document per key, survives processes
  (values must be JSON-serialisable; callers encode/decode).

Both are thread-safe, keep LRU order, support a ``max_entries`` bound
with eviction, and count hits/misses/stores/evictions in
:class:`CacheStats` -- the statistics the incremental-execution tests
assert on ("a warm rerun performs zero executions").
"""

from __future__ import annotations

import enum
import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Protocol

#: Code-version tag entering every cache key.  Bump on any change that
#: alters benchmark results, so stale caches can never be replayed.
CODE_VERSION = "jupiter-repro-1"


def _canonical(obj: Any) -> Any:
    """Reduce a value to a canonical JSON-representable form."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(),
                                                         key=lambda i: str(i[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(v) for v in obj)
    if isinstance(obj, enum.Enum):
        return _canonical(obj.value)
    if isinstance(obj, float):
        # repr() round-trips exactly; json.dumps would too, but be explicit
        return repr(obj)
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    return str(obj)


def stable_hash(obj: Any) -> str:
    """A stable SHA-256 content hash of an arbitrary (JSON-like) value."""
    blob = json.dumps(_canonical(obj), sort_keys=True,
                      separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def hash_fraction(*parts: Any) -> float:
    """A deterministic pseudo-uniform draw in ``[0, 1)`` from content.

    Replaces ``random.random()`` at sites that must stay reproducible
    across worker counts and call order (fault-rate decisions, backoff
    jitter): the value depends only on ``parts`` via
    :func:`stable_hash`, never on execution history.
    """
    return int(stable_hash(list(parts))[:12], 16) / float(16 ** 12)


def result_key(benchmark: str, params: dict[str, Any], *,
               platform: str = "", version: str = CODE_VERSION) -> str:
    """The content address of one benchmark execution.

    Hashes ``(benchmark name, resolved parameters, machine/platform
    config, code version tag)``; the benchmark name is kept as a
    readable prefix (slashes and spaces sanitised for disk backends).
    """
    digest = stable_hash({"benchmark": benchmark, "params": params,
                          "platform": platform, "version": version})
    slug = "".join(c if c.isalnum() or c in "-._" else "_"
                   for c in benchmark)
    return f"{slug}-{digest[:32]}"


@dataclass
class CacheStats:
    """Hit/miss/store/eviction counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions}


class ResultCache(Protocol):
    """What the execution engine requires of a cache backend."""

    stats: CacheStats

    def get(self, key: str) -> tuple[bool, Any]:
        """``(found, value)``; counts a hit or a miss."""

    def put(self, key: str, value: Any) -> None:
        """Store a value (counts a store, may evict)."""

    def __len__(self) -> int: ...

    def clear(self) -> None: ...


class MemoryCache:
    """In-process LRU result cache holding arbitrary Python values."""

    def __init__(self, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._data: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> tuple[bool, Any]:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.stats.hits += 1
                return True, self._data[key]
            self.stats.misses += 1
            return False, None

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            self.stats.stores += 1
            while self.max_entries is not None and \
                    len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._data)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


class DiskCache:
    """On-disk JSON result cache: one ``<key>.json`` document per entry.

    Values must be JSON-serialisable (the engine's ``encode`` hook
    converts rich results).  LRU order is tracked in-process and
    re-seeded from file modification times on startup, so eviction
    keeps working across runs.
    """

    def __init__(self, directory: str | Path,
                 max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.Lock()
        entries = sorted(self.directory.glob("*.json"),
                         key=lambda p: p.stat().st_mtime)
        self._order: OrderedDict[str, None] = OrderedDict(
            (p.stem, None) for p in entries)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> tuple[bool, Any]:
        with self._lock:
            path = self._path(key)
            if key in self._order or path.exists():
                try:
                    value = json.loads(path.read_text())["value"]
                except (OSError, ValueError, KeyError):
                    self._order.pop(key, None)
                    self.stats.misses += 1
                    return False, None
                self._order[key] = None
                self._order.move_to_end(key)
                self.stats.hits += 1
                return True, value
            self.stats.misses += 1
            return False, None

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            payload = json.dumps({"key": key, "value": value}, sort_keys=True)
            self._path(key).write_text(payload)
            self._order[key] = None
            self._order.move_to_end(key)
            self.stats.stores += 1
            while self.max_entries is not None and \
                    len(self._order) > self.max_entries:
                victim, _ = self._order.popitem(last=False)
                self._path(victim).unlink(missing_ok=True)
                self.stats.evictions += 1

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._order)

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    def clear(self) -> None:
        with self._lock:
            for key in list(self._order):
                self._path(key).unlink(missing_ok=True)
            self._order.clear()


def iter_entries(cache: MemoryCache | DiskCache) -> Iterator[str]:
    """Keys currently held by a cache, LRU-oldest first."""
    yield from cache.keys()
