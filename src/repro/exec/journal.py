"""The structured run journal: one record per executed unit of work.

Every task the execution engine processes -- benchmark run, scaling
point, JUBE workunit -- leaves a :class:`TaskRecord` with timing, cache
status, retry count and error state.  Since the telemetry layer landed,
the journal is a *consumer of the engine's span stream*: the engine
records one ``task:`` span per processed item and the journal's
:meth:`RunJournal.on_span` subscriber turns those spans into records --
there is no parallel bookkeeping path.

``jubench ... --journal [PATH]`` prints it (or persists it as JSONL
via :meth:`RunJournal.to_jsonl`, schema-compatible with the telemetry
event sink, so ``jubench report`` can re-render it offline), the
suite-pipeline bench reports it, and the incremental-execution tests
assert on its counters (e.g. "a warm rerun executed nothing").
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class TaskRecord:
    """Outcome bookkeeping of one engine task."""

    index: int
    label: str
    status: str               # "ok" | "error"
    cache: str                # "hit" | "miss" | "off"
    attempts: int = 1
    started: float = 0.0      # parent-clock timestamps, run-relative
    finished: float = 0.0
    key: str | None = None
    error: str | None = None

    @property
    def duration(self) -> float:
        return max(0.0, self.finished - self.started)

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    @property
    def executed(self) -> bool:
        """Whether actual work ran (anything but a cache hit)."""
        return self.cache != "hit"

    def to_event(self) -> dict[str, Any]:
        """JSONL representation (``type: task``, telemetry schema)."""
        return {"type": "task", "index": self.index, "label": self.label,
                "status": self.status, "cache": self.cache,
                "attempts": self.attempts, "started": self.started,
                "finished": self.finished, "key": self.key,
                "error": self.error}

    @classmethod
    def from_event(cls, event: dict[str, Any]) -> "TaskRecord":
        return cls(index=int(event["index"]), label=str(event["label"]),
                   status=str(event["status"]), cache=str(event["cache"]),
                   attempts=int(event["attempts"]),
                   started=float(event["started"]),
                   finished=float(event["finished"]),
                   key=event.get("key"), error=event.get("error"))


@dataclass
class JournalStats:
    """Aggregate counters over a journal's records."""

    tasks: int = 0
    executed: int = 0
    cache_hits: int = 0
    errors: int = 0
    retries: int = 0
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0


def _clean_error(error: str, limit: int = 72) -> str:
    """One safe line for the aligned summary table: newlines and
    control characters escaped, over-long text truncated with an
    ellipsis."""
    text = error.replace("\\", "\\\\").replace("\n", "\\n") \
        .replace("\r", "\\r").replace("\t", "\\t")
    text = "".join(c if c.isprintable() else "?" for c in text)
    if len(text) > limit:
        text = text[:limit - 1] + "\u2026"
    return text


class RunJournal:
    """Thread-safe, append-only record of a run's tasks.

    Wired to an engine it acts as a span-stream subscriber: the
    :meth:`on_span` hook filters ``attrs.kind == "task"`` spans out of
    the tracer feed and appends one record each.
    """

    def __init__(self) -> None:
        self._records: list[TaskRecord] = []
        self._lock = threading.Lock()

    def append(self, record: TaskRecord) -> None:
        with self._lock:
            self._records.append(record)

    def on_span(self, span: Any) -> None:
        """Tracer-subscriber hook: consume engine task spans."""
        attrs = span.attrs
        if attrs.get("kind") != "task":
            return
        self.append(TaskRecord(
            index=attrs["index"], label=attrs["label"],
            status=attrs["status"], cache=attrs["cache"],
            attempts=attrs["attempts"], started=span.start,
            finished=span.end, key=attrs.get("key"),
            error=attrs.get("error")))

    @property
    def records(self) -> list[TaskRecord]:
        """Records in submission-index order (stable across workers)."""
        with self._lock:
            return sorted(self._records, key=lambda r: r.index)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def canonical(self) -> "RunJournal":
        """The journal re-timed onto a virtual unit timeline.

        Records are ordered by ``(index, label)`` and assigned
        ``started=i, finished=i+1``: the result depends only on *what*
        ran and *how it ended*, never on scheduling, so its
        :meth:`to_jsonl` output is byte-identical across cold runs
        *and* across worker counts -- the chaos determinism artifact.
        """
        out = RunJournal()
        ordered = sorted(self.records, key=lambda r: (r.index, r.label))
        for i, rec in enumerate(ordered):
            out.append(TaskRecord(index=rec.index, label=rec.label,
                                  status=rec.status, cache=rec.cache,
                                  attempts=rec.attempts, started=float(i),
                                  finished=float(i + 1), key=rec.key,
                                  error=rec.error))
        return out

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def digest(self) -> str:
        """Stable content hash of the canonical journal.

        Because it is taken over :meth:`canonical` (virtual unit
        timeline), the digest depends only on what ran and how it
        ended -- the provenance link history records carry, matching
        across worker counts and replays of the same run.
        """
        from .cache import stable_hash  # local: keep module deps one-way

        return stable_hash(
            [r.to_event() for r in self.canonical().records])[:16]

    def stats(self) -> JournalStats:
        """Aggregate counters of everything journalled so far."""
        recs = self.records
        out = JournalStats(tasks=len(recs))
        if not recs:
            return out
        out.executed = sum(1 for r in recs if r.executed)
        out.cache_hits = sum(1 for r in recs if r.cache == "hit")
        out.errors = sum(1 for r in recs if r.status == "error")
        out.retries = sum(r.retries for r in recs)
        out.busy_seconds = sum(r.duration for r in recs)
        out.wall_seconds = max(r.finished for r in recs) - \
            min(r.started for r in recs)
        return out

    def summary(self, max_errors: int = 8) -> str:
        """Human-readable journal: per-task lines plus totals.

        Error strings are escaped to a single truncated line so one
        failing task cannot corrupt the aligned table; only the first
        ``max_errors`` error texts are shown in full, the rest collapse
        into an "... and N more" tail.
        """
        recs = self.records
        lines = [f"run journal -- {len(recs)} tasks"]
        errors_shown = 0
        errors_total = sum(1 for r in recs if r.error)
        for r in recs:
            flags = []
            if r.retries:
                flags.append(f"retries={r.retries}")
            if r.error:
                errors_shown += 1
                if errors_shown <= max_errors:
                    flags.append(f"error: {_clean_error(r.error)}")
                else:
                    flags.append("error")
            tail = ("  " + ", ".join(flags)) if flags else ""
            lines.append(f"  [{r.index:>3}] {r.label:<28} {r.status:<5} "
                         f"cache={r.cache:<4} {r.duration * 1e3:8.1f} ms"
                         f"{tail}")
        if errors_total > max_errors:
            lines.append(f"  \u2026 and {errors_total - max_errors} more "
                         f"errors (full text via to_jsonl / --journal PATH)")
        s = self.stats()
        lines.append(f"  executed {s.executed}/{s.tasks}, "
                     f"cache hits {s.cache_hits}, errors {s.errors}, "
                     f"retries {s.retries}, "
                     f"busy {s.busy_seconds:.3f} s over "
                     f"wall {s.wall_seconds:.3f} s")
        return "\n".join(lines)

    # -- persistence (telemetry JSONL schema) -------------------------------

    def to_jsonl(self, path: Any) -> int:
        """Write the journal as schema-valid JSONL; returns the record
        count.  ``jubench report PATH`` renders the file offline."""
        from ..telemetry.schema import meta_event  # avoid import cycle

        recs = self.records
        with open(path, "w", encoding="utf-8") as fh:
            for obj in [meta_event()] + [r.to_event() for r in recs]:
                fh.write(json.dumps(obj, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        return len(recs)

    @classmethod
    def from_jsonl(cls, path: Any) -> "RunJournal":
        """Rebuild a journal from a JSONL trace (its own ``task``
        events, or engine task spans from a full telemetry trace)."""
        from ..telemetry.schema import read_events

        journal = cls()
        for event in read_events(path):
            if event["type"] == "task":
                journal.append(TaskRecord.from_event(event))
            elif event["type"] == "span" and \
                    event["attrs"].get("kind") == "task":
                attrs = dict(event["attrs"])
                attrs["started"] = event["start"]
                attrs["finished"] = event["end"]
                journal.append(TaskRecord.from_event(attrs))
        return journal
