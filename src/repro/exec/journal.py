"""The structured run journal: one record per executed unit of work.

Every task the execution engine processes -- benchmark run, scaling
point, JUBE workunit -- leaves a :class:`TaskRecord` with timing, cache
status, retry count and error state.  The journal is the observability
surface of a suite run: ``jubench ... --journal`` prints it, the
suite-pipeline bench reports it, and the incremental-execution tests
assert on its counters (e.g. "a warm rerun executed nothing").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TaskRecord:
    """Outcome bookkeeping of one engine task."""

    index: int
    label: str
    status: str               # "ok" | "error"
    cache: str                # "hit" | "miss" | "off"
    attempts: int = 1
    started: float = 0.0      # perf_counter timestamps, run-relative
    finished: float = 0.0
    key: str | None = None
    error: str | None = None

    @property
    def duration(self) -> float:
        return max(0.0, self.finished - self.started)

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    @property
    def executed(self) -> bool:
        """Whether actual work ran (anything but a cache hit)."""
        return self.cache != "hit"


@dataclass
class JournalStats:
    """Aggregate counters over a journal's records."""

    tasks: int = 0
    executed: int = 0
    cache_hits: int = 0
    errors: int = 0
    retries: int = 0
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0


class RunJournal:
    """Thread-safe, append-only record of a run's tasks."""

    def __init__(self) -> None:
        self._records: list[TaskRecord] = []
        self._lock = threading.Lock()

    def append(self, record: TaskRecord) -> None:
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> list[TaskRecord]:
        """Records in submission-index order (stable across workers)."""
        with self._lock:
            return sorted(self._records, key=lambda r: r.index)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def stats(self) -> JournalStats:
        """Aggregate counters of everything journalled so far."""
        recs = self.records
        out = JournalStats(tasks=len(recs))
        if not recs:
            return out
        out.executed = sum(1 for r in recs if r.executed)
        out.cache_hits = sum(1 for r in recs if r.cache == "hit")
        out.errors = sum(1 for r in recs if r.status == "error")
        out.retries = sum(r.retries for r in recs)
        out.busy_seconds = sum(r.duration for r in recs)
        out.wall_seconds = max(r.finished for r in recs) - \
            min(r.started for r in recs)
        return out

    def summary(self) -> str:
        """Human-readable journal: per-task lines plus totals."""
        recs = self.records
        lines = [f"run journal -- {len(recs)} tasks"]
        for r in recs:
            flags = []
            if r.retries:
                flags.append(f"retries={r.retries}")
            if r.error:
                flags.append(f"error: {r.error}")
            tail = ("  " + ", ".join(flags)) if flags else ""
            lines.append(f"  [{r.index:>3}] {r.label:<28} {r.status:<5} "
                         f"cache={r.cache:<4} {r.duration * 1e3:8.1f} ms"
                         f"{tail}")
        s = self.stats()
        lines.append(f"  executed {s.executed}/{s.tasks}, "
                     f"cache hits {s.cache_hits}, errors {s.errors}, "
                     f"retries {s.retries}, "
                     f"busy {s.busy_seconds:.3f} s over "
                     f"wall {s.wall_seconds:.3f} s")
        return "\n".join(lines)
