"""Parallel + incremental suite execution (the missing JUBE layer).

The paper drives every benchmark through a replicable JUBE workflow and
plans a continuous-benchmarking loop (Sec. VI); at scale both only stay
tractable with parallel fan-out and cache-aware incremental
re-execution.  This package provides that layer:

* :mod:`repro.exec.engine` -- concurrent batch execution with a fault
  boundary (retries, timeouts, error-carrying outcomes) and
  deterministic result ordering,
* :mod:`repro.exec.cache` -- content-addressed result caching keyed on
  (benchmark, parameters, platform, code version), memory and disk
  backends with hit/miss/eviction statistics,
* :mod:`repro.exec.journal` -- the structured per-task run journal.

:class:`JupiterBenchmarkSuite`, :class:`JubeRuntime` and
:class:`ContinuousBenchmarking` all accept an
:class:`~repro.exec.engine.ExecutionEngine` to fan their independent
units of work out through it.
"""

from .cache import (
    CODE_VERSION,
    CacheStats,
    DiskCache,
    MemoryCache,
    ResultCache,
    result_key,
    stable_hash,
)
from .engine import (
    BACKENDS,
    EngineError,
    ExecutionEngine,
    TaskOutcome,
    TaskTimeout,
    WorkItem,
)
from .journal import JournalStats, RunJournal, TaskRecord
from .resilience import BackoffPolicy, CircuitBreaker

__all__ = [
    "BACKENDS",
    "BackoffPolicy",
    "CODE_VERSION",
    "CacheStats",
    "CircuitBreaker",
    "DiskCache",
    "EngineError",
    "ExecutionEngine",
    "JournalStats",
    "MemoryCache",
    "ResultCache",
    "RunJournal",
    "TaskOutcome",
    "TaskRecord",
    "TaskTimeout",
    "WorkItem",
    "result_key",
    "stable_hash",
]
