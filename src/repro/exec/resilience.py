"""Resilience policies for the execution engine.

Two policies make injected (or organic) faults survivable without
sacrificing determinism:

* :class:`BackoffPolicy` -- exponential backoff between retry attempts
  with *seeded* jitter: the delay is a pure function of
  ``(seed, label, attempt)`` via a stable content hash, so the same
  run produces the same delays on any worker count.  Under a virtual
  clock (:class:`~repro.telemetry.spans.ManualClock`) the delay
  advances the clock instead of sleeping.
* :class:`CircuitBreaker` -- a per-label consecutive-failure counter
  that short-circuits known-bad tasks.  The engine applies it with
  *batch-snapshot semantics*: allow/deny is decided for every item of
  a batch before any of them runs, and outcomes are recorded in
  submission order after the batch completes.  That keeps workers=1
  and workers=8 bit-identical (a mid-batch state update would let the
  race winner change later decisions).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .cache import hash_fraction


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    ``delay(label, attempt)`` returns the pause *after* failed attempt
    ``attempt`` (1-based): ``base * factor**(attempt-1)`` capped at
    ``max_delay``, then jittered multiplicatively into
    ``[1 - jitter/2, 1 + jitter/2)`` with a hash-derived uniform draw.
    Frozen dataclass, so it pickles into process-pool workers.

    Pass ``key`` (a content address -- the work item's cache key, a
    service envelope's task id) to seed the draw **per envelope**: the
    jitter becomes a pure function of ``(key, attempt)`` alone, so a
    replay in another process, with another policy instance or another
    per-process ``seed``, reproduces the same schedule.  Without a
    key the draw falls back to the legacy per-policy
    ``(seed, label, attempt)`` seeding.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0 or self.factor < 1 or self.max_delay < 0:
            raise ValueError("base/max_delay must be >= 0, factor >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, label: str, attempt: int,
              key: str | None = None) -> float:
        raw = min(self.base * self.factor ** max(0, attempt - 1),
                  self.max_delay)
        if self.jitter == 0.0:
            return raw
        if key is not None:
            u = hash_fraction("backoff", key, attempt)
        else:
            u = hash_fraction("backoff", self.seed, label, attempt)
        return raw * (1.0 + self.jitter * (u - 0.5))


class CircuitBreaker:
    """Per-label circuit breaker with batch-snapshot semantics.

    After ``threshold`` consecutive failures of a label the circuit
    opens: the next ``cooldown`` scheduled executions of that label
    are skipped outright (recorded as blocked, no attempt runs).
    Once the cooldown is spent the circuit half-opens and one probe
    execution is allowed; success closes the circuit, failure re-opens
    it for another cooldown.

    Thread-safe; the engine only calls it from the coordinating
    thread (decisions before the batch, recordings after), so the lock
    is a safety net for external users, not a sequencing mechanism.
    """

    def __init__(self, threshold: int = 3, cooldown: int = 2) -> None:
        if threshold < 1 or cooldown < 1:
            raise ValueError("threshold and cooldown must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._failures: dict[str, int] = {}
        self._skips_left: dict[str, int] = {}
        self._lock = threading.Lock()

    def state(self, label: str) -> str:
        """``closed`` | ``open`` | ``half-open`` for a label."""
        with self._lock:
            if self._skips_left.get(label, 0) > 0:
                return "open"
            if self._failures.get(label, 0) >= self.threshold:
                return "half-open"
            return "closed"

    def allow(self, label: str) -> bool:
        """Whether a scheduled execution of ``label`` may run.

        Does not mutate state -- the engine snapshots decisions for a
        whole batch, then applies them via :meth:`block` /
        :meth:`record`.
        """
        with self._lock:
            return self._skips_left.get(label, 0) <= 0

    def block(self, label: str) -> None:
        """Consume one skip from an open circuit."""
        with self._lock:
            left = self._skips_left.get(label, 0)
            if left > 0:
                self._skips_left[label] = left - 1

    def record(self, label: str, ok: bool) -> None:
        """Feed an execution outcome back into the breaker."""
        with self._lock:
            if ok:
                self._failures[label] = 0
                self._skips_left[label] = 0
                return
            failures = self._failures.get(label, 0) + 1
            self._failures[label] = failures
            if failures >= self.threshold:
                self._skips_left[label] = self.cooldown
