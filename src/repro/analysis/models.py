"""The application performance models Sec. V-A highlights.

"To understand the performance characteristics on a future system
better, it proved useful for some application developers to create
models of their applications":

* the **JUQCS network model** -- per-gate communication time from the
  link class of each pairwise exchange, explaining the drops at 1->2
  nodes and >= 256 nodes;
* the **nekRS predictor** -- extrapolate the per-step cost measured
  over a short prefix to the full simulation ("predict the performance
  of a later part of the simulation early in the process");
* the **PIConGPU scaling model** -- valid simulation parameters
  (grid/node limits) from the 3D decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.hardware import SystemSpec, juwels_booster
from ..cluster.network import NetworkModel
from ..units import BYTES_PER_COMPLEX128


@dataclass(frozen=True)
class JuqcsNetworkModel:
    """Analytic communication time of JUQCS' non-local gates.

    A gate on a rank-bit qubit pairs every rank with a partner at
    hamming distance one in the rank index; each rank ships half its
    local state.  The pair's link class depends on the rank-bit
    position: low bits stay inside a node (NVLink), middle bits inside
    a cell, high bits cross cells -- with large-job congestion on top.
    This is the model that "can be employed to understand topological
    aspects of the high-speed network" (Sec. V-A).
    """

    system: SystemSpec = None  # type: ignore[assignment]
    ranks_per_node: int = 4

    def __post_init__(self) -> None:
        if self.system is None:
            object.__setattr__(self, "system", juwels_booster())

    def gate_comm_seconds(self, qubits: int, nranks: int,
                          rank_bit: int) -> float:
        """Time of one non-local gate on the given rank bit."""
        p = int(np.log2(nranks))
        if not 0 <= rank_bit < p:
            raise ValueError(f"rank bit {rank_bit} outside 0..{p - 1}")
        local_amps = 2 ** (qubits - p)
        nbytes = local_amps / 2 * BYTES_PER_COMPLEX128
        net = NetworkModel(system=self.system)
        nodes = max(1, nranks // self.ranks_per_node)
        src = 0
        dst_rank = 1 << rank_bit
        dst = dst_rank // self.ranks_per_node
        return net.p2p_time(src, dst, nbytes, job_nodes=nodes)

    def worst_gate_seconds(self, qubits: int, nranks: int) -> float:
        """The slowest rank-bit gate (the benchmark's critical cost)."""
        p = int(np.log2(nranks))
        if p == 0:
            return 0.0
        return max(self.gate_comm_seconds(qubits, nranks, b)
                   for b in range(p))

    def regime(self, nranks: int) -> str:
        """Which communication regime a job of this size sits in."""
        nodes = max(1, nranks // self.ranks_per_node)
        if nodes <= 1:
            return "intra-node"
        if nodes <= self.system.nodes_per_cell:
            return "intra-cell"
        if nodes < self.system.large_scale_threshold_nodes:
            return "inter-cell"
        return "large-scale"


@dataclass(frozen=True)
class NekrsPredictor:
    """Early prediction of a long run from a measured prefix.

    nekRS steps have near-constant cost once the solver settles, so
    ``predict(total_steps)`` from a few measured steps (skipping the
    warm-up) estimates the full runtime -- "allowing much shorter and
    more resource-efficient benchmarks" (Sec. V-A).
    """

    warmup_steps: int = 2

    def predict(self, step_times: list[float], total_steps: int) -> float:
        """Extrapolate total runtime from a prefix of per-step times."""
        if total_steps < len(step_times):
            raise ValueError("total_steps smaller than the measured prefix")
        if len(step_times) <= self.warmup_steps:
            raise ValueError("need more measured steps than warm-up")
        settled = step_times[self.warmup_steps:]
        per_step = float(np.mean(settled))
        warmup = float(np.sum(step_times[:self.warmup_steps]))
        return warmup + per_step * (total_steps - self.warmup_steps)

    def relative_error(self, step_times: list[float],
                       total_steps: int, actual: float) -> float:
        """|prediction - actual| / actual."""
        return abs(self.predict(step_times, total_steps) - actual) / actual


@dataclass(frozen=True)
class PicongpuScalingModel:
    """Valid-parameter rules from the 3D domain decomposition.

    Sec. V-A: "a model for the scaling behaviour could be developed,
    informing valid simulation parameters for the benchmark setup" --
    and Sec. IV-A2e's concrete consequence: at most 640 nodes for the
    (4096, 2048, 1024)-class grids.
    """

    min_cells_per_gpu_edge: int = 64

    def max_nodes(self, grid: tuple[int, int, int],
                  limit: int = 642, gpus_per_node: int = 4) -> int:
        """Largest node count <= ``limit`` with a valid 3D decomposition:
        all extents divide evenly among near-cubic factors and every GPU
        keeps at least ``min_cells_per_gpu_edge`` cells per direction.

        For the S/M/L grids and ``limit = 642`` (the High-Scaling
        partition) this yields 640 -- the paper's stated cap.
        """
        for nodes in range(limit, 0, -1):
            if self.valid(grid, nodes, gpus_per_node):
                return nodes
        return 1

    def valid(self, grid: tuple[int, int, int], nodes: int,
              gpus_per_node: int = 4) -> bool:
        """Whether a node count admits a balanced 3D decomposition.

        Blocks may be slightly uneven (PIConGPU pads), but every GPU
        must keep at least ``min_cells_per_gpu_edge`` cells per
        direction -- node counts whose prime factors force a long thin
        factorisation (like 642*4 = 2^3 * 3 * 107) fail this.
        """
        from ..vmpi.decomposition import dims_create

        gpus = nodes * gpus_per_node
        dims = dims_create(gpus, 3, extents=grid)
        return all(g // d >= self.min_cells_per_gpu_edge
                   for g, d in zip(sorted(grid, reverse=True), dims))
