"""Reproduction of the paper's Figures 2 and 3.

Figure 2: relative runtimes of all Base applications on the reference
system -- each app pinned at (1, 1) on its reference node count, with
strong-scaled points at roughly 0.5/0.75/1.5/2x.  Figure 3: weak-
scaling efficiency of the five High-Scaling benchmarks over a wide node
range, with JUQCS split into computation and communication lines.

No plotting dependencies are available offline, so figures render as
aligned data tables plus an ASCII scatter -- the *series* are the
reproduction artefact; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.scaling import StrongScalingResult, WeakScalingResult
from ..core.suite import JupiterBenchmarkSuite
from ..core.variants import MemoryVariant
from ..telemetry.spans import current_tracer

#: Base apps plotted in Fig. 2 (name, power-of-two constraint)
FIG2_APPS: tuple[tuple[str, bool], ...] = (
    ("Amber", False),
    ("Arbor", False),
    ("Chroma-QCD", True),
    ("GROMACS", False),
    ("ICON", False),
    ("JUQCS", True),
    ("nekRS", False),
    ("ParFlow", False),
    ("PIConGPU", False),
    ("Quantum Espresso", False),
    ("SOMA", False),
    ("MMoCLIP", False),
    ("Megatron-LM", False),
    ("ResNet", False),
    ("DynQCD", True),
    ("NAStJA", False),
)

#: High-Scaling apps of Fig. 3 with their sweep variants
FIG3_APPS: tuple[tuple[str, MemoryVariant], ...] = (
    ("Arbor", MemoryVariant.LARGE),
    ("Chroma-QCD", MemoryVariant.SMALL),
    ("JUQCS", MemoryVariant.SMALL),
    ("nekRS", MemoryVariant.SMALL),
    ("PIConGPU", MemoryVariant.SMALL),
)

#: default Fig. 3 node sweep (wide range, like the paper's 1..936 axis)
FIG3_NODES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass
class Fig2Data:
    """All Base strong-scaling curves."""

    curves: dict[str, StrongScalingResult] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["Fig. 2 -- Base applications, strong scaling "
                 "(relative nodes vs relative runtime)", ""]
        header = f"{'benchmark':<18} {'ref nodes':>9} {'ref time':>10}  " \
                 "relative points (x_nodes, y_runtime)"
        lines.append(header)
        lines.append("-" * len(header))
        for name, curve in self.curves.items():
            rel = "  ".join(f"({x:.2f}, {y:.2f})"
                            for x, y in curve.relative())
            if curve.failed:
                rel += "  failed: " + \
                    ", ".join(str(n) for n in curve.failed)
            lines.append(f"{name:<18} {curve.reference.nodes:>9} "
                         f"{curve.reference.runtime:>9.1f}s  {rel}")
        return "\n".join(lines)


@dataclass
class Fig3Data:
    """High-Scaling weak-scaling efficiencies, plus the JUQCS split."""

    curves: dict[str, WeakScalingResult] = field(default_factory=dict)
    juqcs_compute: list[tuple[int, float]] = field(default_factory=list)
    juqcs_comm: list[tuple[int, float]] = field(default_factory=list)

    def render(self) -> str:
        lines = ["Fig. 3 -- High-Scaling weak-scaling efficiency", ""]
        all_nodes = sorted({n for c in self.curves.values()
                            for n, _ in c.efficiency()})
        header = f"{'benchmark':<14}" + "".join(f"{n:>8}" for n in all_nodes)
        lines.append(header)
        lines.append("-" * len(header))
        for name, curve in self.curves.items():
            eff = dict(curve.efficiency())
            row = f"{name:<14}" + "".join(
                f"{eff.get(n, float('nan')):>8.3f}" if n in eff else
                f"{'-':>8}" for n in all_nodes)
            lines.append(row)
        if self.juqcs_comm:
            comp = dict(self.juqcs_compute)
            comm = dict(self.juqcs_comm)
            lines.append(f"{'JUQCS (comp.)':<14}" + "".join(
                f"{comp.get(n, float('nan')):>8.3f}" if n in comp else
                f"{'-':>8}" for n in all_nodes))
            lines.append(f"{'JUQCS (comm.)':<14}" + "".join(
                f"{comm.get(n, float('nan')):>8.3f}" if n in comm else
                f"{'-':>8}" for n in all_nodes))
        return "\n".join(lines)


def figure2(suite: JupiterBenchmarkSuite,
            apps: tuple[tuple[str, bool], ...] = FIG2_APPS) -> Fig2Data:
    """Run the Fig. 2 strong-scaling study for the given Base apps."""
    data = Fig2Data()
    with current_tracer().span("figure2", kind="driver", apps=len(apps)):
        for name, pow2 in apps:
            data.curves[name] = suite.strong_scaling_study(
                name, power_of_two=pow2)
    return data


def figure3(suite: JupiterBenchmarkSuite,
            nodes: tuple[int, ...] = FIG3_NODES,
            apps: tuple[tuple[str, MemoryVariant], ...] = FIG3_APPS
            ) -> Fig3Data:
    """Run the Fig. 3 weak-scaling study for the High-Scaling apps.

    For JUQCS the computation and communication times are additionally
    split out (relative to the smallest job), reproducing the two-line
    presentation of the paper.
    """
    data = Fig3Data()
    tracer = current_tracer()
    with tracer.span("figure3", kind="driver", apps=len(apps)):
        for name, variant in apps:
            data.curves[name] = suite.weak_scaling_study(name, nodes,
                                                         variant=variant)
        # JUQCS split: efficiency of each component separately
        juqcs = suite.get("JUQCS")
        base_comp = base_comm = None
        for n in sorted(nodes):
            with tracer.span(f"point:JUQCS-split@{n}", kind="point",
                             study="juqcs-split", benchmark="JUQCS",
                             nodes=n):
                res = juqcs.run(n, variant=MemoryVariant.SMALL)
            comp = res.details["compute_seconds"]
            comm = res.details["comm_seconds"]
            if base_comp is None:
                base_comp, base_comm = comp, max(comm, 1e-12)
            data.juqcs_compute.append((res.nodes, base_comp / comp))
            data.juqcs_comm.append((res.nodes, base_comm / max(comm, 1e-12)))
    return data
