"""Analysis and reporting: the paper's tables, figures, and models."""

from .figures import (
    FIG2_APPS,
    FIG3_APPS,
    FIG3_NODES,
    Fig2Data,
    Fig3Data,
    figure2,
    figure3,
)
from .models import JuqcsNetworkModel, NekrsPredictor, PicongpuScalingModel
from .tables import (
    TABLE1_DWARFS,
    render_table1,
    render_table2,
    table1,
    table1_records,
    table2,
    table2_records,
)

__all__ = [
    "FIG2_APPS", "FIG3_APPS", "FIG3_NODES", "Fig2Data", "Fig3Data",
    "JuqcsNetworkModel", "NekrsPredictor", "PicongpuScalingModel",
    "TABLE1_DWARFS", "figure2", "figure3", "render_table1",
    "render_table2", "table1", "table1_records", "table2",
    "table2_records",
]
