"""Reproduction of the paper's Tables I and II from the registry.

Table I relates every benchmark to its scientific domain and Berkeley
dwarfs; Table II lists languages/libraries/programming models,
licences, Base and High-Scaling node counts with memory variants, and
execution targets.  Both render as aligned ASCII using the JUBE result-
table machinery, so the bench output is directly comparable with the
paper's layout.
"""

from __future__ import annotations

from ..core.benchmark import BenchmarkInfo, Category, Dwarf, Target
from ..core.registry import BENCHMARKS
from ..core.variants import variant_labels
from ..jube.result import Column, ResultTable, WorkunitRecord

#: the dwarf columns of Table I, in the paper's order
TABLE1_DWARFS = (
    Dwarf.DENSE_LA,
    Dwarf.SPARSE_LA,
    Dwarf.SPECTRAL,
    Dwarf.PARTICLE,
    Dwarf.STRUCTURED_GRID,
    Dwarf.UNSTRUCTURED_GRID,
    Dwarf.MONTE_CARLO,
)

_SHORT = {
    Dwarf.DENSE_LA: "DenseLA",
    Dwarf.SPARSE_LA: "SparseLA",
    Dwarf.SPECTRAL: "Spectral",
    Dwarf.PARTICLE: "Particle",
    Dwarf.STRUCTURED_GRID: "StructGrid",
    Dwarf.UNSTRUCTURED_GRID: "UnstrGrid",
    Dwarf.MONTE_CARLO: "MonteCarlo",
}


def _mark(info: BenchmarkInfo) -> str:
    return "*" if not info.used_in_procurement else ""


def table1_records() -> list[WorkunitRecord]:
    """One record per benchmark with its domain and dwarf marks."""
    records = []
    for info in BENCHMARKS:
        params: dict[str, object] = {
            "benchmark": info.name + _mark(info),
            "domain": info.domain,
        }
        for dwarf in TABLE1_DWARFS:
            params[_SHORT[dwarf]] = "x" if dwarf in info.dwarfs else ""
        other = [d for d in info.dwarfs if d not in TABLE1_DWARFS]
        params["other"] = ", ".join(d.value for d in other)
        records.append(WorkunitRecord(params=params, outputs={}))
    return records


def table1() -> ResultTable:
    """The Table I renderer."""
    cols = [Column(key="benchmark", title="Benchmark"),
            Column(key="domain", title="Domain")]
    cols += [Column(key=_SHORT[d], title=_SHORT[d]) for d in TABLE1_DWARFS]
    cols.append(Column(key="other", title="Other"))
    return ResultTable(name="Table I", columns=cols)


def render_table1() -> str:
    """Table I as ASCII text."""
    return table1().render(table1_records())


def table2_records() -> list[WorkunitRecord]:
    """One record per benchmark with its Table II attributes."""
    records = []
    for info in BENCHMARKS:
        targets = "".join(
            {"booster": "B", "cluster": "C", "msa": "M",
             "storage": "S"}[t.value]
            for t in info.targets)
        hs = ""
        if Category.HIGH_SCALING in info.categories:
            hs = f"{info.highscale_nodes}^{{{variant_labels(info.variants)}}}"
        params = {
            "benchmark": info.name + _mark(info),
            "languages": "/".join(info.languages),
            "models": "/".join(info.prog_models),
            "libraries": ", ".join(info.libraries),
            "license": info.license,
            "base_nodes": "/".join(str(n) for n in info.base_nodes) or "-",
            "highscale": hs or "-",
            "targets": targets,
        }
        records.append(WorkunitRecord(params=params, outputs={}))
    return records


def table2() -> ResultTable:
    """The Table II renderer."""
    return ResultTable(name="Table II", columns=[
        Column(key="benchmark", title="Benchmark"),
        Column(key="languages", title="Language"),
        Column(key="models", title="Prog. Models"),
        Column(key="libraries", title="Libraries"),
        Column(key="license", title="Licence"),
        Column(key="base_nodes", title="Nodes Base"),
        Column(key="highscale", title="Nodes High-Scale"),
        Column(key="targets", title="Targets"),
    ])


def render_table2() -> str:
    """Table II as ASCII text."""
    return table2().render(table2_records())
