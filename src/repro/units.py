"""Unit helpers for the JUPITER benchmark-suite reproduction.

The paper mixes SI prefixes (FLOP/s, GB/s of network links) and binary
prefixes (GiB/TiB of state-vector memory).  Getting these right matters:
JUQCS' memory law ``16 B * 2**n`` only reproduces the paper's numbers
(n=36 -> 1 TiB, n=45 -> 0.5 PiB) with binary prefixes, while HPL's
1 EFLOP/s target is decimal.

Everything in this module is a plain ``float`` helper -- no unit objects --
so that hot loops in the simulator stay cheap.
"""

from __future__ import annotations

# --- decimal (SI) prefixes -------------------------------------------------
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15
EXA = 1e18

# --- binary prefixes -------------------------------------------------------
KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3
TIB = 1024.0**4
PIB = 1024.0**5

#: Bytes per double-precision complex number (JUQCS state-vector element).
BYTES_PER_COMPLEX128 = 16
#: Bytes per double-precision real number.
BYTES_PER_FLOAT64 = 8

_SI_STEPS = [(EXA, "E"), (PETA, "P"), (TERA, "T"), (GIGA, "G"), (MEGA, "M"), (KILO, "k")]
_BIN_STEPS = [(PIB, "Pi"), (TIB, "Ti"), (GIB, "Gi"), (MIB, "Mi"), (KIB, "Ki")]


def fmt_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``fmt_si(5e13, 'FLOP/s')``."""
    for step, prefix in _SI_STEPS:
        if abs(value) >= step:
            return f"{value / step:.{digits}g} {prefix}{unit}"
    return f"{value:.{digits}g} {unit}"


def fmt_bytes(nbytes: float, digits: int = 3) -> str:
    """Format a byte count with binary prefixes, e.g. ``'64 TiB'``."""
    for step, prefix in _BIN_STEPS:
        if abs(nbytes) >= step:
            return f"{nbytes / step:.{digits}g} {prefix}B"
    return f"{nbytes:.{digits}g} B"


def fmt_seconds(seconds: float) -> str:
    """Human-readable duration (``'1.2 ms'``, ``'498 s'``, ``'2.1 h'``)."""
    if seconds < 0:
        return "-" + fmt_seconds(-seconds)
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.3g} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g} ms"
    if seconds < 600.0:
        return f"{seconds:.3g} s"
    if seconds < 3 * 3600.0:
        return f"{seconds / 60.0:.3g} min"
    return f"{seconds / 3600.0:.3g} h"


_SI_PARSE = {
    "k": KILO, "m": MEGA, "g": GIGA, "t": TERA, "p": PETA, "e": EXA,
    "": 1.0,
}
_BIN_PARSE = {
    "ki": KIB, "mi": MIB, "gi": GIB, "ti": TIB, "pi": PIB, "": 1.0,
}


def _split_number(text: str) -> tuple[float, str]:
    """Split ``'25 G'`` / ``'1.2e3k'`` into (number, suffix text).

    ``e``/``E`` only continue the number when followed by an exponent
    digit or sign -- otherwise they start the suffix, so the exa
    prefix parses (``'1 EFLOP/s'``) instead of being mistaken for
    scientific notation.
    """
    s = text.strip()
    num_end = len(s)
    for i, ch in enumerate(s):
        if ch.isdigit() or ch in ".+-":
            continue
        if ch in "eE" and i + 1 < len(s) and \
                (s[i + 1].isdigit() or s[i + 1] in "+-"):
            continue
        if ch.isalpha():
            num_end = i
            break
    if num_end == 0:
        raise ValueError(f"no number in {text!r}")
    return float(s[:num_end]), s[num_end:].strip()


def parse_si(text: str, unit: str = "") -> float:
    """Inverse of :func:`fmt_si`: ``parse_si('25 GB/s', 'B/s') == 25e9``.

    The trailing ``unit`` (if given) must match exactly; what remains is
    a single optional SI prefix letter, matched case-insensitively.
    """
    num, suffix = _split_number(text)
    if unit:
        if not suffix.endswith(unit):
            raise ValueError(f"expected unit {unit!r} in {text!r}")
        suffix = suffix[: len(suffix) - len(unit)].strip()
    prefix = suffix.lower()
    if prefix not in _SI_PARSE:
        raise ValueError(f"unknown SI prefix {suffix!r} in {text!r}")
    return num * _SI_PARSE[prefix]


def parse_bin(text: str) -> float:
    """Inverse of :func:`fmt_bytes`: ``parse_bin('64 TiB') == 64 * TIB``.

    Only binary prefixes (and bare ``B``) are accepted; use
    :func:`parse_bytes` for mixed decimal/binary input.
    """
    num, suffix = _split_number(text)
    prefix = suffix.lower()
    if prefix.endswith("b"):
        prefix = prefix[:-1]
    if prefix not in _BIN_PARSE:
        raise ValueError(f"unknown binary prefix {suffix!r} in {text!r}")
    return num * _BIN_PARSE[prefix]


# --- dimension annotations -------------------------------------------------

#: module -> {annotation key -> dimension string}; see :func:`register_dims`
_DIM_REGISTRY: dict[str, dict[str, str]] = {}


def register_dims(module: str, dims: dict[str, str]) -> dict[str, str]:
    """Declare physical dimensions for a module's names.

    Modules opt into dimensional analysis with::

        DIMS = register_dims(__name__, {
            "p2p_time.nbytes": "B",
            "p2p_time.return": "s",
            "DeviceSpec.peak_flops": "FLOP/s",
        })

    Keys are ``func.param`` / ``func.return`` / ``Class.attr``; values
    come from the dimension vocabulary (``s``, ``B``, ``FLOP``,
    ``B/s``, ``FLOP/s``, ``1/s``, ``1``).  The static analyzer
    (``repro.check.dataflow``) reads the dict literal straight from the
    AST -- this runtime registry exists so the annotations are also
    introspectable (``units.registered_dims()``) and typo-checked by
    the UNIT rules rather than silently ignored.

    Returns ``dims`` unchanged so the idiom above stays one line.
    """
    _DIM_REGISTRY[module] = dict(dims)
    return dims


def registered_dims() -> dict[str, dict[str, str]]:
    """A copy of every module's registered dimension annotations."""
    return {mod: dict(d) for mod, d in _DIM_REGISTRY.items()}


def parse_bytes(text: str) -> float:
    """Parse ``'16 MiB'`` / ``'4KB'`` / ``'512'`` into a byte count.

    Accepts both binary (``KiB``/``MiB``/...) and decimal (``KB``/``MB``/...)
    suffixes, case-insensitively, with or without a space.
    """
    suffixes = {
        "kib": KIB, "mib": MIB, "gib": GIB, "tib": TIB, "pib": PIB,
        "kb": KILO, "mb": MEGA, "gb": GIGA, "tb": TERA, "pb": PETA,
        "b": 1.0, "": 1.0,
    }
    num, raw_suffix = _split_number(text)
    suffix = raw_suffix.lower()
    if suffix not in suffixes:
        raise ValueError(f"unknown byte suffix {raw_suffix!r} in {text!r}")
    return num * suffixes[suffix]
