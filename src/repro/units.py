"""Unit helpers for the JUPITER benchmark-suite reproduction.

The paper mixes SI prefixes (FLOP/s, GB/s of network links) and binary
prefixes (GiB/TiB of state-vector memory).  Getting these right matters:
JUQCS' memory law ``16 B * 2**n`` only reproduces the paper's numbers
(n=36 -> 1 TiB, n=45 -> 0.5 PiB) with binary prefixes, while HPL's
1 EFLOP/s target is decimal.

Everything in this module is a plain ``float`` helper -- no unit objects --
so that hot loops in the simulator stay cheap.
"""

from __future__ import annotations

# --- decimal (SI) prefixes -------------------------------------------------
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15
EXA = 1e18

# --- binary prefixes -------------------------------------------------------
KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3
TIB = 1024.0**4
PIB = 1024.0**5

#: Bytes per double-precision complex number (JUQCS state-vector element).
BYTES_PER_COMPLEX128 = 16
#: Bytes per double-precision real number.
BYTES_PER_FLOAT64 = 8

_SI_STEPS = [(EXA, "E"), (PETA, "P"), (TERA, "T"), (GIGA, "G"), (MEGA, "M"), (KILO, "k")]
_BIN_STEPS = [(PIB, "Pi"), (TIB, "Ti"), (GIB, "Gi"), (MIB, "Mi"), (KIB, "Ki")]


def fmt_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``fmt_si(5e13, 'FLOP/s')``."""
    for step, prefix in _SI_STEPS:
        if abs(value) >= step:
            return f"{value / step:.{digits}g} {prefix}{unit}"
    return f"{value:.{digits}g} {unit}"


def fmt_bytes(nbytes: float, digits: int = 3) -> str:
    """Format a byte count with binary prefixes, e.g. ``'64 TiB'``."""
    for step, prefix in _BIN_STEPS:
        if abs(nbytes) >= step:
            return f"{nbytes / step:.{digits}g} {prefix}B"
    return f"{nbytes:.{digits}g} B"


def fmt_seconds(seconds: float) -> str:
    """Human-readable duration (``'1.2 ms'``, ``'498 s'``, ``'2.1 h'``)."""
    if seconds < 0:
        return "-" + fmt_seconds(-seconds)
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.3g} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g} ms"
    if seconds < 600.0:
        return f"{seconds:.3g} s"
    if seconds < 3 * 3600.0:
        return f"{seconds / 60.0:.3g} min"
    return f"{seconds / 3600.0:.3g} h"


def parse_bytes(text: str) -> float:
    """Parse ``'16 MiB'`` / ``'4KB'`` / ``'512'`` into a byte count.

    Accepts both binary (``KiB``/``MiB``/...) and decimal (``KB``/``MB``/...)
    suffixes, case-insensitively, with or without a space.
    """
    s = text.strip()
    suffixes = {
        "kib": KIB, "mib": MIB, "gib": GIB, "tib": TIB, "pib": PIB,
        "kb": KILO, "mb": MEGA, "gb": GIGA, "tb": TERA, "pb": PETA,
        "b": 1.0, "": 1.0,
    }
    num_end = len(s)
    for i, ch in enumerate(s):
        if not (ch.isdigit() or ch in ".+-eE"):
            # Guard against scientific notation like 1e6 -- only stop at a
            # letter that cannot continue a float literal.
            if ch.isalpha() and not (ch in "eE" and i + 1 < len(s) and (s[i + 1].isdigit() or s[i + 1] in "+-")):
                num_end = i
                break
    num = float(s[:num_end])
    suffix = s[num_end:].strip().lower()
    if suffix not in suffixes:
        raise ValueError(f"unknown byte suffix {suffix!r} in {text!r}")
    return num * suffixes[suffix]
