"""Reproduction of "Application-Driven Exascale: The JUPITER Benchmark Suite".

Top-level subpackages:

* :mod:`repro.cluster` -- simulated machine (hardware, topology, network,
  storage, scheduler, energy),
* :mod:`repro.vmpi` -- deterministic virtual-MPI SPMD engine,
* :mod:`repro.jube` -- JUBE-style workflow environment,
* :mod:`repro.core` -- the procurement methodology (FOMs, categories,
  memory variants, TCO, High-Scaling extrapolation, suite registry),
* :mod:`repro.apps` -- the 16 application benchmarks,
* :mod:`repro.synthetic` -- the 7 synthetic benchmarks,
* :mod:`repro.analysis` -- tables, figures and performance models.
"""

from .core.suite import load_suite

__version__ = "1.0.0"

__all__ = ["load_suite", "__version__"]
