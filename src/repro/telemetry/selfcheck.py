"""Fast telemetry self-check: ``python -m repro.telemetry.selfcheck``.

Exercises the whole layer end-to-end in a few milliseconds with a
deterministic clock -- span nesting across threads, metrics semantics,
JSONL schema round-trip, Chrome export shape -- and exits non-zero on
the first violation.  CI runs it before the test suite; it needs no
benchmark execution and no third-party packages.
"""

from __future__ import annotations

import io
import json
import threading

from .export import JsonlSink, chrome_trace_events, emit_vmpi
from .metrics import Histogram, MetricsRegistry
from .schema import validate_event
from .spans import ManualClock, Tracer, use_tracer


class _FakeRankTrace:
    def __init__(self, compute: dict, comm: dict):
        self.compute = compute
        self.comm = comm


class _FakeSpmd:
    def __init__(self, traces: list):
        self.traces = traces


def _check(condition: bool, what: str, failures: list[str]) -> None:
    if not condition:
        failures.append(what)


def run_selfcheck() -> list[str]:
    """Run every check; returns the list of failures (empty = OK)."""
    failures: list[str] = []

    # 1. span nesting, attributes, manual clock
    clock = ManualClock(tick=1.0)
    tracer = Tracer(clock=clock)
    with tracer.span("outer", kind="demo") as outer:
        with tracer.span("inner") as inner:
            inner.set(status="ok")
        outer.set(status="ok")
    spans = tracer.finished()
    _check(len(spans) == 2, "two spans recorded", failures)
    _check(spans[0].name == "inner" and spans[1].name == "outer",
           "inner span finishes first", failures)
    _check(spans[0].parent_id == spans[1].span_id,
           "inner span parented to outer", failures)
    _check(spans[1].end > spans[1].start, "manual clock advances", failures)

    # 2. cross-thread isolation of the active-span stack
    def other_thread() -> None:
        with tracer.span("thread-root"):
            pass

    worker = threading.Thread(target=other_thread)
    worker.start()
    worker.join()
    root = [s for s in tracer.finished() if s.name == "thread-root"][0]
    _check(root.parent_id is None, "thread spans do not inherit "
           "another thread's stack", failures)
    _check(root.thread != spans[0].thread,
           "threads get distinct export lanes", failures)

    # 3. ambient-tracer scoping
    scoped = Tracer(clock=ManualClock(tick=1.0))
    with use_tracer(scoped) as ambient:
        with ambient.span("scoped"):
            pass
    _check(len(scoped.finished()) == 1, "use_tracer scopes the ambient "
           "tracer", failures)

    # 4. metrics semantics incl. histogram boundaries
    registry = MetricsRegistry()
    registry.counter("tasks_total", status="ok").inc(3)
    registry.gauge("fom_seconds", benchmark="demo").set(1.5)
    hist = Histogram(buckets=(0.1, 1.0, 10.0))
    for value, bucket in ((0.1, 0), (0.100001, 1), (1.0, 1), (10.0, 2),
                          (10.5, 3)):
        before = list(hist.counts)
        hist.observe(value)
        _check(hist.counts[bucket] == before[bucket] + 1,
               f"histogram boundary: {value} -> bucket {bucket}", failures)
    snap = registry.snapshot()
    _check(snap["counters"]["tasks_total{status=ok}"] == 3.0,
           "counter snapshot", failures)
    delta = MetricsRegistry.delta(snap, registry.snapshot())
    _check(delta["counters"]["tasks_total{status=ok}"] == 0.0,
           "snapshot delta", failures)

    # 5. JSONL sink round-trip + schema validation
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    tracer2 = Tracer(clock=ManualClock(tick=0.5))
    tracer2.subscribe(sink)
    with tracer2.span("task:demo", kind="task", index=0, label="demo",
                      status="ok", cache="off", attempts=1):
        pass
    emit_vmpi(tracer2, "Demo", 1,
              _FakeSpmd([_FakeRankTrace({"step": 2.0}, {"halo": 1.0}),
                         _FakeRankTrace({"step": 2.1}, {"halo": 0.9})]))
    lines = [line for line in buffer.getvalue().splitlines() if line]
    _check(len(lines) == 1 + 1 + 4, "sink wrote meta + span + 4 vmpi "
           "lines", failures)
    try:
        events = [validate_event(json.loads(line)) for line in lines]
    except ValueError as exc:
        failures.append(f"schema round-trip: {exc}")
        events = []

    # 6. Chrome export shape: ranks as tids, compute/comm slices
    if events:
        chrome = chrome_trace_events(tracer2.finished(), tracer2.events())
        slices = [e for e in chrome if e.get("ph") == "X"]
        rank_tids = {e["tid"] for e in slices if e["pid"] >= 100}
        cats = {e["cat"] for e in slices if e["pid"] >= 100}
        _check(rank_tids == {0, 1}, "vmpi ranks map to tids", failures)
        _check(cats == {"compute", "comm"},
               "compute and comm slices present", failures)
        _check(all(e["dur"] >= 0 and e["ts"] >= 0 for e in slices),
               "chrome slices have sane timestamps", failures)

    return failures


def main() -> int:
    failures = run_selfcheck()
    if failures:
        for what in failures:
            print(f"telemetry selfcheck: FAIL -- {what}")
        return 1
    print("telemetry selfcheck: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
