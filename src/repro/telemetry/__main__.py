"""``python -m repro.telemetry FILE...`` -- validate JSONL traces.

Thin entry point around :func:`repro.telemetry.schema.main`; running
the package (rather than the submodule) avoids the runpy double-import
warning in CI pipelines.
"""

from __future__ import annotations

import sys

from .schema import main

sys.exit(main())
