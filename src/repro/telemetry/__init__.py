"""Observability for the suite: spans, metrics and trace export.

The paper's methodology is built on *seeing into* runs -- Fig. 3
separates JUQCS computation from communication, Sec. IV-A2a quotes
Arbor cost-centre percentages, and the JUBE workflow exists so every
run is inspectable.  This package is that capability for the
reproduction, threaded through every layer:

* :mod:`repro.telemetry.spans` -- hierarchical, thread-safe spans with
  context-manager/decorator APIs and injectable clocks; the execution
  engine, JUBE runtime, suite drivers and continuous-benchmarking loop
  all emit them, and process-pool workers ship span batches back with
  their outcomes;
* :mod:`repro.telemetry.metrics` -- counters, gauges and fixed-bucket
  histograms with label sets and snapshot/delta views;
* :mod:`repro.telemetry.export` -- a crash-safe JSONL event sink and a
  Chrome ``trace_event`` exporter that renders virtual-MPI ranks as
  per-rank compute/comm timelines (Perfetto-ready);
* :mod:`repro.telemetry.schema` -- the JSONL event schema shared with
  ``RunJournal.to_jsonl`` (validated by CI);
* :mod:`repro.telemetry.report` -- offline re-rendering of a saved
  trace (``jubench report``);
* :mod:`repro.telemetry.selfcheck` -- a fast end-to-end check
  (``python -m repro.telemetry.selfcheck``).

Everything is zero-dependency and no-op-cheap when disabled: the
ambient tracer defaults to :data:`~repro.telemetry.spans.NULL_TRACER`.
"""

from .export import JsonlSink, chrome_trace_events, emit_vmpi, \
    write_chrome_trace
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    render_snapshot,
    set_default_registry,
)
from .schema import SchemaError, meta_event, read_events, validate_event, \
    validate_file
from .spans import (
    NULL_TRACER,
    ManualClock,
    SpanRecord,
    Tracer,
    current_tracer,
    install_tracer,
    span_rollup,
    traced,
    use_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ManualClock",
    "MetricsRegistry",
    "NULL_TRACER",
    "SchemaError",
    "SpanRecord",
    "Tracer",
    "chrome_trace_events",
    "current_tracer",
    "default_registry",
    "emit_vmpi",
    "install_tracer",
    "meta_event",
    "read_events",
    "render_snapshot",
    "set_default_registry",
    "span_rollup",
    "traced",
    "use_tracer",
    "validate_event",
    "validate_file",
    "write_chrome_trace",
]
