"""Offline rendering of a saved JSONL trace (``jubench report``).

Reads a trace written by :class:`~repro.telemetry.export.JsonlSink`
(or ``RunJournal.to_jsonl``) and reproduces, without re-running
anything:

* the run-journal summary (rebuilt from engine task spans / task
  events),
* a per-benchmark *cost-centre table* aggregating the virtual-MPI
  compute/comm buckets across ranks -- the Sec. IV-A2a presentation
  ("52 % ion channels, 33 % cable equation") for every traced run,
* the metrics report, when a ``metrics`` snapshot event is present.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from .metrics import render_snapshot
from .schema import read_events


def journal_from_events(events: Iterable[dict[str, Any]]) -> Any:
    """Rebuild a :class:`~repro.exec.journal.RunJournal` from a trace.

    Accepts both bare ``task`` events and spans carrying
    ``attrs.kind == "task"`` (the engine's native form).
    """
    from ..exec.journal import RunJournal, TaskRecord  # no import cycle

    journal = RunJournal()
    for event in events:
        if event["type"] == "task":
            fields, started, finished = (event, event["started"],
                                         event["finished"])
        elif event["type"] == "span" and \
                event["attrs"].get("kind") == "task":
            fields, started, finished = (event["attrs"], event["start"],
                                         event["end"])
        else:
            continue
        journal.append(TaskRecord(
            index=int(fields["index"]), label=str(fields["label"]),
            status=str(fields["status"]), cache=str(fields["cache"]),
            attempts=int(fields["attempts"]), started=float(started),
            finished=float(finished), key=fields.get("key"),
            error=fields.get("error")))
    return journal


def cost_centre_table(events: Iterable[dict[str, Any]]) -> str:
    """Aggregate vmpi events into per-benchmark cost centres."""
    # (benchmark, run) -> bucket -> label -> seconds summed over ranks
    runs: dict[tuple[str, int], dict[str, dict[str, float]]] = {}
    nodes: dict[tuple[str, int], int] = {}
    nranks: dict[tuple[str, int], set[int]] = defaultdict(set)
    for event in events:
        if event["type"] != "vmpi":
            continue
        key = (event["benchmark"], int(event.get("run", 1)))
        table = runs.setdefault(key, {"compute": defaultdict(float),
                                      "comm": defaultdict(float)})
        table[event["bucket"]][event["label"]] += event["seconds"]
        nodes[key] = event["nodes"]
        nranks[key].add(event["rank"])
    if not runs:
        return ""
    lines = ["cost centres (virtual-MPI, summed over ranks)"]
    for key in sorted(runs):
        bench, run = key
        suffix = f" #{run}" if run > 1 else ""
        table = runs[key]
        total = sum(sum(t.values()) for t in table.values())
        lines.append(f"  {bench}{suffix} -- {nodes[key]} nodes, "
                     f"{len(nranks[key])} ranks")
        for bucket in ("compute", "comm"):
            for label, seconds in sorted(table[bucket].items(),
                                         key=lambda kv: -kv[1]):
                share = 100.0 * seconds / total if total > 0 else 0.0
                lines.append(f"    {bucket:<8} {label:<24} "
                             f"{seconds:12.3f} s  {share:5.1f} %")
    return "\n".join(lines)


def render_report(path: Any) -> str:
    """The full offline report of one JSONL trace file."""
    events = list(read_events(path))
    sections: list[str] = []
    journal = journal_from_events(events)
    if len(journal):
        sections.append(journal.summary())
    costs = cost_centre_table(events)
    if costs:
        sections.append(costs)
    snapshots = [e["snapshot"] for e in events if e["type"] == "metrics"]
    if snapshots:
        sections.append(render_snapshot(snapshots[-1]))
    if not sections:
        sections.append(f"{path}: no journal, vmpi or metrics events "
                        f"({len(events)} events total)")
    return "\n\n".join(sections)
