"""Hierarchical spans: the suite's structured timing backbone.

A :class:`Tracer` records *spans* -- named, attributed time intervals
forming a tree -- the way the paper's analyses need them: one span per
benchmark, per scaling point, per JUBE workunit, per engine task and
attempt.  Downstream, the span stream feeds the run journal, the JSONL
event sink and the Chrome ``trace_event`` exporter (Perfetto).

Design constraints (all load-bearing):

* **thread-safe** -- the execution engine finishes tasks from many
  worker threads; the active-span stack is thread-local, the finished
  list is lock-protected, and thread identities map to small stable
  indices for export;
* **deterministic** -- the clock is injected (:class:`ManualClock` in
  tests), so golden traces are byte-stable;
* **cheap when off** -- :data:`NULL_TRACER` is a shared no-op whose
  ``span()`` returns a reusable null context manager (no allocation on
  the hot path);
* **process-portable** -- :class:`SpanRecord` is a plain picklable
  dataclass, so process-pool workers ship their span batches back to
  the parent, which :meth:`Tracer.graft`\\ s them (rebasing clocks)
  under the task span.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass
class SpanRecord:
    """One finished span: a named interval in the trace tree."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    thread: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_event(self) -> dict[str, Any]:
        """The span's JSONL schema representation (``type: span``)."""
        return {"type": "span", "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "start": self.start, "end": self.end,
                "thread": self.thread, "attrs": dict(self.attrs)}


class _SpanHandle:
    """The object a ``with tracer.span(...)`` block binds; mutate
    attributes mid-span via :meth:`set` (e.g. status after the fact)."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "start", "thread")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, start: float, thread: int,
                 attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.thread = thread
        self.attrs = attrs

    def set(self, **attrs: Any) -> "_SpanHandle":
        self.attrs.update(attrs)
        return self


class _NullHandle:
    """Shared no-op context manager for disabled tracers."""

    __slots__ = ()
    span_id = 0
    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NullHandle":
        return self

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Collects a tree of spans plus out-of-band telemetry events.

    ``clock`` is any zero-argument callable returning monotonic
    seconds; subscribers (duck-typed: optional ``on_span(SpanRecord)``
    and ``on_event(dict)`` methods) observe the stream as it happens,
    which is how the run journal and the JSONL sink attach.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 *, enabled: bool = True):
        self.clock = clock
        self.enabled = enabled
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_id = 0
        self._spans: list[SpanRecord] = []
        self._events: list[dict[str, Any]] = []
        self._subscribers: list[Any] = []
        self._threads: dict[int, int] = {}

    # -- identity helpers ---------------------------------------------------

    def now(self) -> float:
        return self.clock()

    def _new_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def thread_index(self, ident: int | None = None) -> int:
        """Small, stable index of a thread (export tids).

        First-seen order; ``ident`` defaults to the calling thread.
        """
        if ident is None:
            ident = threading.get_ident()
        with self._lock:
            if ident not in self._threads:
                self._threads[ident] = len(self._threads)
            return self._threads[ident]

    def _stack(self) -> list[_SpanHandle]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_span_id(self) -> int | None:
        """Id of this thread's innermost open span (or None)."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span as a context manager (nested per thread)."""
        if not self.enabled:
            return _NULL_HANDLE
        return _OpenSpan(self, name, attrs)

    def add_span(self, name: str, start: float, end: float, *,
                 attrs: dict[str, Any] | None = None,
                 parent_id: int | None = None,
                 thread: int | None = None) -> int:
        """Record an already-finished span (retroactive instrumentation).

        The parent defaults to the calling thread's innermost open
        span, so retroactive spans still land in the right subtree.
        """
        if not self.enabled:
            return 0
        if parent_id is None:
            parent_id = self.current_span_id()
        if thread is None:
            thread = self.thread_index()
        record = SpanRecord(span_id=self._new_id(), parent_id=parent_id,
                            name=name, start=start, end=end, thread=thread,
                            attrs=dict(attrs or {}))
        self._finish(record)
        return record.span_id

    def graft(self, records: list[SpanRecord], *, offset: float = 0.0,
              parent_id: int | None = None,
              thread: int | None = None) -> None:
        """Adopt spans recorded by another tracer (e.g. a worker).

        Span ids are remapped into this tracer's id space, times are
        shifted by ``offset`` (clock rebasing across processes), root
        spans re-parent onto ``parent_id``, and -- when ``thread`` is
        given -- all spans move onto that export thread lane.
        """
        if not self.enabled or not records:
            return
        mapping: dict[int, int] = {}
        for rec in records:
            mapping[rec.span_id] = self._new_id()
        for rec in records:
            parent = mapping.get(rec.parent_id) if rec.parent_id else None
            if parent is None:
                parent = parent_id
            self._finish(SpanRecord(
                span_id=mapping[rec.span_id], parent_id=parent,
                name=rec.name, start=rec.start + offset,
                end=rec.end + offset,
                thread=rec.thread if thread is None else thread,
                attrs=dict(rec.attrs)))

    def emit(self, event: dict[str, Any]) -> None:
        """Record an out-of-band telemetry event (vmpi, metrics, ...)."""
        if not self.enabled:
            return
        with self._lock:
            self._events.append(event)
            subscribers = list(self._subscribers)
        for sub in subscribers:
            on_event = getattr(sub, "on_event", None)
            if on_event is not None:
                on_event(event)

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)
            subscribers = list(self._subscribers)
        for sub in subscribers:
            on_span = getattr(sub, "on_span", None)
            if on_span is not None:
                on_span(record)

    # -- consumption --------------------------------------------------------

    def subscribe(self, sink: Any) -> None:
        """Attach a consumer (``on_span``/``on_event`` duck type)."""
        with self._lock:
            if sink not in self._subscribers:
                self._subscribers.append(sink)

    def finished(self) -> list[SpanRecord]:
        """Finished spans in completion order (a copy)."""
        with self._lock:
            return list(self._spans)

    def events(self) -> list[dict[str, Any]]:
        """Out-of-band events in emission order (a copy)."""
        with self._lock:
            return list(self._events)

    def roots(self) -> list[SpanRecord]:
        ids = {s.span_id for s in self.finished()}
        return [s for s in self.finished()
                if s.parent_id is None or s.parent_id not in ids]

    def children(self, span_id: int) -> list[SpanRecord]:
        return [s for s in self.finished() if s.parent_id == span_id]


def span_rollup(spans: list[SpanRecord]) -> dict[str, dict[str, float]]:
    """Aggregate finished spans by name into per-name totals.

    Returns ``name -> {"count": n, "seconds": total}`` -- the rollup
    the performance-history plane stamps into run records.  Counts are
    a pure function of what ran (deterministic across worker counts);
    the summed seconds inherit whatever clock the tracer used.
    """
    out: dict[str, dict[str, float]] = {}
    for span in spans:
        entry = out.setdefault(span.name, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += span.duration
    return out


class _OpenSpan:
    """Context manager driving one live span on a tracer."""

    __slots__ = ("_tracer", "_handle", "_name", "_attrs")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._handle: _SpanHandle | None = None

    def __enter__(self) -> _SpanHandle:
        tracer = self._tracer
        stack = tracer._stack()
        parent = stack[-1].span_id if stack else None
        handle = _SpanHandle(tracer, self._name, tracer._new_id(), parent,
                             tracer.now(), tracer.thread_index(),
                             self._attrs)
        stack.append(handle)
        self._handle = handle
        return handle

    def __exit__(self, exc_type: Any, exc: Any, _tb: Any) -> None:
        tracer = self._tracer
        handle = self._handle
        stack = tracer._stack()
        # Pop exactly this handle; tolerate (and repair) leaked children.
        while stack and stack[-1] is not handle:
            stack.pop()
        if stack:
            stack.pop()
        if exc is not None and "error" not in handle.attrs:
            handle.attrs["error"] = f"{exc_type.__name__}: {exc}"
        tracer._finish(SpanRecord(
            span_id=handle.span_id, parent_id=handle.parent_id,
            name=handle.name, start=handle.start, end=tracer.now(),
            thread=handle.thread, attrs=handle.attrs))


#: The shared disabled tracer: every operation is a cheap no-op.
NULL_TRACER = Tracer(enabled=False)

_GLOBAL: Tracer = NULL_TRACER
_TLS = threading.local()


def current_tracer() -> Tracer:
    """The ambient tracer: thread-local override, else the global one.

    Defaults to :data:`NULL_TRACER`, so instrumented code paths cost
    nothing unless a tracer is installed (CLI ``--trace-out``) or
    scoped in (:func:`use_tracer`, engine workers).
    """
    tracer = getattr(_TLS, "tracer", None)
    return tracer if tracer is not None else _GLOBAL


def install_tracer(tracer: Tracer | None) -> None:
    """Install (or with ``None`` remove) the process-global tracer."""
    global _GLOBAL
    # repro: allow(LCK201): atomic reference swap; readers see old or new
    _GLOBAL = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Thread-locally scope the ambient tracer to ``tracer``."""
    previous = getattr(_TLS, "tracer", None)
    _TLS.tracer = tracer
    try:
        yield tracer
    finally:
        _TLS.tracer = previous


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator: run the function inside a span on the ambient tracer."""
    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with current_tracer().span(label, **attrs):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


class ManualClock:
    """Deterministic injectable clock for tests and golden traces."""

    def __init__(self, start: float = 0.0, tick: float = 0.0):
        self._now = float(start)
        #: seconds auto-advanced per reading (0 = fully manual)
        self.tick = float(tick)
        self._lock = threading.Lock()

    def advance(self, seconds: float) -> float:
        with self._lock:
            self._now += seconds
            return self._now

    def __call__(self) -> float:
        with self._lock:
            now = self._now
            self._now += self.tick
            return now
