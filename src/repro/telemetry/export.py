"""Telemetry exporters: JSONL event sink and Chrome ``trace_event``.

Two output formats, chosen by file extension at the CLI:

* ``*.jsonl`` -- a streaming, append-per-event sink
  (:class:`JsonlSink`): every span/event is written and flushed the
  moment it finishes, so a crashed run still leaves a readable trace
  up to the crash point.  ``jubench report`` re-renders it offline.
* ``*.json`` -- the Chrome ``trace_event`` format
  (:func:`write_chrome_trace`), loadable in Perfetto or
  ``chrome://tracing``: suite/engine spans render as nested slices on
  their worker-thread lanes, and every virtual-MPI run renders as its
  own process with one *thread per rank*, whose compute/comm cost
  buckets (:class:`~repro.vmpi.trace.RankTrace`) become per-rank
  timeline slices -- the Fig. 3 computation/communication split,
  zoomable.
"""

from __future__ import annotations

import json
import threading
from typing import Any, TextIO

from .schema import meta_event
from .spans import SpanRecord, Tracer

#: Chrome pid of the suite/engine span timeline.
SUITE_PID = 1
#: First pid used for virtual-MPI rank timelines (one pid per run).
VMPI_PID_BASE = 100


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


class JsonlSink:
    """Append-per-event JSONL writer (crash-safe, thread-safe).

    Subscribe it to a tracer: ``tracer.subscribe(JsonlSink(path))``.
    Each event is one JSON line, flushed immediately.
    """

    def __init__(self, path_or_file: Any):
        self._lock = threading.Lock()
        if hasattr(path_or_file, "write"):
            self._fh: TextIO = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        self.path = getattr(self._fh, "name", None)
        self.emit(meta_event())

    def emit(self, event: dict[str, Any]) -> None:
        line = json.dumps(_json_safe(event), sort_keys=True,
                          separators=(",", ":"))
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    # tracer subscriber protocol ------------------------------------------
    def on_span(self, record: SpanRecord) -> None:
        self.emit(record.to_event())

    def on_event(self, event: dict[str, Any]) -> None:
        self.emit(event)

    def close(self) -> None:
        with self._lock:
            if self._owns and not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def emit_vmpi(tracer: Tracer, benchmark: str, nodes: int,
              spmd: Any) -> None:
    """Emit one ``vmpi`` event per rank x cost bucket of an SPMD run.

    ``spmd`` is a :class:`~repro.vmpi.trace.SpmdResult` (duck-typed:
    only ``.traces`` with ``compute``/``comm`` label buckets is read).
    Events carry a per-benchmark ``run`` ordinal so repeated runs (a
    scaling sweep) render as separate rank timelines.
    """
    if not tracer.enabled:
        return
    run = 1 + max((e.get("run", 1) for e in tracer.events()
                   if e.get("type") == "vmpi"
                   and e.get("benchmark") == benchmark), default=0)
    for rank, trace in enumerate(spmd.traces):
        for bucket, table in (("compute", trace.compute),
                              ("comm", trace.comm)):
            for label, seconds in sorted(table.items()):
                tracer.emit({"type": "vmpi", "benchmark": benchmark,
                             "nodes": int(nodes), "rank": rank,
                             "run": run, "bucket": bucket, "label": label,
                             "seconds": float(seconds)})


def reemit_events(tracer: Tracer, events: list[dict[str, Any]]) -> None:
    """Adopt out-of-band events recorded by a worker-side tracer.

    vmpi run ordinals are local to the worker's collector (each task
    starts counting at 1); remap them onto fresh per-benchmark
    ordinals in the parent tracer so sweep points keep distinct rank
    timelines.
    """
    if not tracer.enabled:
        return
    remap: dict[tuple[str, int], int] = {}
    next_run: dict[str, int] = {}
    for event in events:
        if event.get("type") == "vmpi":
            key = (event["benchmark"], int(event.get("run", 1)))
            if key not in remap:
                if key[0] not in next_run:
                    next_run[key[0]] = 1 + max(
                        (e.get("run", 1) for e in tracer.events()
                         if e.get("type") == "vmpi"
                         and e.get("benchmark") == key[0]), default=0)
                remap[key] = next_run[key[0]]
                next_run[key[0]] += 1
            event = dict(event, run=remap[key])
        tracer.emit(event)


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def chrome_trace_events(spans: list[SpanRecord],
                        events: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Translate spans + vmpi events into ``trace_event`` dicts.

    Spans become complete ("X") slices on ``pid=SUITE_PID`` with their
    recorded thread lane as tid; each distinct (benchmark, occurrence)
    group of vmpi events becomes its own process whose tids are the
    MPI ranks, slices laid out back-to-back in virtual time per rank.
    """
    out: list[dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": SUITE_PID, "tid": 0,
         "args": {"name": "jubench suite"}},
    ]
    threads = sorted({s.thread for s in spans})
    for tid in threads:
        out.append({"ph": "M", "name": "thread_name", "pid": SUITE_PID,
                    "tid": tid,
                    "args": {"name": "main" if tid == 0
                             else f"worker-{tid}"}})
    for span in spans:
        out.append({
            "ph": "X", "name": span.name, "cat": "span",
            "pid": SUITE_PID, "tid": span.thread,
            "ts": span.start * 1e6,
            "dur": max(span.end - span.start, 0.0) * 1e6,
            "args": _json_safe(span.attrs),
        })

    # vmpi rank timelines: one pid per SPMD run, one tid per rank.
    runs: dict[tuple[str, int], int] = {}        # (benchmark, run) -> pid
    cursors: dict[tuple[int, int], float] = {}   # (pid, rank) -> virtual t
    for event in events:
        if event.get("type") != "vmpi":
            continue
        bench = event["benchmark"]
        key = (bench, int(event.get("run", 1)))
        if key not in runs:
            pid = VMPI_PID_BASE + len(runs)
            runs[key] = pid
            suffix = f" #{key[1]}" if key[1] > 1 else ""
            out.append({"ph": "M", "name": "process_name", "pid": pid,
                        "tid": 0,
                        "args": {"name": f"vmpi:{bench}{suffix} "
                                 f"({event['nodes']} nodes)"}})
        pid = runs[key]
        rank = event["rank"]
        if (pid, rank) not in cursors:
            cursors[(pid, rank)] = 0.0
            out.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": rank, "args": {"name": f"rank {rank}"}})
        start = cursors[(pid, rank)]
        cursors[(pid, rank)] = start + event["seconds"]
        out.append({
            "ph": "X", "name": event["label"], "cat": event["bucket"],
            "pid": pid, "tid": rank, "ts": start * 1e6,
            "dur": event["seconds"] * 1e6,
            "args": {"bucket": event["bucket"],
                     "benchmark": bench},
        })
    return out


def write_chrome_trace(path: Any, tracer: Tracer) -> int:
    """Write the tracer's retained spans + events as a Chrome trace.

    Returns the number of ``trace_event`` entries written.
    """
    trace = {
        "traceEvents": chrome_trace_events(tracer.finished(),
                                           tracer.events()),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry",
                      "schema": "chrome trace_event"},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, sort_keys=True)
        fh.write("\n")
    return len(trace["traceEvents"])
