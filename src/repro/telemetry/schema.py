"""The telemetry JSONL event schema (shared with the run journal).

One JSON object per line; the first line is a ``meta`` header.  Event
types:

``meta``
    ``{"type": "meta", "version": 1, "schema": "repro.telemetry/v1"}``
``span``
    A finished span: ``span_id``/``parent_id`` tree links, ``name``,
    ``start``/``end`` (tracer-clock seconds), ``thread`` (export lane)
    and free-form ``attrs``.  Engine task spans carry
    ``attrs.kind == "task"`` and the journal's bookkeeping fields.
``task``
    A bare run-journal record (``RunJournal.to_jsonl``); same fields
    as a task span's attrs plus ``started``/``finished``.
``vmpi``
    One virtual-MPI cost bucket: ``benchmark``, ``nodes``, ``rank``,
    ``bucket`` ("compute" | "comm"), ``label`` and virtual ``seconds``.
``metrics``
    A full metrics-registry ``snapshot``.
``fault``
    One injected fault firing (``repro.faults``): ``category``
    ("task" | "node" | "link" | "straggler" | "breaker"), ``target``
    (task label / ``node:N`` / link class), ``action`` and the
    tracer-clock time ``at``.
``service``
    One control-plane decision (``repro.service``): ``action``
    (submit / reject / dispatch / requeue / lost / crash / restore /
    cancel / complete / register), ``target`` (task id or endpoint id)
    and the service-clock time ``at``.

:func:`validate_event` / :func:`validate_file` enforce this shape; the
CI smoke job runs ``python -m repro.telemetry.schema trace.jsonl``.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

SCHEMA_VERSION = 1
SCHEMA_NAME = "repro.telemetry/v1"

_NUMBER = (int, float)

#: required fields per event type: name -> allowed types
_REQUIRED: dict[str, dict[str, tuple[type, ...]]] = {
    "meta": {"version": (int,), "schema": (str,)},
    "span": {"span_id": (int,), "parent_id": (int, type(None)),
             "name": (str,), "start": _NUMBER, "end": _NUMBER,
             "thread": (int,), "attrs": (dict,)},
    "task": {"index": (int,), "label": (str,), "status": (str,),
             "cache": (str,), "attempts": (int,), "started": _NUMBER,
             "finished": _NUMBER},
    "vmpi": {"benchmark": (str,), "nodes": (int,), "rank": (int,),
             "bucket": (str,), "label": (str,), "seconds": _NUMBER},
    "metrics": {"snapshot": (dict,)},
    "fault": {"category": (str,), "target": (str,), "action": (str,),
              "at": _NUMBER},
    "service": {"action": (str,), "target": (str,), "at": _NUMBER},
}

_TASK_STATUSES = ("ok", "error")
_CACHE_STATES = ("hit", "miss", "off")
_VMPI_BUCKETS = ("compute", "comm")
_FAULT_CATEGORIES = ("task", "node", "link", "straggler", "breaker")
_SERVICE_ACTIONS = ("register", "submit", "reject", "dispatch", "requeue",
                    "lost", "crash", "restore", "cancel", "complete")


class SchemaError(ValueError):
    """A telemetry event violates the JSONL schema."""


def meta_event() -> dict[str, Any]:
    """The header line every sink writes first."""
    return {"type": "meta", "version": SCHEMA_VERSION,
            "schema": SCHEMA_NAME}


def validate_event(obj: Any) -> dict[str, Any]:
    """Check one event against the schema; returns it, or raises
    :class:`SchemaError` with an actionable message."""
    if not isinstance(obj, dict):
        raise SchemaError(f"event must be an object, got {type(obj).__name__}")
    etype = obj.get("type")
    if etype not in _REQUIRED:
        raise SchemaError(f"unknown event type {etype!r}; "
                          f"expected one of {sorted(_REQUIRED)}")
    for name, types in _REQUIRED[etype].items():
        if name not in obj:
            raise SchemaError(f"{etype} event missing field {name!r}")
        if not isinstance(obj[name], types) or (
                isinstance(obj[name], bool) and bool not in types):
            raise SchemaError(
                f"{etype} event field {name!r} has type "
                f"{type(obj[name]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}")
    if etype == "span":
        if obj["end"] < obj["start"]:
            raise SchemaError(f"span {obj['name']!r} ends before it starts")
        kind = obj["attrs"].get("kind")
        if kind == "task":
            _validate_task_fields(obj["attrs"], where="task span attrs")
    elif etype == "task":
        _validate_task_fields(obj, where="task event")
        if obj["finished"] < obj["started"]:
            raise SchemaError("task event finishes before it starts")
    elif etype == "vmpi":
        if obj["bucket"] not in _VMPI_BUCKETS:
            raise SchemaError(f"vmpi bucket {obj['bucket']!r} not in "
                              f"{_VMPI_BUCKETS}")
        if obj["seconds"] < 0 or obj["rank"] < 0:
            raise SchemaError("vmpi event with negative rank/seconds")
    elif etype == "fault":
        if obj["category"] not in _FAULT_CATEGORIES:
            raise SchemaError(f"fault category {obj['category']!r} not in "
                              f"{_FAULT_CATEGORIES}")
    elif etype == "service":
        if obj["action"] not in _SERVICE_ACTIONS:
            raise SchemaError(f"service action {obj['action']!r} not in "
                              f"{_SERVICE_ACTIONS}")
        if obj["at"] < 0:
            raise SchemaError("service event with negative time")
    elif etype == "meta" and obj["schema"] != SCHEMA_NAME:
        raise SchemaError(f"unsupported schema {obj['schema']!r}; "
                          f"this reader understands {SCHEMA_NAME!r}")
    return obj


def _validate_task_fields(fields: dict[str, Any], *, where: str) -> None:
    status = fields.get("status")
    if status not in _TASK_STATUSES:
        raise SchemaError(f"{where}: status {status!r} not in "
                          f"{_TASK_STATUSES}")
    cache = fields.get("cache")
    if cache not in _CACHE_STATES:
        raise SchemaError(f"{where}: cache {cache!r} not in {_CACHE_STATES}")
    if status == "error" and not fields.get("error"):
        raise SchemaError(f"{where}: error status without an error string")


def read_events(path: Any) -> Iterator[dict[str, Any]]:
    """Yield validated events from a JSONL trace file."""
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{lineno}: not JSON: {exc}") from exc
            try:
                yield validate_event(obj)
            except SchemaError as exc:
                raise SchemaError(f"{path}:{lineno}: {exc}") from exc


def validate_file(path: Any) -> dict[str, int]:
    """Validate a whole trace; returns per-type event counts."""
    counts: dict[str, int] = {}
    for event in read_events(path):
        counts[event["type"]] = counts.get(event["type"], 0) + 1
    if not counts:
        raise SchemaError(f"{path}: empty trace")
    if "meta" not in counts:
        raise SchemaError(f"{path}: missing meta header line")
    return counts


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.telemetry.schema TRACE.jsonl [...]``"""
    import sys
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.telemetry.schema TRACE.jsonl [...]")
        return 2
    for path in paths:
        counts = validate_file(path)
        total = sum(counts.values())
        detail = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"{path}: OK -- {total} events ({detail})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
