"""Counters, gauges and fixed-bucket histograms with label sets.

The quantitative half of :mod:`repro.telemetry`: the execution engine
counts tasks/retries/cache hits and observes task latencies, the suite
gauges per-benchmark FOMs, and the CLI ``--metrics`` flag renders the
registry as a plain-text report.  Prometheus-like data model, zero
dependencies:

* instruments are identified by ``(name, sorted label items)``;
  :meth:`MetricsRegistry.counter` & co. get-or-create atomically,
* every update takes the instrument's own lock (safe under the thread
  backend's concurrency),
* :meth:`MetricsRegistry.snapshot` returns a plain-dict view and
  :meth:`MetricsRegistry.delta` diffs two snapshots -- the API the
  incremental tests and the continuous-benchmarking loop use.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

#: Default histogram bucket upper bounds (seconds); +inf is implicit.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   50.0, 100.0)


def _series(name: str, labels: dict[str, Any]) -> str:
    """Canonical series key, e.g. ``tasks_total{cache=hit,status=ok}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing value."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value (set or adjusted)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets, ``le`` semantics).

    ``observe(v)`` lands in the first bucket with ``v <= bound``; values
    above the last bound land in the implicit +inf bucket.
    """

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted and non-empty")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be distinct")
        self.bounds = bounds
        self._lock = threading.Lock()
        self.counts = [0] * (len(bounds) + 1)   # last = +inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Thread-safe instrument registry with snapshot/delta views."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access (get-or-create) ----------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _series(name, labels)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter()
            return self._counters[key]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _series(name, labels)
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge()
            return self._gauges[key]

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        key = _series(name, labels)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram(buckets)
            hist = self._histograms[key]
        if tuple(float(b) for b in buckets) != hist.bounds:
            raise ValueError(
                f"histogram {key!r} re-registered with different buckets")
        return hist

    # -- views ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict state of every instrument (JSON-safe)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {
                k: {"bounds": list(h.bounds), "counts": list(h.counts),
                    "sum": h.sum, "count": h.count}
                for k, h in sorted(histograms.items())},
        }

    @staticmethod
    def delta(before: dict[str, Any], after: dict[str, Any]
              ) -> dict[str, Any]:
        """Difference of two snapshots (counters/histograms subtract,
        gauges report the later value)."""
        out: dict[str, Any] = {"counters": {}, "gauges": {},
                               "histograms": {}}
        for key, value in after["counters"].items():
            out["counters"][key] = value - before["counters"].get(key, 0.0)
        out["gauges"] = dict(after["gauges"])
        for key, hist in after["histograms"].items():
            prev = before["histograms"].get(
                key, {"counts": [0] * len(hist["counts"]), "sum": 0.0,
                      "count": 0})
            out["histograms"][key] = {
                "bounds": list(hist["bounds"]),
                "counts": [a - b for a, b in zip(hist["counts"],
                                                 prev["counts"])],
                "sum": hist["sum"] - prev["sum"],
                "count": hist["count"] - prev["count"],
            }
        return out

    def render(self) -> str:
        """Plain-text metrics report (the ``--metrics`` output)."""
        return render_snapshot(self.snapshot())


def render_snapshot(snap: dict[str, Any]) -> str:
    """Render a snapshot (live or loaded from a trace) as text."""
    lines = ["metrics report"]
    for key, value in snap["counters"].items():
        lines.append(f"  counter   {key:<44} {value:g}")
    for key, value in snap["gauges"].items():
        lines.append(f"  gauge     {key:<44} {value:g}")
    for key, hist in snap["histograms"].items():
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        lines.append(f"  histogram {key:<44} count={hist['count']} "
                     f"mean={mean:.6g}s")
        for bound, count in zip(list(hist["bounds"]) + ["+inf"],
                                hist["counts"]):
            if count:
                label = bound if isinstance(bound, str) else f"{bound:g}"
                lines.append(f"              le={label:<8} {count}")
    if len(lines) == 1:
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)


_DEFAULT = MetricsRegistry()
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The shared process-wide registry (CLI and engine default)."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the shared registry (tests); returns the previous one."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        previous, _DEFAULT = _DEFAULT, registry
    return previous
