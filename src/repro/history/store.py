"""The append-only, content-addressed history database.

A :class:`HistoryStore` accumulates :class:`~repro.history.record.RunRecord`
entries -- in memory, or durably as one JSONL file whose first line is
a schema meta header and every further line one record.  Records are
never mutated or deleted in place (append-only); the only rewriting
operation is explicit :meth:`compact`, which applies the documented
retention rule (keep the last N points per series) and writes a fresh
file.

Determinism contract: :meth:`canonical_export` depends only on the
*set* of appended records and their per-series order -- records are
sorted by ``(series_key, seq, record_key)`` and volatile fields are
dropped -- so a run appended via 8 engine workers, a serial replay and
a warm-cache rerun all export byte-identical documents (the CI
``history`` job compares them with ``cmp``).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Callable, Iterable

from .record import HISTORY_SCHEMA, HISTORY_VERSION, RunRecord


class HistoryError(ValueError):
    """A history database file violates the schema."""


def _meta_line() -> dict[str, Any]:
    meta = {"type": "history-meta", "schema": HISTORY_SCHEMA,
            "version": HISTORY_VERSION}
    return meta


class HistoryStore:
    """Append-only run database with per-series sequence numbers.

    ``path=None`` keeps the store in memory; with a path every append
    is immediately written through (one JSON line, crash-safe), and
    constructing the store re-reads whatever the file already holds.
    Thread-safe: suite drivers append from the main thread in
    submission order, which keeps sequence numbers worker-count
    independent.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._records: list[RunRecord] = []
        self._series_len: dict[str, int] = {}
        self._lock = threading.Lock()
        if self.path is not None and self.path.exists():
            for rec in self._read(self.path):
                self._adopt(rec)
        elif self.path is not None:
            self._write_header(self.path)

    # -- ingestion ----------------------------------------------------------

    @staticmethod
    def _read(path: Path) -> Iterable[RunRecord]:
        with open(path, encoding="utf-8") as fh:
            first = True
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise HistoryError(
                        f"{path}:{lineno}: not JSON: {exc}") from exc
                if first:
                    first = False
                    if obj.get("type") != "history-meta" or \
                            obj.get("schema") != HISTORY_SCHEMA:
                        raise HistoryError(
                            f"{path}:{lineno}: not a history database "
                            f"(expected a {HISTORY_SCHEMA!r} meta header)")
                    continue
                try:
                    yield RunRecord.from_line(obj)
                except (KeyError, TypeError, ValueError) as exc:
                    raise HistoryError(
                        f"{path}:{lineno}: bad record: {exc}") from exc

    @staticmethod
    def _write_header(path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(_meta_line(), sort_keys=True,
                                separators=(",", ":")) + "\n")

    def _adopt(self, rec: RunRecord) -> RunRecord:
        """Register an already-sequenced record read back from disk."""
        key = rec.series_key
        self._records.append(rec)
        self._series_len[key] = max(self._series_len.get(key, 0),
                                    rec.seq + 1)
        return rec

    def append(self, rec: RunRecord) -> RunRecord:
        """Append one record; assigns its per-series sequence number.

        The record's ``seq`` becomes the current length of its series
        (append order *is* history order), and with a backing file the
        line is written through immediately.
        """
        with self._lock:
            key = rec.series_key
            rec.seq = self._series_len.get(key, 0)
            self._series_len[key] = rec.seq + 1
            self._records.append(rec)
            if self.path is not None:
                if not self.path.exists():
                    self._write_header(self.path)
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(rec.to_line(), sort_keys=True,
                                        separators=(",", ":")) + "\n")
        return rec

    def extend(self, records: Iterable[RunRecord]) -> list[RunRecord]:
        return [self.append(r) for r in records]

    # -- queries ------------------------------------------------------------

    @property
    def records(self) -> list[RunRecord]:
        """All records, canonically ordered (series, then history)."""
        with self._lock:
            return sorted(self._records,
                          key=lambda r: (r.series_key, r.seq, r.record_key))

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def series_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._series_len)

    def series(self, key: str) -> list[RunRecord]:
        """One trajectory, in history order."""
        return sorted((r for r in self.records if r.series_key == key),
                      key=lambda r: r.seq)

    def benchmarks(self) -> list[str]:
        """Distinct benchmark names present, sorted."""
        with self._lock:
            return sorted({r.benchmark for r in self._records})

    def select(self, benchmark: str | None = None) -> dict[str, list[RunRecord]]:
        """Series grouped by key, optionally restricted to a benchmark
        (exact name match)."""
        out: dict[str, list[RunRecord]] = {}
        for rec in self.records:
            if benchmark is not None and rec.benchmark != benchmark:
                continue
            out.setdefault(rec.series_key, []).append(rec)
        for recs in out.values():
            recs.sort(key=lambda r: r.seq)
        return out

    # -- export / retention -------------------------------------------------

    def canonical_export(self) -> str:
        """The byte-stable canonical JSON document of the whole DB."""
        doc = {"schema": HISTORY_SCHEMA, "version": HISTORY_VERSION,
               "records": [r.canonical() for r in self.records]}
        return json.dumps(doc, sort_keys=True, indent=1) + "\n"

    def save(self, path: str | Path) -> int:
        """Write the full store (meta header + every record) to a new
        JSONL file; returns the record count."""
        target = Path(path)
        self._write_header(target)
        recs = self.records
        with open(target, "a", encoding="utf-8") as fh:
            for rec in recs:
                fh.write(json.dumps(rec.to_line(), sort_keys=True,
                                    separators=(",", ":")) + "\n")
        return len(recs)

    def compact(self, keep_last: int,
                path: str | Path | None = None) -> "HistoryStore":
        """Apply the retention rule: keep the last ``keep_last`` points
        of every series (sequence numbers are preserved, so trajectory
        positions stay meaningful after compaction).

        Returns a new store; with ``path`` (or a file-backed source)
        the compacted database is also written out, atomically
        replacing the source file when the paths coincide.
        """
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        target = Path(path) if path is not None else self.path
        out = HistoryStore()
        for key in self.series_keys():
            for rec in self.series(key)[-keep_last:]:
                out._adopt(rec)
        if target is not None:
            tmp = target.with_suffix(target.suffix + ".tmp")
            out.save(tmp)
            tmp.replace(target)
            out.path = target
        return out

    # -- convenience --------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path) -> "HistoryStore":
        """Open (or create) a file-backed store."""
        return cls(path)

    def record_and_append(self, benchmark: str,
                          fom_seconds: float | None = None,
                          **kwargs: Any) -> RunRecord:
        """Shorthand: build a stamped record and append it."""
        from .record import record as build
        return self.append(build(benchmark, fom_seconds, **kwargs))


def is_history_file(path: str | Path) -> bool:
    """Whether ``path`` looks like a history database (meta header
    sniff; used by ``jubench report`` to dispatch rendering)."""
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                return isinstance(obj, dict) and \
                    obj.get("type") == "history-meta" and \
                    obj.get("schema") == HISTORY_SCHEMA
    except (OSError, json.JSONDecodeError):
        return False
    return False


#: signature kept importable for tests that monkeypatch record building
RecordFactory = Callable[..., RunRecord]
