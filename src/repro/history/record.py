"""Run records: the provenance-complete unit of the history database.

A :class:`RunRecord` captures everything needed to interpret one
benchmark execution years later: *what* ran (benchmark name + resolved
parameter set), *where* (machine-config hash), *which code* (git
commit + cache code-version tag + history schema version), *how* the
virtual MPI was driven (engine core mode, seed), *what came out* (the
FOM and any secondary figures), and *how it spent its time* (per-span
rollups from :mod:`repro.telemetry`, a digest link to the exec
journal).

Two derived identities matter:

* :attr:`RunRecord.record_key` -- the content address of the full
  record including the code fingerprint; re-running unchanged code on
  an unchanged configuration reproduces the key.
* :attr:`RunRecord.series_key` -- the trajectory identity, *excluding*
  the code fingerprint: successive commits land on the same series, so
  the detector can compare them over time.

Wall-clock measurements (bench harness timings, host names) are
provenance, not results: they live in :attr:`RunRecord.volatile` and
are excluded from :meth:`RunRecord.canonical`, which is how canonical
exports stay byte-identical across worker counts and replays.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..exec.cache import CODE_VERSION, stable_hash

#: History database schema identity (meta header of every JSONL DB).
HISTORY_SCHEMA = "repro.history/v1"
HISTORY_VERSION = 1


def machine_config_hash(system: Any) -> str:
    """Stable content hash of a machine configuration.

    Accepts a :class:`~repro.cluster.hardware.SystemSpec` (hashed
    field-by-field via ``dataclasses.asdict``) or any JSON-like value;
    two runs share the hash exactly when every modelled hardware
    quantity matches.
    """
    if dataclasses.is_dataclass(system) and not isinstance(system, type):
        return stable_hash(dataclasses.asdict(system))[:16]
    return stable_hash(system)[:16]


def _git_head(root: Path) -> str | None:
    """The commit hash ``root``'s repository points at, from disk.

    Reads ``.git/HEAD`` (following one level of symbolic ref through
    the loose ref file or ``packed-refs``) without invoking git; any
    missing or malformed piece yields ``None``.
    """
    git = root / ".git"
    try:
        head = (git / "HEAD").read_text(encoding="utf-8").strip()
    except OSError:
        return None
    if not head.startswith("ref:"):
        return head or None
    ref = head.split(None, 1)[1].strip()
    try:
        return (git / ref).read_text(encoding="utf-8").strip() or None
    except OSError:
        pass
    try:
        packed = (git / "packed-refs").read_text(encoding="utf-8")
    except OSError:
        return None
    for line in packed.splitlines():
        parts = line.split()
        if len(parts) == 2 and parts[1] == ref:
            return parts[0]
    return None


def code_fingerprint(root: str | Path | None = None) -> str:
    """The code identity entering every record: git commit if the
    working tree is a repository (searched upward from ``root``, which
    defaults to this package's source tree), else the cache layer's
    :data:`~repro.exec.cache.CODE_VERSION` tag."""
    start = Path(root) if root is not None \
        else Path(__file__).resolve().parent
    for candidate in (start, *start.parents):
        if (candidate / ".git").exists():
            commit = _git_head(candidate)
            if commit is not None:
                return commit
            break
    return CODE_VERSION


@dataclass
class RunRecord:
    """One benchmark execution, with full provenance."""

    #: benchmark key (Table II name, or a bench id like ``fig2``)
    benchmark: str
    #: resolved parameter set (nodes, variant, scale, study, ...)
    params: dict[str, Any] = field(default_factory=dict)
    #: the normalised time-metric FOM; ``None`` for records whose only
    #: figures are volatile wall-clock measurements
    fom_seconds: float | None = None
    #: secondary figures of merit (efficiencies, speedups, ...)
    foms: dict[str, float] = field(default_factory=dict)
    #: virtual-MPI engine core that produced the result
    vmpi_mode: str = ""
    #: human-readable machine name + config content hash
    machine: str = ""
    machine_hash: str = ""
    #: code identity (git commit or CODE_VERSION) + cache version tag
    code: str = ""
    code_version: str = CODE_VERSION
    schema_version: int = HISTORY_VERSION
    #: RNG / fault-plan seed the run was driven by (None = unseeded)
    seed: int | None = None
    #: per-span rollup, canonical part: name -> {"count": n}.  The
    #: summed wall-clock seconds per span live in
    #: ``volatile["span_seconds"]`` -- timing is provenance the DB
    #: keeps, but only counts enter the byte-stable canonical form.
    spans: dict[str, dict[str, float]] = field(default_factory=dict)
    #: digest of the run's canonical exec journal (provenance link)
    journal: str | None = None
    #: position within the record's series (assigned by the store)
    seq: int = -1
    #: non-reproducible provenance (wall clocks, host names); excluded
    #: from the canonical form
    volatile: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.benchmark:
            raise ValueError("run record needs a benchmark key")
        if self.fom_seconds is not None and self.fom_seconds <= 0:
            raise ValueError(
                f"{self.benchmark}: FOM time metric must be positive")

    # -- identity -----------------------------------------------------------

    @property
    def series_key(self) -> str:
        """Trajectory identity: same benchmark, parameters, machine
        and engine core -- across code versions."""
        digest = stable_hash({"benchmark": self.benchmark,
                              "params": self.params,
                              "machine": self.machine_hash,
                              "vmpi_mode": self.vmpi_mode})
        slug = "".join(c if c.isalnum() or c in "-._" else "_"
                       for c in self.benchmark)
        return f"{slug}-{digest[:16]}"

    @property
    def record_key(self) -> str:
        """Content address of this exact run (series + code identity)."""
        digest = stable_hash({"series": self.series_key, "code": self.code,
                              "code_version": self.code_version,
                              "seed": self.seed})
        return f"{self.series_key}-{digest[:16]}"

    @property
    def value(self) -> float | None:
        """The number a trajectory plots: the FOM when the record has
        one, else the bench harness's volatile wall-clock seconds."""
        if self.fom_seconds is not None:
            return self.fom_seconds
        wall = self.volatile.get("wall_seconds")
        return float(wall) if wall is not None else None

    # -- serialisation ------------------------------------------------------

    def canonical(self) -> dict[str, Any]:
        """The replay-stable form: everything except :attr:`volatile`,
        plus the derived keys (so exports are self-describing)."""
        return {"benchmark": self.benchmark, "params": dict(self.params),
                "fom_seconds": self.fom_seconds, "foms": dict(self.foms),
                "vmpi_mode": self.vmpi_mode, "machine": self.machine,
                "machine_hash": self.machine_hash, "code": self.code,
                "code_version": self.code_version,
                "schema_version": self.schema_version, "seed": self.seed,
                "spans": {k: dict(v) for k, v in self.spans.items()},
                "journal": self.journal, "seq": self.seq,
                "series_key": self.series_key,
                "record_key": self.record_key}

    def to_line(self) -> dict[str, Any]:
        """The full JSONL form (canonical fields + volatile section)."""
        line = self.canonical()
        line["volatile"] = dict(self.volatile)
        return line

    @classmethod
    def from_line(cls, line: dict[str, Any]) -> "RunRecord":
        fom = line.get("fom_seconds")
        return cls(benchmark=str(line["benchmark"]),
                   params=dict(line.get("params", {})),
                   fom_seconds=None if fom is None else float(fom),
                   foms={str(k): float(v)
                         for k, v in line.get("foms", {}).items()},
                   vmpi_mode=str(line.get("vmpi_mode", "")),
                   machine=str(line.get("machine", "")),
                   machine_hash=str(line.get("machine_hash", "")),
                   code=str(line.get("code", "")),
                   code_version=str(line.get("code_version", CODE_VERSION)),
                   schema_version=int(line.get("schema_version",
                                               HISTORY_VERSION)),
                   seed=line.get("seed"),
                   spans={str(k): dict(v)
                          for k, v in line.get("spans", {}).items()},
                   journal=line.get("journal"),
                   seq=int(line.get("seq", -1)),
                   volatile=dict(line.get("volatile", {})))


def record(benchmark: str, fom_seconds: float | None = None, *,
           params: dict[str, Any] | None = None,
           foms: dict[str, float] | None = None,
           system: Any = None, vmpi_mode: str | None = None,
           seed: int | None = None, tracer: Any = None,
           engine: Any = None, code: str | None = None,
           volatile: dict[str, Any] | None = None) -> RunRecord:
    """Build a fully stamped :class:`RunRecord` from live objects.

    The shared helper every producer goes through (suite CLI commands,
    ``ContinuousBenchmarking``, the fig2/fig3 benches): ``system`` (a
    :class:`~repro.cluster.hardware.SystemSpec`) becomes the machine
    stamp, ``tracer`` (a :class:`~repro.telemetry.spans.Tracer`)
    contributes the per-span rollup, ``engine`` (an
    :class:`~repro.exec.engine.ExecutionEngine`) links the canonical
    journal digest, and the environment supplies code fingerprint and
    engine-core mode when not given explicitly.
    """
    import os

    from ..telemetry.spans import span_rollup

    machine = machine_hash = ""
    if system is not None:
        machine = getattr(system, "name", str(system))
        machine_hash = machine_config_hash(system)
    if vmpi_mode is None:
        vmpi_mode = os.environ.get("REPRO_VMPI_MODE", "event")
    extra = dict(volatile or {})
    spans: dict[str, dict[str, float]] = {}
    if tracer is not None and getattr(tracer, "enabled", False):
        rollup = span_rollup(tracer.finished())
        spans = {name: {"count": entry["count"]}
                 for name, entry in rollup.items()}
        extra["span_seconds"] = {name: entry["seconds"]
                                 for name, entry in rollup.items()}
    journal = None
    if engine is not None and len(engine.journal):
        journal = engine.journal.digest()
    return RunRecord(benchmark=benchmark, params=dict(params or {}),
                     fom_seconds=fom_seconds, foms=dict(foms or {}),
                     vmpi_mode=vmpi_mode, machine=machine,
                     machine_hash=machine_hash,
                     code=code if code is not None else code_fingerprint(),
                     seed=seed, spans=spans, journal=journal,
                     volatile=extra)


def stamp(payload: dict[str, Any], *, system: Any = None,
          code: str | None = None) -> dict[str, Any]:
    """Stamp a bench-record payload with its provenance block.

    ``BENCH_*.json`` perf records used to be hand-rolled unversioned
    dicts; this adds the shared ``provenance`` section (git commit,
    history schema name/version, cache code-version tag and the
    machine-config hash) without touching the bench's own keys.
    """
    from ..cluster.hardware import juwels_booster

    sysm = juwels_booster() if system is None else system
    out = dict(payload)
    out["provenance"] = {
        "code": code if code is not None else code_fingerprint(),
        "code_version": CODE_VERSION,
        "schema": HISTORY_SCHEMA,
        "schema_version": HISTORY_VERSION,
        "machine": getattr(sysm, "name", str(sysm)),
        "machine_hash": machine_config_hash(sysm),
    }
    return out
