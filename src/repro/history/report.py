"""Render FOM trajectories and regression verdicts as text.

Backs ``jubench history`` (trajectory listing), ``jubench regress``
(verdict tables) and the trajectory section ``jubench report`` appends
when a history database is supplied.  Pure functions of the store and
detector -- no wall clocks -- so rendered reports are reproducible.
"""

from __future__ import annotations

from .detect import RegressionDetector, Verdict
from .record import RunRecord
from .store import HistoryStore

#: marker glyphs per verdict status
_MARKS = {"baseline": "·", "ok": " ", "improvement": "+", "regression": "!"}


def _fmt_value(value: float | None) -> str:
    return f"{value:.6g}s" if value is not None else "-"


def _series_values(records: list[RunRecord]) -> list[float]:
    return [r.value for r in records if r.value is not None]


def _series_header(records: list[RunRecord]) -> str:
    head = records[-1]
    bits = [head.benchmark]
    if head.params:
        bits.append(",".join(f"{k}={head.params[k]}"
                             for k in sorted(head.params)))
    if head.vmpi_mode:
        bits.append(f"vmpi={head.vmpi_mode}")
    if head.machine:
        bits.append(head.machine)
    return "  ".join(bits)


def render_trajectory(store: HistoryStore, *, last: int = 10,
                      benchmark: str | None = None,
                      detector: RegressionDetector | None = None) -> str:
    """The last-N-runs view of every (matching) series.

    Each line shows the point's series position, code fingerprint,
    FOM, relative change vs the previous point, and the detector's
    flag (``!`` regression, ``+`` improvement).
    """
    det = detector or RegressionDetector()
    groups = store.select(benchmark)
    if not groups:
        scope = f" for benchmark {benchmark!r}" if benchmark else ""
        return f"history: no recorded runs{scope}\n"
    lines: list[str] = ["FOM trajectories (lower is better)", ""]
    for key in sorted(groups):
        records = groups[key]
        values = _series_values(records)
        verdicts = {v.index: v for v in det.classify(values)}
        lines.append(f"{_series_header(records)}  [{key}]")
        shown = records[-last:]
        # verdict indices refer to positions among valued records only
        vi = sum(1 for r in records[:-last] if r.value is not None) \
            if len(records) > last else 0
        for rec in shown:
            if rec.value is None:
                lines.append(f"    seq {rec.seq:>3}  {rec.code[:12]:<12}  "
                             f"{'-':>12}  (no figure of merit)")
                continue
            verdict = verdicts.get(vi)
            vi += 1
            mark = _MARKS.get(verdict.status, " ") if verdict else " "
            rel = ""
            if verdict and verdict.baseline:
                rel = f"  {((rec.value - verdict.baseline) / verdict.baseline):+.2%} vs baseline"
            lines.append(f"  {mark} seq {rec.seq:>3}  {rec.code[:12]:<12}  "
                         f"{_fmt_value(rec.value):>12}  "
                         f"{verdict.status if verdict else ''}{rel}")
        lines.append("")
    flagged = _count_flags(store, det, benchmark)
    lines.append(f"series: {len(groups)}   flagged regressions: {flagged}")
    return "\n".join(lines) + "\n"


def _count_flags(store: HistoryStore, det: RegressionDetector,
                 benchmark: str | None) -> int:
    total = 0
    for records in store.select(benchmark).values():
        total += sum(1 for v in det.classify(_series_values(records))
                     if v.status == "regression")
    return total


def render_regressions(store: HistoryStore, *,
                       benchmark: str | None = None,
                       detector: RegressionDetector | None = None,
                       explain: bool = False) -> tuple[str, int]:
    """The ``jubench regress`` body: per-series verdicts plus located
    change points.  Returns ``(text, flagged_regression_count)`` so
    the CLI can derive its exit status."""
    det = detector or RegressionDetector()
    groups = store.select(benchmark)
    if not groups:
        scope = f" for benchmark {benchmark!r}" if benchmark else ""
        return f"regress: no recorded runs{scope}\n", 0
    lines: list[str] = []
    flagged = 0
    for key in sorted(groups):
        records = groups[key]
        values = _series_values(records)
        verdicts = det.classify(values)
        shifts = det.change_points(values)
        regressions = [v for v in verdicts if v.status == "regression"]
        improvements = [v for v in verdicts if v.status == "improvement"]
        flagged += len(regressions)
        lines.append(f"{_series_header(records)}  [{key}]")
        lines.append(f"  points={len(values)} regressions="
                     f"{len(regressions)} improvements="
                     f"{len(improvements)} change-points={len(shifts)}")
        for v in regressions + improvements:
            lines.append(f"    {_MARKS[v.status]} point {v.index}: "
                         f"{_fmt_value(v.value)} vs baseline "
                         f"{_fmt_value(v.baseline)} "
                         f"(delta {v.delta:+.3g}s, margin {v.threshold:.3g}s)")
            if explain:
                lines.append(f"        {v.trace}")
        for cp in shifts:
            lines.append(f"    ~ level shift at point {cp.index} "
                         f"({cp.direction}): {_fmt_value(cp.before)} -> "
                         f"{_fmt_value(cp.after)} ({cp.relative:+.2%}, "
                         f"CUSUM {cp.statistic:.2f} sigma)")
        if explain:
            for v in verdicts:
                if v.status in ("ok", "baseline"):
                    lines.append(f"        point {v.index}: {v.trace}")
        lines.append("")
    verdict_word = "REGRESSION" if flagged else "ok"
    lines.append(f"verdict: {verdict_word} "
                 f"({flagged} flagged point{'s' if flagged != 1 else ''} "
                 f"across {len(groups)} series)")
    return "\n".join(lines) + "\n", flagged


def latest_verdicts(store: HistoryStore, *,
                    benchmark: str | None = None,
                    detector: RegressionDetector | None = None
                    ) -> dict[str, Verdict]:
    """Newest-point verdict per series (for ContinuousBenchmarking and
    machine consumers)."""
    det = detector or RegressionDetector()
    out: dict[str, Verdict] = {}
    for key, records in store.select(benchmark).items():
        values = _series_values(records)
        verdict = det.latest(values)
        if verdict is not None:
            out[key] = verdict
    return out
