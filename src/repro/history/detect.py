"""Deterministic statistical regression / change-point detection.

Operates on one FOM trajectory (seconds; lower is better) and answers
two questions:

* point-wise: is the newest point consistent with the recent history?
  :meth:`RegressionDetector.classify` walks the series in order,
  maintaining a *stationary-window* baseline -- the median of the last
  ``window`` points previously classified ``ok`` (flagged points are
  excluded so a spike cannot poison its own baseline, and a sustained
  shift keeps flagging until acknowledged) -- with a robust sigma from
  the median absolute deviation, floored at ``noise_floor`` of the
  baseline so near-constant simulated series don't alert on float
  dust.  A point is a ``regression`` when it exceeds baseline by more
  than ``max(sigma * s, slack * baseline)``, an ``improvement`` when
  it undercuts symmetrically.
* series-wise: where did the level shift?  :meth:`
  RegressionDetector.change_points` runs a standardised two-sided
  CUSUM (drift ``k`` sigmas, decision threshold ``h`` sigmas,
  restart-after-detection) against the pre-shift baseline, reporting
  each shift's onset index, direction, and before/after levels.

Everything is pure float arithmetic on the input values -- no clocks,
no RNG -- so verdicts are bit-reproducible across reruns, which the
property tests assert by comparing serialised verdict lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

#: classification labels, in severity order
STATUSES = ("baseline", "ok", "improvement", "regression")


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of empty window")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class Verdict:
    """The detector's decision about one trajectory point."""

    #: position in the classified series (0-based)
    index: int
    value: float
    #: one of :data:`STATUSES`
    status: str
    #: stationary-window baseline the point was compared against
    #: (``None`` during burn-in)
    baseline: float | None = None
    #: robust sigma of the baseline window
    sigma: float | None = None
    #: signed deviation from baseline, seconds (positive = slower)
    delta: float | None = None
    #: the decision margin ``max(sigma_threshold, slack_threshold)``
    threshold: float | None = None
    #: human-readable inference trace (how the verdict was reached)
    trace: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "value": self.value,
                "status": self.status, "baseline": self.baseline,
                "sigma": self.sigma, "delta": self.delta,
                "threshold": self.threshold, "trace": self.trace}


@dataclass(frozen=True)
class ChangePoint:
    """A sustained level shift located by the CUSUM scan."""

    #: index of the first point of the new regime
    index: int
    #: ``"up"`` (slower = regression) or ``"down"`` (improvement)
    direction: str
    #: median level before and after the shift
    before: float
    after: float
    #: CUSUM statistic (in sigmas) at detection
    statistic: float

    @property
    def relative(self) -> float:
        """Fractional change of the level, signed (+ = slower)."""
        if self.before == 0:
            return 0.0
        return (self.after - self.before) / self.before

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "direction": self.direction,
                "before": self.before, "after": self.after,
                "statistic": self.statistic, "relative": self.relative}


@dataclass
class RegressionDetector:
    """Seeded-series regression detector with configurable thresholds.

    Defaults are tuned for the suite's simulated FOMs: ~1% stationary
    noise stays quiet (the dual sigma/slack margin is ~2-6%), a single
    10-15% step or spike is flagged at the exact onset point.
    """

    #: stationary-window length for the baseline
    window: int = 8
    #: sigma multiplier on the robust (MAD-derived) noise estimate
    sigma: float = 4.0
    #: minimum relative deviation that counts, regardless of noise
    slack: float = 0.02
    #: noise floor as a fraction of baseline (guards ~zero-MAD series)
    noise_floor: float = 0.005
    #: points accepted unconditionally before judging begins
    burn_in: int = 4
    #: CUSUM drift allowance, in sigmas
    cusum_k: float = 0.5
    #: CUSUM decision threshold, in sigmas
    cusum_h: float = 5.0

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.burn_in < 2:
            raise ValueError("burn_in must be >= 2")
        if self.sigma <= 0 or self.slack < 0 or self.noise_floor < 0:
            raise ValueError("thresholds must be positive")

    # -- point-wise classification ------------------------------------------

    def _window_stats(self, window: Sequence[float]) -> tuple[float, float]:
        base = _median(window)
        mad = _median([abs(v - base) for v in window])
        # 1.4826 * MAD estimates sigma for Gaussian noise; the floor
        # keeps near-constant simulated series from alerting on dust.
        sig = max(1.4826 * mad, self.noise_floor * abs(base))
        return base, sig

    def classify(self, values: Iterable[float]) -> list[Verdict]:
        """Classify every point of a trajectory, in order.

        The first ``burn_in`` points are accepted as ``baseline``;
        after that each point is compared to the median of the last
        ``window`` points not previously flagged, so the verdict for
        point *i* depends only on values ``[0, i]`` -- appending new
        runs never rewrites old verdicts.
        """
        verdicts: list[Verdict] = []
        accepted: list[float] = []
        for i, value in enumerate(values):
            value = float(value)
            if len(accepted) < self.burn_in:
                verdicts.append(Verdict(
                    index=i, value=value, status="baseline",
                    trace=f"burn-in point {len(accepted) + 1}/"
                          f"{self.burn_in}: accepted unconditionally"))
                accepted.append(value)
                continue
            window = accepted[-self.window:]
            base, sig = self._window_stats(window)
            margin = max(self.sigma * sig, self.slack * abs(base))
            delta = value - base
            if delta > margin:
                status = "regression"
            elif delta < -margin:
                status = "improvement"
            else:
                status = "ok"
            rel = delta / base if base else 0.0
            trace = (f"baseline=median(last {len(window)} ok)="
                     f"{base:.6g}s sigma={sig:.3g} "
                     f"margin=max({self.sigma:g}*sigma, "
                     f"{self.slack:g}*baseline)={margin:.3g}s "
                     f"delta={delta:+.3g}s ({rel:+.2%}) -> {status}")
            verdicts.append(Verdict(index=i, value=value, status=status,
                                    baseline=base, sigma=sig, delta=delta,
                                    threshold=margin, trace=trace))
            if status == "ok":
                accepted.append(value)
        return verdicts

    def latest(self, values: Iterable[float]) -> Verdict | None:
        """Verdict for the newest point (``None`` on an empty series)."""
        verdicts = self.classify(values)
        return verdicts[-1] if verdicts else None

    # -- series-wise change-point scan --------------------------------------

    def change_points(self, values: Iterable[float]) -> list[ChangePoint]:
        """Locate sustained level shifts with a two-sided CUSUM.

        The pre-shift regime's median/sigma standardise the residuals;
        after a detection the scan re-baselines on the new regime and
        continues, so multiple shifts in one series are all reported.
        """
        series = [float(v) for v in values]
        points: list[ChangePoint] = []
        start = 0
        while True:
            found = self._scan_from(series, start)
            if found is None:
                return points
            points.append(found)
            start = found.index

    def _scan_from(self, series: list[float],
                   start: int) -> ChangePoint | None:
        n = len(series)
        if n - start < self.burn_in + 1:
            return None
        ref = series[start:start + max(self.burn_in, self.window)]
        base, sig = self._window_stats(ref)
        # Floor the standardisation sigma at the slack band: deviations
        # the point-wise detector considers meaningless must not be
        # able to accumulate into a CUSUM alarm either (short reference
        # windows can badly underestimate the true noise).
        sig = max(sig, self.slack * abs(base))
        if sig == 0:
            sig = 1.0
        pos = neg = 0.0
        pos_onset = neg_onset = start + len(ref)
        for i in range(start + len(ref), n):
            z = (series[i] - base) / sig
            prev_pos, prev_neg = pos, neg
            pos = max(0.0, pos + z - self.cusum_k)
            neg = max(0.0, neg - z - self.cusum_k)
            if prev_pos == 0.0 and pos > 0.0:
                pos_onset = i
            if prev_neg == 0.0 and neg > 0.0:
                neg_onset = i
            if pos > self.cusum_h or neg > self.cusum_h:
                up = pos > self.cusum_h
                onset = pos_onset if up else neg_onset
                after_vals = series[onset:min(onset + self.window, n)]
                return ChangePoint(
                    index=onset, direction="up" if up else "down",
                    before=base, after=_median(after_vals),
                    statistic=pos if up else neg)
        return None

    # -- rollup -------------------------------------------------------------

    def summarize(self, values: Iterable[float]) -> dict[str, Any]:
        """One-series rollup: counts by status plus located shifts."""
        verdicts = self.classify(values)
        counts = {status: 0 for status in STATUSES}
        for v in verdicts:
            counts[v.status] += 1
        shifts = [cp.to_dict() for cp in
                  self.change_points([v.value for v in verdicts])]
        summary = {"points": len(verdicts), "counts": counts,
                   "change_points": shifts,
                   "verdicts": [v.to_dict() for v in verdicts]}
        return summary


#: default export used by the CLI when no thresholds are given
DEFAULT_DETECTOR = RegressionDetector()
