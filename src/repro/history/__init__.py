"""Performance-history plane: provenance-complete run database plus
statistical regression detection (the exaCB direction of ROADMAP item 2).

The suite exists to track application FOMs across machines and time;
until now every result evaporated when the process exited.  This
package keeps them:

* :mod:`repro.history.record` -- one :class:`RunRecord` per executed
  benchmark, keyed on *(code fingerprint x machine-config hash x
  parameter-set hash x vmpi mode)* and stamped with the environment
  (git commit, schema version, seed), per-span timing rollups from
  :mod:`repro.telemetry` and a digest link to the exec journal;
* :mod:`repro.history.store` -- the append-only, content-addressed
  :class:`HistoryStore` (in-memory or JSONL-backed) whose canonical
  export is byte-identical across worker counts and replays;
* :mod:`repro.history.detect` -- a deterministic change-point /
  regression detector (stationary-window robust baseline + CUSUM)
  classifying each point as ok/regression/improvement with a full
  inference trace;
* :mod:`repro.history.report` -- FOM-trajectory rendering for
  ``jubench history`` / ``jubench regress`` / ``jubench report``.

``jubench ... --history DB.jsonl`` appends to a database from any
execution command; ``jubench history`` inspects and compacts it and
``jubench regress`` runs the detector over the accumulated series.
"""

from .detect import ChangePoint, RegressionDetector, Verdict
from .record import (
    HISTORY_SCHEMA,
    HISTORY_VERSION,
    RunRecord,
    code_fingerprint,
    machine_config_hash,
    record,
    stamp,
)
from .report import render_regressions, render_trajectory
from .store import HistoryStore

__all__ = [
    "HISTORY_SCHEMA",
    "HISTORY_VERSION",
    "ChangePoint",
    "HistoryStore",
    "RegressionDetector",
    "RunRecord",
    "Verdict",
    "code_fingerprint",
    "machine_config_hash",
    "record",
    "render_regressions",
    "render_trajectory",
    "stamp",
]
