"""Declarative benchmark specs (the JUBE-script file format, as data).

Real JUBE scripts are XML/YAML documents; this loader accepts the same
structure as plain Python dicts (parseable from JSON/YAML upstream)::

    spec = load_spec({
        "name": "juqcs-sweep",
        "platform": "juwels-booster",
        "parametersets": [
            {"name": "run", "parameters": [
                {"name": "nodes", "value": [1, 2, 4]},
                {"name": "tasks", "value": "$nodes * 4",
                 "mode": "python"},
                {"name": "variant", "value": "S",
                 "tags": ["small-memory"]},
            ]},
        ],
        "steps": [
            {"name": "execute", "do": "run-benchmark"},
            {"name": "verify", "do": "verify-benchmark",
             "depends": ["execute"]},
        ],
        "tables": [
            {"name": "result", "columns": ["nodes", "fom_seconds"],
             "sort_by": "nodes"},
        ],
    }, actions={"run-benchmark": fn, "verify-benchmark": fn2})

``do`` entries name callables from the ``actions`` registry -- the
stand-in for JUBE's shell snippets.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from .parameters import ParameterError, ParameterSet
from .platform import get_platform
from .result import ResultTable, table
from .runtime import BenchmarkSpec
from .steps import Step, StepContext


class SpecError(ValueError):
    """Malformed declarative spec."""


def _load_parameterset(data: Mapping[str, Any]) -> ParameterSet:
    if "name" not in data:
        raise SpecError("parameterset needs a 'name'")
    pset = ParameterSet(name=str(data["name"]))
    for p in data.get("parameters", ()):
        if "name" not in p or "value" not in p:
            raise SpecError(f"parameter entry {p!r} needs 'name' and 'value'")
        try:
            pset.add(p["name"], p["value"], mode=p.get("mode", "text"),
                     tags=p.get("tags", ()))
        except ParameterError as exc:
            raise SpecError(str(exc))
    return pset


def _load_step(data: Mapping[str, Any],
               actions: Mapping[str, Callable[[StepContext], Any]]) -> Step:
    if "name" not in data:
        raise SpecError("step needs a 'name'")
    do = data.get("do", ())
    names = [do] if isinstance(do, str) else list(do)
    tasks = []
    for action_name in names:
        if action_name not in actions:
            known = ", ".join(sorted(actions)) or "(none)"
            raise SpecError(
                f"step {data['name']!r} uses unknown action "
                f"{action_name!r}; registered: {known}")
        tasks.append(actions[action_name])
    return Step(name=str(data["name"]), tasks=tasks,
                depends=tuple(data.get("depends", ())),
                iterations=int(data.get("iterations", 1)))


def _load_table(data: Mapping[str, Any]) -> ResultTable:
    if "name" not in data or "columns" not in data:
        raise SpecError("table needs 'name' and 'columns'")
    specs = []
    for col in data["columns"]:
        if isinstance(col, str):
            specs.append(col)
        else:
            specs.append(tuple(col))
    return table(str(data["name"]), *specs, sort_by=data.get("sort_by"))


def load_spec(data: Mapping[str, Any],
              actions: Mapping[str, Callable[[StepContext], Any]] | None = None
              ) -> BenchmarkSpec:
    """Build a :class:`BenchmarkSpec` from a declarative document."""
    if "name" not in data:
        raise SpecError("spec needs a benchmark 'name'")
    actions = actions or {}
    platform = None
    if data.get("platform"):
        try:
            platform = get_platform(str(data["platform"]))
        except KeyError as exc:
            raise SpecError(str(exc))
    spec = BenchmarkSpec(
        name=str(data["name"]),
        platform=platform,
        parametersets=[_load_parameterset(p)
                       for p in data.get("parametersets", ())],
        steps=[_load_step(s, actions) for s in data.get("steps", ())],
        tables=[_load_table(t) for t in data.get("tables", ())],
    )
    if not spec.steps:
        raise SpecError("spec needs at least one step")
    return spec
