"""Platform definitions (JUBE's ``platform.xml`` inheritance).

JUBE scripts stay system-independent by inheriting batch templates and
system constants from per-platform definition files.  Here a platform is
a named :class:`ParameterSet` factory with single inheritance; switching
the platform re-targets every benchmark without touching its script --
the property that let both JSC and the bidding vendors run the identical
suite (reproducibility, Sec. II-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..cluster.hardware import (
    SystemSpec,
    jupiter_booster_model,
    juwels_booster,
    juwels_cluster,
)
from .parameters import ParameterSet


@dataclass(frozen=True)
class Platform:
    """A target platform: system handle plus batch/system parameters."""

    name: str
    system_factory: Any  # () -> SystemSpec
    defaults: dict[str, Any] = field(default_factory=dict)
    base: "Platform | None" = None

    def system(self) -> SystemSpec:
        """Instantiate the platform's system description."""
        return self.system_factory()

    def parameterset(self) -> ParameterSet:
        """Platform parameters, base-first so derived values override."""
        pset = self.base.parameterset() if self.base is not None else \
            ParameterSet(name=f"platform:{self.name}")
        pset.name = f"platform:{self.name}"
        sysm = self.system()
        merged: dict[str, Any] = {
            "platform": self.name,
            "system_nodes": sysm.nodes,
            "gpus_per_node": sysm.node.devices_per_node
            if sysm.node.device.kind == "gpu" else 0,
            "tasks_per_node": sysm.node.devices_per_node,
            "nodes_per_cell": sysm.nodes_per_cell,
            "queue": self.defaults.get("queue", "batch"),
            "max_walltime": self.defaults.get("max_walltime", 24 * 3600),
        }
        merged.update(self.defaults)
        for key, value in merged.items():
            pset.add(key, value)
        return pset


#: The preparation system for GPU benchmarks (Sec. III-A).
JUWELS_BOOSTER = Platform(
    name="juwels-booster",
    system_factory=juwels_booster,
    defaults={"queue": "booster", "modules": "GCC/11 CUDA/11.5 OpenMPI/4.1"},
)

#: The CPU module used by NAStJA, DynQCD and the MSA benchmarks.
JUWELS_CLUSTER = Platform(
    name="juwels-cluster",
    system_factory=juwels_cluster,
    defaults={"queue": "batch", "modules": "GCC/11 OpenMPI/4.1"},
)

#: A modelled JUPITER Booster proposal (for extrapolation experiments).
JUPITER_BOOSTER = Platform(
    name="jupiter-booster",
    system_factory=jupiter_booster_model,
    defaults={"queue": "booster"},
    base=JUWELS_BOOSTER,
)

PLATFORMS: dict[str, Platform] = {
    p.name: p for p in (JUWELS_BOOSTER, JUWELS_CLUSTER, JUPITER_BOOSTER)
}


def get_platform(name: str) -> Platform:
    """Look up a registered platform by name."""
    try:
        return PLATFORMS[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORMS))
        raise KeyError(f"unknown platform {name!r}; known: {known}")
