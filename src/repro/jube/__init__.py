"""A native re-implementation of the JUBE workflow environment semantics.

The paper's replicability infrastructure (Sec. III-B): parameter sets
with dependency-resolved ``$ref`` substitution and python-mode
evaluation, tag-selected variants, step DAGs, platform inheritance, and
tabular result extraction.
"""

from .parameters import Parameter, ParameterError, ParameterSet, expand, resolve
from .platform import (
    JUPITER_BOOSTER,
    JUWELS_BOOSTER,
    JUWELS_CLUSTER,
    PLATFORMS,
    Platform,
    get_platform,
)
from .result import Column, ResultTable, WorkunitRecord, table
from .spec import SpecError, load_spec
from .runtime import BenchmarkSpec, JubeRuntime, RunResult, WorkunitRun, submit_step
from .steps import Step, StepContext, StepError, Task, step_order

__all__ = [
    "BenchmarkSpec",
    "Column",
    "JUPITER_BOOSTER",
    "JUWELS_BOOSTER",
    "JUWELS_CLUSTER",
    "JubeRuntime",
    "PLATFORMS",
    "Parameter",
    "ParameterError",
    "ParameterSet",
    "Platform",
    "ResultTable",
    "RunResult",
    "Step",
    "StepContext",
    "StepError",
    "Task",
    "WorkunitRecord",
    "SpecError",
    "WorkunitRun",
    "expand",
    "get_platform",
    "load_spec",
    "resolve",
    "step_order",
    "submit_step",
    "table",
]
