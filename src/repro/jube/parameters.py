"""JUBE-style parameter sets with dependency-resolved substitution.

JUBE (Sec. III-B) drives every benchmark in the suite: *JUBE scripts*
declare parameter sets whose values may reference other parameters
(``$nodes``-style), possibly be evaluated as Python expressions
(``mode="python"``), take multiple values (expanding the benchmark into
one *workunit* per combination), and be guarded by *tags* that select
sub-benchmark variants (e.g. the T/S/M/L memory variants).

This module re-implements those semantics natively:

* :class:`Parameter` -- one named value (template / python / multi-valued),
* :class:`ParameterSet` -- a named collection with override-on-merge,
* :func:`resolve` -- tag filtering, topological substitution, evaluation,
* :func:`expand` -- cartesian expansion of multi-valued parameters.
"""

from __future__ import annotations

import itertools
import math
import re
from dataclasses import dataclass, field
from graphlib import CycleError, TopologicalSorter
from typing import Any, Iterable

_REF = re.compile(r"\$\{(\w+)\}|\$(\w+)")


class ParameterError(ValueError):
    """Raised for unresolvable, cyclic, or malformed parameters."""


@dataclass(frozen=True)
class Parameter:
    """A single benchmark parameter.

    ``value`` may be:

    * a plain Python object (used as-is),
    * a string containing ``$name`` / ``${name}`` references,
    * a list/tuple -> the benchmark expands into one workunit per item
      (after each item is itself substituted).

    ``mode="python"`` evaluates the substituted string with a restricted
    namespace (math + resolved parameters), mirroring JUBE's
    ``mode="python"`` parameters.  ``tags`` restricts the parameter to
    runs where at least one of the tags is active (untagged parameters
    are always active) -- JUBE's tag-selection rule.
    """

    name: str
    value: Any
    mode: str = "text"
    tags: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not re.fullmatch(r"\w+", self.name):
            raise ParameterError(f"invalid parameter name {self.name!r}")
        if self.mode not in ("text", "python"):
            raise ParameterError(f"invalid mode {self.mode!r} for {self.name}")
        if not isinstance(self.tags, frozenset):
            object.__setattr__(self, "tags", frozenset(self.tags))

    def active(self, active_tags: Iterable[str]) -> bool:
        """Whether this parameter participates under the given tags."""
        if not self.tags:
            return True
        return bool(self.tags & set(active_tags))

    def references(self) -> set[str]:
        """Names of parameters this value refers to via ``$name``."""
        refs: set[str] = set()
        values = self.value if isinstance(self.value, (list, tuple)) else [self.value]
        for v in values:
            if isinstance(v, str):
                for a, b in _REF.findall(v):
                    refs.add(a or b)
        return refs


@dataclass
class ParameterSet:
    """A named, ordered collection of parameters.

    Merging two sets (``a | b``) gives b's parameters precedence --
    JUBE's ``init_with`` override semantics, used here for platform
    inheritance and tag-specific overrides.
    """

    name: str
    parameters: list[Parameter] = field(default_factory=list)

    def add(self, name: str, value: Any, mode: str = "text",
            tags: Iterable[str] = ()) -> "ParameterSet":
        """Append a parameter (fluent)."""
        self.parameters.append(Parameter(name=name, value=value, mode=mode,
                                         tags=frozenset(tags)))
        return self

    def __or__(self, other: "ParameterSet") -> "ParameterSet":
        merged = ParameterSet(name=f"{self.name}|{other.name}")
        merged.parameters = list(self.parameters) + list(other.parameters)
        return merged

    def names(self) -> list[str]:
        """Parameter names in declaration order (later duplicates win)."""
        return [p.name for p in self.parameters]


def _substitute(text: str, values: dict[str, Any]) -> str:
    def repl(match: re.Match) -> str:
        name = match.group(1) or match.group(2)
        if name not in values:
            raise ParameterError(f"unresolved reference ${name}")
        return str(values[name])

    return _REF.sub(repl, text)


_EVAL_GLOBALS = {
    "__builtins__": {},
    "abs": abs, "min": min, "max": max, "round": round, "int": int,
    "float": float, "str": str, "bool": bool, "len": len, "pow": pow,
    "sum": sum, "sorted": sorted, "range": range, "list": list,
    "tuple": tuple, "True": True, "False": False, "None": None,
    "ceil": math.ceil, "floor": math.floor, "sqrt": math.sqrt,
    "log": math.log, "log2": math.log2, "exp": math.exp, "pi": math.pi,
}


def _evaluate(expr: str, values: dict[str, Any]) -> Any:
    try:
        return eval(expr, dict(_EVAL_GLOBALS), dict(values))  # noqa: S307
    except ParameterError:
        raise
    except Exception as exc:
        raise ParameterError(f"python-mode evaluation failed for {expr!r}: {exc}")


def resolve(sets: Iterable[ParameterSet],
            tags: Iterable[str] = ()) -> dict[str, Any]:
    """Resolve parameter sets into concrete single values.

    Tag-inactive parameters are dropped, duplicates are overridden by
    declaration order (later wins), ``$refs`` are substituted in
    dependency order, and python-mode values are evaluated.  Multi-valued
    parameters are not allowed here -- use :func:`expand` first.
    """
    active_tags = set(tags)
    chosen: dict[str, Parameter] = {}
    for pset in sets:
        for p in pset.parameters:
            if p.active(active_tags):
                chosen[p.name] = p
    # sorted predecessor lists keep static_order() independent of
    # PYTHONHASHSEED, so the resolved dict's key order is reproducible
    graph = {name: sorted(p.references() & chosen.keys())
             for name, p in chosen.items()}
    try:
        order = list(TopologicalSorter(graph).static_order())
    except CycleError as exc:
        raise ParameterError(f"parameter reference cycle: {exc.args[1]}")
    values: dict[str, Any] = {}
    for name in order:
        p = chosen[name]
        if isinstance(p.value, (list, tuple)):
            raise ParameterError(
                f"parameter {name!r} is multi-valued; expand() the space first")
        v = p.value
        if isinstance(v, str):
            v = _substitute(v, values)
            if p.mode == "python":
                v = _evaluate(v, values)
        values[name] = v
    return values


def expand(sets: Iterable[ParameterSet],
           tags: Iterable[str] = ()) -> list[dict[str, Any]]:
    """Expand multi-valued parameters into the full workunit space.

    Returns one resolved parameter dict per combination (cartesian
    product over all multi-valued parameters, in declaration order).
    """
    sets = list(sets)
    active_tags = set(tags)
    chosen: dict[str, Parameter] = {}
    for pset in sets:
        for p in pset.parameters:
            if p.active(active_tags):
                chosen[p.name] = p
    multi = [(name, list(p.value)) for name, p in chosen.items()
             if isinstance(p.value, (list, tuple))]
    if not multi:
        return [resolve(sets, tags)]
    combos = itertools.product(*(vals for _, vals in multi))
    out = []
    for combo in combos:
        override = ParameterSet(name="_expansion")
        for (name, _), value in zip(multi, combo):
            mode = chosen[name].mode
            override.add(name, value, mode=mode)
        out.append(resolve(sets + [override], tags))
    return out
