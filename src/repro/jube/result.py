"""JUBE-style result tables.

After execution, JUBE condenses a benchmark run into a tabular summary
including the FOM (Sec. III-B: "the benchmark results are presented by
JUBE in a concise tabular form").  :class:`ResultTable` declares the
columns (parameter names or step-output keys, with optional format
specs) and renders collected workunits as an aligned ASCII table --
which is also how the figure-reproduction benches print their series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class Column:
    """One table column: a lookup key plus presentation details.

    ``source`` is either ``"params"`` or a step name whose outputs are
    consulted; ``"auto"`` searches params first, then all step outputs.
    ``fmt`` is a Python format spec applied to the value (e.g. ``".2f"``).
    """

    key: str
    title: str | None = None
    source: str = "auto"
    fmt: str = ""

    @property
    def header(self) -> str:
        return self.title if self.title is not None else self.key


@dataclass
class WorkunitRecord:
    """The raw material of one table row."""

    params: dict[str, Any]
    outputs: dict[str, dict[str, Any]]

    def lookup(self, col: Column) -> Any:
        if col.source == "params":
            return self.params.get(col.key)
        if col.source != "auto":
            return self.outputs.get(col.source, {}).get(col.key)
        if col.key in self.params:
            return self.params[col.key]
        for step_out in self.outputs.values():
            if col.key in step_out:
                return step_out[col.key]
        return None


@dataclass
class ResultTable:
    """Declarative table over a list of workunit records."""

    name: str
    columns: list[Column]
    sort_by: str | None = None

    def rows(self, records: Iterable[WorkunitRecord]) -> list[list[Any]]:
        """Raw (unformatted) row values in sorted order."""
        recs = list(records)
        if self.sort_by is not None:
            col = next((c for c in self.columns if c.key == self.sort_by), None)
            if col is None:
                raise KeyError(f"sort column {self.sort_by!r} not in table")
            recs.sort(key=lambda r: (r.lookup(col) is None, r.lookup(col)))
        return [[r.lookup(c) for c in self.columns] for r in recs]

    def render(self, records: Iterable[WorkunitRecord]) -> str:
        """Aligned ASCII table (JUBE's ``result`` output style)."""
        raw = self.rows(records)
        headers = [c.header for c in self.columns]
        formatted: list[list[str]] = []
        for row in raw:
            cells = []
            for col, value in zip(self.columns, row):
                if value is None:
                    cells.append("-")
                elif col.fmt:
                    cells.append(format(value, col.fmt))
                else:
                    cells.append(str(value))
            formatted.append(cells)
        widths = [max(len(h), *(len(r[i]) for r in formatted)) if formatted
                  else len(h) for i, h in enumerate(headers)]
        sep = "-+-".join("-" * w for w in widths)
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
        for cells in formatted:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


def table(name: str, *specs: str | tuple, sort_by: str | None = None) -> ResultTable:
    """Shorthand table builder.

    Each spec is either a key string or a ``(key, title, fmt)`` tuple
    (title/fmt optional)::

        table("fom", "nodes", ("runtime", "runtime [s]", ".1f"))
    """
    cols: list[Column] = []
    for spec in specs:
        if isinstance(spec, str):
            cols.append(Column(key=spec))
        else:
            key, *rest = spec
            title = rest[0] if len(rest) >= 1 else None
            fmt = rest[1] if len(rest) >= 2 else ""
            cols.append(Column(key=key, title=title, fmt=fmt))
    return ResultTable(name=name, columns=cols, sort_by=sort_by)
