"""The JUBE runtime: expand, execute, collect.

Ties the pieces together the way ``jube run`` does: a
:class:`BenchmarkSpec` (parameter sets + step DAG + result tables) is
expanded over its multi-valued parameters into workunits, each workunit
executes the steps in dependency order, and results are collected into
:class:`~repro.jube.result.ResultTable` renderings.

Execution is in-process and deterministic.  When a spec declares
``submit=True`` steps, they are routed through the simulated batch
scheduler so queueing effects are part of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..cluster.scheduler import Job, Scheduler
from .parameters import ParameterSet, expand
from .platform import Platform
from .result import ResultTable, WorkunitRecord
from .steps import Step, StepContext, StepError, step_order


@dataclass
class BenchmarkSpec:
    """A complete JUBE benchmark definition."""

    name: str
    parametersets: list[ParameterSet] = field(default_factory=list)
    steps: list[Step] = field(default_factory=list)
    tables: list[ResultTable] = field(default_factory=list)
    platform: Platform | None = None

    def all_parametersets(self) -> list[ParameterSet]:
        sets = []
        if self.platform is not None:
            sets.append(self.platform.parameterset())
        sets.extend(self.parametersets)
        return sets


@dataclass
class WorkunitRun:
    """Outcome of one workunit: parameters, step outputs, status."""

    params: dict[str, Any]
    outputs: dict[str, dict[str, Any]]
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def record(self) -> WorkunitRecord:
        return WorkunitRecord(params=self.params, outputs=self.outputs)


@dataclass
class RunResult:
    """Outcome of a full ``jube run``: all workunits plus table renderings."""

    benchmark: str
    tags: frozenset[str]
    workunits: list[WorkunitRun]

    @property
    def ok(self) -> bool:
        return all(w.ok for w in self.workunits)

    def records(self) -> list[WorkunitRecord]:
        return [w.record() for w in self.workunits if w.ok]

    def render(self, table: ResultTable) -> str:
        return table.render(self.records())


class JubeRuntime:
    """Expands and executes :class:`BenchmarkSpec` instances."""

    def __init__(self, env: dict[str, Any] | None = None,
                 scheduler: Scheduler | None = None):
        #: shared environment passed to every step context
        self.env = env or {}
        self.scheduler = scheduler

    def run(self, spec: BenchmarkSpec, tags: Iterable[str] = (),
            keep_going: bool = False) -> RunResult:
        """Run the benchmark; one workunit per parameter combination.

        With ``keep_going`` a failing workunit is recorded and the rest
        continue (useful for sweeps); otherwise the failure raises.
        """
        tagset = frozenset(tags)
        ordered = step_order(spec.steps)
        combos = expand(spec.all_parametersets(), tagset)
        workunits: list[WorkunitRun] = []
        for params in combos:
            outputs: dict[str, dict[str, Any]] = {}
            ctx = StepContext(params=params, results=outputs, tags=tagset,
                              env=dict(self.env))
            error: str | None = None
            try:
                for step in ordered:
                    out = self._run_step(step, ctx, params)
                    outputs.setdefault(step.name, {}).update(out)
            except StepError as exc:
                if not keep_going:
                    raise
                error = str(exc)
            workunits.append(WorkunitRun(params=params, outputs=outputs,
                                         error=error))
        return RunResult(benchmark=spec.name, tags=tagset, workunits=workunits)

    def _run_step(self, step: Step, ctx: StepContext,
                  params: dict[str, Any]) -> dict[str, Any]:
        if self.scheduler is None or not getattr(step, "submit", False):
            return step.run(ctx)
        nodes = int(params.get("nodes", 1))
        walltime = float(params.get("walltime", params.get("max_walltime", 3600)))
        holder: dict[str, Any] = {}

        def payload(alloc: list[int]) -> Any:
            ctx.env["allocated_nodes"] = alloc
            holder["out"] = step.run(ctx)
            fom = holder["out"].get("fom_seconds")
            if isinstance(fom, (int, float)):
                return type("R", (), {"seconds": float(fom)})()
            return None

        job = self.scheduler.submit(Job(name=f"{step.name}", nodes=nodes,
                                        walltime=walltime, run=payload))
        self.scheduler.drain()
        if job.error is not None:
            raise StepError(f"batch job for step {step.name!r} failed: "
                            f"{job.error}")
        return holder.get("out", {})


def submit_step(step: Step) -> Step:
    """Mark a step for batch submission through the simulated scheduler."""
    step.submit = True  # type: ignore[attr-defined]
    return step
