"""The JUBE runtime: expand, execute, collect.

Ties the pieces together the way ``jube run`` does: a
:class:`BenchmarkSpec` (parameter sets + step DAG + result tables) is
expanded over its multi-valued parameters into workunits, each workunit
executes the steps in dependency order, and results are collected into
:class:`~repro.jube.result.ResultTable` renderings.

Execution is in-process and deterministic.  When a spec declares
``submit=True`` steps, they are routed through the simulated batch
scheduler so queueing effects are part of the run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..cluster.scheduler import Job, Scheduler
from ..exec.engine import ExecutionEngine, WorkItem
from ..telemetry.spans import current_tracer
from .parameters import ParameterSet, expand
from .platform import Platform
from .result import ResultTable, WorkunitRecord
from .steps import Step, StepContext, StepError, step_order


@dataclass
class BenchmarkSpec:
    """A complete JUBE benchmark definition."""

    name: str
    parametersets: list[ParameterSet] = field(default_factory=list)
    steps: list[Step] = field(default_factory=list)
    tables: list[ResultTable] = field(default_factory=list)
    platform: Platform | None = None

    def all_parametersets(self) -> list[ParameterSet]:
        sets = []
        if self.platform is not None:
            sets.append(self.platform.parameterset())
        sets.extend(self.parametersets)
        return sets


@dataclass
class WorkunitRun:
    """Outcome of one workunit: parameters, step outputs, status."""

    params: dict[str, Any]
    outputs: dict[str, dict[str, Any]]
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def record(self) -> WorkunitRecord:
        return WorkunitRecord(params=self.params, outputs=self.outputs)


@dataclass
class RunResult:
    """Outcome of a full ``jube run``: all workunits plus table renderings."""

    benchmark: str
    tags: frozenset[str]
    workunits: list[WorkunitRun]

    @property
    def ok(self) -> bool:
        return all(w.ok for w in self.workunits)

    def records(self) -> list[WorkunitRecord]:
        return [w.record() for w in self.workunits if w.ok]

    def render(self, table: ResultTable) -> str:
        return table.render(self.records())


class JubeRuntime:
    """Expands and executes :class:`BenchmarkSpec` instances.

    With an :class:`~repro.exec.engine.ExecutionEngine`, independent
    workunits fan out across the engine's workers; workunit order and
    outcomes are identical to the sequential path.  The only semantic
    difference: with ``keep_going=False`` the sequential path aborts at
    the first failing workunit, while the engine path finishes the
    in-flight batch before re-raising that same first-by-order error.
    """

    def __init__(self, env: dict[str, Any] | None = None,
                 scheduler: Scheduler | None = None,
                 engine: ExecutionEngine | None = None):
        #: shared environment passed to every step context
        self.env = env or {}
        self.scheduler = scheduler
        self.engine = engine
        # The simulated batch scheduler is a single shared queue; step
        # submission from engine worker threads is serialised on it.
        self._scheduler_lock = threading.Lock()

    # The process engine backend pickles ``fn=self._run_workunit``;
    # the lock and the engine (which owns pools) stay behind, and the
    # worker gets its own lock over the (copied) scheduler.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_scheduler_lock"]
        state["engine"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._scheduler_lock = threading.Lock()

    def run(self, spec: BenchmarkSpec, tags: Iterable[str] = (),
            keep_going: bool = False) -> RunResult:
        """Run the benchmark; one workunit per parameter combination.

        With ``keep_going`` a failing workunit is recorded and the rest
        continue (useful for sweeps); otherwise the failure raises.
        """
        tagset = frozenset(tags)
        ordered = step_order(spec.steps)
        combos = expand(spec.all_parametersets(), tagset)
        if self.engine is None or len(combos) <= 1:
            results = [self._run_workunit(ordered, params, tagset,
                                          name=f"{spec.name}[{i}]")
                       for i, params in enumerate(combos)]
        else:
            items = [WorkItem(fn=self._run_workunit,
                              args=(ordered, params, tagset),
                              kwargs={"name": f"{spec.name}[{i}]"},
                              label=f"{spec.name}[{i}]")
                     for i, params in enumerate(combos)]
            results = self.engine.run(items)
        workunits: list[WorkunitRun] = []
        for run, exc in results:
            if exc is not None and not keep_going:
                raise exc
            workunits.append(run)
        return RunResult(benchmark=spec.name, tags=tagset, workunits=workunits)

    def _run_workunit(self, ordered: list[Step], params: dict[str, Any],
                      tagset: frozenset[str], name: str = "workunit"
                      ) -> tuple[WorkunitRun, StepError | None]:
        """One workunit inside its own fault boundary.

        Returns the (possibly error-carrying) :class:`WorkunitRun`
        together with the original exception so ``keep_going=False``
        can re-raise it -- the engine then never sees task failures and
        sibling workunits always complete.  The workunit and each step
        record spans on the ambient tracer (inside engine workers that
        is the shipped-back span collector).
        """
        outputs: dict[str, dict[str, Any]] = {}
        ctx = StepContext(params=params, results=outputs, tags=tagset,
                          env=dict(self.env))
        error: str | None = None
        exc: StepError | None = None
        tracer = current_tracer()
        with tracer.span(f"workunit:{name}", kind="workunit",
                         steps=len(ordered)) as span:
            try:
                for step in ordered:
                    with tracer.span(f"step:{step.name}", kind="step"):
                        out = self._run_step(step, ctx, params)
                    outputs.setdefault(step.name, {}).update(out)
            except StepError as caught:
                error = str(caught)
                exc = caught
                span.set(error=error)
        return WorkunitRun(params=params, outputs=outputs,
                           error=error), exc

    def _run_step(self, step: Step, ctx: StepContext,
                  params: dict[str, Any]) -> dict[str, Any]:
        if self.scheduler is None or not getattr(step, "submit", False):
            return step.run(ctx)
        nodes = int(params.get("nodes", 1))
        walltime = float(params.get("walltime", params.get("max_walltime", 3600)))
        holder: dict[str, Any] = {}

        def payload(alloc: list[int]) -> Any:
            ctx.env["allocated_nodes"] = alloc
            holder["out"] = step.run(ctx)
            fom = holder["out"].get("fom_seconds")
            if isinstance(fom, (int, float)):
                return type("R", (), {"seconds": float(fom)})()
            return None

        with self._scheduler_lock:
            job = self.scheduler.submit(Job(name=f"{step.name}", nodes=nodes,
                                            walltime=walltime, run=payload))
            self.scheduler.drain()
        if job.error is not None:
            raise StepError(f"batch job for step {step.name!r} failed: "
                            f"{job.error}")
        return holder.get("out", {})


def submit_step(step: Step) -> Step:
    """Mark a step for batch submission through the simulated scheduler."""
    step.submit = True  # type: ignore[attr-defined]
    return step
